"""Branch prediction: direction predictors, a BTB for indirect targets,
and a return-address stack, composed into the :class:`BranchUnit` every
core instantiates."""

from repro.branch.predictors import (
    BranchUnit,
    BranchStats,
    BimodalPredictor,
    GSharePredictor,
    StaticPredictor,
    TournamentPredictor,
    make_direction_predictor,
)

__all__ = [
    "BranchUnit",
    "BranchStats",
    "BimodalPredictor",
    "GSharePredictor",
    "StaticPredictor",
    "TournamentPredictor",
    "make_direction_predictor",
]
