"""Branch predictors and the composite branch unit.

Direction predictors implement ``predict(pc) -> bool`` and
``update(pc, taken)``.  The :class:`BranchUnit` adds a branch target
buffer for indirect jumps and a return-address stack, and keeps the
statistics the cores report (the SST core additionally distinguishes
mispredictions of *deferred* branches, which cost a speculation
rollback rather than a refetch — that accounting lives in the core).

PCs are instruction indices, so hashing uses them directly.
"""

from __future__ import annotations

import dataclasses
from typing import List

from repro.config import BranchPredictorConfig, PredictorKind
from repro.errors import ConfigError


class DirectionPredictor:
    """Interface for conditional-branch direction prediction."""

    def predict(self, pc: int) -> bool:
        raise NotImplementedError

    def update(self, pc: int, taken: bool) -> None:
        raise NotImplementedError


class StaticPredictor(DirectionPredictor):
    def __init__(self, taken: bool):
        self.taken = taken

    def predict(self, pc: int) -> bool:
        return self.taken

    def update(self, pc: int, taken: bool) -> None:
        pass


class BimodalPredictor(DirectionPredictor):
    """PC-indexed table of 2-bit saturating counters."""

    def __init__(self, table_bits: int):
        self.mask = (1 << table_bits) - 1
        self.table: List[int] = [2] * (1 << table_bits)  # weakly taken

    def _index(self, pc: int) -> int:
        return pc & self.mask

    def predict(self, pc: int) -> bool:
        return self.table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        index = self._index(pc)
        counter = self.table[index]
        if taken:
            self.table[index] = min(counter + 1, 3)
        else:
            self.table[index] = max(counter - 1, 0)


class GSharePredictor(DirectionPredictor):
    """Global-history-XOR-PC indexed 2-bit counters."""

    def __init__(self, table_bits: int, history_bits: int):
        self.mask = (1 << table_bits) - 1
        self.history_mask = (1 << history_bits) - 1
        self.table: List[int] = [2] * (1 << table_bits)
        self.history = 0

    def _index(self, pc: int) -> int:
        return (pc ^ self.history) & self.mask

    def predict(self, pc: int) -> bool:
        return self.table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        index = self._index(pc)
        counter = self.table[index]
        if taken:
            self.table[index] = min(counter + 1, 3)
        else:
            self.table[index] = max(counter - 1, 0)
        self.history = ((self.history << 1) | int(taken)) & self.history_mask


class TournamentPredictor(DirectionPredictor):
    """Alpha-21264-style chooser between a bimodal and a gshare
    component.

    The chooser is a PC-indexed 2-bit counter trained only when the two
    components disagree, toward whichever was right.  It captures both
    strongly-biased branches (bimodal wins, immune to history noise)
    and pattern branches (gshare wins).
    """

    def __init__(self, table_bits: int, history_bits: int):
        self.bimodal = BimodalPredictor(table_bits)
        self.gshare = GSharePredictor(table_bits, history_bits)
        self.choice_mask = (1 << table_bits) - 1
        # 0-1 favour bimodal, 2-3 favour gshare; start undecided-low.
        self.choice: List[int] = [1] * (1 << table_bits)

    def predict(self, pc: int) -> bool:
        if self.choice[pc & self.choice_mask] >= 2:
            return self.gshare.predict(pc)
        return self.bimodal.predict(pc)

    def update(self, pc: int, taken: bool) -> None:
        bimodal_guess = self.bimodal.predict(pc)
        gshare_guess = self.gshare.predict(pc)
        if bimodal_guess != gshare_guess:
            index = pc & self.choice_mask
            if gshare_guess == taken:
                self.choice[index] = min(self.choice[index] + 1, 3)
            else:
                self.choice[index] = max(self.choice[index] - 1, 0)
        self.bimodal.update(pc, taken)
        self.gshare.update(pc, taken)


def make_direction_predictor(config: BranchPredictorConfig) -> DirectionPredictor:
    if config.kind is PredictorKind.ALWAYS_TAKEN:
        return StaticPredictor(True)
    if config.kind is PredictorKind.ALWAYS_NOT_TAKEN:
        return StaticPredictor(False)
    if config.kind is PredictorKind.BIMODAL:
        return BimodalPredictor(config.table_bits)
    if config.kind is PredictorKind.GSHARE:
        return GSharePredictor(config.table_bits, config.history_bits)
    if config.kind is PredictorKind.TOURNAMENT:
        return TournamentPredictor(config.table_bits, config.history_bits)
    raise ConfigError(f"unknown predictor kind {config.kind}")


@dataclasses.dataclass
class BranchStats:
    cond_predictions: int = 0
    cond_mispredicts: int = 0
    indirect_predictions: int = 0
    indirect_mispredicts: int = 0
    ras_hits: int = 0
    ras_misses: int = 0

    @property
    def cond_accuracy(self) -> float:
        if not self.cond_predictions:
            return 1.0
        return 1.0 - self.cond_mispredicts / self.cond_predictions


class BranchUnit:
    """Direction predictor + BTB + RAS, with shared statistics.

    Cores resolve branches functionally (they always know the real
    outcome) and use this unit to decide *whether the front end would
    have guessed right* — a wrong guess costs the configured redirect
    penalty, or a speculation rollback for NA-operand branches in the
    SST core.
    """

    def __init__(self, config: BranchPredictorConfig):
        self.config = config
        self.direction = make_direction_predictor(config)
        self.stats = BranchStats()
        self._btb: dict = {}
        self._btb_mask = config.btb_entries - 1
        self._ras: List[int] = []

    # -- conditional branches ------------------------------------------

    def predict_cond(self, pc: int) -> bool:
        return self.direction.predict(pc)

    def resolve_cond(self, pc: int, taken: bool) -> bool:
        """Predict + update in one step; returns True if mispredicted."""
        predicted = self.direction.predict(pc)
        self.direction.update(pc, taken)
        self.stats.cond_predictions += 1
        mispredicted = predicted != taken
        if mispredicted:
            self.stats.cond_mispredicts += 1
        return mispredicted

    def resolve_deferred_cond(self, pc: int, predicted: bool,
                              taken: bool) -> bool:
        """Resolve a branch whose prediction was recorded at defer time.

        The SST core predicts NA-operand branches with
        :meth:`predict_cond` when they defer and validates them here at
        replay; tables train on the real outcome either way.
        """
        self.direction.update(pc, taken)
        self.stats.cond_predictions += 1
        if predicted != taken:
            self.stats.cond_mispredicts += 1
            return True
        return False

    # -- indirect jumps -------------------------------------------------

    def predict_indirect(self, pc: int, is_return: bool = False):
        """Front-end guess for an indirect target (None = no guess).

        A return prediction consumes the RAS top, mirroring the
        hardware: a later rollback does not restore it.
        """
        if is_return and self._ras:
            return self._ras.pop()
        return self._btb.get(pc & self._btb_mask)

    def resolve_deferred_indirect(self, pc: int, predicted, target: int,
                                  is_return: bool = False) -> bool:
        """Validate a deferred indirect jump against its recorded guess."""
        self.stats.indirect_predictions += 1
        self._btb[pc & self._btb_mask] = target
        if predicted != target:
            self.stats.indirect_mispredicts += 1
            if is_return:
                self.stats.ras_misses += 1
            return True
        if is_return:
            self.stats.ras_hits += 1
        return False

    def resolve_indirect(self, pc: int, target: int,
                         is_return: bool = False) -> bool:
        """Predict an indirect target; returns True if mispredicted."""
        self.stats.indirect_predictions += 1
        if is_return and self._ras:
            predicted = self._ras.pop()
            if predicted == target:
                self.stats.ras_hits += 1
                return False
            self.stats.ras_misses += 1
            self.stats.indirect_mispredicts += 1
            return True
        predicted = self._btb.get(pc & self._btb_mask)
        self._btb[pc & self._btb_mask] = target
        if predicted != target:
            self.stats.indirect_mispredicts += 1
            return True
        return False

    # -- return-address stack --------------------------------------------

    def push_return(self, return_pc: int) -> None:
        self._ras.append(return_pc)
        if len(self._ras) > self.config.ras_entries:
            self._ras.pop(0)

    @property
    def mispredict_penalty(self) -> int:
        return self.config.mispredict_penalty
