"""Baseline behavior records: schema, governance states, transitions.

A *baseline record* pins the expected behavior of one previously-seen
simulation input, keyed by the input's semantic ID (for single-machine
points that is exactly the result-cache key, so the cache and the
firewall agree on identity by construction).  On disk a record is one
JSON file under ``benchmarks/baselines/``:

.. code-block:: text

    {
      "schema": 1,                  # BASELINE_SCHEMA_VERSION
      "sim_schema": 2,              # repro.sim.cache.SIM_SCHEMA_VERSION
      "semid": "<sha256>",          # == the addressing filename stem
      "kind": "point" | "ensemble" | "multicore" | "experiment",
      "scenario": {...},            # human-readable input description
      "behavior": {...},            # the governed expected behavior
      "candidate_behavior": {...}|null,  # pending divergent recapture
      "status": "candidate" | "approved" | "retired",
      "history": [{"seq": 1, "action": "capture", "at": "...",
                   "note": "...", ...}, ...]   # append-only audit log
    }

Behavior dictionaries hold only deterministic simulation outputs —
cycle counts, retired instructions, a final-architectural-state hash,
a perf-counter signature, expectation outcomes — never host wall-clock
measurements, so a record verifies bit-identically on any machine.

Governance
----------

``status`` moves through an explicit lifecycle; anything else raises
:class:`BaselineTransitionError`:

* ``capture`` of an unseen input creates a ``candidate`` record.
* ``promote`` turns a candidate into ``approved`` (and, when a
  divergent recapture left a ``candidate_behavior``, installs that
  pending behavior as the governed one).  Promotion is the *only*
  green path for an intentional behavior change.
* ``retire`` ends a record's life (``candidate|approved → retired``);
  retired records are skipped by verification and can never be
  promoted back — re-capture mints a fresh candidate lifecycle in the
  audit history instead.

Every transition appends an entry to ``history``; the store enforces
that history is append-only (a save that rewrites or drops entries is
rejected), so the audit log is tamper-evident by construction.
"""

from __future__ import annotations

import dataclasses
import datetime
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.regress import semid as semid_mod

BASELINE_SCHEMA_VERSION = 1

STATUS_CANDIDATE = "candidate"
STATUS_APPROVED = "approved"
STATUS_RETIRED = "retired"
STATUSES = (STATUS_CANDIDATE, STATUS_APPROVED, STATUS_RETIRED)

KINDS = ("point", "ensemble", "multicore", "experiment")

# The full set of legal status transitions.  Promotion from ``approved``
# is legal only when a divergent recapture is pending (the status does
# not change, but the governed behavior does — see promote()).
ALLOWED_TRANSITIONS = frozenset({
    (STATUS_CANDIDATE, STATUS_APPROVED),   # promote
    (STATUS_CANDIDATE, STATUS_RETIRED),    # retire
    (STATUS_APPROVED, STATUS_RETIRED),     # retire
})


class BaselineSchemaError(ReproError):
    """A baseline record does not match the published schema."""


class BaselineTransitionError(ReproError):
    """An illegal governance transition was requested."""


class BaselineAuditError(ReproError):
    """The append-only audit history was violated."""


def _utc_now() -> str:
    return datetime.datetime.now(datetime.timezone.utc).isoformat(
        timespec="seconds"
    )


@dataclasses.dataclass
class BaselineRecord:
    """One governed behavior record (see the module docstring)."""

    semid: str
    kind: str
    scenario: Dict[str, Any]
    behavior: Dict[str, Any]
    status: str = STATUS_CANDIDATE
    candidate_behavior: Optional[Dict[str, Any]] = None
    history: List[Dict[str, Any]] = dataclasses.field(default_factory=list)
    schema: int = BASELINE_SCHEMA_VERSION
    sim_schema: Optional[int] = None

    # -- audit --------------------------------------------------------

    def log(self, action: str, note: str = "", **detail: Any) -> None:
        """Append one audit entry (the only way history may grow)."""
        entry: Dict[str, Any] = {
            "seq": len(self.history) + 1,
            "action": action,
            "at": _utc_now(),
            "note": note,
        }
        entry.update(detail)
        self.history.append(entry)

    # -- governance ---------------------------------------------------

    def _check_transition(self, new_status: str) -> None:
        if (self.status, new_status) not in ALLOWED_TRANSITIONS:
            raise BaselineTransitionError(
                f"illegal transition {self.status!r} -> {new_status!r} "
                f"for baseline {semid_mod.short_id(self.semid)} "
                f"(allowed: candidate->approved, candidate->retired, "
                f"approved->retired)"
            )

    def promote(self, note: str = "") -> str:
        """Approve this record's behavior; returns what happened.

        Either promotes a ``candidate`` record, or — when a divergent
        recapture left a pending ``candidate_behavior`` — installs the
        pending behavior as the governed one.  Retired records, and
        approved records with nothing pending, cannot be promoted.
        """
        if self.status == STATUS_RETIRED:
            raise BaselineTransitionError(
                f"baseline {semid_mod.short_id(self.semid)} is retired; "
                f"retired records cannot be promoted (re-capture instead)"
            )
        if self.candidate_behavior is not None:
            changed = sorted(
                field for field in
                set(self.behavior) | set(self.candidate_behavior)
                if self.behavior.get(field)
                != self.candidate_behavior.get(field)
            )
            previous_status = self.status
            if self.status == STATUS_CANDIDATE:
                self._check_transition(STATUS_APPROVED)
            self.behavior = self.candidate_behavior
            self.candidate_behavior = None
            self.status = STATUS_APPROVED
            self.log("promote", note, from_status=previous_status,
                     behavior_fields_changed=changed)
            return "promoted-recapture"
        if self.status == STATUS_APPROVED:
            raise BaselineTransitionError(
                f"baseline {semid_mod.short_id(self.semid)} is already "
                f"approved with no pending recapture; nothing to promote"
            )
        self._check_transition(STATUS_APPROVED)
        self.status = STATUS_APPROVED
        self.log("promote", note, from_status=STATUS_CANDIDATE)
        return "promoted"

    def retire(self, note: str = "") -> None:
        self._check_transition(STATUS_RETIRED)
        previous = self.status
        self.status = STATUS_RETIRED
        self.log("retire", note, from_status=previous)

    # -- comparison ---------------------------------------------------

    def diff_behavior(
            self, observed: Dict[str, Any]
    ) -> Dict[str, Tuple[Any, Any]]:
        """Field-wise ``{name: (expected, observed)}`` divergences."""
        return {
            field: (self.behavior.get(field), observed.get(field))
            for field in sorted(set(self.behavior) | set(observed))
            if self.behavior.get(field) != observed.get(field)
        }

    # -- (de)serialization --------------------------------------------

    def to_doc(self) -> Dict[str, Any]:
        doc = {
            "schema": self.schema,
            "sim_schema": self.sim_schema,
            "semid": self.semid,
            "kind": self.kind,
            "scenario": self.scenario,
            "behavior": self.behavior,
            "candidate_behavior": self.candidate_behavior,
            "status": self.status,
            "history": self.history,
        }
        validate_record_doc(doc)
        return doc

    @classmethod
    def from_doc(cls, doc: Any) -> "BaselineRecord":
        validate_record_doc(doc)
        return cls(
            semid=doc["semid"],
            kind=doc["kind"],
            scenario=doc["scenario"],
            behavior=doc["behavior"],
            status=doc["status"],
            candidate_behavior=doc["candidate_behavior"],
            history=list(doc["history"]),
            schema=doc["schema"],
            sim_schema=doc["sim_schema"],
        )


_TOP_FIELDS: Dict[str, type] = {
    "schema": int,
    "semid": str,
    "kind": str,
    "scenario": dict,
    "behavior": dict,
    "status": str,
    "history": list,
}


def validate_record_doc(doc: Any) -> None:
    """Raise :class:`BaselineSchemaError` unless ``doc`` is a valid
    schema-versioned baseline record document."""
    if not isinstance(doc, dict):
        raise BaselineSchemaError("baseline record must be an object")
    for field, kind in _TOP_FIELDS.items():
        if field not in doc:
            raise BaselineSchemaError(
                f"baseline record is missing {field!r}"
            )
        if isinstance(doc[field], bool) or not isinstance(
                doc[field], kind):
            raise BaselineSchemaError(
                f"baseline record field {field!r} must be "
                f"{kind.__name__}, got {type(doc[field]).__name__}"
            )
    if doc["schema"] != BASELINE_SCHEMA_VERSION:
        raise BaselineSchemaError(
            f"unsupported baseline schema {doc['schema']!r} "
            f"(this library reads {BASELINE_SCHEMA_VERSION})"
        )
    if doc["status"] not in STATUSES:
        raise BaselineSchemaError(f"bad status {doc['status']!r}")
    if doc["kind"] not in KINDS:
        raise BaselineSchemaError(f"bad kind {doc['kind']!r}")
    if "candidate_behavior" not in doc or not isinstance(
            doc["candidate_behavior"], (dict, type(None))):
        raise BaselineSchemaError(
            "candidate_behavior must be an object or null"
        )
    if not isinstance(doc.get("sim_schema"), (int, type(None))) or \
            isinstance(doc.get("sim_schema"), bool):
        raise BaselineSchemaError("sim_schema must be an int or null")
    for index, entry in enumerate(doc["history"]):
        if not isinstance(entry, dict):
            raise BaselineSchemaError(
                f"history[{index}] must be an object"
            )
        for field in ("seq", "action", "at"):
            if field not in entry:
                raise BaselineSchemaError(
                    f"history[{index}] is missing {field!r}"
                )
        if entry["seq"] != index + 1:
            raise BaselineSchemaError(
                f"history[{index}] has seq {entry['seq']!r}, "
                f"expected {index + 1} (audit entries are dense and "
                f"append-only)"
            )
