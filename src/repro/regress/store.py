"""The on-disk baseline store: ``benchmarks/baselines/``.

One JSON record per semantic ID (atomic-rename writes, like the result
cache), plus the governance operations — capture, promote, retire —
and the integrity scans (`fsck`, cache cross-check).  The store is the
*only* writer of record files; it enforces two invariants on every
save:

* the record's ``semid`` matches the addressing filename (a renamed or
  copied record can never serve the wrong scenario), and
* the audit ``history`` of an existing record is append-only — a save
  that rewrites or drops entries raises :class:`BaselineAuditError`.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import tempfile
from typing import Any, Dict, List, Optional

from repro.errors import ReproError
from repro.regress import semid as semid_mod
from repro.regress.records import (
    BaselineAuditError,
    BaselineRecord,
    BaselineSchemaError,
    STATUS_RETIRED,
)

ENV_DIR = "REPRO_BASELINE_DIR"


def default_baseline_dir() -> pathlib.Path:
    """``REPRO_BASELINE_DIR``, else the checkout's
    ``benchmarks/baselines/``, else ``./baselines``."""
    override = os.environ.get(ENV_DIR, "").strip()
    if override:
        return pathlib.Path(override)
    from repro.experiments.results import repo_root

    root = repo_root()
    if root is not None:
        return root / "benchmarks" / "baselines"
    return pathlib.Path.cwd() / "baselines"


class BaselineLookupError(ReproError, KeyError):
    """No stored baseline matches the requested semantic id."""


@dataclasses.dataclass
class BaselineFsckReport:
    """What one :meth:`BaselineStore.fsck` scan found."""

    scanned: int = 0
    ok: int = 0
    semid_mismatch: int = 0  # stored "semid" != the addressing filename
    invalid: int = 0         # unparseable JSON or schema violations
    bad_files: List[str] = dataclasses.field(default_factory=list)

    @property
    def problems(self) -> int:
        return self.semid_mismatch + self.invalid

    def summary(self) -> str:
        return (
            f"{self.scanned} baseline records scanned: {self.ok} ok, "
            f"{self.semid_mismatch} semid-mismatched, "
            f"{self.invalid} invalid"
        )


@dataclasses.dataclass
class CrossCheckReport:
    """Baseline records cross-checked against live cache entries.

    For every *point* record whose semantic ID addresses an entry in
    the result cache, the cached :class:`CoreResult` is decoded and its
    behavior recomputed — the baseline and the cache claim to describe
    the same simulation, so any disagreement means one of them is
    corrupt or stale (``mismatched``).  Records with no cache entry are
    merely ``uncached`` (the cache is disposable; baselines are not).
    """

    records: int = 0
    checked: int = 0       # records with a live cache entry, compared
    matched: int = 0
    mismatched: int = 0
    uncached: int = 0      # no cache entry for the record's semid
    unverifiable: int = 0  # non-point kinds (no single cached result)
    mismatches: List[Dict[str, Any]] = dataclasses.field(
        default_factory=list
    )

    @property
    def problems(self) -> int:
        return self.mismatched

    def summary(self) -> str:
        return (
            f"{self.records} baseline records vs cache: "
            f"{self.matched} matched, {self.mismatched} MISMATCHED, "
            f"{self.uncached} uncached, "
            f"{self.unverifiable} not cache-addressed"
        )


class BaselineStore:
    """One directory of ``<sha256>.json`` governed baseline records."""

    def __init__(self, root: Optional[os.PathLike] = None):
        self.root = pathlib.Path(
            root if root is not None else default_baseline_dir()
        )

    # -- addressing ---------------------------------------------------

    def _path(self, semid: str) -> pathlib.Path:
        return self.root / f"{semid}.json"

    def _entries(self) -> List[pathlib.Path]:
        if not self.root.is_dir():
            return []
        return sorted(
            path for path in self.root.glob("*.json")
            if path.is_file() and not path.name.startswith(".tmp-")
        )

    def __len__(self) -> int:
        return len(self._entries())

    def exists(self, semid: str) -> bool:
        return self._path(semid).is_file()

    def semids(self) -> List[str]:
        return [path.stem for path in self._entries()]

    def resolve(self, prefix: str) -> str:
        """Resolve a (possibly abbreviated) semantic id to a stored
        record's full id, git-style."""
        if self.exists(prefix):
            return prefix
        matches = [semid for semid in self.semids()
                   if semid.startswith(prefix)]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise BaselineLookupError(
                f"no baseline record matches {prefix!r} in {self.root}"
            )
        raise BaselineLookupError(
            f"ambiguous baseline id {prefix!r}: "
            f"{len(matches)} records match"
        )

    # -- I/O ----------------------------------------------------------

    def load(self, semid: str) -> Optional[BaselineRecord]:
        try:
            payload = json.loads(self._path(semid).read_text())
        except FileNotFoundError:
            return None
        record = BaselineRecord.from_doc(payload)
        if record.semid != semid:
            raise BaselineSchemaError(
                f"baseline file {semid}.json stores semid "
                f"{semid_mod.short_id(record.semid)}… — the record was "
                f"renamed or copied; run `repro cache fsck`"
            )
        return record

    def get(self, semid: str) -> BaselineRecord:
        record = self.load(semid)
        if record is None:
            raise BaselineLookupError(
                f"no baseline record {semid_mod.short_id(semid)}… "
                f"in {self.root}"
            )
        return record

    def save(self, record: BaselineRecord) -> pathlib.Path:
        """Persist ``record`` (atomic rename), enforcing the
        append-only audit invariant against any existing file."""
        doc = record.to_doc()  # validates
        existing = self.load(record.semid)
        if existing is not None:
            prior = existing.history
            if record.history[:len(prior)] != prior:
                raise BaselineAuditError(
                    f"refusing to save baseline "
                    f"{semid_mod.short_id(record.semid)}: the audit "
                    f"history is append-only and the new record "
                    f"rewrites or drops existing entries"
                )
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(record.semid)
        handle, tmp_name = tempfile.mkstemp(
            dir=self.root, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(handle, "w") as tmp:
                tmp.write(semid_mod.dump_stable(doc))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def records(self, status: Optional[str] = None
                ) -> List[BaselineRecord]:
        loaded = []
        for path in self._entries():
            record = self.load(path.stem)
            if record is None:
                continue
            if status is None or record.status == status:
                loaded.append(record)
        return loaded

    def status_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self.records():
            counts[record.status] = counts.get(record.status, 0) + 1
        return counts

    # -- governance operations ----------------------------------------

    def capture(self, record: BaselineRecord, note: str = "") -> str:
        """Record observed behavior; returns the action taken.

        * no stored record → save as ``candidate`` ("captured");
        * stored behavior identical → leave the file untouched
          ("unchanged"), clearing any pending recapture that the code
          has since reconverged away from ("reconverged");
        * stored behavior differs → park the observation as
          ``candidate_behavior`` pending an explicit promote
          ("recaptured" / "pending" when already parked);
        * retired records are never recaptured ("retired").
        """
        existing = self.load(record.semid)
        if existing is None:
            record.log("capture", note)
            self.save(record)
            return "captured"
        if existing.status == STATUS_RETIRED:
            return "retired"
        if existing.behavior == record.behavior:
            if existing.candidate_behavior is not None:
                existing.candidate_behavior = None
                existing.log("reconverged", note)
                self.save(existing)
                return "reconverged"
            return "unchanged"
        if existing.candidate_behavior == record.behavior:
            return "pending"
        changed = sorted(existing.diff_behavior(record.behavior))
        existing.candidate_behavior = record.behavior
        existing.log("recapture", note, behavior_fields_changed=changed)
        self.save(existing)
        return "recaptured"

    def promote(self, semid: str, note: str = "") -> str:
        record = self.get(semid)
        action = record.promote(note)
        self.save(record)
        return action

    def retire(self, semid: str, note: str = "") -> None:
        record = self.get(semid)
        record.retire(note)
        self.save(record)

    # -- integrity ----------------------------------------------------

    def fsck(self) -> BaselineFsckReport:
        """Scan every record file for schema and addressing problems.

        Unlike the result cache's fsck, nothing is auto-removed: a
        baseline is governed state, so repairs go through explicit
        ``retire`` or manual review.
        """
        report = BaselineFsckReport()
        for path in self._entries():
            report.scanned += 1
            try:
                payload = json.loads(path.read_text())
                record = BaselineRecord.from_doc(payload)
            except (OSError, json.JSONDecodeError, BaselineSchemaError):
                report.invalid += 1
                report.bad_files.append(path.name)
                continue
            if record.semid != path.stem:
                report.semid_mismatch += 1
                report.bad_files.append(path.name)
                continue
            report.ok += 1
        return report

    def cross_check(self, cache: Any) -> CrossCheckReport:
        """Cross-check records against live result-cache entries.

        ``cache`` is a :class:`repro.sim.cache.ResultCache`; imported
        structurally to keep this module import-light.
        """
        from repro.regress.firewall import point_behavior

        report = CrossCheckReport()
        for record in self.records():
            report.records += 1
            if record.kind not in ("point", "ensemble"):
                report.unverifiable += 1
                continue
            result = cache.load(record.semid)
            if result is None:
                report.uncached += 1
                continue
            report.checked += 1
            observed = point_behavior(result)
            diff = record.diff_behavior(observed)
            if not diff:
                report.matched += 1
            else:
                report.mismatched += 1
                report.mismatches.append({
                    "semid": record.semid,
                    "scenario": record.scenario,
                    "fields": {
                        field: {"baseline": expected, "cache": got}
                        for field, (expected, got) in diff.items()
                    },
                })
        return report
