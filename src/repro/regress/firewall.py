"""Behavior extraction + the capture/verify firewall engine.

The firewall turns every simulation the repo runs into a governed
regression check, in the capture/replay style: behavior observed for a
previously-seen input must be bit-identical to the stored baseline
record, or the run (and CI) goes red until the change is explicitly
promoted.

*Behavior* of a run is the deterministic output surface only:

* ``cycles`` / ``instructions`` — the timing-model contract;
* ``state_hash`` — semantic ID of the final architectural registers
  and memory (the functional contract);
* ``perf_signature`` — semantic ID of the perf counters (the
  event-driven fast-forward accounting, proven identical across the
  block-dispatch / sanitizer execution variants);
* ``sst_signature`` — semantic ID of the full SST statistics record
  (mode-cycle breakdown, episode and fail accounting) when present.

Host wall-clock numbers never enter a behavior record, so records
verify bit-identically on any machine.

Hook points (all gated on ``REPRO_BASELINE``; unset means zero work):

* :func:`repro.sim.runner.simulate` observes every direct run;
* :class:`repro.experiments.bench_env.BenchEnv` observes every
  recorded point (including cache hits — a corrupt cache entry that
  decodes cleanly but disagrees with the baseline is caught here),
  every ensemble lane, and every multicore run;
* :class:`repro.experiments.engine.ExperimentEngine` observes each
  finished experiment document (expectation outcomes, metrics/table
  signatures, and the point-key list — so an unintended cache-key
  change turns verification red even if every cycle count matches).

``REPRO_BASELINE=verify`` raises on the first divergence (strict);
``REPRO_BASELINE=capture`` records candidates for later promotion.
The ``repro baseline`` CLI drives the same engine in collecting
(non-strict) mode to report every divergence at once.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Any, Dict, List, Optional

from repro.baselines.core_base import CoreResult
from repro.errors import ReproError
from repro.regress import semid as semid_mod
from repro.regress.records import BaselineRecord, STATUS_RETIRED
from repro.regress.store import BaselineStore
from repro.sim.cache import SIM_SCHEMA_VERSION, canonicalize, result_key

ENV_MODE = "REPRO_BASELINE"

MODE_OFF = "off"
MODE_CAPTURE = "capture"
MODE_VERIFY = "verify"


def mode_from_env() -> str:
    """The ``REPRO_BASELINE`` gate: off (default) / capture / verify."""
    value = os.environ.get(ENV_MODE, "").strip().lower()
    if value in ("", "0", "off", "false", "no"):
        return MODE_OFF
    if value == MODE_CAPTURE:
        return MODE_CAPTURE
    if value in (MODE_VERIFY, "1", "on", "true"):
        return MODE_VERIFY
    raise ReproError(
        f"{ENV_MODE} must be unset, 'capture', or 'verify'; got {value!r}"
    )


# ---------------------------------------------------------------------------
# Behavior extraction.
# ---------------------------------------------------------------------------


def state_hash(state: Any) -> str:
    """Semantic ID of an architectural state (registers + memory)."""
    return semid_mod.semantic_id({
        "regs": list(state.regs),
        "memory": sorted(state.memory.items()),
    })


def point_behavior(result: CoreResult) -> Dict[str, Any]:
    """The governed behavior surface of one core run."""
    perf = result.extra.get("perf")
    sst = result.extra.get("sst")
    return {
        "cycles": result.cycles,
        "instructions": result.instructions,
        "state_hash": state_hash(result.state),
        "perf_signature": (
            semid_mod.semantic_id(perf.as_dict())
            if perf is not None else None
        ),
        "sst_signature": (
            semid_mod.semantic_id(sst) if sst is not None else None
        ),
    }


def multicore_behavior(result: Any) -> Dict[str, Any]:
    """The governed behavior surface of one multiprogrammed run
    (``result`` is a :class:`repro.cmp.multicore.MulticoreResult`)."""
    return {
        "makespan": result.makespan,
        "total_instructions": result.total_instructions,
        "aggregate_ipc": round(result.aggregate_ipc, 12),
        "idle_quanta_skipped": result.idle_quanta_skipped,
        "per_core": [
            {
                "core": core.core_name,
                "cycles": core.cycles,
                "instructions": core.instructions,
                "state_hash": state_hash(core.state),
            }
            for core in result.per_core
        ],
    }


def experiment_behavior(doc: Dict[str, Any]) -> Dict[str, Any]:
    """The governed behavior surface of one experiment document."""
    return {
        "points_signature": semid_mod.semantic_id(
            [point["key"] for point in doc["points"]]
        ),
        "n_points": len(doc["points"]),
        "expectations": {
            outcome["name"]: outcome["passed"]
            for outcome in doc["expectations"]
        },
        "ok": doc["ok"],
        "metrics_signature": semid_mod.semantic_id(doc["metrics"]),
        "table_signature": semid_mod.semantic_id(
            doc["table"]["rendered"]
        ),
    }


# ---------------------------------------------------------------------------
# Semantic IDs for the non-point scenario kinds.
# ---------------------------------------------------------------------------


def multicore_key(multicore: Any, max_instructions: int) -> str:
    """The semantic ID of one multiprogrammed scenario.

    Multicore runs are not *cacheable* (the cores share one hierarchy,
    so a per-core result is not a pure single-config function), but
    they are still deterministic pure functions of their full input
    set — which is all a baseline needs.
    """
    return semid_mod.digest_material({
        "kind": "multicore",
        "schema": SIM_SCHEMA_VERSION,
        "hierarchy": canonicalize(multicore.hierarchy_config),
        "cores": [canonicalize(config)
                  for config in multicore.core_configs],
        "programs": [program.fingerprint()
                     for program in multicore.programs],
        "quantum": multicore.quantum,
        "share_l1": multicore.share_l1,
        "max_instructions": max_instructions,
    })


def experiment_key(name: str, mode: str, max_instructions: int) -> str:
    """The semantic ID of one experiment scenario (identity is the
    *inputs*: which experiment, at which scale and budget, under which
    simulation schema — the resolved point keys are behavior)."""
    return semid_mod.digest_material({
        "kind": "experiment",
        "schema": SIM_SCHEMA_VERSION,
        "experiment": name,
        "mode": mode,
        "max_instructions": max_instructions,
    })


# ---------------------------------------------------------------------------
# Divergences.
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class BaselineDivergence:
    """One input whose observed behavior left its approved baseline."""

    semid: str
    kind: str
    scenario: Dict[str, Any]
    fields: Dict[str, Any]  # field -> {"expected": ..., "observed": ...}

    def summary(self) -> str:
        parts = ", ".join(
            f"{field}: {diff['expected']!r} -> {diff['observed']!r}"
            for field, diff in sorted(self.fields.items())
        )
        where = "/".join(
            str(value) for key, value in sorted(self.scenario.items())
            if key in ("machine", "program", "experiment")
        )
        return (f"[{semid_mod.short_id(self.semid)}] {self.kind} "
                f"{where}: {parts}")

    def as_dict(self) -> Dict[str, Any]:
        return {
            "semid": self.semid,
            "kind": self.kind,
            "scenario": self.scenario,
            "fields": self.fields,
        }


class BaselineDivergenceError(ReproError):
    """Observed behavior diverged from an approved baseline record."""

    def __init__(self, divergence: BaselineDivergence):
        self.divergence = divergence
        super().__init__(
            f"behavior diverged from baseline: {divergence.summary()} "
            f"— if this change is intentional, run "
            f"`repro baseline capture` then "
            f"`repro baseline promote {semid_mod.short_id(divergence.semid)}`"
        )


# ---------------------------------------------------------------------------
# The firewall engine.
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class FirewallStats:
    captured: int = 0     # new candidate records created
    recaptured: int = 0   # divergent observations parked as candidates
    unchanged: int = 0    # capture matched the stored behavior
    reconverged: int = 0  # pending candidate cleared by a matching run
    pending: int = 0      # divergence already parked, still pending
    verified: int = 0     # verify matched the stored behavior
    divergent: int = 0    # verify mismatched the stored behavior
    unseen: int = 0       # no record for this input (ignored)
    retired: int = 0      # record retired, skipped

    @property
    def observed(self) -> int:
        return (self.captured + self.recaptured + self.unchanged
                + self.reconverged + self.pending + self.verified
                + self.divergent + self.unseen + self.retired)

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


class BaselineFirewall:
    """Observes simulation behavior and captures/verifies baselines."""

    def __init__(self, store: Optional[BaselineStore] = None, *,
                 mode: str = MODE_VERIFY, strict: bool = True,
                 note: str = ""):
        if mode not in (MODE_CAPTURE, MODE_VERIFY):
            raise ReproError(f"bad firewall mode {mode!r}")
        self.store = store if store is not None else BaselineStore()
        self.mode = mode
        self.strict = strict
        self.note = note
        self.stats = FirewallStats()
        self.divergences: List[BaselineDivergence] = []

    # -- observation entry points -------------------------------------

    def observe_point(self, config: Any, program: Any,
                      max_instructions: int,
                      result: CoreResult) -> str:
        semid = result_key(config, program, max_instructions)
        scenario = {
            "machine": config.name,
            "program": program.name,
            "max_instructions": max_instructions,
        }
        return self._observe(semid, "point", scenario,
                             point_behavior(result))

    def observe_ensemble(self, program: Any, max_steps: int,
                         result: CoreResult) -> str:
        from repro.sim.ensemble import ensemble_key

        scenario = {
            "machine": "ensemble",
            "program": program.name,
            "max_steps": max_steps,
        }
        return self._observe(ensemble_key(program, max_steps),
                             "ensemble", scenario,
                             point_behavior(result))

    def observe_multicore(self, multicore: Any, result: Any, *,
                          machine: str, program: str,
                          max_instructions: int) -> str:
        scenario = {
            "machine": machine,
            "program": program,
            "cores": len(multicore.core_configs),
            "max_instructions": max_instructions,
        }
        return self._observe(
            multicore_key(multicore, max_instructions),
            "multicore", scenario, multicore_behavior(result),
        )

    def observe_experiment(self, doc: Dict[str, Any]) -> str:
        name = doc["experiment"]["name"]
        scenario = {
            "experiment": name,
            "mode": doc["mode"],
            "max_instructions": doc["max_instructions"],
        }
        return self._observe(
            experiment_key(name, doc["mode"], doc["max_instructions"]),
            "experiment", scenario, experiment_behavior(doc),
        )

    # -- the engine ---------------------------------------------------

    def _observe(self, semid: str, kind: str,
                 scenario: Dict[str, Any],
                 behavior: Dict[str, Any]) -> str:
        if self.mode == MODE_CAPTURE:
            return self._capture(semid, kind, scenario, behavior)
        return self._verify(semid, kind, scenario, behavior)

    def _capture(self, semid: str, kind: str,
                 scenario: Dict[str, Any],
                 behavior: Dict[str, Any]) -> str:
        record = BaselineRecord(
            semid=semid, kind=kind, scenario=scenario,
            behavior=behavior, sim_schema=SIM_SCHEMA_VERSION,
        )
        action = self.store.capture(record, note=self.note)
        counter = {
            "captured": "captured",
            "recaptured": "recaptured",
            "unchanged": "unchanged",
            "reconverged": "reconverged",
            "pending": "pending",
            "retired": "retired",
        }[action]
        setattr(self.stats, counter, getattr(self.stats, counter) + 1)
        if action in ("recaptured", "pending"):
            stored = self.store.get(semid)
            self.divergences.append(BaselineDivergence(
                semid=semid, kind=kind, scenario=scenario,
                fields={
                    field: {"expected": expected, "observed": observed}
                    for field, (expected, observed)
                    in stored.diff_behavior(behavior).items()
                },
            ))
        return action

    def _verify(self, semid: str, kind: str,
                scenario: Dict[str, Any],
                behavior: Dict[str, Any]) -> str:
        record = self.store.load(semid)
        if record is None:
            self.stats.unseen += 1
            return "unseen"
        if record.status == STATUS_RETIRED:
            self.stats.retired += 1
            return "retired"
        diff = record.diff_behavior(behavior)
        if not diff:
            self.stats.verified += 1
            return "verified"
        self.stats.divergent += 1
        divergence = BaselineDivergence(
            semid=semid, kind=kind, scenario=scenario,
            fields={
                field: {"expected": expected, "observed": observed}
                for field, (expected, observed) in diff.items()
            },
        )
        self.divergences.append(divergence)
        if self.strict:
            raise BaselineDivergenceError(divergence)
        return "divergent"

    # -- reporting ----------------------------------------------------

    def report(self) -> Dict[str, Any]:
        """A JSON-ready diff report (the CI artifact)."""
        return {
            "schema": 1,
            "mode": self.mode,
            "baseline_dir": str(self.store.root),
            "stats": self.stats.as_dict(),
            "divergences": [
                divergence.as_dict() for divergence in self.divergences
            ],
        }


# ---------------------------------------------------------------------------
# Environment-driven construction (the library hook points).
# ---------------------------------------------------------------------------


def firewall_from_env(strict: bool = True
                      ) -> Optional[BaselineFirewall]:
    """A firewall per ``REPRO_BASELINE``, or None when the gate is off."""
    mode = mode_from_env()
    if mode == MODE_OFF:
        return None
    return BaselineFirewall(mode=mode, strict=strict)


def observe_point_from_env(config: Any, program: Any,
                           max_instructions: int,
                           result: CoreResult) -> None:
    """The ``simulate()`` hook: capture/verify one direct run."""
    firewall = firewall_from_env()
    if firewall is not None:
        firewall.observe_point(config, program, max_instructions, result)
