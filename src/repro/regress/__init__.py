"""``repro.regress`` — the behavioral baseline firewall.

Capture/replay regression governance for simulation behavior: every
simulation point, ensemble lane, multicore run, and experiment document
can be captured as a schema-versioned *baseline record* keyed by its
semantic ID, then re-verified on every later run of the same inputs.
Intentional behavior changes must be *promoted* explicitly; everything
else is a red build.

Not to be confused with :mod:`repro.baselines`, which holds the
**reference core models** (in-order and out-of-order pipelines used as
comparison points in the paper's evaluation).  ``repro.regress`` is
about *baseline behavior records* — governed expected-output snapshots
— not processor baselines.

Layout (mirroring the capture → replay → diff → governance pipeline):

* :mod:`repro.regress.semid` — the canonical SHA-256 semantic-ID
  scheme shared by the result cache, result documents, and this
  firewall (import-light; safe from anywhere).
* :mod:`repro.regress.records` — the baseline record schema,
  governance statuses and allowed transitions.
* :mod:`repro.regress.store` — the on-disk record store
  (``benchmarks/baselines/``) with append-only audit history.
* :mod:`repro.regress.firewall` — behavior extraction and the
  capture/verify engine hooked into ``simulate()`` / ``BenchEnv`` /
  ``ExperimentEngine`` via ``REPRO_BASELINE``.

The heavyweight submodules are loaded lazily: :mod:`repro.isa.program`
imports ``repro.regress.semid`` at interpreter startup, and the
firewall transitively imports the whole simulation stack, so an eager
import here would be circular.
"""

from __future__ import annotations

from typing import Any

from repro.regress.semid import (
    SemanticIdError,
    canonical_json,
    canonicalize,
    deterministic_fraction,
    digest_material,
    dump_stable,
    line_digest,
    semantic_id,
    short_id,
)

__all__ = [
    "SemanticIdError",
    "canonical_json",
    "canonicalize",
    "deterministic_fraction",
    "digest_material",
    "dump_stable",
    "line_digest",
    "semantic_id",
    "short_id",
    # Lazy (PEP 562) — see __getattr__:
    "BaselineRecord",
    "BaselineStore",
    "BaselineFirewall",
]

_LAZY = {
    "BaselineRecord": ("repro.regress.records", "BaselineRecord"),
    "BaselineStore": ("repro.regress.store", "BaselineStore"),
    "BaselineFirewall": ("repro.regress.firewall", "BaselineFirewall"),
}


def __getattr__(name: str) -> Any:
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
