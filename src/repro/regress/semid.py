"""Canonical semantic IDs: the one hashing scheme for the whole repo.

Before this module existed, three subsystems each rolled their own
content hashing: the simulation result cache canonicalized configs ad
hoc (``repro.sim.cache``), :class:`~repro.isa.program.Program` hashed
its instruction stream with hand-built line records, and the
fault-injection planner derived deterministic fractions from raw
SHA-256 digests.  They agreed by convention only.  ``semid`` is the
single documented home of that convention; every identity-bearing
digest in the repository routes through here so "same inputs" means
the same thing to the cache, the result documents, the baseline
firewall (:mod:`repro.regress.store`), and the fault planner.

The scheme (stable — changing any rule silently re-keys every content
hash in the repo, so treat this docstring as a format spec):

1. **Canonicalization** (:func:`canonicalize`): every primitive is
   type-prefixed (``int:4`` and ``str:4`` cannot collide; ``bool``
   is checked before ``int`` because it subclasses it), enums carry
   class and value, dataclasses contribute their class name plus their
   ``init`` fields, dict keys are rendered to sorted canonical JSON,
   and lists/tuples canonicalize element-wise.  Anything outside that
   closed set raises :class:`SemanticIdError` — a new config type can
   never be silently hashed by ``repr``.
2. **Stable JSON** (:func:`canonical_json`): the canonical form is
   serialized with ``json.dumps(..., sort_keys=True)`` so key order
   can never perturb a digest.
3. **Digest** (:func:`semantic_id`): SHA-256 over the stable JSON,
   hex-encoded (64 chars).

Two lower-level primitives exist for call sites that predate the
unified scheme and whose digests are load-bearing (cache keys on disk,
committed golden baselines): :func:`digest_material` hashes an
*already JSON-ready* structure without re-canonicalizing it, and
:func:`line_digest` hashes newline-terminated text records.  Both are
bit-compatible with the historical ``repro.sim.cache`` /
``Program.fingerprint`` formats — routing through them changed zero
existing keys.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any, Iterable

from repro.errors import ReproError

# How many hex chars of the full SHA-256 a short (display) id keeps.
SHORT_ID_LENGTH = 12


class SemanticIdError(ReproError):
    """A value outside the canonicalizable closed set of types."""


def canonicalize(value: Any) -> Any:
    """A JSON-stable, type-prefixed canonical form of ``value``.

    Primitives carry their type name so cross-type collisions are
    impossible; dataclasses and dicts canonicalize recursively with
    sorted keys.  The output feeds ``json.dumps(..., sort_keys=True)``.
    """
    if value is None:
        return "none"
    if isinstance(value, bool):  # before int: bool is an int subclass
        return f"bool:{value}"
    if isinstance(value, int):
        return f"int:{value}"
    if isinstance(value, float):
        return f"float:{value!r}"
    if isinstance(value, str):
        return f"str:{value}"
    if isinstance(value, enum.Enum):
        return f"enum:{type(value).__name__}:{value.value}"
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        rendered = {
            field.name: canonicalize(getattr(value, field.name))
            for field in dataclasses.fields(value)
            if field.init  # derived (init=False) fields restate init ones
        }
        rendered["__type__"] = type(value).__name__
        return rendered
    if isinstance(value, dict):
        return {
            json.dumps(canonicalize(key), sort_keys=True):
                canonicalize(item)
            for key, item in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [canonicalize(item) for item in value]
    raise SemanticIdError(
        f"cannot canonicalize {type(value).__name__} for a semantic id"
    )


def canonical_json(value: Any) -> str:
    """The stable JSON rendering of ``value``'s canonical form."""
    return json.dumps(canonicalize(value), sort_keys=True)


def semantic_id(value: Any) -> str:
    """The SHA-256 semantic id of ``value`` (64 hex chars).

    This is the identity primitive for *new* record kinds (baseline
    behavior records, experiment scenarios).  Pre-existing key formats
    with digests already on disk use :func:`digest_material` /
    :func:`line_digest` instead, which skip re-canonicalization to
    stay bit-compatible.
    """
    return hashlib.sha256(canonical_json(value).encode()).hexdigest()


def digest_material(material: Any) -> str:
    """SHA-256 over ``json.dumps(material, sort_keys=True)``.

    ``material`` must already be JSON-ready (typically assembled from
    :func:`canonicalize` fragments plus raw schema ints/fingerprint
    strings).  This is the historical result-cache key format; it is
    kept distinct from :func:`semantic_id` so every cache key minted
    before this module existed still addresses the same entry.
    """
    return hashlib.sha256(
        json.dumps(material, sort_keys=True).encode()
    ).hexdigest()


def line_digest(lines: Iterable[str]) -> str:
    """SHA-256 over newline-terminated text records.

    The historical :meth:`Program.fingerprint
    <repro.isa.program.Program.fingerprint>` format: each record is
    hashed as ``f"{line}\\n"`` in order.  Callers are responsible for
    making records unambiguous (type-tag prefixes like ``i:`` / ``d:``
    and field separators), exactly as before.
    """
    hasher = hashlib.sha256()
    for line in lines:
        hasher.update(f"{line}\n".encode())
    return hasher.hexdigest()


def deterministic_fraction(material: str) -> float:
    """A deterministic [0, 1) fraction derived from ``material``.

    Used by the fault-injection planner to make per-task sabotage
    decisions reproducible across runs and hosts.
    """
    digest = hashlib.sha256(material.encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2 ** 64


def short_id(semid: str) -> str:
    """The display prefix of a full semantic id."""
    return semid[:SHORT_ID_LENGTH]


def dump_stable(value: Any, indent: int = 2) -> str:
    """Pretty, key-sorted JSON text with a trailing newline.

    The one rendering used for every machine-readable artifact the repo
    writes (result documents, perf snapshots, baseline records), so
    artifact diffs are always key-order stable.
    """
    return json.dumps(value, indent=indent, sort_keys=True) + "\n"
