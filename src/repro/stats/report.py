"""Plain-text result tables, in the style of a paper's evaluation rows.

Benchmarks and examples print through :class:`Table` so every
experiment's output has the same shape and EXPERIMENTS.md can quote it
verbatim.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def format_ratio(value: float) -> str:
    """Speedups/ratios with two decimals and a trailing x."""
    return f"{value:.2f}x"


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the standard summary for speedups)."""
    values = list(values)
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


class Table:
    """Fixed-column text table with a title, like a paper table."""

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: Cell) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append([self._format(cell) for cell in cells])

    @staticmethod
    def _format(cell: Cell) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    def render(self) -> str:
        widths = [
            max(len(self.columns[i]), *(len(row[i]) for row in self.rows))
            if self.rows
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]

        def line(cells: Sequence[str]) -> str:
            return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

        rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
        parts = [self.title, rule, line(self.columns), rule]
        parts.extend(line(row) for row in self.rows)
        parts.append(rule)
        return "\n".join(parts)

    def __str__(self) -> str:
        return self.render()
