"""A small integer histogram used for occupancy distributions
(deferred-queue depth, store-buffer depth, MLP)."""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterator, Tuple


class Histogram:
    """Counts of integer samples with summary statistics."""

    def __init__(self, name: str = "histogram"):
        self.name = name
        self._counts: Counter = Counter()
        self._total_weight = 0
        self._weighted_sum = 0

    def add(self, value: int, weight: int = 1) -> None:
        self._counts[value] += weight
        self._total_weight += weight
        self._weighted_sum += value * weight

    @property
    def count(self) -> int:
        return self._total_weight

    @property
    def mean(self) -> float:
        if not self._total_weight:
            return 0.0
        return self._weighted_sum / self._total_weight

    @property
    def max(self) -> int:
        return max(self._counts) if self._counts else 0

    @property
    def min(self) -> int:
        return min(self._counts) if self._counts else 0

    def percentile(self, fraction: float) -> int:
        """Smallest value v with cumulative weight >= fraction*total."""
        if not self._counts:
            return 0
        threshold = fraction * self._total_weight
        running = 0
        for value in sorted(self._counts):
            running += self._counts[value]
            if running >= threshold:
                return value
        return self.max

    def items(self) -> Iterator[Tuple[int, int]]:
        return iter(sorted(self._counts.items()))

    def as_dict(self) -> Dict[int, int]:
        return dict(self._counts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return (self.name == other.name
                and self._counts == other._counts
                and self._total_weight == other._total_weight
                and self._weighted_sum == other._weighted_sum)

    __hash__ = None  # type: ignore[assignment] - mutable

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Histogram({self.name}: n={self.count}, mean={self.mean:.2f}, "
            f"p50={self.percentile(0.5)}, max={self.max})"
        )
