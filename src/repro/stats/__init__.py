"""Statistics utilities: counters, histograms, and plain-text report
tables shared by the runner, benches and examples."""

from repro.stats.histogram import Histogram
from repro.stats.report import Table, format_ratio, geomean

__all__ = ["Histogram", "Table", "format_ratio", "geomean"]
