"""E12 — branch-predictor sensitivity of deferred-branch speculation.

NA-operand branches ride the predictor; better predictors mean fewer
speculation failures and deeper surviving run-ahead.  Compared on the
unpredictable and the biased variants of the branchy workload.
"""

from repro.config import (
    BranchPredictorConfig,
    CoreKind,
    MachineConfig,
    PredictorKind,
    SSTConfig,
)
from repro.core import FailCause
from repro.experiments.spec import expect, experiment
from repro.stats.report import Table
from repro.workloads import branchy_reduce

PREDICTORS = (PredictorKind.ALWAYS_NOT_TAKEN, PredictorKind.BIMODAL,
              PredictorKind.GSHARE)

_STATIC = PredictorKind.ALWAYS_NOT_TAKEN.value
_GSHARE = PredictorKind.GSHARE.value


def _machine(env, kind: PredictorKind) -> MachineConfig:
    return MachineConfig(
        core_kind=CoreKind.SST,
        hierarchy=env.hierarchy(),
        sst=SSTConfig(predictor=BranchPredictorConfig(kind=kind)),
        name=f"sst-{kind.value}",
    )


@experiment(
    eid="e12", slug="branch",
    title="SST IPC and deferred-branch fails vs branch predictor",
    tags=("branch", "ablation"),
    expectations=(
        expect("gshare_fails_less",
               "on learnable data a real predictor fails less than "
               "static not-taken",
               lambda m: m["by_program"]["int-branchy-biased"][_GSHARE]
               ["fails"]
               < m["by_program"]["int-branchy-biased"][_STATIC]["fails"]),
        expect("gshare_runs_faster",
               "fewer deferred-branch failures translate into IPC",
               lambda m: m["by_program"]["int-branchy-biased"][_GSHARE]
               ["ipc"]
               > m["by_program"]["int-branchy-biased"][_STATIC]["ipc"]),
    ),
)
def build(env):
    programs = [
        branchy_reduce(iterations=env.scaled(4000),
                       data_words=env.scaled(1 << 15),
                       biased=False),
        branchy_reduce(iterations=env.scaled(4000),
                       data_words=env.scaled(1 << 15),
                       biased=True,
                       name="int-branchy-biased"),
    ]
    table = Table(
        "E12: SST IPC and deferred-branch fails vs predictor",
        ["workload", "predictor", "IPC", "deferred-branch fails"],
    )
    by_program = {}
    for program in programs:
        ipcs = {}
        for kind in PREDICTORS:
            result = env.run(_machine(env, kind), program)
            fails = result.extra["sst"].fails[
                FailCause.DEFERRED_BRANCH_MISPREDICT
            ]
            ipcs[kind.value] = {"ipc": result.ipc, "fails": fails}
            table.add_row(program.name, kind.value, round(result.ipc, 3),
                          fails)
        by_program[program.name] = ipcs
    return table, {"by_program": by_program}
