"""E14 — the chip-multiprocessor argument.

Fix a die budget and an off-chip bandwidth limit; fill the die with
in-order, SST, or OoO cores (area model); scale each core's measured
single-core behaviour to chip throughput with bandwidth capping.
Expected: SST's small-area, high-per-thread cores give the best chip
throughput on the commercial mix — the reason ROCK was built this way.
"""

from repro.config import (
    InOrderConfig,
    OoOConfig,
    SSTConfig,
    inorder_machine,
    ooo_machine,
    sst_machine,
)
from repro.experiments.spec import expect, experiment
from repro.power import chip_throughput, cores_per_die
from repro.stats.report import Table, geomean

DIE_BUDGET = 24.0  # relative units: ~24 scalar in-order cores
CHIP_BW = 24.0  # bytes per cycle off-chip: fast cores can saturate it


@experiment(
    eid="e14", slug="cmp_throughput",
    title="Chip throughput at a fixed die and bandwidth budget",
    tags=("power", "cmp"),
    expectations=(
        expect("sst_die_beats_inorder_die",
               "a die of SST cores out-throughputs a die of in-order "
               "cores on commercial work",
               lambda m: m["chip_ipc_geomean"]["sst"]
               > m["chip_ipc_geomean"]["inorder"]),
        expect("sst_die_beats_ooo_die",
               "a die of SST cores out-throughputs a die of big OoO "
               "cores on commercial work",
               lambda m: m["chip_ipc_geomean"]["sst"]
               > m["chip_ipc_geomean"]["ooo-128"]),
    ),
)
def build(env):
    hierarchy = env.hierarchy()
    points = [
        ("inorder", inorder_machine(hierarchy), InOrderConfig(width=2)),
        ("sst", sst_machine(hierarchy), SSTConfig(width=2)),
        ("ooo-128", ooo_machine(hierarchy, rob_size=128),
         OoOConfig(rob_size=128, iq_size=42, lsq_size=42)),
    ]
    table = Table(
        f"E14: chip throughput at die budget {DIE_BUDGET:.0f}, "
        f"bandwidth {CHIP_BW:.0f} B/cyc",
        ["workload", "machine", "cores/die", "per-core IPC",
         "BW-bound?", "chip IPC"],
    )
    chip_ipc = {name: [] for name, _, _ in points}
    for program in env.commercial_suite():
        for name, machine, core_config in points:
            cores = cores_per_die(core_config, DIE_BUDGET)
            result = env.run(machine, program)
            point = chip_throughput(result, cores=cores,
                                    chip_bw_limit=CHIP_BW)
            chip_ipc[name].append(point.throughput)
            table.add_row(
                program.name, name, cores,
                round(point.per_core_ipc, 3),
                "yes" if point.bandwidth_bound else "no",
                round(point.throughput, 2),
            )
    table.add_row(
        "geomean chip IPC", "", "", "", "",
        "/".join(f"{geomean(chip_ipc[name]):.2f}" for name, _, _ in points),
    )
    return table, {
        "chip_ipc": chip_ipc,
        "chip_ipc_geomean": {name: geomean(values)
                             for name, values in chip_ipc.items()},
    }
