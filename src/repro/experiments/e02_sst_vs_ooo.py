"""E2 — the abstract's headline: SST per-thread performance vs
"larger and higher-powered" out-of-order cores (ROB 32/64/128).

Expected shape: on the *commercial* (miss-bound) suite the 2-wide SST
core beats even the 4-wide ROB-128 OoO core by tens of percent
(the paper reports 18%); on the compute suite the OoO cores win.
"""

from repro.config import sst_machine
from repro.experiments.spec import expect, experiment
from repro.stats.report import Table, geomean


@experiment(
    eid="e2", slug="sst_vs_ooo",
    title="SST vs out-of-order cores per-thread (the headline claim)",
    tags=("core", "headline"),
    expectations=(
        expect("commercial_win",
               "SST beats the ROB-128 OoO on the commercial geomean "
               "(the paper's 18% claim, shape not constant)",
               lambda m: m["geomean"]["commercial"] > 1.1),
        expect("compute_loss",
               "an honest reproduction shows OoO ahead on compute codes",
               lambda m: m["geomean"]["compute"] < 1.0),
    ),
)
def build(env):
    hierarchy = env.hierarchy()
    configs = [sst_machine(hierarchy)] + env.ooo_comparators(hierarchy)
    commercial = env.commercial_suite()
    compute = env.compute_suite()
    matrix = env.run_matrix(commercial + compute, configs)

    table = Table(
        "E2: IPC of SST vs out-of-order cores (per-thread)",
        ["workload", "suite"] + [config.name for config in configs],
    )
    ratios = {"commercial": [], "compute": []}
    for suite_name, programs in (("commercial", commercial),
                                 ("compute", compute)):
        for program in programs:
            results = matrix[program.name]
            table.add_row(
                program.name, suite_name,
                *(round(results[config.name].ipc, 3) for config in configs),
            )
            ratios[suite_name].append(
                results[configs[0].name].speedup_over(
                    results["ooo-4w-rob128"]
                )
            )
    table.add_row(
        "sst vs ooo-128 geomean", "commercial",
        f"{geomean(ratios['commercial']):.2f}x", "", "", "",
    )
    table.add_row(
        "sst vs ooo-128 geomean", "compute",
        f"{geomean(ratios['compute']):.2f}x", "", "", "",
    )
    return table, {
        "ratios": ratios,
        "geomean": {suite: geomean(values)
                    for suite, values in ratios.items()},
    }
