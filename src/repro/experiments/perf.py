"""Simulator-throughput snapshots and the perf regression gate.

Every core surfaces a :class:`repro.core.timing.PerfCounters` under
``CoreResult.extra["perf"]`` plus host wall-clock timing
(``wall_seconds``, insts/host-second).  This module turns those into a
*throughput snapshot*: a fixed measurement set — the paper's machines
plus the largest out-of-order comparator over the tiny suites, and one
interleaved multicore point — run uncached, with one JSON entry per
point and per-machine aggregates.

Snapshots land in ``benchmarks/results/BENCH_<tag>.json`` and are meant
to be diffed across commits: ``insts_per_host_second`` is the simulator
performance trajectory, ``skip_fraction`` / ``l1d_fastpath_fraction``
explain *why* it moved (how much of the simulated time was never
stepped, how many accesses took the single-probe hit path), and
``speedup_vs_baseline`` pins the trajectory to the committed
``benchmarks/BENCH_smoke.json`` so a speedup is a tracked number, not a
claim.

Aggregate semantics (tested in ``tests/experiments/test_perf.py``):
every ``insts_per_host_second`` rollup — per machine and for the
snapshot total — is **sum of instructions over sum of wall seconds**,
i.e. wall-time-weighted throughput.  It is *not* a mean of per-point or
per-machine rates: a machine (or program) that takes twice the host
time counts twice as much, so the total answers "how fast does the
whole suite simulate" rather than "what is the typical rate".

:func:`run_perf_smoke` (reachable as ``run_all.py --perf-smoke`` and
``repro perf report --compare-baseline``) wraps this measurement and
compares it against the committed baseline, resolved through the
results layer so it works from any cwd.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import sys
import time
from typing import Any, Dict, List, Optional

from repro.cmp import Multicore
from repro.config import (
    SSTConfig,
    ensemble_enabled,
    inorder_machine,
    timing_ensemble_enabled,
)
from repro.errors import ReproError
from repro.experiments.bench_env import BenchEnv
from repro.experiments.results import default_results_dir, perf_baseline_path
from repro.regress.semid import dump_stable
from repro.isa.interpreter import Interpreter
from repro.sim.machine import Machine
from repro.workloads import hash_join
from repro.workloads.suite import WORKLOAD_FACTORIES, suite_params

REPORT_SCHEMA = 2

# Default regression gate for run_perf_smoke (CLI flag --perf-tolerance
# in run_all.py overrides it per run).
DEFAULT_PERF_TOLERANCE = 0.30

# Minimum aggregate speedup of the N=64 numpy ensemble over the scalar
# interpreter on the tiny suite.  Measured ~2.8x on the reference host;
# the gate is deliberately loose so slow/shared CI runners do not flap,
# while still catching a vectorization regression back to ~1x.
DEFAULT_ENSEMBLE_MIN_SPEEDUP = 1.5

# Minimum aggregate speedup of the N=64 batched in-order *timing*
# ensemble over lane-by-lane scalar Machine runs on its gate workload
# (see measure_timing_ensemble for why the gate is compute-matmul).
# Measured ~2.2-2.6x on the reference host.
DEFAULT_TIMING_ENSEMBLE_MIN_SPEEDUP = 2.0

# The timing-ensemble gate workload set (see measure_timing_ensemble).
DEFAULT_TIMING_WORKLOADS = ("compute-matmul",)


# ---------------------------------------------------------------------------
# Entry extraction — CoreResult -> flat JSON row.
# ---------------------------------------------------------------------------


def perf_entry(result: Any, machine: str = "",
               wall_seconds: Optional[float] = None) -> Dict[str, Any]:
    """One snapshot row for a single-core :class:`CoreResult`.

    Rates are derived from the *stored* (rounded) wall, so every rate
    in the JSON is reproducible from the JSON alone — re-dividing the
    committed ``instructions`` by the committed ``wall_seconds`` gives
    back exactly the committed ``insts_per_host_second``.
    """
    wall = round(
        wall_seconds if wall_seconds is not None else result.wall_seconds, 4
    )
    entry: Dict[str, Any] = {
        "machine": machine or result.core_name,
        "program": result.program_name,
        "cycles": result.cycles,
        "instructions": result.instructions,
        "ipc": round(result.ipc, 4),
        "wall_seconds": wall,
        "insts_per_host_second": (
            round(result.instructions / wall) if wall > 0 else None
        ),
        "sim_cycles_per_second": (
            round(result.cycles / wall) if wall > 0 else None
        ),
    }
    perf = result.extra.get("perf")
    if perf is not None:
        entry["perf"] = perf.as_dict()
    hier = result.extra.get("hierarchy")
    if hier is not None:
        entry["l1d_fastpath_fraction"] = round(
            hier.l1d_fastpath_fraction, 4
        )
    return entry


def aggregate(entries: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Per-machine and whole-snapshot throughput rollups.

    All ``insts_per_host_second`` values here are **sum of
    instructions over sum of wall seconds** (wall-time-weighted), both
    per machine (over that machine's programs) and for ``total`` (over
    every machine).  ``total`` is therefore *not* the mean of the
    per-machine rates — slow machines weigh in proportionally to the
    host time they consume.

    Like :func:`perf_entry`, every rate is computed from the rounded
    wall that is actually stored (machine walls are rounded before the
    total sums them), so the committed JSON reproduces its own rates.
    """
    machines: Dict[str, Dict[str, float]] = {}
    for entry in entries:
        agg = machines.setdefault(entry["machine"], {
            "instructions": 0, "cycles": 0, "wall_seconds": 0.0,
            "cycles_stepped": 0, "cycles_skipped": 0,
        })
        agg["instructions"] += entry["instructions"]
        agg["cycles"] += entry["cycles"]
        agg["wall_seconds"] += entry["wall_seconds"]
        perf = entry.get("perf")
        if perf:
            agg["cycles_stepped"] += perf["cycles_stepped"]
            agg["cycles_skipped"] += perf["cycles_skipped"]
    total_insts = 0
    total_wall = 0.0
    for name, agg in machines.items():
        agg["wall_seconds"] = round(agg["wall_seconds"], 4)
        total_insts += agg["instructions"]
        total_wall += agg["wall_seconds"]
        agg["insts_per_host_second"] = (
            round(agg["instructions"] / agg["wall_seconds"])
            if agg["wall_seconds"] > 0 else None
        )
        seen = agg["cycles_stepped"] + agg["cycles_skipped"]
        agg["skip_fraction"] = (
            round(agg["cycles_skipped"] / seen, 4) if seen else 0.0
        )
    total_wall = round(total_wall, 4)
    return {
        "machines": machines,
        "total": {
            "instructions": total_insts,
            "wall_seconds": total_wall,
            "insts_per_host_second": (
                round(total_insts / total_wall) if total_wall > 0 else None
            ),
        },
    }


def speedup_vs_baseline(payload: Dict[str, Any],
                        baseline: Optional[Dict[str, Any]]
                        ) -> Optional[Dict[str, Any]]:
    """The tracked speedup metric: this snapshot over a baseline one.

    Returns ``{"baseline_tag", "aggregate", "machines"}`` with each
    value a throughput ratio (>1 means this snapshot is faster), or
    ``None`` when the baseline is missing/unreadable.  Machines present
    in only one snapshot are skipped.
    """
    if not isinstance(baseline, dict):
        return None
    try:
        base_agg = baseline["aggregate"]
        base_total = base_agg["total"]["insts_per_host_second"]
        base_machines = base_agg["machines"]
    except (KeyError, TypeError):
        return None
    new_agg = payload["aggregate"]
    new_total = new_agg["total"]["insts_per_host_second"]
    out: Dict[str, Any] = {
        "baseline_tag": baseline.get("tag"),
        "aggregate": (
            round(new_total / base_total, 4)
            if base_total and new_total else None
        ),
        "machines": {},
    }
    for name, agg in new_agg["machines"].items():
        base = base_machines.get(name)
        if not isinstance(base, dict):
            continue
        old_rate = base.get("insts_per_host_second")
        new_rate = agg.get("insts_per_host_second")
        if old_rate and new_rate:
            out["machines"][name] = round(new_rate / old_rate, 4)
    return out


def write_report(payload: Dict[str, Any],
                 path: Optional[pathlib.Path] = None) -> pathlib.Path:
    if path is None:
        results_dir = default_results_dir()
        results_dir.mkdir(parents=True, exist_ok=True)
        path = results_dir / f"BENCH_{payload['tag']}.json"
    path.write_text(dump_stable(payload))
    return path


# ---------------------------------------------------------------------------
# The fixed measurement set.
# ---------------------------------------------------------------------------


def measure(tag: str = "report") -> Dict[str, Any]:
    """Run the snapshot's measurement set (uncached) and collect it.

    Cached results would report the *original* run's wall clock, so the
    snapshot always simulates: every point goes straight through
    :class:`repro.sim.machine.Machine`.
    """
    env = BenchEnv(cache=None)
    hierarchy = env.hierarchy()
    configs = env.paper_machines(hierarchy) + [
        env.ooo_comparators(hierarchy)[-1]
    ]
    programs = env.commercial_suite() + env.compute_suite()

    entries: List[Dict[str, Any]] = []
    for config in configs:
        for program in programs:
            result = Machine(config).run(
                program, max_instructions=env.max_instructions
            )
            entries.append(perf_entry(result, machine=config.name))

    # One interleaved multicore point (the e17 shape, 4 cores).
    cores = 4
    cmp_programs = [
        hash_join(table_words=env.scaled(1 << 14), probes=env.scaled(600),
                  seed=seed, name=f"db-hashjoin-{seed}")
        for seed in range(cores)
    ]
    started = time.perf_counter()
    cmp_result = Multicore(
        hierarchy, [SSTConfig(checkpoints=2)] * cores, cmp_programs
    ).run(max_instructions=env.max_instructions)
    cmp_wall = round(time.perf_counter() - started, 4)
    cmp_entry = {
        "machine": f"sst-cmp{cores}",
        "program": f"db-hashjoin x{cores}",
        "cycles": cmp_result.makespan,
        "instructions": cmp_result.total_instructions,
        "ipc": round(cmp_result.aggregate_ipc, 4),
        "wall_seconds": cmp_wall,
        "insts_per_host_second": (
            round(cmp_result.total_instructions / cmp_wall)
            if cmp_wall > 0 else None
        ),
        "idle_quanta_skipped": cmp_result.idle_quanta_skipped,
    }

    # The single-core aggregate is computed before the multicore entry
    # joins the list: sst-cmp4 shares its hierarchy across cores, so its
    # wall time is not comparable with the per-machine rollups.
    single_aggregate = aggregate(entries)
    entries.append(cmp_entry)
    return {
        "schema": REPORT_SCHEMA,
        "tag": tag,
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "entries": entries,
        "aggregate": single_aggregate,
        "ensemble": measure_ensemble(),
        "timing_ensemble": measure_timing_ensemble(),
    }


def _select_workloads(scale: str, workloads: Optional[List[str]]
                      ) -> Dict[str, Dict[str, Any]]:
    """The ``scale`` suite narrowed to ``workloads``, validated.

    An empty selection or unknown workload names raise
    :class:`ReproError` (which the CLI maps to exit code 2) instead of
    surfacing as a bare ``KeyError`` from inside the measurement loop.
    """
    params = suite_params(scale)
    if workloads is None:
        return params
    if not workloads:
        raise ReproError("no workloads selected")
    unknown = sorted(name for name in workloads if name not in params)
    if unknown:
        raise ReproError(
            f"unknown workload(s): {', '.join(unknown)}; "
            f"available: {', '.join(sorted(params))}"
        )
    return {name: params[name] for name in workloads}


def measure_ensemble(lanes: int = 64, scale: str = "tiny",
                     workloads: Optional[List[str]] = None,
                     backend: Optional[str] = None) -> Dict[str, Any]:
    """Ensemble-vs-scalar throughput over seed-varied lane batches.

    For each workload in the ``scale`` suite this builds ``lanes``
    seed-varied instances, runs them one at a time through the scalar
    golden interpreter, then once through the numpy
    :class:`repro.sim.ensemble.EnsembleInterpreter`, and reports both
    walls plus the per-workload and aggregate speedup (sum of scalar
    wall over sum of ensemble wall, matching the module's
    wall-time-weighted rollup semantics).  Returns
    ``{"available": False, "reason": ...}`` when numpy is missing or
    ``REPRO_ENSEMBLE=0``, so snapshots stay writable everywhere.
    ``backend`` forces one (``"python"`` measures the pure-Python lane
    loop, which is expected near 1x); the default requires the numpy
    backend since that is the number the smoke gate tracks.
    """
    from repro.sim import ensemble

    base = {"lanes": lanes, "scale": scale}
    if backend is None:
        if not ensemble.numpy_available():
            return {"available": False, "reason": "numpy not installed",
                    **base}
        if not ensemble_enabled():
            return {"available": False, "reason": "REPRO_ENSEMBLE=0",
                    **base}
        backend = ensemble.BACKEND_NUMPY
    else:
        try:
            backend = ensemble.resolve_backend(backend)
        except ensemble.EnsembleDependencyError as exc:
            return {"available": False, "reason": str(exc), **base}

    params = _select_workloads(scale, workloads)

    rows: Dict[str, Any] = {}
    total_insts = 0
    total_scalar = 0.0
    total_vector = 0.0
    for name, kwargs in params.items():
        programs = [
            WORKLOAD_FACTORIES[name](
                **kwargs, seed=100 + lane, name=f"{name}@lane{lane}"
            )
            for lane in range(lanes)
        ]
        started = time.perf_counter()
        insts = 0
        for program in programs:
            interp = Interpreter(program)
            interp.run()
            insts += interp.stats.instructions
        # Rounded before use so the stored walls reproduce the stored
        # speedups (same contract as perf_entry/aggregate).
        scalar_wall = round(time.perf_counter() - started, 4)

        started = time.perf_counter()
        outcomes = ensemble.EnsembleInterpreter(
            programs, backend=backend
        ).run()
        vector_wall = round(time.perf_counter() - started, 4)
        vector_insts = sum(o.stats.instructions for o in outcomes)
        if vector_insts != insts:  # pragma: no cover - differential guard
            raise ReproError(
                f"ensemble ran {vector_insts} instructions for {name} "
                f"where the scalar interpreter ran {insts}"
            )

        total_insts += insts
        total_scalar += scalar_wall
        total_vector += vector_wall
        rows[name] = {
            "instructions": insts,
            "scalar_wall_seconds": scalar_wall,
            "ensemble_wall_seconds": vector_wall,
            "speedup": (
                round(scalar_wall / vector_wall, 4) if vector_wall > 0
                else None
            ),
        }

    return {
        "available": True,
        "backend": backend,
        **base,
        "workloads": rows,
        "aggregate": {
            "instructions": total_insts,
            "scalar_insts_per_host_second": (
                round(total_insts / total_scalar) if total_scalar > 0
                else None
            ),
            "ensemble_insts_per_host_second": (
                round(total_insts / total_vector) if total_vector > 0
                else None
            ),
            "speedup": (
                round(total_scalar / total_vector, 4) if total_vector > 0
                else None
            ),
        },
    }


def measure_timing_ensemble(lanes: int = 64, scale: str = "tiny",
                            workloads: Optional[List[str]] = None
                            ) -> Dict[str, Any]:
    """Batched in-order *timing* ensemble vs lane-by-lane scalar runs.

    The timing analogue of :func:`measure_ensemble`: for each workload,
    ``lanes`` seed-varied instances run one at a time through scalar
    :class:`~repro.sim.machine.Machine` in-order simulations, then once
    through :func:`repro.sim.timing_ensemble.run_timing_ensemble`, with
    every lane's batched :class:`CoreResult` differentially checked
    against its scalar twin (bit-identity is the engine's contract, so
    any mismatch is a hard :class:`ReproError`, not a statistic).

    The default workload set is ``compute-matmul`` only, on purpose:
    the lockstep engine's win is the vectorized issue/ALU/L1-hit path,
    and the hit-friendly matmul kernel is representative of where
    parameter sweeps spend their time.  Miss-dominated workloads route
    most accesses through the *same* scalar miss machinery in both
    runs and sit near 1x by construction — gating on them would track
    host noise, not the vectorization.  Walls are rounded before use so
    the stored numbers reproduce the stored speedups.

    Returns ``{"available": False, "reason": ...}`` when numpy is
    missing or the engine is disabled/ineligible, so snapshots stay
    writable everywhere.
    """
    from repro.sim import ensemble, timing_ensemble

    base = {"lanes": lanes, "scale": scale}
    if not ensemble.numpy_available():
        return {"available": False, "reason": "numpy not installed", **base}
    config = inorder_machine()
    if not timing_ensemble.timing_ensemble_eligible(config):
        reason = (
            "REPRO_TIMING_ENSEMBLE=0" if not timing_ensemble_enabled()
            else "sanitizer or fault-injection hooks are active"
        )
        return {"available": False, "reason": reason, **base}

    if workloads is None:
        workloads = list(DEFAULT_TIMING_WORKLOADS)
    params = _select_workloads(scale, workloads)

    rows: Dict[str, Any] = {}
    total_insts = 0
    total_scalar = 0.0
    total_vector = 0.0
    for name, kwargs in params.items():
        programs = [
            WORKLOAD_FACTORIES[name](
                **kwargs, seed=300 + lane, name=f"{name}@lane{lane}"
            )
            for lane in range(lanes)
        ]
        started = time.perf_counter()
        scalar_results = [
            Machine(config).run(program) for program in programs
        ]
        scalar_wall = round(time.perf_counter() - started, 4)
        insts = sum(result.instructions for result in scalar_results)

        started = time.perf_counter()
        outcomes = timing_ensemble.run_timing_ensemble(config, programs)
        vector_wall = round(time.perf_counter() - started, 4)
        for outcome, scalar in zip(outcomes, scalar_results):
            # pragma-free differential guard: equality covers cycles,
            # architectural state and the full extra payload
            # (wall_seconds is excluded from CoreResult equality).
            if outcome.result != scalar:
                raise ReproError(
                    "timing ensemble diverged from the scalar in-order "
                    f"core on {scalar.program_name!r}"
                )

        total_insts += insts
        total_scalar += scalar_wall
        total_vector += vector_wall
        rows[name] = {
            "instructions": insts,
            "scalar_wall_seconds": scalar_wall,
            "ensemble_wall_seconds": vector_wall,
            "speedup": (
                round(scalar_wall / vector_wall, 4) if vector_wall > 0
                else None
            ),
        }

    return {
        "available": True,
        "backend": "numpy",
        "machine": config.name,
        **base,
        "workloads": rows,
        "aggregate": {
            "instructions": total_insts,
            "scalar_insts_per_host_second": (
                round(total_insts / total_scalar) if total_scalar > 0
                else None
            ),
            "ensemble_insts_per_host_second": (
                round(total_insts / total_vector) if total_vector > 0
                else None
            ),
            "speedup": (
                round(total_scalar / total_vector, 4) if total_vector > 0
                else None
            ),
        },
    }


def load_baseline(path: Optional[pathlib.Path] = None
                  ) -> Optional[Dict[str, Any]]:
    """The committed baseline snapshot, or None when absent/corrupt."""
    if path is None:
        path = perf_baseline_path()
    try:
        loaded = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    return loaded if isinstance(loaded, dict) else None


def render(payload: Dict[str, Any]) -> str:
    """Human-readable summary of one snapshot."""
    lines = [f"perf snapshot [{payload['tag']}]",
             f"{'machine':<16s} {'insts/host-sec':>14s} "
             f"{'skip%':>7s} {'wall s':>8s}"]
    for name, agg in sorted(payload["aggregate"]["machines"].items()):
        rate = agg["insts_per_host_second"]
        lines.append(
            f"{name:<16s} {rate if rate is not None else '-':>14} "
            f"{agg['skip_fraction'] * 100:>6.1f}% "
            f"{agg['wall_seconds']:>8.2f}"
        )
    total = payload["aggregate"]["total"]
    lines.append(
        f"{'TOTAL':<16s} "
        f"{total['insts_per_host_second'] or '-':>14} {'':>7s} "
        f"{total['wall_seconds']:>8.2f}"
    )
    speedup = payload.get("speedup_vs_baseline")
    if speedup and speedup.get("aggregate"):
        lines.append(
            f"speedup vs baseline [{speedup.get('baseline_tag')}]: "
            f"{speedup['aggregate']:.2f}x aggregate"
        )
    ens = payload.get("ensemble")
    if isinstance(ens, dict):
        if ens.get("available"):
            agg = ens["aggregate"]
            rate = agg["ensemble_insts_per_host_second"]
            lines.append(
                f"ensemble N={ens['lanes']} ({ens['scale']}): "
                f"{rate if rate is not None else '-'} insts/host-sec, "
                f"{agg['speedup']:.2f}x vs scalar"
            )
        else:
            lines.append(
                f"ensemble: unavailable ({ens.get('reason', 'unknown')})"
            )
    tens = payload.get("timing_ensemble")
    if isinstance(tens, dict):
        if tens.get("available"):
            agg = tens["aggregate"]
            rate = agg["ensemble_insts_per_host_second"]
            lines.append(
                f"timing ensemble N={tens['lanes']} ({tens['scale']}): "
                f"{rate if rate is not None else '-'} insts/host-sec, "
                f"{agg['speedup']:.2f}x vs scalar"
            )
        else:
            lines.append(
                f"timing ensemble: unavailable "
                f"({tens.get('reason', 'unknown')})"
            )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# The --perf-smoke regression gate.
# ---------------------------------------------------------------------------


def run_perf_smoke(tolerance: float = DEFAULT_PERF_TOLERANCE,
                   baseline_path: Optional[pathlib.Path] = None,
                   ensemble_min_speedup: float = DEFAULT_ENSEMBLE_MIN_SPEEDUP,
                   timing_min_speedup: float = (
                       DEFAULT_TIMING_ENSEMBLE_MIN_SPEEDUP)
                   ) -> int:
    """Measure simulator throughput (tiny scale) against the committed
    ``BENCH_smoke.json`` baseline.

    The fresh snapshot always replaces the file — ``git diff`` shows the
    trajectory, and committing it records a new baseline.  The previous
    (committed) numbers are read *before* the overwrite; the written
    snapshot embeds ``speedup_vs_baseline`` against them, and the run
    fails if aggregate insts/host-second dropped by more than
    ``tolerance`` (a fraction: 0.30 fails on a >30% regression).

    When the snapshot carries an available ensemble section, its
    aggregate ensemble-vs-scalar speedup is additionally gated against
    ``ensemble_min_speedup`` (a loose absolute floor, not a baseline
    ratio — the scalar reference is re-measured in the same run, which
    cancels out host speed).  The timing-ensemble section is gated the
    same way against ``timing_min_speedup``.
    """
    os.environ["REPRO_BENCH_SMOKE"] = "1"
    if baseline_path is None:
        baseline_path = perf_baseline_path()

    baseline = load_baseline(baseline_path)
    payload = measure(tag="smoke")
    speedup = speedup_vs_baseline(payload, baseline)
    if speedup is not None:
        payload["speedup_vs_baseline"] = speedup
    print(render(payload))
    write_report(payload, baseline_path)
    print(f"wrote {baseline_path}")

    status = 0
    ens = payload.get("ensemble") or {}
    if ens.get("available"):
        ens_speedup = ens["aggregate"]["speedup"]
        if ens_speedup is not None and ens_speedup < ensemble_min_speedup:
            print(f"FAIL: ensemble aggregate speedup {ens_speedup:.2f}x "
                  f"is below the {ensemble_min_speedup:.2f}x floor",
                  file=sys.stderr)
            status = 1
    tens = payload.get("timing_ensemble") or {}
    if tens.get("available"):
        t_speedup = tens["aggregate"]["speedup"]
        if t_speedup is not None and t_speedup < timing_min_speedup:
            print(f"FAIL: timing-ensemble aggregate speedup "
                  f"{t_speedup:.2f}x is below the "
                  f"{timing_min_speedup:.2f}x floor", file=sys.stderr)
            status = 1

    if baseline is None:
        print("no committed baseline found; snapshot recorded, "
              "nothing to compare")
        return status
    if speedup is None or speedup["aggregate"] is None:
        print("committed baseline is unreadable; snapshot recorded")
        return status
    ratio = speedup["aggregate"]
    old = baseline["aggregate"]["total"]["insts_per_host_second"]
    new = payload["aggregate"]["total"]["insts_per_host_second"]
    print(f"throughput vs committed baseline: {ratio:.2f}x "
          f"({old} -> {new} insts/host-sec)")
    if ratio < 1.0 - tolerance:
        print(f"FAIL: simulator throughput regressed more than "
              f"{tolerance:.0%} vs the committed baseline",
              file=sys.stderr)
        return 1
    return status
