"""E9 — where the cycles go: execution-mode breakdown per workload.

Miss-bound workloads should live in EXECUTE_AHEAD/SST; compute-bound
ones in NORMAL; resource-starved or chain-bound ones show SCOUT and
REPLAY_ONLY time.
"""

from repro.config import sst_machine
from repro.core import ExecMode
from repro.experiments.spec import expect, experiment
from repro.stats.report import Table

MODES = [ExecMode.NORMAL, ExecMode.EXECUTE_AHEAD, ExecMode.SST,
         ExecMode.REPLAY_ONLY, ExecMode.SCOUT]


@experiment(
    eid="e9", slug="mode_breakdown",
    title="Fraction of cycles per execution mode on the SST core",
    tags=("sst", "stats"),
    expectations=(
        expect("db_lives_in_speculation",
               "the miss-bound DB probe spends most cycles speculating",
               lambda m: m["fractions"]["db-hashjoin"]
               [ExecMode.EXECUTE_AHEAD.value]
               + m["fractions"]["db-hashjoin"][ExecMode.SST.value] > 0.5),
        expect("matmul_stays_normal",
               "the cache-resident kernel stays mostly normal",
               lambda m: m["fractions"]["compute-matmul"]
               [ExecMode.NORMAL.value] > 0.5),
    ),
)
def build(env):
    table = Table(
        "E9: fraction of cycles per execution mode (SST core)",
        ["workload"] + [mode.value for mode in MODES],
    )
    fractions = {}
    for program in env.full_suite():
        result = env.run(sst_machine(env.hierarchy()), program)
        mode_cycles = result.extra["sst"].mode_cycles
        total = max(sum(mode_cycles.values()), 1)
        shares = {
            mode.value: mode_cycles[mode.value] / total for mode in MODES
        }
        fractions[program.name] = shares
        table.add_row(
            program.name,
            *(f"{shares[mode.value]:.2f}" for mode in MODES),
        )
    return table, {"fractions": fractions}
