"""E19 — speculative-leak taint analysis on Spectre-style gadgets.

Not a performance experiment: a security characterization of the SST
pipeline itself.  Execute-ahead squashes architectural effects on
rollback, but cache fills issued by the squashed strand survive — the
transmission channel of bounds-check-bypass attacks.  This experiment
runs the three seeded gadget workloads (:mod:`repro.workloads.\
spec_leak`) under the static taint pass and the dynamic tracker on an
SST machine and a scout-only machine, and checks the containment
story end to end:

* the classic tainted-address *load* gadget is flagged statically and
  observed dynamically on both machines,
* the value-flow-only variant is clean everywhere (the store buffer
  contains transient stores entirely),
* the tainted-address *store* variant is a static-only verdict on SST
  (stores park in the store buffer, no fill) but leaks under scout,
  whose stores prefetch their line for ownership,
* architectural state stays golden-identical in every run — the leak
  is purely microarchitectural.

Runs :func:`~repro.sim.runner.simulate` directly (not ``env.run``):
the taint report rides in ``result.extra`` and must come from a live
run with ``REPRO_TAINT=1``, not from the result cache.
"""

import os

from repro.analysis import analyze_taint
from repro.config import CoreKind, MachineConfig, SSTConfig
from repro.experiments.spec import expect, experiment
from repro.sim.runner import simulate
from repro.stats.report import Table
from repro.workloads.spec_leak import ANALYSIS_WORKLOADS


def _machines(env):
    return (
        ("sst", MachineConfig(
            core_kind=CoreKind.SST, hierarchy=env.hierarchy(),
            sst=SSTConfig(), name="sst")),
        ("scout", MachineConfig(
            core_kind=CoreKind.SST, hierarchy=env.hierarchy(),
            sst=SSTConfig(checkpoints=1, scout_only=True), name="scout")),
    )


@experiment(
    eid="e19", slug="spec_leak",
    title="Speculative-leak taint analysis on bounds-check-bypass gadgets",
    tags=("sst", "scout", "security", "analysis"),
    expectations=(
        expect("gadget_flagged_statically",
               "the tainted-address load gadget is found by the static "
               "pass alone",
               lambda m: m["static"]["spec-leak-gadget"]["gadgets"] >= 1),
        expect("gadget_observed_on_sst",
               "the SST ahead strand actually fills the secret-indexed "
               "line before the squash",
               lambda m: m["dynamic"]["spec-leak-gadget"]["sst"]["fills"]
               >= 1),
        expect("scout_observes_gadget",
               "prefetch-only scouting leaks through the same gadget",
               lambda m: m["dynamic"]["spec-leak-gadget"]["scout"]["fills"]
               >= 1),
        expect("safe_variant_is_clean",
               "pure value flow is contained: no static gadgets, no "
               "dynamic fills anywhere",
               lambda m: m["static"]["spec-leak-safe"]["gadgets"] == 0
               and all(row["fills"] == 0
                       for row in m["dynamic"]["spec-leak-safe"].values())),
        expect("store_gadget_contained_on_sst",
               "a tainted-address store is statically a gadget but the "
               "store buffer contains it on the SST machine",
               lambda m: m["static"]["spec-leak-store"]["gadgets"] >= 1
               and m["dynamic"]["spec-leak-store"]["sst"]["fills"] == 0),
        expect("store_gadget_leaks_under_scout",
               "scout stores prefetch for ownership, so the same store "
               "gadget does fill under scout",
               lambda m: m["dynamic"]["spec-leak-store"]["scout"]["fills"]
               >= 1),
        expect("static_dynamic_agree",
               "every dynamic observation is inside the static verdict "
               "(the soundness contract)",
               lambda m: all(row["agreement"]
                             for rows in m["dynamic"].values()
                             for row in rows.values())),
    ),
)
def build(env):
    table = Table(
        "E19: speculative-leak taint analysis",
        ["workload", "machine", "static gadgets", "tainted fills",
         "observed pcs", "static-only pcs", "agree"],
    )
    static = {}
    dynamic = {}
    saved = os.environ.get("REPRO_TAINT")
    os.environ["REPRO_TAINT"] = "1"
    try:
        for name, factory in sorted(ANALYSIS_WORKLOADS.items()):
            program = factory()
            report = analyze_taint(program)
            static[name] = {
                "gadgets": len(report.gadgets),
                "gadget_pcs": sorted(report.gadget_pcs),
                "transient_pcs": len(report.transient_pcs),
            }
            dynamic[name] = {}
            for mname, machine in _machines(env):
                # verify=True proves containment: architectural state
                # matches the golden interpreter despite the fills.
                result = simulate(machine, program, verify=True)
                taint = result.extra["taint"]
                dynamic[name][mname] = {
                    "fills": taint["transient_tainted_fills"],
                    "observed_pcs": taint["observed_gadget_pcs"],
                    "static_only_pcs": taint["static_only_pcs"],
                    "agreement": taint["agreement"],
                }
                table.add_row(
                    name, mname, len(report.gadgets),
                    taint["transient_tainted_fills"],
                    ",".join(map(str, taint["observed_gadget_pcs"])) or "-",
                    ",".join(map(str, taint["static_only_pcs"])) or "-",
                    "yes" if taint["agreement"] else "NO",
                )
    finally:
        if saved is None:
            os.environ.pop("REPRO_TAINT", None)
        else:
            os.environ["REPRO_TAINT"] = saved
    return table, {"static": static, "dynamic": dynamic}
