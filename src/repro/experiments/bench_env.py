"""The benchmark environment: machines, suites, scaling, execution.

This is the library home of what ``benchmarks/common.py`` used to
provide as module-level globals — the bench-scale memory hierarchy,
the paper's machine points, smoke-mode workload shrinking, and the
cached/parallel execution helpers — packaged as :class:`BenchEnv` so
the smoke flag, cache, and instruction budget are explicit per-run
state instead of import-time environment reads.

The *bench hierarchy* is deliberately smaller than a real ROCK-era
memory system so the "bench"-scale workloads (hundreds of KB of working
set) exercise the same regime the paper's commercial workloads did on
multi-MB caches: frequent L2 misses with room for memory-level
parallelism.  Absolute IPCs are therefore not comparable to silicon;
relative orderings are the reproduction target.

Environment knobs (defaults only — constructor arguments win):

* ``REPRO_JOBS`` — worker processes for matrix/suite runs (default 1).
* ``REPRO_TASK_TIMEOUT`` / ``REPRO_TASK_RETRIES`` — per-point deadline
  (seconds) and transient-failure retry budget for those runs (see
  :mod:`repro.sim.resilience`).
* ``REPRO_CACHE`` / ``REPRO_CACHE_DIR`` — content-addressed result
  cache gate and location (default on, ``benchmarks/.simcache/``).
* ``REPRO_BENCH_MAX_INSTRUCTIONS`` — per-run instruction budget
  (runaway guard) override; default 50M.
* ``REPRO_BENCH_SMOKE`` — set to ``1`` to shrink every workload by
  :data:`SMOKE_DIVISOR` and use the tiny suite scale, so the full
  18-experiment suite finishes in seconds (CI smoke mode; relative
  orderings at this scale are indicative only).

Every simulation routed through the environment is also *recorded*:
``env.points`` accumulates one JSON-ready row per point (machine,
program, config fingerprint, cycles, instructions, IPC, perf counters,
wall seconds), which is how the engine assembles the machine-readable
result documents.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional

from repro.baselines.core_base import (
    CoreResult,
    DEFAULT_MAX_INSTRUCTIONS,
)
from repro.cmp.multicore import Multicore, MulticoreResult
from repro.config import (
    CacheConfig,
    DRAMConfig,
    HierarchyConfig,
    MachineConfig,
    ea_machine,
    env_flag,
    env_int,
    inorder_machine,
    ooo_machine,
    scout_machine,
    sst_machine,
)
from repro.isa.program import Program
from repro.regress.firewall import (
    BaselineFirewall,
    firewall_from_env,
    multicore_key,
)
from repro.sim.cache import ResultCache, cache_from_env, result_key
from repro.sim.parallel import ParallelRunner, SimTask
from repro.workloads import commercial_suite, compute_suite, full_suite

DEFAULT_BENCH_MAX_INSTRUCTIONS = 50_000_000

# Smoke mode shrinks hardcoded workload parameters by this divisor.
# A power of two preserves power-of-two-ness, which some generators
# (hash tables) require of their sizes.
SMOKE_DIVISOR = 16

_UNSET = object()


def smoke_from_env() -> bool:
    """The ``REPRO_BENCH_SMOKE`` gate."""
    return env_flag("REPRO_BENCH_SMOKE", default=False)


def max_instructions_from_env() -> int:
    """The ``REPRO_BENCH_MAX_INSTRUCTIONS`` budget (default 50M)."""
    return env_int(
        "REPRO_BENCH_MAX_INSTRUCTIONS", DEFAULT_BENCH_MAX_INSTRUCTIONS
    )


class BenchEnv:
    """One experiment run's machines, workloads, and execution engine."""

    def __init__(self, *, smoke: Optional[bool] = None,
                 max_instructions: Optional[int] = None,
                 cache: Any = _UNSET,
                 jobs: Optional[int] = None,
                 timeout: Optional[float] = None,
                 retries: Optional[int] = None,
                 firewall: Any = _UNSET):
        self.smoke = smoke_from_env() if smoke is None else bool(smoke)
        self.max_instructions = (
            max_instructions_from_env() if max_instructions is None
            else int(max_instructions)
        )
        self.cache: Optional[ResultCache] = (
            cache_from_env() if cache is _UNSET else cache
        )
        self.jobs = jobs
        # Per-task deadline and transient-failure retry budget, threaded
        # through to every ParallelRunner this environment builds (None
        # defers to REPRO_TASK_TIMEOUT / REPRO_TASK_RETRIES).
        self.timeout = timeout
        self.retries = retries
        # The behavioral baseline firewall (repro.regress): every point
        # recorded below — including cache hits — is captured into or
        # verified against the governed baseline store.  Defaults to
        # the REPRO_BASELINE gate (None when unset: zero overhead).
        self.firewall: Optional[BaselineFirewall] = (
            firewall_from_env() if firewall is _UNSET else firewall
        )
        # One JSON-ready record per simulation point routed through
        # this environment (see _record / record_multicore).
        self.points: List[Dict[str, Any]] = []

    # -- scaling -------------------------------------------------------

    @property
    def scale(self) -> str:
        """Workload suite scale: ``tiny`` in smoke mode, else ``bench``."""
        return "tiny" if self.smoke else "bench"

    def scaled(self, value: int, floor: int = 1) -> int:
        """Shrink a hardcoded workload parameter in smoke mode."""
        if not self.smoke:
            return value
        return max(floor, value // SMOKE_DIVISOR)

    # -- workload suites ----------------------------------------------

    def full_suite(self) -> List[Program]:
        return full_suite(self.scale)

    def commercial_suite(self) -> List[Program]:
        return commercial_suite(self.scale)

    def compute_suite(self) -> List[Program]:
        return compute_suite(self.scale)

    # -- machine points -----------------------------------------------

    def hierarchy(self, latency: int = 300, mshr: int = 16,
                  l2_mshr: int = 32) -> HierarchyConfig:
        """The bench-scale memory hierarchy (see module docstring)."""
        return HierarchyConfig(
            l1d=CacheConfig(size_bytes=16 * 1024, assoc=4, hit_latency=2,
                            mshr_entries=mshr),
            l1i=CacheConfig(size_bytes=16 * 1024, assoc=4, hit_latency=1,
                            mshr_entries=4),
            l2=CacheConfig(size_bytes=128 * 1024, assoc=8, hit_latency=20,
                           mshr_entries=l2_mshr),
            dram=DRAMConfig(latency=latency, min_interval=2),
        )

    def paper_machines(
            self,
            hierarchy: Optional[HierarchyConfig] = None
    ) -> List[MachineConfig]:
        """The four design points of the paper's narrative."""
        hierarchy = hierarchy or self.hierarchy()
        return [
            inorder_machine(hierarchy),
            scout_machine(hierarchy),
            ea_machine(hierarchy),
            sst_machine(hierarchy),
        ]

    def ooo_comparators(
            self,
            hierarchy: Optional[HierarchyConfig] = None
    ) -> List[MachineConfig]:
        """The "larger and higher-powered" out-of-order design points."""
        hierarchy = hierarchy or self.hierarchy()
        return [
            ooo_machine(hierarchy, rob_size=32),
            ooo_machine(hierarchy, rob_size=64),
            ooo_machine(hierarchy, rob_size=128),
        ]

    # -- execution -----------------------------------------------------

    def _runner(self, jobs: Optional[int]) -> ParallelRunner:
        return ParallelRunner(jobs, cache=self.cache,
                              timeout=self.timeout, retries=self.retries)

    def run(self, config: MachineConfig, program: Program) -> CoreResult:
        """One benchmark point, through the result cache."""
        runner = self._runner(1)
        task = SimTask(config=config, program=program,
                       max_instructions=self.max_instructions)
        result = runner.run([task])[0]
        assert result is not None
        self._record(task, result)
        return result

    def run_many(self, tasks: List[SimTask]) -> List[CoreResult]:
        """A batch of points through the pool (``REPRO_JOBS``/``jobs``)
        + cache, results in submission order."""
        runner = self._runner(self.jobs)
        results = runner.run(tasks)
        for task, result in zip(tasks, results):
            if result is not None:
                self._record(task, result)
        return [result for result in results if result is not None]

    def run_matrix(
            self, programs: List[Program], configs: List[MachineConfig]
    ) -> Dict[str, Dict[str, CoreResult]]:
        """program name -> machine name -> result.

        The full matrix is one :class:`ParallelRunner` batch: with jobs
        set, points run across worker processes; cached points are
        restored without simulating at all.
        """
        tasks = [
            SimTask(config=config, program=program,
                    max_instructions=self.max_instructions)
            for program in programs
            for config in configs
        ]
        results = self.run_many(tasks)
        matrix: Dict[str, Dict[str, CoreResult]] = {
            program.name: {} for program in programs
        }
        for task, result in zip(tasks, results):
            matrix[task.program.name][task.config.name] = result
        return matrix

    def run_ensemble(self, programs: List[Program], *,
                     max_steps: Optional[int] = None,
                     backend: Optional[str] = None,
                     on_error: str = "raise"
                     ) -> List[Optional[CoreResult]]:
        """A batch of shape-compatible instances of one workload (the
        ``e*`` seed loops' shape) through the vectorized ensemble
        backend, with this environment's cache and recording.

        Results are *functional* — final state and interpreter stats,
        ``cycles`` 0 — keyed per lane program so warm lanes restore
        without simulating.  Returns one result per lane in lane order
        (``None`` holes under ``on_error="skip"``).
        """
        from repro.isa.interpreter import DEFAULT_MAX_STEPS
        from repro.sim.ensemble import EnsembleTask

        steps = DEFAULT_MAX_STEPS if max_steps is None else max_steps
        runner = self._runner(self.jobs)
        results = runner.run_ensemble(
            EnsembleTask(programs=tuple(programs), max_steps=steps),
            backend=backend, on_error=on_error,
        )
        for program, result in zip(programs, results):
            if result is not None:
                self._record_ensemble(program, result, steps)
        return results

    def run_multicore(self, multicore: Multicore, *,
                      machine: str, program: str) -> MulticoreResult:
        """Run an interleaved multiprogrammed point and record its
        aggregate (multicore runs are not content-cacheable: the cores
        share one hierarchy, so a point is not a pure single-config
        function — but they *are* deterministic, so each gets a
        baseline semantic ID over its full input set)."""
        result = multicore.run()
        self.points.append({
            "machine": machine,
            "program": program,
            "key": multicore_key(multicore, DEFAULT_MAX_INSTRUCTIONS),
            "cycles": result.makespan,
            "instructions": result.total_instructions,
            "ipc": round(result.aggregate_ipc, 6),
            "wall_seconds": None,
            "perf": {"idle_quanta_skipped": result.idle_quanta_skipped},
        })
        if self.firewall is not None:
            self.firewall.observe_multicore(
                multicore, result, machine=machine, program=program,
                max_instructions=DEFAULT_MAX_INSTRUCTIONS,
            )
        return result

    # -- recording -----------------------------------------------------

    def _record(self, task: SimTask, result: CoreResult) -> None:
        perf = result.extra.get("perf")
        self.points.append({
            "machine": task.config.name,
            "program": task.program.name,
            # The content hash addressing this point in the result
            # cache: a fingerprint of (config, program, budget).
            "key": result_key(task.config, task.program,
                              task.max_instructions),
            "cycles": result.cycles,
            "instructions": result.instructions,
            "ipc": round(result.ipc, 6),
            "wall_seconds": round(result.wall_seconds, 6),
            "perf": perf.as_dict() if perf is not None else None,
        })
        if self.firewall is not None:
            self.firewall.observe_point(
                task.config, task.program, task.max_instructions, result
            )

    def _record_ensemble(self, program: Program, result: CoreResult,
                         max_steps: int) -> None:
        from repro.sim.ensemble import ensemble_key

        self.points.append({
            "machine": "ensemble",
            "program": program.name,
            "key": ensemble_key(program, max_steps),
            "cycles": None,  # functional result: no timing model ran
            "instructions": result.instructions,
            "ipc": None,
            "wall_seconds": round(result.wall_seconds, 6),
            "perf": None,
        })
        if self.firewall is not None:
            self.firewall.observe_ensemble(program, max_steps, result)
