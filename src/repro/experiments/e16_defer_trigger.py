"""E16 — ablation: which miss level opens an episode.

Defer on any L1 miss (aggressive: even an L2 hit parks the slice) vs
defer only on DRAM-bound misses (conservative: L2 hits stall-on-use).
Expected: L1-triggered deferral wins when L2 hit latency is large
enough to be worth hiding, and the two converge on DRAM-dominated
codes.
"""

from repro.config import CoreKind, DeferTrigger, MachineConfig, SSTConfig
from repro.experiments.spec import expect, experiment
from repro.stats.report import Table
from repro.workloads import array_stream, hash_join, matrix_multiply


def _machine(env, trigger: DeferTrigger) -> MachineConfig:
    return MachineConfig(
        core_kind=CoreKind.SST,
        hierarchy=env.hierarchy(),
        sst=SSTConfig(defer_trigger=trigger),
        name=f"sst-{trigger.value}",
    )


@experiment(
    eid="e16", slug="defer_trigger",
    title="Ablation: defer trigger level (L1 miss vs DRAM-bound miss)",
    tags=("sst", "memory", "ablation"),
    expectations=(
        expect("l1_trigger_hides_l2_hits",
               "an L2-resident working set is where the L1 trigger "
               "earns its keep",
               lambda m: m["ratios"]["db-hashjoin-l2"] > 1.02),
        expect("triggers_converge_on_dram",
               "on the DRAM-dominated version the triggers converge",
               lambda m: 0.85 < m["ratios"]["db-hashjoin"] < 1.25),
    ),
)
def build(env):
    programs = [
        hash_join(table_words=env.scaled(1 << 16),
                  probes=env.scaled(3000)),  # DRAM-dominated
        hash_join(table_words=env.scaled(1 << 13),
                  probes=env.scaled(3000),
                  name="db-hashjoin-l2"),  # 64KB: misses L1, lives in L2
        array_stream(words=env.scaled(1 << 15)),
        matrix_multiply(n=env.scaled(20, floor=8)),
    ]
    table = Table(
        "E16: defer trigger level (L1 miss vs DRAM-bound miss)",
        ["workload", "IPC defer@L1", "IPC defer@L2miss", "ratio",
         "episodes@L1", "episodes@L2miss"],
    )
    ratios = {}
    for program in programs:
        aggressive = env.run(_machine(env, DeferTrigger.L1_MISS), program)
        lazy = env.run(_machine(env, DeferTrigger.L2_MISS), program)
        ratio = aggressive.ipc / max(lazy.ipc, 1e-9)
        ratios[program.name] = ratio
        table.add_row(
            program.name,
            round(aggressive.ipc, 3),
            round(lazy.ipc, 3),
            f"{ratio:.2f}x",
            aggressive.extra["sst"].episodes,
            lazy.extra["sst"].episodes,
        )
    return table, {"ratios": ratios}
