"""E15 — TLB reach and defer-on-TLB-miss.

Random probes over a table far beyond TLB reach make the table walk a
first-class latency event.  Sweep TLB entries and toggle whether a
walk opens a speculative episode: with the trigger on, walks are
overlapped like cache misses; with it off they serialise.
"""

import dataclasses

from repro.config import (
    CoreKind,
    MachineConfig,
    SSTConfig,
    TLBConfig,
    inorder_machine,
)
from repro.experiments.spec import expect, experiment
from repro.stats.report import Table
from repro.workloads import hash_join

TLB_ENTRIES = (16, 64, 256)


def _hierarchy(env, entries: int):
    return dataclasses.replace(
        env.hierarchy(),
        tlb=TLBConfig(entries=entries, page_bytes=8192, walk_latency=120),
    )


def _sst(env, entries: int, defer_on_tlb: bool) -> MachineConfig:
    suffix = "tlbdefer" if defer_on_tlb else "notlbdefer"
    return MachineConfig(
        core_kind=CoreKind.SST,
        hierarchy=_hierarchy(env, entries),
        sst=SSTConfig(defer_on_tlb_miss=defer_on_tlb),
        name=f"sst-{entries}e-{suffix}",
    )


def _tlb_miss_rate(env, entries: int, program) -> float:
    """Measure the TLB miss rate with a dedicated instrumented run."""
    from repro.sim.machine import build_core, build_hierarchy

    config = inorder_machine(_hierarchy(env, entries))
    hierarchy = build_hierarchy(config.hierarchy)
    core = build_core(config, program, hierarchy)
    core.run(max_instructions=env.max_instructions)
    return hierarchy.dtlb.stats.miss_rate


@experiment(
    eid="e15", slug="tlb",
    title="TLB reach and defer-on-TLB-miss",
    tags=("memory", "ablation"),
    expectations=(
        expect("walk_deferral_pays_when_starved",
               "deferring on walks pays when walks are frequent",
               lambda m: m["defer_gains"][0] > 1.0),
        expect("walk_deferral_fades_with_reach",
               "walk deferral matters less once the TLB covers the "
               "working set",
               lambda m: m["defer_gains"][-1]
               <= m["defer_gains"][0] + 0.1),
    ),
)
def build(env):
    program = hash_join(table_words=env.scaled(1 << 16),
                        probes=env.scaled(3000))
    table = Table(
        "E15: TLB reach and defer-on-TLB-miss (db-hashjoin)",
        ["tlb entries", "tlb miss rate", "inorder IPC",
         "sst IPC (defer on walk)", "sst IPC (no walk defer)"],
    )
    gains = []
    for entries in TLB_ENTRIES:
        base = env.run(inorder_machine(_hierarchy(env, entries)), program)
        with_defer = env.run(_sst(env, entries, True), program)
        without = env.run(_sst(env, entries, False), program)
        gains.append(with_defer.ipc / max(without.ipc, 1e-9))
        table.add_row(
            entries,
            f"{_tlb_miss_rate(env, entries, program):.0%}",
            round(base.ipc, 3),
            round(with_defer.ipc, 3),
            round(without.ipc, 3),
        )
    return table, {"defer_gains": gains,
                   "tlb_entries": list(TLB_ENTRIES)}
