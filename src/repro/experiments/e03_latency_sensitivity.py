"""E3 — memory-latency sensitivity.

Sweep DRAM latency 100..800 cycles: the in-order core degrades almost
linearly with latency while SST hides a growing fraction of it, so
SST's speedup must *grow* with latency.
"""

from repro.config import inorder_machine, sst_machine
from repro.experiments.spec import expect, experiment
from repro.stats.report import Table
from repro.workloads import hash_join, pointer_chase

LATENCIES = (100, 200, 400, 800)


@experiment(
    eid="e3", slug="latency_sensitivity",
    title="SST speedup over in-order vs DRAM latency",
    tags=("memory", "sweep"),
    expectations=(
        expect("benefit_grows_with_wall",
               "independent-miss workloads gain more as latency grows",
               lambda m: m["curves"]["db-hashjoin"][-1]
               > m["curves"]["db-hashjoin"][0]),
        expect("chain_bound_flat",
               "dependent chains bound MLP, so the chase speedup "
               "stays roughly flat",
               lambda m: 0.6 * m["curves"]["oltp-chase"][0]
               < m["curves"]["oltp-chase"][-1]
               < 1.6 * m["curves"]["oltp-chase"][0]),
    ),
)
def build(env):
    programs = [
        hash_join(table_words=env.scaled(1 << 16),
                  probes=env.scaled(3000)),
        pointer_chase(chains=4, nodes_per_chain=env.scaled(2048),
                      hops=env.scaled(2500)),
    ]
    table = Table(
        "E3: SST speedup over in-order vs DRAM latency",
        ["workload"] + [f"{latency} cyc" for latency in LATENCIES],
    )
    curves = {}
    for program in programs:
        row = [program.name]
        curve = []
        for latency in LATENCIES:
            hierarchy = env.hierarchy(latency=latency)
            base = env.run(inorder_machine(hierarchy), program)
            fast = env.run(sst_machine(hierarchy), program)
            speedup = fast.speedup_over(base)
            curve.append(speedup)
            row.append(f"{speedup:.2f}x")
        curves[program.name] = curve
        table.add_row(*row)
    return table, {"curves": curves, "latencies": list(LATENCIES)}
