"""E10 — ablation: loads bypassing unresolved stores.

The scatter-update workload stores through a *missing* pointer, so the
store's address is unknown during speculation.  Conservative policy
defers every younger load behind it; bypass-and-check speculates and
pays a memory-order rollback on the rare true alias.  Expected: bypass
clearly wins when aliases are rare, and its advantage shrinks (but the
machine stays correct) as the alias rate rises.
"""

from repro.config import CoreKind, MachineConfig, SSTConfig
from repro.core import FailCause
from repro.experiments.spec import expect, experiment
from repro.stats.report import Table
from repro.workloads import scatter_update


def _machine(env, bypass: bool) -> MachineConfig:
    return MachineConfig(
        core_kind=CoreKind.SST,
        hierarchy=env.hierarchy(),
        sst=SSTConfig(bypass_unresolved_stores=bypass),
        name="sst-bypass" if bypass else "sst-conservative",
    )


@experiment(
    eid="e10", slug="membypass",
    title="Ablation: loads bypassing unresolved stores",
    tags=("sst", "memory", "ablation"),
    expectations=(
        expect("clean_bypass_wins",
               "alias-free: bypass wins outright",
               lambda m: m["gains"]["db-scatter-clean"] > 1.05),
        expect("clean_never_fails",
               "alias-free: the order checker never fires",
               lambda m: m["order_fails"]["db-scatter-clean"] == 0),
        expect("aliased_checker_fires",
               "with real aliases the checker fires",
               lambda m: m["order_fails"]["db-scatter-aliased"] > 0),
        expect("aliased_bypass_viable",
               "bypass stays viable under aliasing",
               lambda m: m["gains"]["db-scatter-aliased"] > 0.8),
    ),
)
def build(env):
    programs = [
        scatter_update(table_words=env.scaled(1 << 14),
                       updates=env.scaled(2000),
                       alias_per_1024=0, name="db-scatter-clean"),
        scatter_update(table_words=env.scaled(1 << 14),
                       updates=env.scaled(2000),
                       alias_per_1024=64, name="db-scatter-aliased"),
    ]
    table = Table(
        "E10: load bypass of unresolved stores (ablation)",
        ["workload", "conservative IPC", "bypass IPC", "bypass gain",
         "order fails", "order defers (conservative)"],
    )
    gains = {}
    fails = {}
    for program in programs:
        conservative = env.run(_machine(env, False), program)
        bypass = env.run(_machine(env, True), program)
        gain = bypass.speedup_over(conservative)
        gains[program.name] = gain
        fails[program.name] = bypass.extra["sst"].fails[
            FailCause.MEMORY_ORDER_VIOLATION
        ]
        table.add_row(
            program.name,
            round(conservative.ipc, 3),
            round(bypass.ipc, 3),
            f"{gain:.2f}x",
            fails[program.name],
            conservative.extra["sst"].order_deferred,
        )
    return table, {"gains": gains, "order_fails": fails}
