"""E7 — speculation outcome table.

Per workload: episodes, commits (full + region), failures by cause,
scout sessions, and discarded work.  Expected: the commercial mixes
mostly commit; branch-heavy codes fail more and pointer codes lean on
scout when resources starve.
"""

from repro.config import sst_machine
from repro.core import FailCause
from repro.experiments.spec import expect, experiment
from repro.stats.report import Table


@experiment(
    eid="e7", slug="outcomes",
    title="Speculation outcomes per workload on the SST core",
    tags=("sst", "stats"),
    expectations=(
        expect("branchy_fails_most",
               "branch-fed-by-miss workloads fail most",
               lambda m: m["outcomes"]["int-branchy"]["branch_fails"]
               > m["outcomes"]["fp-stream"]["branch_fails"]),
        expect("db_mostly_commits",
               "the DB probe loop overwhelmingly commits",
               lambda m: m["outcomes"]["db-hashjoin"]["full_commits"]
               + m["outcomes"]["db-hashjoin"]["region_commits"]
               > 10 * m["outcomes"]["db-hashjoin"]["total_fails"]),
    ),
)
def build(env):
    table = Table(
        "E7: speculation outcomes (SST core)",
        ["workload", "episodes", "full commits", "region commits",
         "branch fails", "jump fails", "order fails", "scouts",
         "discarded insts"],
    )
    outcomes = {}
    for program in env.full_suite():
        result = env.run(sst_machine(env.hierarchy()), program)
        stats = result.extra["sst"]
        table.add_row(
            program.name,
            stats.episodes,
            stats.full_commits,
            stats.region_commits,
            stats.fails[FailCause.DEFERRED_BRANCH_MISPREDICT],
            stats.fails[FailCause.DEFERRED_JUMP_MISPREDICT],
            stats.fails[FailCause.MEMORY_ORDER_VIOLATION],
            stats.total_scout_sessions,
            stats.discarded_insts,
        )
        outcomes[program.name] = {
            "episodes": stats.episodes,
            "full_commits": stats.full_commits,
            "region_commits": stats.region_commits,
            "branch_fails":
                stats.fails[FailCause.DEFERRED_BRANCH_MISPREDICT],
            "jump_fails":
                stats.fails[FailCause.DEFERRED_JUMP_MISPREDICT],
            "order_fails":
                stats.fails[FailCause.MEMORY_ORDER_VIOLATION],
            "total_fails": stats.total_fails,
            "scouts": stats.total_scout_sessions,
            "discarded_insts": stats.discarded_insts,
        }
    return table, {"outcomes": outcomes}
