"""E13 — the power-efficiency claim.

Event-based energy for in-order / SST / OoO on the commercial suite:
energy per committed instruction (including the cost of discarded
speculative work) and ED².  Expected: SST's structures add modest
energy over in-order — far less than rename/ROB/IQ/LSQ add to the OoO
core — while its speed gives it the best ED² on miss-bound codes.
"""

from repro.config import inorder_machine, ooo_machine, sst_machine
from repro.experiments.spec import expect, experiment
from repro.power import estimate_energy
from repro.stats.report import Table, geomean


@experiment(
    eid="e13", slug="energy",
    title="Energy per instruction and ED2 for in-order / SST / OoO",
    tags=("power",),
    expectations=(
        expect("epi_ordering",
               "SST costs more energy than in-order (speculation is "
               "not free) but less than the OoO machinery",
               lambda m: m["epi_geomean"]["inorder-2w"]
               < m["epi_geomean"]["sst-2w-2ckpt"]
               < m["epi_geomean"]["ooo-4w-rob128"]),
        expect("sst_best_ed2_vs_ooo",
               "on miss-bound commercial codes SST beats the OoO's ED2",
               lambda m: m["ed2_geomean"]["sst-2w-2ckpt"]
               < m["ed2_geomean"]["ooo-4w-rob128"]),
        expect("sst_ed2_below_inorder",
               "SST's speed gives it better ED2 than the in-order base",
               lambda m: m["ed2_geomean"]["sst-2w-2ckpt"] < 1.0),
    ),
)
def build(env):
    hierarchy = env.hierarchy()
    configs = [
        inorder_machine(hierarchy),
        sst_machine(hierarchy),
        ooo_machine(hierarchy, rob_size=128),
    ]
    table = Table(
        "E13: energy per instruction and ED2 (relative units)",
        ["workload", "machine", "EPI", "window/ckpt EPI share",
         "rel. ED2 vs inorder"],
    )
    epi = {config.name: [] for config in configs}
    ed2_ratio = {config.name: [] for config in configs}
    for program in env.commercial_suite():
        breakdowns = {}
        for config in configs:
            result = env.run(config, program)
            breakdowns[config.name] = estimate_energy(result)
        base_ed2 = breakdowns[configs[0].name].energy_delay_squared
        for config in configs:
            breakdown = breakdowns[config.name]
            overhead_keys = {"rename", "rob", "issue_queue", "lsq",
                             "checkpoints", "deferred_queue",
                             "store_buffer", "na_bits"}
            overhead = sum(value for key, value
                           in breakdown.components.items()
                           if key in overhead_keys)
            share = overhead / breakdown.total
            relative_ed2 = breakdown.energy_delay_squared / base_ed2
            epi[config.name].append(breakdown.energy_per_instruction)
            ed2_ratio[config.name].append(relative_ed2)
            table.add_row(
                program.name, config.name,
                round(breakdown.energy_per_instruction, 1),
                f"{share:.0%}",
                round(relative_ed2, 3),
            )
    table.add_row(
        "geomean EPI", "",
        "/".join(f"{geomean(epi[c.name]):.0f}" for c in configs), "", "",
    )
    return table, {
        "epi": epi,
        "ed2": ed2_ratio,
        "epi_geomean": {name: geomean(values)
                        for name, values in epi.items()},
        "ed2_geomean": {name: geomean(values)
                        for name, values in ed2_ratio.items()},
    }
