"""E4 — deferred-queue sizing.

The DQ holds only the *dependence slice* of outstanding misses, so a
modest DQ already covers a large effective window; a starved DQ forces
scout fallbacks.  Expected: steep gains up to a few tens of entries,
then diminishing returns.
"""

import dataclasses

from repro.config import inorder_machine, sst_machine
from repro.experiments.spec import expect, experiment
from repro.stats.report import Table
from repro.workloads import hash_join

DQ_SIZES = (4, 8, 16, 32, 64, 128)


@experiment(
    eid="e4", slug="dq_size",
    title="SST speedup and scout fallbacks vs deferred-queue size",
    tags=("sst", "sizing"),
    expectations=(
        expect("small_dq_starves",
               "a starved DQ clearly loses to a deep one",
               lambda m: m["speedups"][-1] > m["speedups"][0] * 1.3),
        expect("diminishing_returns",
               "the top sizing step buys little",
               lambda m: m["speedups"][-1] <= m["speedups"][-2] * 1.25),
    ),
)
def build(env):
    program = hash_join(table_words=env.scaled(1 << 16),
                        probes=env.scaled(3000))
    hierarchy = env.hierarchy()
    base = env.run(inorder_machine(hierarchy), program)
    table = Table(
        "E4: SST speedup and scout fallbacks vs DQ size",
        ["dq_size", "speedup", "scout sessions", "mean DQ occupancy"],
    )
    curve = []
    for dq_size in DQ_SIZES:
        machine = sst_machine(hierarchy, dq_size=dq_size)
        machine = dataclasses.replace(machine, name=f"sst-dq{dq_size}")
        result = env.run(machine, program)
        stats = result.extra["sst"]
        speedup = result.speedup_over(base)
        curve.append(speedup)
        table.add_row(
            dq_size,
            f"{speedup:.2f}x",
            stats.total_scout_sessions,
            round(result.extra["dq_occupancy"].mean, 1),
        )
    return table, {"speedups": curve, "dq_sizes": list(DQ_SIZES)}
