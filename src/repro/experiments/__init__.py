"""repro.experiments — the reconstructed evaluation as a subsystem.

The 18 experiments behind the paper's claims are *library objects*
here, not scripts: each is an
:class:`~repro.experiments.spec.ExperimentSpec` (id, title, tags, a
build function producing a table + metrics, and expectation
predicates), registered declaratively by the ``e01_*.py`` .. ``e18_*.py``
modules in this package and executed by one shared
:class:`~repro.experiments.engine.ExperimentEngine`.

Every run emits both the classic text table and a schema-versioned
JSON result document (see :mod:`repro.experiments.results`) under
``benchmarks/results/``.  The ``repro`` console entry point
(``repro experiments list|run|report``) and the thin pytest-benchmark
adapters in ``benchmarks/bench_e*.py`` both drive this package.

Quickstart::

    from repro.experiments import get, list_specs, run_experiment

    for spec in list_specs():
        print(spec.eid, spec.title)

    doc = run_experiment("e4", smoke=True)   # -> validated JSON doc
    print(doc["metrics"]["speedups"])
"""

from repro.experiments.bench_env import (
    BenchEnv,
    DEFAULT_BENCH_MAX_INSTRUCTIONS,
    SMOKE_DIVISOR,
    smoke_from_env,
)
from repro.experiments.engine import ExperimentEngine, run_experiment
from repro.experiments.results import (
    RESULT_SCHEMA_VERSION,
    ResultSchemaError,
    default_results_dir,
    load_result_doc,
    perf_baseline_path,
    result_paths,
    validate_result_doc,
    write_result_doc,
)
from repro.experiments.spec import (
    Expectation,
    ExpectationResult,
    ExperimentLookupError,
    ExperimentRegistrationError,
    ExperimentSpec,
    by_tag,
    expect,
    experiment,
    get,
    list_specs,
    load_all,
    register,
)

__all__ = [
    "BenchEnv",
    "DEFAULT_BENCH_MAX_INSTRUCTIONS",
    "SMOKE_DIVISOR",
    "smoke_from_env",
    "ExperimentEngine",
    "run_experiment",
    "RESULT_SCHEMA_VERSION",
    "ResultSchemaError",
    "default_results_dir",
    "load_result_doc",
    "perf_baseline_path",
    "result_paths",
    "validate_result_doc",
    "write_result_doc",
    "Expectation",
    "ExpectationResult",
    "ExperimentLookupError",
    "ExperimentRegistrationError",
    "ExperimentSpec",
    "by_tag",
    "expect",
    "experiment",
    "get",
    "list_specs",
    "load_all",
    "register",
    "make_bench_test",
]


def make_bench_test(eid: str):
    """A pytest-benchmark test body for one experiment.

    The ``benchmarks/bench_e*.py`` adapters are one line each::

        test_e4_dq_size = make_bench_test("e4")

    The test runs the experiment through the engine (writing its text
    table and JSON document like any other run), records the metrics
    in the benchmark report, and fails if any expectation predicate
    does not hold.
    """
    spec = get(eid)

    def _test(benchmark):
        doc = benchmark.pedantic(lambda: run_experiment(spec),
                                 rounds=1, iterations=1)
        benchmark.extra_info["metrics"] = doc["metrics"]
        failed = [outcome for outcome in doc["expectations"]
                  if not outcome["passed"]]
        assert not failed, (
            f"{spec.name}: {len(failed)} expectation(s) failed: "
            + "; ".join(outcome["name"] for outcome in failed)
        )

    _test.__name__ = f"test_{spec.name}"
    _test.__doc__ = spec.title
    return _test
