"""E5 — checkpoint count: the EA -> SST step.

1 checkpoint = execute-ahead (replay pauses the ahead strand);
2 checkpoints = SST (the paper's design point); more checkpoints let
more epochs pipeline.  Expected: the 1 -> 2 step is the big one.
"""

import dataclasses

from repro.config import inorder_machine, sst_machine
from repro.experiments.spec import expect, experiment
from repro.stats.report import Table, geomean
from repro.workloads import hash_join, pointer_chase, store_stream

CHECKPOINTS = (1, 2, 4, 8)


@experiment(
    eid="e5", slug="checkpoints",
    title="Speedup over in-order vs number of checkpoints (EA -> SST)",
    tags=("sst", "sizing"),
    expectations=(
        expect("ea_to_sst_step",
               "adding the second checkpoint (EA -> SST) is a real step",
               lambda m: m["geomean"]["2"] / m["geomean"]["1"] > 1.02),
        expect("second_step_dominates",
               "2 -> 8 checkpoints gains less than the 1 -> 2 step",
               lambda m: m["geomean"]["8"] / m["geomean"]["2"]
               < m["geomean"]["2"] / m["geomean"]["1"] + 0.25),
    ),
)
def build(env):
    hierarchy = env.hierarchy()
    programs = [
        hash_join(table_words=env.scaled(1 << 16),
                  probes=env.scaled(3000)),
        pointer_chase(chains=4, nodes_per_chain=env.scaled(2048),
                      hops=env.scaled(2500)),
        store_stream(records=env.scaled(2000), payload_words=8,
                     table_words=env.scaled(1 << 16)),
    ]
    table = Table(
        "E5: speedup over in-order vs number of checkpoints",
        ["workload"] + [f"{k} ckpt" for k in CHECKPOINTS],
    )
    per_k = {k: [] for k in CHECKPOINTS}
    for program in programs:
        base = env.run(inorder_machine(hierarchy), program)
        row = [program.name]
        for k in CHECKPOINTS:
            machine = dataclasses.replace(
                sst_machine(hierarchy, checkpoints=k), name=f"sst-{k}ckpt"
            )
            speedup = env.run(machine, program).speedup_over(base)
            per_k[k].append(speedup)
            row.append(f"{speedup:.2f}x")
        table.add_row(*row)
    table.add_row(
        "geomean", *(f"{geomean(per_k[k]):.2f}x" for k in CHECKPOINTS)
    )
    return table, {
        "geomean": {str(k): geomean(values)
                    for k, values in per_k.items()},
        "speedups": {str(k): values for k, values in per_k.items()},
    }
