"""E6 — memory-level parallelism and prefetch coverage.

How each mode turns serial misses into overlapped ones: demand DRAM
accesses, misses merged into in-flight fills (the MLP signature), the
SST core's peak outstanding deferred misses, and scout prefetches.
"""

from repro.experiments.spec import expect, experiment
from repro.stats.report import Table
from repro.workloads import hash_join


@experiment(
    eid="e6", slug="mlp_scout",
    title="MLP and prefetch coverage per machine on db-hashjoin",
    tags=("memory", "core"),
    expectations=(
        expect("speculation_beats_inorder",
               "every speculative mode beats in-order on this workload",
               lambda m: all(cycles < m["cycles"]["inorder-2w"]
                             for name, cycles in m["cycles"].items()
                             if name != "inorder-2w")),
    ),
)
def build(env):
    program = hash_join(table_words=env.scaled(1 << 16),
                        probes=env.scaled(3000))
    table = Table(
        "E6: MLP and prefetch coverage on db-hashjoin",
        ["machine", "cycles", "dram accesses", "merges",
         "peak outstanding", "scout prefetches"],
    )
    rows = {}
    for config in env.paper_machines(env.hierarchy()):
        result = env.run(config, program)
        hierarchy_stats = result.extra["hierarchy"]
        sst_stats = result.extra.get("sst")
        peak = sst_stats.peak_outstanding_misses if sst_stats else 0
        scout_prefetches = sst_stats.scout_prefetches if sst_stats else 0
        table.add_row(
            config.name,
            result.cycles,
            hierarchy_stats.demand_dram,
            hierarchy_stats.demand_merges,
            peak,
            scout_prefetches,
        )
        rows[config.name] = result.cycles
    return table, {"cycles": rows}
