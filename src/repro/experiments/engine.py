"""The experiment engine: one place that runs any registered spec.

``ExperimentEngine.run("e4")`` owns everything the old imperative
``bench_e*.py`` scripts each re-implemented:

1. build a fresh :class:`~repro.experiments.bench_env.BenchEnv`
   (smoke scaling, result cache, instruction budget, job count);
2. call the spec's build function, which returns the experiment's
   :class:`~repro.stats.report.Table` and a JSON-serializable metrics
   dictionary while every simulation point is recorded by the env;
3. normalize the metrics through a JSON round-trip so expectation
   predicates see exactly what a reloaded document would contain;
4. evaluate the spec's expectation predicates;
5. assemble the schema-versioned result document and (by default)
   persist both the text table and the JSON document under
   ``benchmarks/results/``.

Engines are cheap; construct one per configuration.  Each ``run``
builds its own environment so point recording never bleeds between
experiments.
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Any, Dict, Optional, Union

from repro.experiments.bench_env import BenchEnv, _UNSET
from repro.experiments.results import (
    RESULT_SCHEMA_VERSION,
    validate_result_doc,
    write_result_doc,
)
from repro.experiments.spec import ExperimentSpec, get
from repro.sim.cache import SIM_SCHEMA_VERSION
from repro.stats.report import Table


class ExperimentEngine:
    """Runs registered experiment specs into result documents."""

    def __init__(self, *, smoke: Optional[bool] = None,
                 max_instructions: Optional[int] = None,
                 cache: Any = _UNSET,
                 jobs: Optional[int] = None,
                 results_dir: Optional[pathlib.Path] = None,
                 write: bool = True,
                 echo: bool = False,
                 firewall: Any = _UNSET):
        self.smoke = smoke
        self.max_instructions = max_instructions
        self.cache = cache
        self.jobs = jobs
        # Behavioral baseline firewall (repro.regress), shared across
        # every env this engine builds so one `repro baseline` run
        # accumulates a single capture/verify report.  _UNSET defers to
        # the REPRO_BASELINE gate per environment.
        self.firewall = firewall
        self.results_dir = (
            pathlib.Path(results_dir) if results_dir is not None else None
        )
        self.write = write
        self.echo = echo

    # ------------------------------------------------------------------

    def make_env(self) -> BenchEnv:
        return BenchEnv(smoke=self.smoke,
                        max_instructions=self.max_instructions,
                        cache=self.cache, jobs=self.jobs,
                        firewall=self.firewall)

    def run(self, spec: Union[str, ExperimentSpec]) -> Dict[str, Any]:
        """Run one experiment; returns its validated result document."""
        if isinstance(spec, str):
            spec = get(spec)
        env = self.make_env()
        started = time.perf_counter()
        table, metrics = spec.build(env)
        wall = time.perf_counter() - started
        if not isinstance(table, Table):
            raise TypeError(
                f"{spec.name} build returned {type(table).__name__}, "
                f"expected a Table"
            )
        # Expectations run on the JSON image of the metrics, so a
        # freshly computed document and a reloaded one are
        # indistinguishable to the predicates.
        metrics = json.loads(json.dumps(metrics))
        outcomes = spec.check(metrics)
        doc: Dict[str, Any] = {
            "schema": RESULT_SCHEMA_VERSION,
            "sim_schema": SIM_SCHEMA_VERSION,
            "experiment": {
                "id": spec.eid,
                "slug": spec.slug,
                "name": spec.name,
                "title": spec.title,
                "tags": list(spec.tags),
            },
            "mode": "smoke" if env.smoke else "full",
            "max_instructions": env.max_instructions,
            "wall_seconds": round(wall, 4),
            "table": {
                "title": table.title,
                "columns": list(table.columns),
                "rows": [list(row) for row in table.rows],
                "rendered": table.render(),
            },
            "metrics": metrics,
            "points": list(env.points),
            "expectations": [outcome.as_dict() for outcome in outcomes],
            "ok": all(outcome.passed for outcome in outcomes),
        }
        validate_result_doc(doc)
        if env.firewall is not None:
            # Experiment-level baseline: expectation outcomes, metric
            # and table signatures, and the resolved point-key list —
            # an unintended cache-key change diverges here even when
            # every cycle count matches.
            env.firewall.observe_experiment(doc)
        if self.write:
            write_result_doc(doc, self.results_dir)
        if self.echo:
            print()
            print(table.render())
        return doc


def run_experiment(spec: Union[str, ExperimentSpec],
                   **engine_kwargs: Any) -> Dict[str, Any]:
    """One-shot convenience: run a spec with default engine settings
    (environment knobs still apply) and return its result document."""
    return ExperimentEngine(**engine_kwargs).run(spec)
