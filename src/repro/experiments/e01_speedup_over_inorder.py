"""E1 — per-workload speedup of scout / execute-ahead / SST over the
in-order baseline (the paper's core progression figure).

Expected shape: every speculative mode >= 1.0x on the miss-bound
commercial workloads, ordered scout <= EA <= SST on the geomean, with
the compute-bound contrast workloads showing little gain.
"""

from repro.experiments.spec import expect, experiment
from repro.stats.report import Table, geomean


@experiment(
    eid="e1", slug="speedup_over_inorder",
    title="Per-workload speedup of scout / EA / SST over in-order",
    tags=("core", "headline"),
    expectations=(
        expect("sst_speedup",
               "SST clearly beats in-order on the suite geomean",
               lambda m: m["geomean"]["sst-2w-2ckpt"] > 1.5),
        expect("mode_ordering",
               "geomean ordering scout <~ EA <~ SST holds",
               lambda m: m["geomean"]["sst-2w-2ckpt"]
               >= m["geomean"]["ea-2w"] * 0.98
               >= m["geomean"]["scout-2w"] * 0.9),
    ),
)
def build(env):
    programs = env.full_suite()
    configs = env.paper_machines(env.hierarchy())
    matrix = env.run_matrix(programs, configs)
    baseline_name = configs[0].name
    table = Table(
        "E1: speedup over the in-order core",
        ["workload", "inorder IPC", "scout", "execute-ahead", "sst"],
    )
    speedups = {config.name: [] for config in configs[1:]}
    for program in programs:
        results = matrix[program.name]
        base = results[baseline_name]
        row = [program.name, round(base.ipc, 3)]
        for config in configs[1:]:
            speedup = results[config.name].speedup_over(base)
            speedups[config.name].append(speedup)
            row.append(f"{speedup:.2f}x")
        table.add_row(*row)
    table.add_row(
        "geomean", "",
        *(f"{geomean(values):.2f}x" for values in speedups.values()),
    )
    return table, {
        "speedups": speedups,
        "geomean": {name: geomean(values)
                    for name, values in speedups.items()},
    }
