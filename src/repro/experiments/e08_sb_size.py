"""E8 — speculative store-buffer sizing.

The store-burst workload fills the SB during each episode; a shallow SB
forces scout fallbacks and forfeits retirement.  Expected: speedup
climbs with SB depth until the burst fits, then flattens.
"""

import dataclasses

from repro.config import inorder_machine, sst_machine
from repro.core import ScoutCause
from repro.experiments.spec import expect, experiment
from repro.stats.report import Table
from repro.workloads import store_stream

SB_SIZES = (4, 8, 16, 32, 64)


@experiment(
    eid="e8", slug="sb_size",
    title="SST speedup and SB pressure vs store-buffer size",
    tags=("sst", "sizing"),
    expectations=(
        expect("depth_helps_burst",
               "SB depth helps the store burst",
               lambda m: m["speedups"][-1] > m["speedups"][0]),
        expect("flattens_when_burst_fits",
               "speedup flattens once the burst fits",
               lambda m: m["speedups"][-1] <= m["speedups"][-2] * 1.2),
    ),
)
def build(env):
    program = store_stream(records=env.scaled(2000), payload_words=8,
                           table_words=env.scaled(1 << 16))
    hierarchy = env.hierarchy()
    base = env.run(inorder_machine(hierarchy), program)
    table = Table(
        "E8: SST speedup and SB pressure vs store-buffer size",
        ["sb_size", "speedup", "sb-full scouts", "mean SB occupancy"],
    )
    curve = []
    for sb_size in SB_SIZES:
        machine = dataclasses.replace(
            sst_machine(hierarchy, sb_size=sb_size), name=f"sst-sb{sb_size}"
        )
        result = env.run(machine, program)
        stats = result.extra["sst"]
        speedup = result.speedup_over(base)
        curve.append(speedup)
        table.add_row(
            sb_size,
            f"{speedup:.2f}x",
            stats.scout_sessions[ScoutCause.SB_FULL],
            round(result.extra["sb_occupancy"].mean, 1),
        )
    return table, {"speedups": curve, "sb_sizes": list(SB_SIZES)}
