"""E17 — simulated CMP scaling (true interleaved shared-L2/DRAM).

Chips of 1/2/4/8 cores, each core on its own seed of the DB probe
workload, with L2 capacity and MSHRs scaled with the core count (as a
real chip would be — ROCK shipped a shared L2 sized for 16 cores) so
the contention left is the off-chip channel.  Run at a generous and a
starved DRAM bandwidth.

Expected: the in-order chip scales almost linearly (its cores barely
use the channel) but from a tiny base; the SST chip's aggregate is far
above it at every point, scaling sublinearly as its speculative traffic
meets the channel — and visibly flatter when the channel is starved.
This is the simulated ground truth for E14's analytic model.
"""

from repro.cmp import Multicore
from repro.config import (
    CacheConfig,
    DRAMConfig,
    HierarchyConfig,
    SSTConfig,
)
from repro.experiments.spec import expect, experiment
from repro.stats.report import Table
from repro.workloads import hash_join

CORE_COUNTS = (1, 2, 4, 8)
# DRAM minimum start interval: 1 -> 64 B/cyc channel, 8 -> 8 B/cyc.
BANDWIDTH_POINTS = {"wide": 1, "starved": 8}


def _hierarchy(cores: int, interval: int) -> HierarchyConfig:
    return HierarchyConfig(
        l1d=CacheConfig(size_bytes=16 * 1024, assoc=4, hit_latency=2,
                        mshr_entries=16),
        l1i=CacheConfig(size_bytes=16 * 1024, assoc=4, hit_latency=1,
                        mshr_entries=4),
        l2=CacheConfig(size_bytes=128 * 1024 * cores, assoc=8,
                       hit_latency=20, mshr_entries=16 * cores),
        dram=DRAMConfig(latency=300, min_interval=interval),
    )


def _programs(env, count: int):
    return [
        hash_join(table_words=env.scaled(1 << 14), probes=env.scaled(600),
                  seed=seed, name=f"db-hashjoin-{seed}")
        for seed in range(count)
    ]


def _scaling_ok(metrics, channel: str) -> bool:
    sst = metrics["curves"][f"{channel}/sst"]
    inorder = metrics["curves"][f"{channel}/inorder"]
    return (
        sst[-1] > sst[0]
        and sst[-1] < 8 * sst[0]
        and all(s > i for s, i in zip(sst, inorder))
    )


@experiment(
    eid="e17", slug="multicore",
    title="Simulated CMP scaling over a shared L2 and DRAM channel",
    tags=("cmp",),
    expectations=(
        expect("wide_channel_scaling",
               "throughput grows with cores (sublinearly for SST) and "
               "the SST chip stays above the in-order chip",
               lambda m: _scaling_ok(m, "wide")),
        expect("starved_channel_scaling",
               "the same ordering holds on a starved channel",
               lambda m: _scaling_ok(m, "starved")),
        expect("starvation_flattens_sst",
               "starving the channel flattens the SST curve "
               "specifically",
               lambda m: m["curves"]["starved/sst"][-1]
               < m["curves"]["wide/sst"][-1]
               and m["curves"]["starved/inorder"][-1]
               > 0.9 * m["curves"]["wide/inorder"][-1]),
    ),
)
def build(env):
    table = Table(
        "E17: simulated multicore scaling (shared L2 + DRAM channel)",
        ["channel", "cores", "machine", "aggregate IPC",
         "scaling efficiency"],
    )
    curves = {}
    for channel, interval in BANDWIDTH_POINTS.items():
        for kind, config in (("sst", SSTConfig(checkpoints=2)),
                             ("inorder", SSTConfig(checkpoints=0))):
            base = None
            points = []
            for count in CORE_COUNTS:
                result = env.run_multicore(
                    Multicore(
                        _hierarchy(count, interval), [config] * count,
                        _programs(env, count),
                    ),
                    machine=f"{kind}-cmp{count}-{channel}",
                    program=f"db-hashjoin x{count}",
                )
                aggregate = result.aggregate_ipc
                if base is None:
                    base = aggregate
                points.append(aggregate)
                table.add_row(
                    channel, count, kind, round(aggregate, 3),
                    f"{aggregate / (count * base):.0%}",
                )
            curves[f"{channel}/{kind}"] = points
    return table, {"curves": curves, "core_counts": list(CORE_COUNTS)}
