"""E18 — two hardware strands per core: two threads, or one SST thread?

ROCK gives each core two hardware strands.  Software can use them as
two application threads (throughput mode: modelled as two width-1
contexts sharing the core's L1/TLB and issue capacity), or dedicate
both to one thread as its ahead+replay pair (SST mode: one 2-wide SST
core).  This experiment runs both on the DB probe workload.

Expected: dedicating both strands to one thread wins per-thread
latency by construction; the interesting result is that on miss-bound
work it wins *throughput* too — two in-order threads overlap only each
other's stalls (memory-level parallelism ≈ 2) while one SST thread
overlaps tens of its own misses.  Threading only catches up when each
thread is individually compute-bound.  This asymmetry is why using the
second strand for SST, not just SMT, was worth silicon.
"""

from repro.cmp import Multicore
from repro.config import SSTConfig, sst_machine
from repro.experiments.spec import expect, experiment
from repro.stats.report import Table
from repro.workloads import hash_join


def _program(env, seed: int):
    return hash_join(table_words=env.scaled(1 << 14),
                     probes=env.scaled(800), seed=seed,
                     name=f"db-hashjoin-{seed}")


@experiment(
    eid="e18", slug="core_threading",
    title="One core, two strands: threading vs SST",
    tags=("cmp", "sst"),
    expectations=(
        expect("sst_wins_per_thread_latency",
               "dedicating both strands to one thread beats a "
               "thread's share of the threaded core",
               lambda m: m["sst_single"] > m["duo_inorder"] / 2),
        expect("speculating_threads_win_throughput",
               "speculating threads beat plain threads at equal "
               "thread count",
               lambda m: m["duo_sst"] > m["duo_inorder"]),
    ),
)
def build(env):
    hierarchy = env.hierarchy()
    table = Table(
        "E18: one core, two strands — threading vs SST",
        ["configuration", "threads", "per-thread IPC",
         "core throughput (IPC)"],
    )

    # (a) Both strands serve one thread: a 2-wide SST core.
    sst = env.run(sst_machine(hierarchy, width=2), _program(env, 0))
    table.add_row("SST (both strands, 1 thread)", 1,
                  round(sst.ipc, 3), round(sst.ipc, 3))

    # (b) Two in-order threads share the core (width 1 each, shared
    # L1/TLB, shared L2 path).
    duo = env.run_multicore(
        Multicore(
            hierarchy,
            [SSTConfig(width=1, checkpoints=0)] * 2,
            [_program(env, 0), _program(env, 1)],
            share_l1=True,
        ),
        machine="2xinorder-1w", program="db-hashjoin x2",
    )
    per_thread = duo.aggregate_ipc / 2
    table.add_row("2 in-order threads", 2, round(per_thread, 3),
                  round(duo.aggregate_ipc, 3))

    # (c) Two SST threads share the core (width 1 each): speculation
    # per thread *and* thread-level overlap, fighting for one L1.
    duo_sst = env.run_multicore(
        Multicore(
            hierarchy,
            [SSTConfig(width=1, checkpoints=2)] * 2,
            [_program(env, 0), _program(env, 1)],
            share_l1=True,
        ),
        machine="2xsst-1w", program="db-hashjoin x2",
    )
    table.add_row("2 SST threads", 2,
                  round(duo_sst.aggregate_ipc / 2, 3),
                  round(duo_sst.aggregate_ipc, 3))

    return table, {
        "sst_single": sst.ipc,
        "duo_inorder": duo.aggregate_ipc,
        "duo_sst": duo_sst.aggregate_ipc,
    }
