"""E11 — pipeline width and strand sharing.

The two strands share one pipeline's issue slots.  On a workload with
per-element compute (fp-stream) extra width feeds both strands and IPC
grows; on the purely miss-bound probe loop (db-hashjoin) one slot per
cycle already sustains the miss stream, so width barely matters —
which is exactly the paper's argument for building *narrow* SST cores
and spending the area on more of them.
"""

import dataclasses

from repro.config import inorder_machine, sst_machine
from repro.experiments.spec import expect, experiment
from repro.stats.report import Table
from repro.workloads import array_stream, hash_join

WIDTHS = (1, 2, 4)


@experiment(
    eid="e11", slug="width",
    title="SST IPC vs pipeline width (narrow cores are enough)",
    tags=("sst", "sizing"),
    expectations=(
        expect("compute_wants_width",
               "the compute mix wants at least a 2-wide pipeline",
               lambda m: m["ipcs"]["fp-stream"][1]
               > m["ipcs"]["fp-stream"][0] * 1.1),
        expect("miss_stream_saturates",
               "2-wide -> 4-wide buys almost nothing on the miss "
               "stream (narrow cores are the right design point)",
               lambda m: abs(m["ipcs"]["db-hashjoin"][2]
                             - m["ipcs"]["db-hashjoin"][1])
               / m["ipcs"]["db-hashjoin"][1] < 0.15),
    ),
)
def build(env):
    hierarchy = env.hierarchy()
    programs = [
        array_stream(words=env.scaled(1 << 15)),
        hash_join(table_words=env.scaled(1 << 16),
                  probes=env.scaled(3000)),
    ]
    table = Table(
        "E11: SST IPC vs pipeline width (same-width in-order shown)",
        ["workload", "width", "inorder IPC", "sst IPC", "sst speedup"],
    )
    ipcs = {}
    for program in programs:
        per_width = []
        for width in WIDTHS:
            base = env.run(inorder_machine(hierarchy, width=width),
                           program)
            machine = dataclasses.replace(
                sst_machine(hierarchy, width=width), name=f"sst-{width}w"
            )
            result = env.run(machine, program)
            per_width.append(result.ipc)
            table.add_row(program.name, width, round(base.ipc, 3),
                          round(result.ipc, 3),
                          f"{result.speedup_over(base):.2f}x")
        ipcs[program.name] = per_width
    return table, {"ipcs": ipcs, "widths": list(WIDTHS)}
