"""Machine-readable experiment result documents.

Every engine run emits a versioned JSON document next to the
experiment's text table under ``benchmarks/results/``:

.. code-block:: text

    {
      "schema": 1,                  # RESULT_SCHEMA_VERSION
      "sim_schema": 2,              # repro.sim.cache.SIM_SCHEMA_VERSION
      "experiment": {"id": "e4", "slug": "dq_size", "name": "e4_dq_size",
                     "title": "...", "tags": ["sst", "sizing"]},
      "mode": "full" | "smoke",
      "max_instructions": 50000000,
      "wall_seconds": 3.21,
      "table": {"title": "...", "columns": [...], "rows": [[...], ...],
                "rendered": "..."},   # rendered == the .txt file body
      "metrics": {...},             # experiment-specific, JSON values only
      "points": [{"machine": ..., "program": ..., "key": <sha256|null>,
                  "cycles": ..., "instructions": ..., "ipc": ...,
                  "wall_seconds": ..., "perf": {...}|null}, ...],
      "expectations": [{"name": ..., "description": ...,
                        "passed": true|false, "error": null|"..."}],
      "ok": true                     # every expectation passed
    }

``points[*].key`` is the content hash addressing the point in the
simulation result cache — a fingerprint of (machine config, program,
instruction budget) — so two documents disagreeing on a metric can be
traced to *which* simulation inputs differed.  Interleaved multicore
points carry ``key: null`` (they are not single-config cacheable).

The documents are consumed by ``repro experiments report``, the
pytest-benchmark adapters, and the repo-hygiene tests; bump
:data:`RESULT_SCHEMA_VERSION` on any layout change.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any, Dict, Optional, Tuple, Union

from repro.errors import ReproError
from repro.regress.semid import dump_stable

RESULT_SCHEMA_VERSION = 1


class ResultSchemaError(ReproError):
    """A result document does not match the published schema."""


# ---------------------------------------------------------------------------
# Locations — anchored to the repository, not the process cwd.
# ---------------------------------------------------------------------------


def repo_root() -> Optional[pathlib.Path]:
    """The source checkout containing this package, if there is one.

    In an editable / PYTHONPATH=src layout this resolves to the
    repository root; from an installed wheel (no ``benchmarks/``
    sibling) it returns None and callers fall back to the cwd.
    """
    root = pathlib.Path(__file__).resolve().parents[3]
    if (root / "benchmarks").is_dir():
        return root
    return None


def default_results_dir() -> pathlib.Path:
    """Where result documents land: ``REPRO_RESULTS_DIR``, else the
    checkout's ``benchmarks/results/``, else ``./results``."""
    override = os.environ.get("REPRO_RESULTS_DIR", "").strip()
    if override:
        return pathlib.Path(override)
    root = repo_root()
    if root is not None:
        return root / "benchmarks" / "results"
    return pathlib.Path.cwd() / "results"


def perf_baseline_path() -> pathlib.Path:
    """The committed simulator-throughput baseline consumed by
    ``run_all.py --perf-smoke`` (cwd-independent)."""
    override = os.environ.get("REPRO_PERF_BASELINE", "").strip()
    if override:
        return pathlib.Path(override)
    root = repo_root()
    base = root / "benchmarks" if root is not None else pathlib.Path.cwd()
    return base / "BENCH_smoke.json"


def result_paths(name: str,
                 results_dir: Optional[pathlib.Path] = None
                 ) -> Tuple[pathlib.Path, pathlib.Path]:
    """(text table path, JSON document path) for experiment ``name``."""
    directory = pathlib.Path(results_dir) if results_dir is not None \
        else default_results_dir()
    return directory / f"{name}.txt", directory / f"{name}.json"


# ---------------------------------------------------------------------------
# Validation — structural, dependency-free.
# ---------------------------------------------------------------------------

_TOP_FIELDS: Dict[str, type] = {
    "schema": int,
    "sim_schema": int,
    "experiment": dict,
    "mode": str,
    "max_instructions": int,
    "wall_seconds": (int, float),  # type: ignore[dict-item]
    "table": dict,
    "metrics": dict,
    "points": list,
    "expectations": list,
    "ok": bool,
}

_EXPERIMENT_FIELDS: Dict[str, type] = {
    "id": str, "slug": str, "name": str, "title": str, "tags": list,
}

_TABLE_FIELDS: Dict[str, type] = {
    "title": str, "columns": list, "rows": list, "rendered": str,
}

_POINT_FIELDS: Dict[str, type] = {
    "machine": str,
    "program": str,
    "cycles": int,
    "instructions": int,
    "ipc": (int, float),  # type: ignore[dict-item]
}

_EXPECTATION_FIELDS: Dict[str, type] = {
    "name": str, "description": str, "passed": bool,
}


def _require(mapping: Any, fields: Dict[str, type], where: str) -> None:
    if not isinstance(mapping, dict):
        raise ResultSchemaError(f"{where} must be an object")
    for field, kind in fields.items():
        if field not in mapping:
            raise ResultSchemaError(f"{where} is missing {field!r}")
        if isinstance(mapping[field], bool) and kind is not bool:
            raise ResultSchemaError(
                f"{where}.{field} must be {kind}, got a bool"
            )
        if not isinstance(mapping[field], kind):
            raise ResultSchemaError(
                f"{where}.{field} must be "
                f"{getattr(kind, '__name__', kind)}, "
                f"got {type(mapping[field]).__name__}"
            )


def validate_result_doc(doc: Any) -> None:
    """Raise :class:`ResultSchemaError` unless ``doc`` is a valid
    schema-versioned experiment result document."""
    _require(doc, _TOP_FIELDS, "document")
    if doc["schema"] != RESULT_SCHEMA_VERSION:
        raise ResultSchemaError(
            f"unsupported result schema {doc['schema']!r} "
            f"(this library reads {RESULT_SCHEMA_VERSION})"
        )
    if doc["mode"] not in ("full", "smoke"):
        raise ResultSchemaError(f"bad mode {doc['mode']!r}")
    _require(doc["experiment"], _EXPERIMENT_FIELDS, "experiment")
    _require(doc["table"], _TABLE_FIELDS, "table")
    for index, point in enumerate(doc["points"]):
        _require(point, _POINT_FIELDS, f"points[{index}]")
    for index, expectation in enumerate(doc["expectations"]):
        _require(expectation, _EXPECTATION_FIELDS,
                 f"expectations[{index}]")
    metrics_json_ok = doc["metrics"] == json.loads(
        json.dumps(doc["metrics"])
    )
    if not metrics_json_ok:
        raise ResultSchemaError("metrics must round-trip through JSON")


# ---------------------------------------------------------------------------
# I/O.
# ---------------------------------------------------------------------------


def write_result_doc(doc: Dict[str, Any],
                     results_dir: Optional[pathlib.Path] = None
                     ) -> Tuple[pathlib.Path, pathlib.Path]:
    """Persist the text table and JSON document for ``doc``; returns
    (txt path, json path)."""
    validate_result_doc(doc)
    txt_path, json_path = result_paths(doc["experiment"]["name"],
                                       results_dir)
    txt_path.parent.mkdir(parents=True, exist_ok=True)
    txt_path.write_text(doc["table"]["rendered"] + "\n")
    json_path.write_text(dump_stable(doc))
    return txt_path, json_path


def load_result_doc(name_or_path: Union[str, pathlib.Path],
                    results_dir: Optional[pathlib.Path] = None
                    ) -> Dict[str, Any]:
    """Load and validate a stored result document by experiment name
    (``e4_dq_size``), id-resolved name, or explicit path."""
    path = pathlib.Path(name_or_path)
    if path.suffix != ".json":
        _, path = result_paths(str(name_or_path), results_dir)
    try:
        doc = json.loads(path.read_text())
    except FileNotFoundError:
        raise ResultSchemaError(f"no result document at {path}") from None
    except json.JSONDecodeError as exc:
        raise ResultSchemaError(f"{path} is not JSON: {exc}") from None
    validate_result_doc(doc)
    return doc
