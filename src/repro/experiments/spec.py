"""Declarative experiment specs and the experiment registry.

An :class:`ExperimentSpec` is the library-level description of one
reconstructed-evaluation experiment: an id (``e4``), a slug
(``dq_size``), a title, tags, a *build* function that produces the
result table and a JSON-serializable metrics dictionary, and a tuple of
:class:`Expectation` predicates stating the qualitative shape the paper
leads us to expect.

Spec modules live next to this file as ``e01_*.py`` .. ``e18_*.py`` and
register themselves through the :func:`experiment` decorator at import
time; :func:`load_all` imports every sibling module so the registry is
complete before any lookup.  Lookups (:func:`get`, :func:`list_specs`,
:func:`by_tag`) trigger loading automatically, so callers never import
spec modules by hand.

Expectations are deliberately evaluated against the *metrics
dictionary*, not against live simulator objects: the same predicates
run identically on a freshly computed result and on a result document
reloaded from ``benchmarks/results/<name>.json``, which is what lets a
stored run be re-audited (``repro experiments report``) or a doctored
one be caught by tests.
"""

from __future__ import annotations

import dataclasses
import importlib
import pathlib
import re
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError


class ExperimentLookupError(ReproError, KeyError):
    """No registered experiment matches the requested id."""


class ExperimentRegistrationError(ReproError):
    """A spec module tried to register a conflicting experiment."""


# Metrics are restricted to the JSON value universe so that expectation
# predicates behave identically on computed and reloaded results.
Metrics = Dict[str, Any]

# build(env) -> (table, metrics); ``table`` is a repro.stats.report.Table.
BuildFn = Callable[..., Tuple[Any, Metrics]]


@dataclasses.dataclass(frozen=True)
class Expectation:
    """One named qualitative check over an experiment's metrics."""

    name: str
    description: str
    check: Callable[[Metrics], bool]

    def evaluate(self, metrics: Metrics) -> "ExpectationResult":
        try:
            passed = bool(self.check(metrics))
            error = None
        except Exception as exc:  # noqa: BLE001 — doctored/missing metrics
            passed = False
            error = f"{type(exc).__name__}: {exc}"
        return ExpectationResult(
            name=self.name, description=self.description,
            passed=passed, error=error,
        )


@dataclasses.dataclass(frozen=True)
class ExpectationResult:
    """The outcome of one expectation on one result document."""

    name: str
    description: str
    passed: bool
    error: Optional[str] = None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "passed": self.passed,
            "error": self.error,
        }


def expect(name: str, description: str,
           check: Callable[[Metrics], bool]) -> Expectation:
    """Shorthand constructor used by the spec modules."""
    return Expectation(name=name, description=description, check=check)


@dataclasses.dataclass(frozen=True)
class ExperimentSpec:
    """Everything the engine needs to run one experiment."""

    eid: str                      # "e4"
    slug: str                     # "dq_size"
    title: str                    # one-line description
    build: BuildFn                # env -> (Table, metrics)
    tags: Tuple[str, ...] = ()
    expectations: Tuple[Expectation, ...] = ()

    def __post_init__(self) -> None:
        if not re.fullmatch(r"e[1-9]\d*", self.eid):
            raise ExperimentRegistrationError(
                f"experiment id must look like 'e<number>', got {self.eid!r}"
            )
        if not re.fullmatch(r"[a-z0-9_]+", self.slug):
            raise ExperimentRegistrationError(
                f"experiment slug must be snake_case, got {self.slug!r}"
            )

    @property
    def name(self) -> str:
        """The results-file stem, e.g. ``e4_dq_size``."""
        return f"{self.eid}_{self.slug}"

    @property
    def number(self) -> int:
        return int(self.eid[1:])

    def check(self, metrics: Metrics) -> List[ExpectationResult]:
        """Evaluate every expectation against ``metrics``."""
        return [expectation.evaluate(metrics)
                for expectation in self.expectations]


_REGISTRY: Dict[str, ExperimentSpec] = {}
_LOADED = False


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Add ``spec`` to the registry (id and name must be unique)."""
    existing = _REGISTRY.get(spec.eid)
    if existing is not None:
        if existing is spec:
            return spec
        raise ExperimentRegistrationError(
            f"duplicate experiment id {spec.eid!r} "
            f"({existing.name} vs {spec.name})"
        )
    if any(other.slug == spec.slug for other in _REGISTRY.values()):
        raise ExperimentRegistrationError(
            f"duplicate experiment slug {spec.slug!r}"
        )
    _REGISTRY[spec.eid] = spec
    return spec


def experiment(*, eid: str, slug: str, title: str,
               tags: Sequence[str] = (),
               expectations: Sequence[Expectation] = ()):
    """Decorator registering a build function as an experiment spec.

    The decorated module attribute becomes the :class:`ExperimentSpec`
    itself, so spec modules read declaratively top to bottom.
    """
    def wrap(build: BuildFn) -> ExperimentSpec:
        return register(ExperimentSpec(
            eid=eid, slug=slug, title=title, build=build,
            tags=tuple(tags), expectations=tuple(expectations),
        ))
    return wrap


def load_all() -> None:
    """Import every ``e*_*.py`` spec module next to this file (once)."""
    global _LOADED
    if _LOADED:
        return
    package_dir = pathlib.Path(__file__).parent
    for path in sorted(package_dir.glob("e[0-9]*_*.py")):
        importlib.import_module(f"{__package__}.{path.stem}")
    _LOADED = True


def get(identifier: str) -> ExperimentSpec:
    """Look up a spec by id (``e4``) or full name (``e4_dq_size``)."""
    load_all()
    key = identifier.strip().lower()
    spec = _REGISTRY.get(key)
    if spec is None:
        for candidate in _REGISTRY.values():
            if candidate.name == key:
                spec = candidate
                break
    if spec is None:
        known = ", ".join(s.eid for s in list_specs())
        raise ExperimentLookupError(
            f"no experiment {identifier!r} (known: {known})"
        )
    return spec


def list_specs() -> List[ExperimentSpec]:
    """Every registered spec, in e1..eN order."""
    load_all()
    return sorted(_REGISTRY.values(), key=lambda spec: spec.number)


def by_tag(tag: str) -> List[ExperimentSpec]:
    """Registered specs carrying ``tag``, in e1..eN order."""
    return [spec for spec in list_specs() if tag in spec.tags]
