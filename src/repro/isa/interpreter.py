"""Functional golden-model interpreter.

Executes a :class:`~repro.isa.program.Program` with no timing at all.
Every timing core in the library must end with exactly the same
architectural state (registers + memory) as this interpreter — that
equivalence is the library's core correctness property and is enforced
by the integration and hypothesis test suites.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.errors import ExecutionError
from repro.isa import blockcache
from repro.isa.opcodes import OpClass
from repro.isa.program import Program
from repro.isa.registers import REG_COUNT, ZERO_REG
from repro.isa.semantics import effective_address
from repro.memory.sparse_memory import SparseMemory

DEFAULT_MAX_STEPS = 50_000_000


@dataclasses.dataclass
class ArchState:
    """Architectural registers + memory, independent of any core."""

    regs: List[int]
    memory: SparseMemory
    pc: int = 0

    @classmethod
    def fresh(cls, program: Optional[Program] = None) -> "ArchState":
        memory = SparseMemory()
        if program is not None:
            memory.load_image(program.data)
        return cls(regs=[0] * REG_COUNT, memory=memory, pc=0)

    def read_reg(self, index: int) -> int:
        return 0 if index == ZERO_REG else self.regs[index]

    def write_reg(self, index: int, value: int) -> None:
        if index != ZERO_REG:
            self.regs[index] = value

    def same_architectural_state(self, other: "ArchState") -> bool:
        """Registers and memory equal (PC excluded; HALT position may
        legitimately differ between models only if programs differ,
        so callers normally run the same program)."""
        return self.regs == other.regs and self.memory == other.memory


@dataclasses.dataclass
class InterpreterStats:
    """Dynamic instruction mix of one functional run."""

    instructions: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    branches_taken: int = 0
    jumps: int = 0


class Interpreter:
    """Step-at-a-time functional executor."""

    def __init__(self, program: Program, max_steps: int = DEFAULT_MAX_STEPS):
        program.validate()
        self.program = program
        self.state = ArchState.fresh(program)
        self.stats = InterpreterStats()
        self.max_steps = max_steps
        self.halted = False
        self._block_fns = (
            blockcache.get_block_program(program).block_fns
            if blockcache.enabled() else None
        )

    def run(self) -> ArchState:
        """Run to HALT; raises :class:`ExecutionError` on runaway."""
        block_fns = self._block_fns
        if block_fns is None:
            while not self.halted:
                self.step()
            return self.state
        # Block dispatch: whole basic blocks execute as one generated
        # function call.  step() remains the per-instruction reference
        # and the fallback for mid-block entry PCs (JALR return into a
        # block body) and for blocks that would overrun max_steps.
        state = self.state
        regs = state.regs
        mem_read = state.memory.read
        mem_write = state.memory.write
        stats = self.stats
        max_steps = self.max_steps
        get_block = block_fns.get
        while not self.halted:
            entry = get_block(state.pc)
            if entry is None:
                self.step()
                continue
            fn, length = entry
            if stats.instructions + length > max_steps:
                self.step()
                continue
            next_pc = fn(state, regs, mem_read, mem_write, stats)
            if next_pc is None:
                self.halted = True
                break
            state.pc = next_pc
        return self.state

    def step(self) -> None:
        """Execute one instruction (no-op once halted)."""
        if self.halted:
            return
        if self.stats.instructions >= self.max_steps:
            raise ExecutionError(
                f"exceeded {self.max_steps} steps without HALT "
                f"(program {self.program.name!r})"
            )
        state = self.state
        if not 0 <= state.pc < len(self.program):
            raise ExecutionError(f"PC {state.pc} outside program")
        inst = self.program[state.pc]
        self.stats.instructions += 1
        op = inst.op
        cls = inst.op_class
        next_pc = state.pc + 1

        if cls is OpClass.ALU or cls is OpClass.MUL or cls is OpClass.DIV:
            fn = inst.alu_fn
            if inst.alu_uses_imm:
                # MOVI ignores its first operand, so the uniform rs1
                # read is safe for every immediate form.
                result = fn(state.read_reg(inst.rs1), inst.imm)
            else:
                result = fn(
                    state.read_reg(inst.rs1), state.read_reg(inst.rs2)
                )
            state.write_reg(inst.rd, result)
        elif cls is OpClass.LOAD:
            addr = effective_address(state.read_reg(inst.rs1), inst.imm)
            state.write_reg(inst.rd, state.memory.read(addr))
            self.stats.loads += 1
        elif cls is OpClass.STORE:
            addr = effective_address(state.read_reg(inst.rs1), inst.imm)
            state.memory.write(addr, state.read_reg(inst.rs2))
            self.stats.stores += 1
        elif cls is OpClass.BRANCH:
            self.stats.branches += 1
            if inst.branch_fn(
                state.read_reg(inst.rs1), state.read_reg(inst.rs2)
            ):
                self.stats.branches_taken += 1
                next_pc = inst.target
        elif cls is OpClass.JUMP:
            self.stats.jumps += 1
            state.write_reg(inst.rd, state.pc + 1)
            next_pc = inst.target
        elif cls is OpClass.JUMP_INDIRECT:
            self.stats.jumps += 1
            dest = effective_address(state.read_reg(inst.rs1), inst.imm)
            state.write_reg(inst.rd, state.pc + 1)
            if not 0 <= dest < len(self.program):
                raise ExecutionError(
                    f"indirect jump to {dest} outside program at PC {state.pc}"
                )
            next_pc = dest
        elif cls is OpClass.HALT:
            self.halted = True
            return
        elif cls in (OpClass.BARRIER, OpClass.PREFETCH, OpClass.NOP):
            pass
        else:  # pragma: no cover - exhaustiveness guard
            raise ExecutionError(f"unhandled opcode {op}")
        state.pc = next_pc


def run_program(program: Program, max_steps: int = DEFAULT_MAX_STEPS) -> ArchState:
    """Convenience wrapper: functional final state of ``program``."""
    return Interpreter(program, max_steps=max_steps).run()
