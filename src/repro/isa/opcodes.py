"""Opcode enumeration and static classification.

Each opcode carries a :class:`OpClass` that tells the timing models how
to treat it (which functional unit, whether it reads/writes memory,
whether it redirects control flow).  The classification is *static*
information about the ISA; per-implementation latencies live in
:mod:`repro.config`, not here.
"""

from __future__ import annotations

import enum


class OpClass(enum.Enum):
    """Coarse instruction class used by the timing models."""

    ALU = "alu"  # single-cycle integer op
    MUL = "mul"  # long-latency multiply
    DIV = "div"  # long-latency divide / remainder
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"  # conditional, relative to labels
    JUMP = "jump"  # unconditional direct (JAL)
    JUMP_INDIRECT = "jump_indirect"  # JALR
    BARRIER = "barrier"  # MEMBAR
    PREFETCH = "prefetch"
    NOP = "nop"
    HALT = "halt"


class Op(enum.Enum):
    """Every opcode in the ISA.

    The value is the assembly mnemonic; :func:`Op.from_mnemonic` parses
    it back.
    """

    # Register-register ALU.
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SLL = "sll"
    SRL = "srl"
    SRA = "sra"
    SLT = "slt"
    SLTU = "sltu"

    # Register-immediate ALU.
    ADDI = "addi"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    SLLI = "slli"
    SRLI = "srli"
    SRAI = "srai"
    SLTI = "slti"
    MOVI = "movi"  # rd <- 64-bit immediate

    # Memory.
    LD = "ld"  # rd <- mem64[rs1 + imm]
    ST = "st"  # mem64[rs1 + imm] <- rs2
    PREFETCH = "prefetch"  # warm mem64[rs1 + imm]; no architectural effect

    # Control.
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    BLTU = "bltu"
    BGEU = "bgeu"
    JAL = "jal"  # rd <- return index; pc <- target
    JALR = "jalr"  # rd <- return index; pc <- rs1 + imm

    # Misc.
    MEMBAR = "membar"
    NOP = "nop"
    HALT = "halt"

    @classmethod
    def from_mnemonic(cls, text: str) -> "Op":
        """Parse an assembly mnemonic (case-insensitive)."""
        try:
            return cls(text.lower())
        except ValueError:
            raise KeyError(text)

    @property
    def op_class(self) -> OpClass:
        return _OP_CLASS[self]


_ALU_OPS = {
    Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR,
    Op.SLL, Op.SRL, Op.SRA, Op.SLT, Op.SLTU,
    Op.ADDI, Op.ANDI, Op.ORI, Op.XORI,
    Op.SLLI, Op.SRLI, Op.SRAI, Op.SLTI, Op.MOVI,
}

_BRANCH_OPS = {Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLTU, Op.BGEU}

_OP_CLASS = {}
for _op in Op:
    if _op in _ALU_OPS:
        _OP_CLASS[_op] = OpClass.ALU
    elif _op is Op.MUL:
        _OP_CLASS[_op] = OpClass.MUL
    elif _op in (Op.DIV, Op.REM):
        _OP_CLASS[_op] = OpClass.DIV
    elif _op is Op.LD:
        _OP_CLASS[_op] = OpClass.LOAD
    elif _op is Op.ST:
        _OP_CLASS[_op] = OpClass.STORE
    elif _op in _BRANCH_OPS:
        _OP_CLASS[_op] = OpClass.BRANCH
    elif _op is Op.JAL:
        _OP_CLASS[_op] = OpClass.JUMP
    elif _op is Op.JALR:
        _OP_CLASS[_op] = OpClass.JUMP_INDIRECT
    elif _op is Op.MEMBAR:
        _OP_CLASS[_op] = OpClass.BARRIER
    elif _op is Op.PREFETCH:
        _OP_CLASS[_op] = OpClass.PREFETCH
    elif _op is Op.NOP:
        _OP_CLASS[_op] = OpClass.NOP
    elif _op is Op.HALT:
        _OP_CLASS[_op] = OpClass.HALT
    else:  # pragma: no cover - exhaustiveness guard
        raise AssertionError(f"unclassified opcode {_op}")


# ALU forms whose second operand is the instruction immediate rather
# than rs2 (the "i"-suffixed forms plus MOVI, which reads nothing).
IMM_ALU_OPS = {
    Op.ADDI, Op.ANDI, Op.ORI, Op.XORI,
    Op.SLLI, Op.SRLI, Op.SRAI, Op.SLTI, Op.MOVI,
}

# Opcodes whose result register is written (reads below are separate).
WRITES_RD = _ALU_OPS | {Op.MUL, Op.DIV, Op.REM, Op.LD, Op.JAL, Op.JALR}

# Opcodes that read rs1 / rs2 (MOVI reads nothing; branches read both).
READS_RS1 = (
    (_ALU_OPS - {Op.MOVI})
    | {Op.MUL, Op.DIV, Op.REM, Op.LD, Op.ST, Op.PREFETCH, Op.JALR}
    | _BRANCH_OPS
)
READS_RS2 = {
    Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.REM, Op.AND, Op.OR, Op.XOR,
    Op.SLL, Op.SRL, Op.SRA, Op.SLT, Op.SLTU, Op.ST,
} | _BRANCH_OPS

# Control-flow opcodes (anything that may change the next PC).
CONTROL_OPS = _BRANCH_OPS | {Op.JAL, Op.JALR}
BRANCH_OPS = frozenset(_BRANCH_OPS)
