"""A small 64-bit RISC ISA used by every core model in the library.

The ISA is deliberately SPARC/RISC-flavoured but minimal: 32 integer
registers (``r0`` hardwired to zero), 64-bit words, loads/stores,
conditional branches, direct and indirect jumps, a memory barrier and a
software prefetch.  SST is ISA-agnostic — the mechanism operates on
register dataflow and memory dependences — so this small ISA exercises
every code path of the core models.

Public surface:

* :class:`~repro.isa.opcodes.Op` — the opcode enumeration and its
  classification helpers.
* :class:`~repro.isa.instruction.Instruction` — one decoded instruction.
* :class:`~repro.isa.program.Program` — instructions + labels + initial
  data image.
* :func:`~repro.isa.assembler.assemble` — text assembly → ``Program``.
* :class:`~repro.isa.interpreter.Interpreter` — the functional golden
  model every timing core is validated against.
"""

from repro.isa.opcodes import Op, OpClass
from repro.isa.registers import (
    REG_COUNT,
    ZERO_REG,
    RA_REG,
    SP_REG,
    reg_name,
    parse_reg,
)
from repro.isa.instruction import Instruction
from repro.isa.program import Program, DataWord
from repro.isa.assembler import assemble
from repro.isa.interpreter import Interpreter, ArchState, run_program

__all__ = [
    "Op",
    "OpClass",
    "REG_COUNT",
    "ZERO_REG",
    "RA_REG",
    "SP_REG",
    "reg_name",
    "parse_reg",
    "Instruction",
    "Program",
    "DataWord",
    "assemble",
    "Interpreter",
    "ArchState",
    "run_program",
]
