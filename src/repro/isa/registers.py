"""Register-file naming for the small RISC ISA.

32 general-purpose 64-bit registers.  ``r0`` always reads zero and
ignores writes (like SPARC ``%g0``).  Two conventional aliases exist:
``ra`` (return address, r31) and ``sp`` (stack pointer, r30).
"""

from __future__ import annotations

from repro.errors import AssemblyError

REG_COUNT = 32
ZERO_REG = 0
SP_REG = 30
RA_REG = 31

_ALIASES = {
    "zero": ZERO_REG,
    "sp": SP_REG,
    "ra": RA_REG,
}


def reg_name(index: int) -> str:
    """Canonical assembly name for a register index."""
    if not 0 <= index < REG_COUNT:
        raise ValueError(f"register index out of range: {index}")
    return f"r{index}"


def parse_reg(text: str) -> int:
    """Parse ``r17`` / ``zero`` / ``ra`` / ``sp`` into an index.

    Raises :class:`AssemblyError` on anything else.
    """
    name = text.strip().lower()
    if name in _ALIASES:
        return _ALIASES[name]
    if name.startswith("r") and name[1:].isdigit():
        index = int(name[1:])
        if 0 <= index < REG_COUNT:
            return index
    raise AssemblyError(f"not a register: {text!r}")
