"""Two-pass text assembler for the small RISC ISA.

Syntax (one instruction per line, ``;`` or ``#`` start comments)::

    ; data image: consecutive 64-bit words from a base address
    .data 0x1000: 7 8 9

    start:
        movi  r1, 0x1000
        ld    r2, 8(r1)        ; r2 <- mem[r1 + 8]
        addi  r3, r2, -1
        st    r3, 0(r1)
        beq   r3, zero, done
        jal   ra, start
    done:
        halt

Branch/jump targets are labels; the assembler resolves them to absolute
instruction indices.  Errors carry the offending line number and text.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from repro.errors import AssemblyError
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op, OpClass
from repro.isa.program import DataWord, Program
from repro.isa.registers import parse_reg

_MEM_OPERAND = re.compile(r"^(?P<imm>[^()]+)\((?P<reg>[^()]+)\)$")
_LABEL_DEF = re.compile(r"^(?P<label>[A-Za-z_.$][\w.$]*):(?P<rest>.*)$")
_DATA_DIRECTIVE = re.compile(r"^\.data\s+(?P<addr>\S+)\s*:\s*(?P<words>.*)$")


def _parse_int(text: str, line_number: int, line: str) -> int:
    try:
        return int(text.strip(), 0)
    except ValueError:
        raise AssemblyError(f"not an integer: {text!r}", line_number, line)


def _split_operands(rest: str) -> List[str]:
    rest = rest.strip()
    if not rest:
        return []
    return [part.strip() for part in rest.split(",")]


def _strip_comment(line: str) -> str:
    for marker in (";", "#"):
        at = line.find(marker)
        if at >= 0:
            line = line[:at]
    return line.strip()


def assemble(source: str, name: str = "program") -> Program:
    """Assemble ``source`` into a :class:`Program`.

    Raises :class:`AssemblyError` with the line number on any problem.
    """
    pending: List[Tuple[int, str, str, List[str]]] = []  # line no, line, mnemonic, operands
    labels: Dict[str, int] = {}
    data: List[DataWord] = []

    for line_number, raw in enumerate(source.splitlines(), start=1):
        line = _strip_comment(raw)
        if not line:
            continue

        directive = _DATA_DIRECTIVE.match(line)
        if directive:
            addr = _parse_int(directive.group("addr"), line_number, raw)
            for offset, word_text in enumerate(directive.group("words").split()):
                value = _parse_int(word_text, line_number, raw)
                data.append(DataWord(addr + 8 * offset, value & (2**64 - 1)))
            continue

        label_match = _LABEL_DEF.match(line)
        if label_match:
            label = label_match.group("label")
            if label in labels:
                raise AssemblyError(f"duplicate label {label!r}", line_number, raw)
            labels[label] = len(pending)
            line = label_match.group("rest").strip()
            if not line:
                continue

        parts = line.split(None, 1)
        mnemonic = parts[0]
        operands = _split_operands(parts[1]) if len(parts) > 1 else []
        pending.append((line_number, raw, mnemonic, operands))

    instructions = [
        _encode(line_number, raw, mnemonic, operands, labels)
        for line_number, raw, mnemonic, operands in pending
    ]
    program = Program(instructions, labels=labels, data=data, name=name)
    program.validate()
    return program


def _resolve_target(
    text: str, labels: Dict[str, int], line_number: int, line: str
) -> Tuple[int, str]:
    """A branch target is a label or a bare instruction index."""
    token = text.strip()
    if token in labels:
        return labels[token], token
    try:
        return int(token, 0), token
    except ValueError:
        raise AssemblyError(f"undefined label {token!r}", line_number, line)


def _mem_operand(text: str, line_number: int, line: str) -> Tuple[int, int]:
    """Parse ``imm(reg)`` into ``(imm, reg_index)``."""
    match = _MEM_OPERAND.match(text.strip())
    if not match:
        raise AssemblyError(
            f"expected imm(reg) memory operand, got {text!r}", line_number, line
        )
    imm = _parse_int(match.group("imm"), line_number, line)
    try:
        reg = parse_reg(match.group("reg"))
    except AssemblyError as exc:
        raise AssemblyError(str(exc), line_number, line)
    return imm, reg


def _encode(
    line_number: int,
    line: str,
    mnemonic: str,
    operands: List[str],
    labels: Dict[str, int],
) -> Instruction:
    try:
        op = Op.from_mnemonic(mnemonic)
    except KeyError:
        raise AssemblyError(f"unknown opcode {mnemonic!r}", line_number, line)

    def need(count: int) -> None:
        if len(operands) != count:
            raise AssemblyError(
                f"{op.value} takes {count} operand(s), got {len(operands)}",
                line_number,
                line,
            )

    def reg(index: int) -> int:
        try:
            return parse_reg(operands[index])
        except AssemblyError as exc:
            raise AssemblyError(str(exc), line_number, line)

    cls = op.op_class
    if op is Op.MOVI:
        need(2)
        return Instruction(op, rd=reg(0), imm=_parse_int(operands[1], line_number, line))
    if cls is OpClass.LOAD:
        need(2)
        imm, base = _mem_operand(operands[1], line_number, line)
        return Instruction(op, rd=reg(0), rs1=base, imm=imm)
    if cls is OpClass.STORE:
        need(2)
        imm, base = _mem_operand(operands[1], line_number, line)
        return Instruction(op, rs2=reg(0), rs1=base, imm=imm)
    if cls is OpClass.PREFETCH:
        need(1)
        imm, base = _mem_operand(operands[0], line_number, line)
        return Instruction(op, rs1=base, imm=imm)
    if cls is OpClass.BRANCH:
        need(3)
        target, label = _resolve_target(operands[2], labels, line_number, line)
        return Instruction(op, rs1=reg(0), rs2=reg(1), target=target, label=label)
    if op is Op.JAL:
        need(2)
        target, label = _resolve_target(operands[1], labels, line_number, line)
        return Instruction(op, rd=reg(0), target=target, label=label)
    if op is Op.JALR:
        need(3)
        return Instruction(
            op, rd=reg(0), rs1=reg(1), imm=_parse_int(operands[2], line_number, line)
        )
    if op in (Op.MEMBAR, Op.NOP, Op.HALT):
        need(0)
        return Instruction(op)
    # Remaining: ALU.  Immediate forms end in "i".
    if op.value.endswith("i"):
        need(3)
        return Instruction(
            op, rd=reg(0), rs1=reg(1), imm=_parse_int(operands[2], line_number, line)
        )
    need(3)
    return Instruction(op, rd=reg(0), rs1=reg(1), rs2=reg(2))
