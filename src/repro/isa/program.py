"""Program container: instructions, labels, and an initial data image.

A :class:`Program` is what workload generators produce and what every
core consumes.  The data image is a list of :class:`DataWord` records so
that generators can lay out heaps, linked lists and tables without
touching a memory model directly.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import ReproError
from repro.isa.instruction import Instruction
from repro.regress.semid import line_digest

WORD_SIZE = 8  # bytes per architectural word


@dataclasses.dataclass(frozen=True)
class DataWord:
    """One initialised 64-bit word of the data image."""

    addr: int
    value: int

    def __post_init__(self) -> None:
        if self.addr % WORD_SIZE != 0:
            raise ReproError(f"data word at misaligned address {self.addr:#x}")


class Program:
    """An assembled program: instruction list + labels + data image.

    Instances are conceptually immutable once built; workload generators
    construct them through :class:`ProgramBuilder` or the assembler.
    """

    def __init__(
        self,
        instructions: List[Instruction],
        labels: Optional[Dict[str, int]] = None,
        data: Optional[Iterable[DataWord]] = None,
        name: str = "program",
        secret_ranges: Optional[Iterable[Tuple[int, int]]] = None,
    ):
        self.instructions: List[Instruction] = list(instructions)
        self.labels: Dict[str, int] = dict(labels or {})
        self.data: List[DataWord] = list(data or [])
        self.name = name
        # Half-open [start, end) byte ranges of the data image that hold
        # secret values, for the speculative-leak taint analysis
        # (repro.analysis.taint).  Empty for ordinary programs.
        self.secret_ranges: Tuple[Tuple[int, int], ...] = tuple(
            sorted((int(start), int(end)) for start, end in (secret_ranges or ()))
        )
        for start, end in self.secret_ranges:
            if start % WORD_SIZE or end % WORD_SIZE or end <= start:
                raise ReproError(
                    f"bad secret range [{start:#x}, {end:#x}): ranges must "
                    f"be non-empty and word-aligned"
                )
        self._fingerprint: Optional[str] = None
        self._shape_fingerprint: Optional[str] = None

    @property
    def has_secrets(self) -> bool:
        return bool(self.secret_ranges)

    def is_secret_addr(self, addr: int) -> bool:
        """Does the word at ``addr`` overlap a declared secret range?"""
        for start, end in self.secret_ranges:
            if start < addr + WORD_SIZE and addr < end:
                return True
        return False

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    def fingerprint(self) -> str:
        """Content identity: a SHA-256 over the instruction stream, the
        initial data image, and the program name.

        Two programs with the same fingerprint produce identical runs on
        identical machines, which is what makes the fingerprint usable
        as part of a content-addressed result-cache key (labels are
        excluded — they are disassembly cosmetics with no architectural
        effect).  The digest is memoized; programs are immutable once
        built.  Hashing routes through the shared semantic-ID scheme
        (:func:`repro.regress.semid.line_digest`), bit-compatible with
        every fingerprint minted before the unification.
        """
        if self._fingerprint is None:
            self._fingerprint = line_digest(self._fingerprint_lines())
        return self._fingerprint

    def _fingerprint_lines(self) -> Iterator[str]:
        yield f"program:{self.name}"
        for inst in self.instructions:
            yield (
                f"i:{inst.op.value}:{inst.rd}:{inst.rs1}:{inst.rs2}:"
                f"{inst.imm}:{inst.target}"
            )
        for word in self.data:
            yield f"d:{word.addr}:{word.value}"
        # Secret annotations change what the taint analysis reports,
        # so they are part of content identity — but only when
        # present, so every pre-existing fingerprint is unchanged.
        for start, end in self.secret_ranges:
            yield f"s:{start}:{end}"

    def shape_fingerprint(self) -> str:
        """Code-*shape* identity: a SHA-256 over the instruction stream
        with immediates, data image and name excluded.

        Two programs share a shape fingerprint exactly when they have
        the same opcodes, register operands and branch targets at every
        PC — i.e. the same control-flow graph and the same dataflow
        wiring — and differ only in immediate values and initial data.
        That is the lane-compatibility contract of the vectorized
        ensemble backend (:mod:`repro.sim.ensemble`): parameter-varied
        instances of one workload generator share a shape, so one set of
        batched block kernels can execute all of them in lockstep.
        Memoized like :meth:`fingerprint`.
        """
        if self._shape_fingerprint is None:
            self._shape_fingerprint = line_digest(
                f"s:{inst.op.value}:{inst.rd}:{inst.rs1}:{inst.rs2}:"
                f"{inst.target}"
                for inst in self.instructions
            )
        return self._shape_fingerprint

    def label_of(self, index: int) -> Optional[str]:
        """Reverse label lookup (first match), for disassembly."""
        for name, at in self.labels.items():
            if at == index:
                return name
        return None

    def disassemble(self) -> str:
        """A printable listing with labels, for debugging and examples."""
        lines = []
        for index, inst in enumerate(self.instructions):
            label = self.label_of(index)
            if label is not None:
                lines.append(f"{label}:")
            lines.append(f"  {index:5d}  {inst}")
        return "\n".join(lines)

    def validate(self) -> None:
        """Check structural sanity: targets in range, ends in HALT.

        Raises :class:`ReproError` on the first problem found.
        """
        from repro.isa.opcodes import Op, OpClass

        if not self.instructions:
            raise ReproError("empty program")
        for index, inst in enumerate(self.instructions):
            if inst.op_class in (OpClass.BRANCH, OpClass.JUMP):
                if not 0 <= inst.target < len(self.instructions):
                    raise ReproError(
                        f"instruction {index} targets {inst.target}, "
                        f"outside program of length {len(self.instructions)}"
                    )
        if not any(inst.op is Op.HALT for inst in self.instructions):
            raise ReproError("program has no HALT instruction")
