"""Programmatic program construction for workload generators.

The assembler is convenient for humans; generators that compute loop
bounds and data layouts are cleaner with a builder that handles label
back-patching::

    b = ProgramBuilder("countdown")
    b.movi(1, 10)
    loop = b.label("loop")
    b.addi(1, 1, -1)
    b.bne(1, 0, "loop")
    b.halt()
    program = b.build()

Labels may be referenced before they are defined; ``build()`` patches
all forward references and validates the result.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Union

from repro.errors import ReproError
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op, OpClass
from repro.isa.program import DataWord, Program

_MASK64 = 2**64 - 1

LabelOrIndex = Union[str, int]


class ProgramBuilder:
    """Accumulates instructions, labels and data words, then builds."""

    def __init__(self, name: str = "program"):
        self.name = name
        self._instructions: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._data: List[DataWord] = []
        self._fixups: List[Tuple[int, str]] = []  # (instr index, label)
        self._secret_ranges: List[Tuple[int, int]] = []

    # ------------------------------------------------------------------
    # Structure.
    # ------------------------------------------------------------------

    def label(self, name: str) -> int:
        """Define ``name`` at the current position; returns the index."""
        if name in self._labels:
            raise ReproError(f"duplicate label {name!r}")
        self._labels[name] = len(self._instructions)
        return self._labels[name]

    def data_word(self, addr: int, value: int) -> None:
        self._data.append(DataWord(addr, value & _MASK64))

    def data_words(self, addr: int, values) -> None:
        for offset, value in enumerate(values):
            self.data_word(addr + 8 * offset, value)

    def mark_secret(self, start: int, end: int) -> None:
        """Declare the half-open byte range ``[start, end)`` of the data
        image secret, for the speculative-leak taint analysis."""
        self._secret_ranges.append((start, end))

    def secret_words(self, addr: int, values) -> None:
        """Lay out ``values`` at ``addr`` and mark the range secret."""
        values = list(values)
        self.data_words(addr, values)
        self.mark_secret(addr, addr + 8 * len(values))

    @property
    def here(self) -> int:
        """Index the next emitted instruction will occupy."""
        return len(self._instructions)

    def _emit(self, inst: Instruction) -> int:
        self._instructions.append(inst)
        return len(self._instructions) - 1

    def _emit_targeted(self, op: Op, target: LabelOrIndex, **fields) -> int:
        if isinstance(target, str):
            index = self._emit(Instruction(op, target=0, label=target, **fields))
            self._fixups.append((index, target))
            return index
        return self._emit(Instruction(op, target=target, **fields))

    # ------------------------------------------------------------------
    # Instruction emitters (thin, one per opcode family).
    # ------------------------------------------------------------------

    def alu(self, op: Op, rd: int, rs1: int, rs2: int) -> int:
        return self._emit(Instruction(op, rd=rd, rs1=rs1, rs2=rs2))

    def alui(self, op: Op, rd: int, rs1: int, imm: int) -> int:
        return self._emit(Instruction(op, rd=rd, rs1=rs1, imm=imm))

    def add(self, rd: int, rs1: int, rs2: int) -> int:
        return self.alu(Op.ADD, rd, rs1, rs2)

    def sub(self, rd: int, rs1: int, rs2: int) -> int:
        return self.alu(Op.SUB, rd, rs1, rs2)

    def mul(self, rd: int, rs1: int, rs2: int) -> int:
        return self.alu(Op.MUL, rd, rs1, rs2)

    def div(self, rd: int, rs1: int, rs2: int) -> int:
        return self.alu(Op.DIV, rd, rs1, rs2)

    def and_(self, rd: int, rs1: int, rs2: int) -> int:
        return self.alu(Op.AND, rd, rs1, rs2)

    def or_(self, rd: int, rs1: int, rs2: int) -> int:
        return self.alu(Op.OR, rd, rs1, rs2)

    def xor(self, rd: int, rs1: int, rs2: int) -> int:
        return self.alu(Op.XOR, rd, rs1, rs2)

    def sll(self, rd: int, rs1: int, rs2: int) -> int:
        return self.alu(Op.SLL, rd, rs1, rs2)

    def slt(self, rd: int, rs1: int, rs2: int) -> int:
        return self.alu(Op.SLT, rd, rs1, rs2)

    def addi(self, rd: int, rs1: int, imm: int) -> int:
        return self.alui(Op.ADDI, rd, rs1, imm)

    def andi(self, rd: int, rs1: int, imm: int) -> int:
        return self.alui(Op.ANDI, rd, rs1, imm)

    def ori(self, rd: int, rs1: int, imm: int) -> int:
        return self.alui(Op.ORI, rd, rs1, imm)

    def xori(self, rd: int, rs1: int, imm: int) -> int:
        return self.alui(Op.XORI, rd, rs1, imm)

    def slli(self, rd: int, rs1: int, imm: int) -> int:
        return self.alui(Op.SLLI, rd, rs1, imm)

    def srli(self, rd: int, rs1: int, imm: int) -> int:
        return self.alui(Op.SRLI, rd, rs1, imm)

    def slti(self, rd: int, rs1: int, imm: int) -> int:
        return self.alui(Op.SLTI, rd, rs1, imm)

    def movi(self, rd: int, imm: int) -> int:
        return self._emit(Instruction(Op.MOVI, rd=rd, imm=imm))

    def ld(self, rd: int, base: int, imm: int = 0) -> int:
        return self._emit(Instruction(Op.LD, rd=rd, rs1=base, imm=imm))

    def st(self, rs2: int, base: int, imm: int = 0) -> int:
        return self._emit(Instruction(Op.ST, rs2=rs2, rs1=base, imm=imm))

    def prefetch(self, base: int, imm: int = 0) -> int:
        return self._emit(Instruction(Op.PREFETCH, rs1=base, imm=imm))

    def branch(self, op: Op, rs1: int, rs2: int, target: LabelOrIndex) -> int:
        if op.op_class is not OpClass.BRANCH:
            raise ReproError(f"{op} is not a branch")
        return self._emit_targeted(op, target, rs1=rs1, rs2=rs2)

    def beq(self, rs1: int, rs2: int, target: LabelOrIndex) -> int:
        return self.branch(Op.BEQ, rs1, rs2, target)

    def bne(self, rs1: int, rs2: int, target: LabelOrIndex) -> int:
        return self.branch(Op.BNE, rs1, rs2, target)

    def blt(self, rs1: int, rs2: int, target: LabelOrIndex) -> int:
        return self.branch(Op.BLT, rs1, rs2, target)

    def bge(self, rs1: int, rs2: int, target: LabelOrIndex) -> int:
        return self.branch(Op.BGE, rs1, rs2, target)

    def bltu(self, rs1: int, rs2: int, target: LabelOrIndex) -> int:
        return self.branch(Op.BLTU, rs1, rs2, target)

    def bgeu(self, rs1: int, rs2: int, target: LabelOrIndex) -> int:
        return self.branch(Op.BGEU, rs1, rs2, target)

    def jal(self, rd: int, target: LabelOrIndex) -> int:
        return self._emit_targeted(Op.JAL, target, rd=rd)

    def jalr(self, rd: int, rs1: int, imm: int = 0) -> int:
        return self._emit(Instruction(Op.JALR, rd=rd, rs1=rs1, imm=imm))

    def membar(self) -> int:
        return self._emit(Instruction(Op.MEMBAR))

    def nop(self) -> int:
        return self._emit(Instruction(Op.NOP))

    def halt(self) -> int:
        return self._emit(Instruction(Op.HALT))

    # ------------------------------------------------------------------
    # Finalisation.
    # ------------------------------------------------------------------

    def build(self) -> Program:
        """Patch label references and return a validated Program."""
        instructions = list(self._instructions)
        for index, label in self._fixups:
            if label not in self._labels:
                raise ReproError(f"undefined label {label!r}")
            old = instructions[index]
            instructions[index] = Instruction(
                old.op,
                rd=old.rd,
                rs1=old.rs1,
                rs2=old.rs2,
                imm=old.imm,
                target=self._labels[label],
                label=label,
            )
        program = Program(
            instructions, labels=dict(self._labels), data=list(self._data),
            name=self.name, secret_ranges=list(self._secret_ranges),
        )
        program.validate()
        return program
