"""The decoded instruction record shared by all models.

An :class:`Instruction` is immutable; the timing cores wrap it in their
own dynamic-instance records rather than mutating it.  PCs and branch
targets are *instruction indices* (not byte addresses) — the ISA has no
binary encoding, which removes an irrelevant layer from the models.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

from repro.isa.opcodes import (
    Op,
    OpClass,
    WRITES_RD,
    READS_RS1,
    READS_RS2,
    CONTROL_OPS,
    BRANCH_OPS,
)
from repro.isa.registers import reg_name


@dataclasses.dataclass(frozen=True)
class Instruction:
    """One decoded instruction.

    Fields that an opcode does not use are left at their defaults and
    ignored.  ``target`` is the resolved absolute instruction index for
    branches and ``JAL``; the assembler fills it in from labels.
    """

    op: Op
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    target: int = 0
    # Original label text, kept purely for disassembly readability.
    label: Optional[str] = None

    # ------------------------------------------------------------------
    # Static properties used by every core model.
    # ------------------------------------------------------------------

    @property
    def op_class(self) -> OpClass:
        return self.op.op_class

    @property
    def writes_reg(self) -> bool:
        """True if the instruction architecturally writes ``rd``.

        Writes to ``r0`` still count here; the register file discards
        them, which keeps dependence tracking uniform (cores must check
        for the zero register themselves).
        """
        return self.op in WRITES_RD

    def source_regs(self) -> Tuple[int, ...]:
        """The register operands this instruction reads, in rs1,rs2 order."""
        sources = []
        if self.op in READS_RS1:
            sources.append(self.rs1)
        if self.op in READS_RS2:
            sources.append(self.rs2)
        return tuple(sources)

    @property
    def is_control(self) -> bool:
        return self.op in CONTROL_OPS

    @property
    def is_cond_branch(self) -> bool:
        return self.op in BRANCH_OPS

    @property
    def is_load(self) -> bool:
        return self.op is Op.LD

    @property
    def is_store(self) -> bool:
        return self.op is Op.ST

    @property
    def is_mem(self) -> bool:
        return self.op in (Op.LD, Op.ST)

    # ------------------------------------------------------------------
    # Disassembly.
    # ------------------------------------------------------------------

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        op = self.op
        cls = self.op_class
        tgt = self.label if self.label is not None else str(self.target)
        if op is Op.MOVI:
            return f"movi {reg_name(self.rd)}, {self.imm}"
        if cls is OpClass.LOAD:
            return f"ld {reg_name(self.rd)}, {self.imm}({reg_name(self.rs1)})"
        if cls is OpClass.STORE:
            return f"st {reg_name(self.rs2)}, {self.imm}({reg_name(self.rs1)})"
        if cls is OpClass.PREFETCH:
            return f"prefetch {self.imm}({reg_name(self.rs1)})"
        if cls is OpClass.BRANCH:
            return (
                f"{op.value} {reg_name(self.rs1)}, {reg_name(self.rs2)}, {tgt}"
            )
        if op is Op.JAL:
            return f"jal {reg_name(self.rd)}, {tgt}"
        if op is Op.JALR:
            return f"jalr {reg_name(self.rd)}, {reg_name(self.rs1)}, {self.imm}"
        if op in (Op.MEMBAR, Op.NOP, Op.HALT):
            return op.value
        # Register-immediate ALU forms end in "i" (except movi, handled).
        if op.value.endswith("i"):
            return f"{op.value} {reg_name(self.rd)}, {reg_name(self.rs1)}, {self.imm}"
        return (
            f"{op.value} {reg_name(self.rd)}, "
            f"{reg_name(self.rs1)}, {reg_name(self.rs2)}"
        )
