"""The decoded instruction record shared by all models.

An :class:`Instruction` is immutable; the timing cores wrap it in their
own dynamic-instance records rather than mutating it.  PCs and branch
targets are *instruction indices* (not byte addresses) — the ISA has no
binary encoding, which removes an irrelevant layer from the models.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

from repro.isa.opcodes import (
    Op,
    OpClass,
    IMM_ALU_OPS,
    WRITES_RD,
    READS_RS1,
    READS_RS2,
    CONTROL_OPS,
    BRANCH_OPS,
)
from repro.isa.registers import reg_name
from repro.isa.semantics import alu_fn_for, branch_fn_for


@dataclasses.dataclass(frozen=True)
class Instruction:
    """One decoded instruction.

    Fields that an opcode does not use are left at their defaults and
    ignored.  ``target`` is the resolved absolute instruction index for
    branches and ``JAL``; the assembler fills it in from labels.

    Decode metadata (``op_class``, ``writes_reg``, the source-register
    tuple, ...) is computed once at construction and stored on the
    instance: the simulation cycle loops consult these on every issue,
    and precomputing them replaces repeated enum-map and membership
    lookups on the hot path with plain attribute reads.
    """

    op: Op
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    target: int = 0
    # Original label text, kept purely for disassembly readability.
    label: Optional[str] = None

    # Precomputed decode metadata (derived, excluded from eq/repr).
    op_class: OpClass = dataclasses.field(init=False, repr=False,
                                          compare=False, default=None)
    writes_reg: bool = dataclasses.field(init=False, repr=False,
                                         compare=False, default=False)
    reads_rs1: bool = dataclasses.field(init=False, repr=False,
                                        compare=False, default=False)
    reads_rs2: bool = dataclasses.field(init=False, repr=False,
                                        compare=False, default=False)
    sources: Tuple[int, ...] = dataclasses.field(init=False, repr=False,
                                                 compare=False, default=())
    is_control: bool = dataclasses.field(init=False, repr=False,
                                         compare=False, default=False)
    is_cond_branch: bool = dataclasses.field(init=False, repr=False,
                                             compare=False, default=False)
    is_load: bool = dataclasses.field(init=False, repr=False,
                                      compare=False, default=False)
    is_store: bool = dataclasses.field(init=False, repr=False,
                                       compare=False, default=False)
    is_mem: bool = dataclasses.field(init=False, repr=False,
                                     compare=False, default=False)
    # ALU form whose second operand is the immediate (incl. MOVI):
    # resolved once here so the per-instruction semantic dispatch never
    # inspects opcode spellings on the hot path.
    alu_uses_imm: bool = dataclasses.field(init=False, repr=False,
                                           compare=False, default=False)
    # Semantic handlers resolved at decode (module-level functions, so
    # decoded programs stay picklable): the two-operand ALU evaluator
    # and the branch condition.  None for opcodes without one.
    alu_fn: Optional[object] = dataclasses.field(init=False, repr=False,
                                                 compare=False, default=None)
    branch_fn: Optional[object] = dataclasses.field(init=False, repr=False,
                                                    compare=False,
                                                    default=None)

    def __post_init__(self) -> None:
        op = self.op
        set_attr = object.__setattr__  # frozen dataclass
        set_attr(self, "op_class", op.op_class)
        # Writes to ``r0`` still count as register writes; the register
        # file discards them, which keeps dependence tracking uniform
        # (cores must check for the zero register themselves).
        set_attr(self, "writes_reg", op in WRITES_RD)
        reads_rs1 = op in READS_RS1
        reads_rs2 = op in READS_RS2
        set_attr(self, "reads_rs1", reads_rs1)
        set_attr(self, "reads_rs2", reads_rs2)
        sources = []
        if reads_rs1:
            sources.append(self.rs1)
        if reads_rs2:
            sources.append(self.rs2)
        set_attr(self, "sources", tuple(sources))
        set_attr(self, "is_control", op in CONTROL_OPS)
        set_attr(self, "is_cond_branch", op in BRANCH_OPS)
        set_attr(self, "is_load", op is Op.LD)
        set_attr(self, "is_store", op is Op.ST)
        set_attr(self, "is_mem", op is Op.LD or op is Op.ST)
        set_attr(self, "alu_uses_imm", op in IMM_ALU_OPS)
        set_attr(self, "alu_fn", alu_fn_for(op))
        set_attr(self, "branch_fn", branch_fn_for(op))

    def source_regs(self) -> Tuple[int, ...]:
        """The register operands this instruction reads, in rs1,rs2 order."""
        return self.sources

    # ------------------------------------------------------------------
    # Disassembly.
    # ------------------------------------------------------------------

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        op = self.op
        cls = self.op_class
        tgt = self.label if self.label is not None else str(self.target)
        if op is Op.MOVI:
            return f"movi {reg_name(self.rd)}, {self.imm}"
        if cls is OpClass.LOAD:
            return f"ld {reg_name(self.rd)}, {self.imm}({reg_name(self.rs1)})"
        if cls is OpClass.STORE:
            return f"st {reg_name(self.rs2)}, {self.imm}({reg_name(self.rs1)})"
        if cls is OpClass.PREFETCH:
            return f"prefetch {self.imm}({reg_name(self.rs1)})"
        if cls is OpClass.BRANCH:
            return (
                f"{op.value} {reg_name(self.rs1)}, {reg_name(self.rs2)}, {tgt}"
            )
        if op is Op.JAL:
            return f"jal {reg_name(self.rd)}, {tgt}"
        if op is Op.JALR:
            return f"jalr {reg_name(self.rd)}, {reg_name(self.rs1)}, {self.imm}"
        if op in (Op.MEMBAR, Op.NOP, Op.HALT):
            return op.value
        # Register-immediate ALU forms end in "i" (except movi, handled).
        if op.value.endswith("i"):
            return f"{op.value} {reg_name(self.rd)}, {reg_name(self.rs1)}, {self.imm}"
        return (
            f"{op.value} {reg_name(self.rd)}, "
            f"{reg_name(self.rs1)}, {reg_name(self.rs2)}"
        )
