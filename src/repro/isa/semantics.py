"""Pure arithmetic/branch semantics shared by *every* execution engine.

The functional interpreter, the in-order core, the OoO core and the SST
core all call these helpers, so a semantic fix lands everywhere at once
— and the golden-model equivalence tests cannot be fooled by two copies
of the same bug.

Values are 64-bit and stored as unsigned Python ints in ``[0, 2**64)``.
Division follows the RISC-V convention: quotient of x/0 is all-ones,
remainder of x/0 is x; overflow of INT_MIN / -1 wraps.
"""

from __future__ import annotations

from repro.errors import SimulatorInvariantError
from repro.isa.opcodes import Op

MASK64 = 2**64 - 1
SIGN_BIT = 1 << 63


def to_signed(value: int) -> int:
    """Reinterpret an unsigned 64-bit value as signed."""
    return value - (1 << 64) if value & SIGN_BIT else value


def to_unsigned(value: int) -> int:
    """Wrap any Python int into the unsigned 64-bit domain."""
    return value & MASK64


def alu_result(op: Op, a: int, b: int) -> int:
    """Result of a register-register or register-immediate ALU op.

    ``b`` is the second register value or the (already substituted)
    immediate.  Returns an unsigned 64-bit value.
    """
    if op in (Op.ADD, Op.ADDI):
        return (a + b) & MASK64
    if op is Op.SUB:
        return (a - b) & MASK64
    if op is Op.MUL:
        return (a * b) & MASK64
    if op is Op.DIV:
        if to_unsigned(b) == 0:
            return MASK64
        quotient = int(to_signed(a) / to_signed(to_unsigned(b)))
        return to_unsigned(quotient)
    if op is Op.REM:
        if to_unsigned(b) == 0:
            return a
        sa, sb = to_signed(a), to_signed(to_unsigned(b))
        return to_unsigned(sa - sb * int(sa / sb))
    if op in (Op.AND, Op.ANDI):
        return a & to_unsigned(b)
    if op in (Op.OR, Op.ORI):
        return a | to_unsigned(b)
    if op in (Op.XOR, Op.XORI):
        return a ^ to_unsigned(b)
    if op in (Op.SLL, Op.SLLI):
        return (a << (to_unsigned(b) & 63)) & MASK64
    if op in (Op.SRL, Op.SRLI):
        return a >> (to_unsigned(b) & 63)
    if op in (Op.SRA, Op.SRAI):
        return to_unsigned(to_signed(a) >> (to_unsigned(b) & 63))
    if op in (Op.SLT, Op.SLTI):
        return 1 if to_signed(a) < to_signed(to_unsigned(b)) else 0
    if op is Op.SLTU:
        return 1 if a < to_unsigned(b) else 0
    if op is Op.MOVI:
        return to_unsigned(b)
    raise SimulatorInvariantError(f"alu_result called with non-ALU op {op}")


def branch_taken(op: Op, a: int, b: int) -> bool:
    """Condition outcome of a conditional branch."""
    if op is Op.BEQ:
        return a == b
    if op is Op.BNE:
        return a != b
    if op is Op.BLT:
        return to_signed(a) < to_signed(b)
    if op is Op.BGE:
        return to_signed(a) >= to_signed(b)
    if op is Op.BLTU:
        return a < b
    if op is Op.BGEU:
        return a >= b
    raise SimulatorInvariantError(f"branch_taken called with non-branch op {op}")


def effective_address(base: int, imm: int) -> int:
    """Load/store/prefetch effective address (wraps at 64 bits)."""
    return (base + imm) & MASK64


def compute_value(inst, a: int = 0, b: int = 0) -> int:
    """ALU result of ``inst`` given its register operand values.

    ``a`` is rs1's value, ``b`` is rs2's value; immediate forms ignore
    ``b`` and use the instruction's immediate.  This is the single entry
    point all cores use, so immediate-vs-register selection cannot
    diverge between models.
    """
    op = inst.op
    if op is Op.MOVI:
        return alu_result(op, 0, inst.imm)
    if op.value.endswith("i"):
        return alu_result(op, a, inst.imm)
    return alu_result(op, a, b)
