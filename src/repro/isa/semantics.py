"""Pure arithmetic/branch semantics shared by *every* execution engine.

The functional interpreter, the in-order core, the OoO core and the SST
core all call these helpers, so a semantic fix lands everywhere at once
— and the golden-model equivalence tests cannot be fooled by two copies
of the same bug.

Values are 64-bit and stored as unsigned Python ints in ``[0, 2**64)``.
Division follows the RISC-V convention: quotient of x/0 is all-ones,
remainder of x/0 is x; overflow of INT_MIN / -1 wraps.

Dispatch is table-driven: each opcode maps to one module-level function
(picklable, so decoded programs still cross process boundaries).  The
cores call these once per simulated instruction, so the old
if-chain/string-suffix dispatch was a measurable fraction of total
simulation time.
"""

from __future__ import annotations

from repro.errors import SimulatorInvariantError
from repro.isa.opcodes import Op

MASK64 = 2**64 - 1
SIGN_BIT = 1 << 63


def to_signed(value: int) -> int:
    """Reinterpret an unsigned 64-bit value as signed."""
    return value - (1 << 64) if value & SIGN_BIT else value


def to_unsigned(value: int) -> int:
    """Wrap any Python int into the unsigned 64-bit domain."""
    return value & MASK64


# ----------------------------------------------------------------------
# ALU op implementations (b is the second register value or the already
# substituted immediate, exactly as alu_result documents).
# ----------------------------------------------------------------------

def _add(a, b):
    return (a + b) & MASK64


def _sub(a, b):
    return (a - b) & MASK64


def _mul(a, b):
    return (a * b) & MASK64


def _div(a, b):
    if (b & MASK64) == 0:
        return MASK64
    quotient = int(to_signed(a) / to_signed(b & MASK64))
    return quotient & MASK64


def _rem(a, b):
    if (b & MASK64) == 0:
        return a
    sa, sb = to_signed(a), to_signed(b & MASK64)
    return (sa - sb * int(sa / sb)) & MASK64


def _and(a, b):
    return a & (b & MASK64)


def _or(a, b):
    return a | (b & MASK64)


def _xor(a, b):
    return a ^ (b & MASK64)


def _sll(a, b):
    return (a << (b & 63)) & MASK64


def _srl(a, b):
    return a >> (b & 63)


def _sra(a, b):
    return (to_signed(a) >> (b & 63)) & MASK64


def _slt(a, b):
    return 1 if to_signed(a) < to_signed(b & MASK64) else 0


def _sltu(a, b):
    return 1 if a < (b & MASK64) else 0


def _movi(a, b):
    return b & MASK64


_ALU_FN = {
    Op.ADD: _add, Op.ADDI: _add,
    Op.SUB: _sub,
    Op.MUL: _mul,
    Op.DIV: _div,
    Op.REM: _rem,
    Op.AND: _and, Op.ANDI: _and,
    Op.OR: _or, Op.ORI: _or,
    Op.XOR: _xor, Op.XORI: _xor,
    Op.SLL: _sll, Op.SLLI: _sll,
    Op.SRL: _srl, Op.SRLI: _srl,
    Op.SRA: _sra, Op.SRAI: _sra,
    Op.SLT: _slt, Op.SLTI: _slt,
    Op.SLTU: _sltu,
    Op.MOVI: _movi,
}


def alu_fn_for(op: Op):
    """The raw two-operand ALU handler for ``op`` (None for non-ALU).

    Decode stores the result on :class:`~repro.isa.instruction.
    Instruction` (``alu_fn``), so the cycle loops dispatch with a plain
    attribute read instead of an enum-keyed table probe per dynamic
    instruction.
    """
    return _ALU_FN.get(op)


def alu_result(op: Op, a: int, b: int) -> int:
    """Result of a register-register or register-immediate ALU op.

    ``b`` is the second register value or the (already substituted)
    immediate.  Returns an unsigned 64-bit value.
    """
    fn = _ALU_FN.get(op)
    if fn is None:
        raise SimulatorInvariantError(f"alu_result called with non-ALU op {op}")
    return fn(a, b)


# ----------------------------------------------------------------------
# Branch conditions.
# ----------------------------------------------------------------------

def _beq(a, b):
    return a == b


def _bne(a, b):
    return a != b


def _blt(a, b):
    return to_signed(a) < to_signed(b)


def _bge(a, b):
    return to_signed(a) >= to_signed(b)


def _bltu(a, b):
    return a < b


def _bgeu(a, b):
    return a >= b


_BRANCH_FN = {
    Op.BEQ: _beq, Op.BNE: _bne,
    Op.BLT: _blt, Op.BGE: _bge,
    Op.BLTU: _bltu, Op.BGEU: _bgeu,
}


def branch_fn_for(op: Op):
    """The raw condition handler for ``op`` (None for non-branches);
    stored at decode as ``Instruction.branch_fn`` (see
    :func:`alu_fn_for`)."""
    return _BRANCH_FN.get(op)


def branch_taken(op: Op, a: int, b: int) -> bool:
    """Condition outcome of a conditional branch."""
    fn = _BRANCH_FN.get(op)
    if fn is None:
        raise SimulatorInvariantError(
            f"branch_taken called with non-branch op {op}"
        )
    return fn(a, b)


def effective_address(base: int, imm: int) -> int:
    """Load/store/prefetch effective address (wraps at 64 bits)."""
    return (base + imm) & MASK64


def compute_value(inst, a: int = 0, b: int = 0) -> int:
    """ALU result of ``inst`` given its register operand values.

    ``a`` is rs1's value, ``b`` is rs2's value; immediate forms ignore
    ``b`` and use the instruction's immediate.  This is the single entry
    point all cores use, so immediate-vs-register selection cannot
    diverge between models — the choice is made once at decode and
    stored on the instruction (``alu_uses_imm``).
    """
    fn = inst.alu_fn
    if fn is None:
        raise SimulatorInvariantError(
            f"alu_result called with non-ALU op {inst.op}"
        )
    if inst.alu_uses_imm:
        return fn(a, inst.imm)
    return fn(a, b)
