"""Basic-block dispatch engine: decode-once block execution.

Every execution engine in the library used to re-touch the decoded
:class:`~repro.isa.instruction.Instruction` dataclass on each dynamic
instruction — an attribute walk plus enum identity chain that dominated
simulator throughput.  This module decodes a :class:`Program` exactly
once into two progressively cheaper forms:

* **rows** — one flat tuple per PC with integer kind codes and
  prebound semantic handlers, unpacked in a single statement by the
  timing cores' fetch/decode front-ends (no enum compares, no
  dataclass attribute reads on the hot path);
* **block functions** — per-basic-block Python functions generated
  from the program's CFG (reusing :mod:`repro.analysis.cfg`) and
  compiled with :func:`exec`, executed by the golden interpreter so a
  straight-line block costs one call instead of one dispatch per
  instruction.

Results are cached per process, keyed by ``Program.fingerprint()`` —
the same content hash the result cache uses — so two structurally
identical programs (e.g. rebuilt in a worker process) share one decode
and simulator cache keys / ``SIM_SCHEMA_VERSION`` are unaffected.

``REPRO_BLOCK_DISPATCH=0`` disables the engine: the process cache is
bypassed, the interpreter falls back to per-instruction :meth:`step`
dispatch, and :class:`~repro.core.sst_core.SSTCore` runs its reference
speculative loop.  Row decode itself is always available (it is pure
precomputed metadata, like ``Instruction.__post_init__``), which keeps
the on/off paths bit-identical by construction everywhere except the
generated code — and those are pinned by the differential tests.

Exactness notes for the generated interpreter blocks:

* dynamic stats are batched per block (counts are static per block),
  so a mid-block :class:`ExecutionError` (e.g. a dynamically
  misaligned load) may leave ``stats``/``state.pc`` reflecting the
  whole block where per-instruction stepping stops at the faulting
  instruction.  Post-exception observables are the only divergence;
  every successful run is bit-identical, as is every error *raised*.
* the interpreter's runaway budget is honoured exactly: a block is
  only dispatched when the whole block fits under ``max_steps``,
  otherwise execution falls back to stepping.
* ``JALR`` keeps the reference operation order (link register written
  before the range check raises) and pins ``state.pc`` before raising.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ExecutionError
from repro.isa.opcodes import Op, OpClass
from repro.isa.program import Program

ENV_FLAG = "REPRO_BLOCK_DISPATCH"

# ----------------------------------------------------------------------
# Integer kind codes (dense, ordered so ``kind < K_LOAD`` selects the
# three arithmetic classes with one comparison).
# ----------------------------------------------------------------------

K_ALU = 0
K_MUL = 1
K_DIV = 2
K_LOAD = 3
K_STORE = 4
K_PREFETCH = 5
K_BRANCH = 6
K_JUMP = 7
K_JUMP_INDIRECT = 8
K_BARRIER = 9
K_NOP = 10
K_HALT = 11

KIND_OF_CLASS = {
    OpClass.ALU: K_ALU,
    OpClass.MUL: K_MUL,
    OpClass.DIV: K_DIV,
    OpClass.LOAD: K_LOAD,
    OpClass.STORE: K_STORE,
    OpClass.PREFETCH: K_PREFETCH,
    OpClass.BRANCH: K_BRANCH,
    OpClass.JUMP: K_JUMP,
    OpClass.JUMP_INDIRECT: K_JUMP_INDIRECT,
    OpClass.BARRIER: K_BARRIER,
    OpClass.NOP: K_NOP,
    OpClass.HALT: K_HALT,
}

# Row field indices (``rows[pc]`` is one flat tuple per instruction).
R_KIND = 0
R_RD = 1
R_RS1 = 2
R_RS2 = 3
R_IMM = 4
R_TARGET = 5
R_FN = 6        # alu_fn for K_ALU/K_MUL/K_DIV, branch_fn for K_BRANCH
R_SOURCES = 7
R_WRITES = 8
R_USES_IMM = 9
R_INST = 10     # the original Instruction (cold paths, call/return checks)

Row = Tuple[int, int, int, int, int, int, Optional[Callable],
            Tuple[int, ...], bool, bool, object]

_MASK64_LIT = "0xFFFFFFFFFFFFFFFF"


def enabled() -> bool:
    """Block dispatch on?  Default on; ``REPRO_BLOCK_DISPATCH=0`` off."""
    return os.environ.get(ENV_FLAG, "1") != "0"


def decode_rows(program: Program) -> Tuple[Row, ...]:
    """Flat per-PC row tuples for ``program`` (uncached)."""
    kind_of = KIND_OF_CLASS
    rows: List[Row] = []
    for inst in program.instructions:
        kind = kind_of[inst.op_class]
        if kind <= K_DIV:
            fn = inst.alu_fn
        elif kind == K_BRANCH:
            fn = inst.branch_fn
        else:
            fn = None
        rows.append((kind, inst.rd, inst.rs1, inst.rs2, inst.imm,
                     inst.target, fn, inst.sources, inst.writes_reg,
                     inst.alu_uses_imm, inst))
    return tuple(rows)


# ----------------------------------------------------------------------
# Generated per-block interpreter functions.
# ----------------------------------------------------------------------

# ALU forms inlined as raw expressions ({a}/{b} substituted; the rest
# keep their prebound handler call for signed/division semantics).
_INLINE_ALU = {
    Op.ADD: "({a} + {b}) & " + _MASK64_LIT,
    Op.ADDI: "({a} + {b}) & " + _MASK64_LIT,
    Op.SUB: "({a} - {b}) & " + _MASK64_LIT,
    Op.MUL: "({a} * {b}) & " + _MASK64_LIT,
    Op.AND: "{a} & {b}",
    Op.ANDI: "{a} & {b}",
    Op.OR: "{a} | {b}",
    Op.ORI: "{a} | {b}",
    Op.XOR: "{a} ^ {b}",
    Op.XORI: "{a} ^ {b}",
    Op.SLL: "({a} << ({b} & 63)) & " + _MASK64_LIT,
    Op.SLLI: "({a} << ({b} & 63)) & " + _MASK64_LIT,
    Op.SRL: "{a} >> ({b} & 63)",
    Op.SRLI: "{a} >> ({b} & 63)",
}

_INLINE_BRANCH = {
    Op.BEQ: "{a} == {b}",
    Op.BNE: "{a} != {b}",
    Op.BLTU: "{a} < {b}",
    Op.BGEU: "{a} >= {b}",
}


def _alu_expr(pc: int, inst, namespace: dict) -> str:
    """Expression computing an arithmetic result (registers pre-read)."""
    a = f"regs[{inst.rs1}]"
    if inst.op is Op.MOVI:
        return str(inst.imm & 0xFFFFFFFFFFFFFFFF)
    if inst.alu_uses_imm:
        # The masked immediate is equivalent for every inlined form
        # (+, -, &, |, ^ are congruent mod 2**64; shifts mask to 63).
        b = str(inst.imm & 0xFFFFFFFFFFFFFFFF)
    else:
        b = f"regs[{inst.rs2}]"
    template = _INLINE_ALU.get(inst.op)
    if template is not None:
        return template.format(a=a, b=b)
    name = f"_h{pc}"
    namespace[name] = inst.alu_fn
    second = str(inst.imm) if inst.alu_uses_imm else b
    return f"{name}({a}, {second})"


def _emit_block(program: Program, start: int, end: int,
                lines: List[str], namespace: dict) -> None:
    insts = program.instructions
    n = len(insts)
    body: List[str] = []
    loads = stores = branches = jumps = 0
    for pc in range(start, end):
        inst = insts[pc]
        cls = inst.op_class
        if cls is OpClass.ALU or cls is OpClass.MUL or cls is OpClass.DIV:
            expr = _alu_expr(pc, inst, namespace)
            if inst.rd:
                body.append(f"    regs[{inst.rd}] = {expr}")
            else:
                # r0 writes are discarded but the reference still
                # evaluates the (pure, total) expression; keep it.
                body.append(f"    {expr}")
        elif cls is OpClass.LOAD:
            loads += 1
            addr = f"(regs[{inst.rs1}] + {inst.imm}) & {_MASK64_LIT}"
            if inst.rd:
                body.append(f"    regs[{inst.rd}] = mem_read({addr})")
            else:
                body.append(f"    mem_read({addr})")
        elif cls is OpClass.STORE:
            stores += 1
            addr = f"(regs[{inst.rs1}] + {inst.imm}) & {_MASK64_LIT}"
            body.append(f"    mem_write({addr}, regs[{inst.rs2}])")
        elif cls is OpClass.BRANCH:
            branches += 1
            template = _INLINE_BRANCH.get(inst.op)
            if template is not None:
                cond = template.format(a=f"regs[{inst.rs1}]",
                                       b=f"regs[{inst.rs2}]")
            else:
                name = f"_h{pc}"
                namespace[name] = inst.branch_fn
                cond = f"{name}(regs[{inst.rs1}], regs[{inst.rs2}])"
            body.append(f"    if {cond}:")
            body.append("        stats.branches_taken += 1")
            body.append(f"        return {inst.target}")
            body.append(f"    return {pc + 1}")
        elif cls is OpClass.JUMP:
            jumps += 1
            if inst.rd:
                body.append(f"    regs[{inst.rd}] = {pc + 1}")
            body.append(f"    return {inst.target}")
        elif cls is OpClass.JUMP_INDIRECT:
            jumps += 1
            body.append(
                f"    _a = (regs[{inst.rs1}] + {inst.imm}) & {_MASK64_LIT}"
            )
            if inst.rd:
                body.append(f"    regs[{inst.rd}] = {pc + 1}")
            body.append(f"    if _a >= {n}:")
            body.append(f"        state.pc = {pc}")
            body.append(
                "        raise _EE('indirect jump to %d outside program "
                f"at PC {pc}' % _a)"
            )
            body.append("    return _a")
        elif cls is OpClass.HALT:
            body.append(f"    state.pc = {pc}")
            body.append("    return None")
        # BARRIER / PREFETCH / NOP: no architectural effect, no stats.

    prologue = [f"def _b{start}(state, regs, mem_read, mem_write, stats):",
                f"    stats.instructions += {end - start}"]
    if loads:
        prologue.append(f"    stats.loads += {loads}")
    if stores:
        prologue.append(f"    stats.stores += {stores}")
    if branches:
        prologue.append(f"    stats.branches += {branches}")
    if jumps:
        prologue.append(f"    stats.jumps += {jumps}")
    lines.extend(prologue)
    lines.extend(body)
    last = insts[end - 1].op_class
    if last not in (OpClass.BRANCH, OpClass.JUMP, OpClass.JUMP_INDIRECT,
                    OpClass.HALT):
        # Fallthrough into the next leader (or off the end, where the
        # run loop's bounds check raises exactly like the reference).
        lines.append(f"    return {end}")
    lines.append("")


def compile_block_fns(
    program: Program, blocks: Tuple[Tuple[int, int], ...],
) -> Dict[int, Tuple[Callable, int]]:
    """exec-compile one function per basic block.

    Returns ``{leader_pc: (fn, block_length)}``; ``fn(state, regs,
    mem_read, mem_write, stats)`` executes the block and returns the
    next PC (``None`` after HALT).
    """
    namespace: dict = {"_EE": ExecutionError}
    lines: List[str] = []
    for start, end in blocks:
        _emit_block(program, start, end, lines, namespace)
    code = compile("\n".join(lines),
                   f"<blockcache:{program.name}>", "exec")
    exec(code, namespace)  # noqa: S102 - trusted, generated from the ISA
    return {start: (namespace[f"_b{start}"], end - start)
            for start, end in blocks}


# ----------------------------------------------------------------------
# The per-process block cache.
# ----------------------------------------------------------------------

class BlockProgram:
    """Everything decoded once for one program fingerprint."""

    __slots__ = ("rows", "blocks", "_program", "_block_fns")

    def __init__(self, program: Program):
        # Imported lazily: repro.analysis imports the ISA package, so a
        # module-level import here would be a cycle.
        from repro.analysis.cfg import CFG

        self._program = program
        self.blocks: Tuple[Tuple[int, int], ...] = tuple(
            (block.start, block.end) for block in CFG(program).blocks
        )
        self.rows = decode_rows(program)
        self._block_fns: Optional[Dict[int, Tuple[Callable, int]]] = None

    @property
    def block_fns(self) -> Dict[int, Tuple[Callable, int]]:
        """Generated interpreter block functions (compiled on demand)."""
        if self._block_fns is None:
            self._block_fns = compile_block_fns(self._program, self.blocks)
        return self._block_fns


_CACHE: Dict[str, BlockProgram] = {}


def get_block_program(program: Program) -> BlockProgram:
    """The process-cached :class:`BlockProgram` for ``program``.

    Keyed by content fingerprint, so equal programs share one decode
    regardless of instance identity and nothing about result-cache
    keying changes.
    """
    key = program.fingerprint()
    block_program = _CACHE.get(key)
    if block_program is None:
        block_program = BlockProgram(program)
        _CACHE[key] = block_program
    return block_program


def rows_for(program: Program) -> Tuple[Row, ...]:
    """Decoded rows for ``program``; process-cached when enabled."""
    if enabled():
        return get_block_program(program).rows
    return decode_rows(program)


def clear_cache() -> None:
    """Drop the process cache (tests and memory-sensitive callers)."""
    _CACHE.clear()
