"""Bandwidth-capped chip throughput.

The CMP argument: chip throughput = per-core IPC × core count, until
the cores' combined off-chip traffic saturates the memory channels.
Per-core bandwidth demand is *measured* from a single-core run (DRAM
line transfers per cycle), so miss-heavy workloads saturate early and
cache-resident ones scale linearly — no new simulation is needed.

This is the standard analytical multicore-scaling model (in the spirit
of the bandwidth-wall literature); coherence and shared-LLC contention
are out of scope (DESIGN.md).
"""

from __future__ import annotations

import dataclasses

from repro.baselines.core_base import CoreResult

LINE_BYTES = 64


@dataclasses.dataclass(frozen=True)
class ChipPoint:
    """Throughput of one chip configuration on one workload."""

    core_name: str
    program_name: str
    cores: int
    per_core_ipc: float
    per_core_bw: float  # bytes per cycle, single-core demand
    chip_bw_limit: float  # bytes per cycle available off-chip

    @property
    def bandwidth_demand(self) -> float:
        return self.cores * self.per_core_bw

    @property
    def bandwidth_bound(self) -> bool:
        return self.bandwidth_demand > self.chip_bw_limit

    @property
    def throughput(self) -> float:
        """Aggregate IPC, capped by the off-chip channels."""
        unconstrained = self.cores * self.per_core_ipc
        if not self.bandwidth_bound or self.per_core_bw == 0:
            return unconstrained
        return unconstrained * self.chip_bw_limit / self.bandwidth_demand


def measured_bandwidth(result: CoreResult) -> float:
    """Single-core off-chip demand in bytes/cycle (reads + writebacks)."""
    hierarchy = result.extra["hierarchy"]
    l2 = result.extra["l2"]
    transfers = hierarchy.demand_dram + l2.writebacks + l2.prefetch_fills
    if result.cycles == 0:
        return 0.0
    return transfers * LINE_BYTES / result.cycles


def chip_throughput(result: CoreResult, cores: int,
                    chip_bw_limit: float) -> ChipPoint:
    """Scale a single-core result to an N-core chip."""
    if cores < 1:
        raise ValueError("cores must be >= 1")
    if chip_bw_limit <= 0:
        raise ValueError("chip_bw_limit must be positive")
    return ChipPoint(
        core_name=result.core_name,
        program_name=result.program_name,
        cores=cores,
        per_core_ipc=result.ipc,
        per_core_bw=measured_bandwidth(result),
        chip_bw_limit=chip_bw_limit,
    )
