"""Event-based energy accounting.

Energy = Σ (event count × per-event weight) + leakage × cycles.

Event counts come from the statistics objects each core already attaches
to its :class:`~repro.baselines.core_base.CoreResult`; nothing is
re-simulated.  Weights are relative units, with the ratios that matter
encoded explicitly:

* CAM/broadcast structures (issue-queue wakeup, LSQ search, rename
  lookups) cost several times a plain RAM access — they are exactly the
  structures the paper calls "power-inefficient";
* SST's replacements are cheap RAM/flash-copy structures (a checkpoint
  is a flash copy amortised over the whole episode; DQ and store buffer
  are small RAMs with one CAM port on the SB);
* speculative work that gets *discarded* (failed episodes, scout) still
  costs its execution energy — SST's efficiency claim has to survive
  that accounting, and this model makes it pay honestly.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from repro.baselines.core_base import CoreResult


@dataclasses.dataclass(frozen=True)
class EnergyWeights:
    """Per-event energies (relative units) and per-cycle leakage."""

    # Common pipeline events.
    fetch_decode: float = 1.0  # per instruction entering the pipeline
    alu_op: float = 1.0
    branch_predictor: float = 0.4
    regfile_access: float = 0.3  # per operand read / result write

    # Memory system.
    l1_access: float = 2.0
    l2_access: float = 8.0
    dram_access: float = 80.0

    # Out-of-order structures (CAM / multiported, the expensive ones).
    rename_lookup: float = 2.5  # per dispatched instruction
    rob_entry: float = 1.5  # write + commit read
    iq_wakeup_select: float = 4.0  # broadcast across the window
    lsq_search: float = 3.5  # per memory instruction

    # SST structures (RAM-ish, the cheap replacements).
    checkpoint_take: float = 6.0  # flash copy, amortised per episode
    dq_entry: float = 1.0  # write at defer + read at replay
    sb_entry: float = 1.2  # insert + one CAM-limited lookup port
    na_bit_update: float = 0.1

    # Static power.
    leakage_per_cycle_inorder: float = 0.5
    leakage_per_cycle_sst: float = 0.7  # + checkpoints/DQ/SB arrays
    leakage_per_cycle_ooo: float = 1.6  # + rename/ROB/IQ/LSQ arrays


@dataclasses.dataclass
class EnergyBreakdown:
    """Total energy of one run, decomposed by source."""

    core_name: str
    program_name: str
    cycles: int
    instructions: int
    components: Dict[str, float]

    @property
    def total(self) -> float:
        return sum(self.components.values())

    @property
    def energy_per_instruction(self) -> float:
        return self.total / self.instructions if self.instructions else 0.0

    @property
    def energy_delay_squared(self) -> float:
        """ED² — the standard voltage-independent efficiency metric."""
        return self.total * self.cycles * self.cycles


def _common_components(result: CoreResult, weights: EnergyWeights,
                       executed: int) -> Dict[str, float]:
    hierarchy = result.extra["hierarchy"]
    l1 = result.extra["l1d"]
    l2 = result.extra["l2"]
    branch = result.extra["branch"]
    predictions = branch.cond_predictions + branch.indirect_predictions
    return {
        "pipeline": executed * (weights.fetch_decode
                                + weights.alu_op
                                + 3 * weights.regfile_access),
        "branch_predictor": predictions * weights.branch_predictor,
        "l1": l1.accesses * weights.l1_access,
        "l2": l2.accesses * weights.l2_access,
        "dram": hierarchy.demand_dram * weights.dram_access,
    }


def estimate_energy(result: CoreResult,
                    weights: EnergyWeights = EnergyWeights(),
                    ) -> EnergyBreakdown:
    """Energy of one finished run, dispatching on the core type."""
    if "sst" in result.extra:
        components = _sst_components(result, weights)
        leakage = weights.leakage_per_cycle_sst
    elif "ooo" in result.extra:
        components = _ooo_components(result, weights)
        leakage = weights.leakage_per_cycle_ooo
    else:
        components = _common_components(result, weights,
                                        executed=result.instructions)
        leakage = weights.leakage_per_cycle_inorder
    components["leakage"] = result.cycles * leakage
    return EnergyBreakdown(
        core_name=result.core_name,
        program_name=result.program_name,
        cycles=result.cycles,
        instructions=result.instructions,
        components=components,
    )


def _ooo_components(result: CoreResult,
                    weights: EnergyWeights) -> Dict[str, float]:
    ooo = result.extra["ooo"]
    executed = ooo.dispatched
    components = _common_components(result, weights, executed=executed)
    l1 = result.extra["l1d"]
    components["rename"] = executed * weights.rename_lookup
    components["rob"] = executed * weights.rob_entry
    components["issue_queue"] = executed * weights.iq_wakeup_select
    components["lsq"] = l1.accesses * weights.lsq_search
    return components


def _sst_components(result: CoreResult,
                    weights: EnergyWeights) -> Dict[str, float]:
    stats = result.extra["sst"]
    # Every issued instruction costs pipeline energy, including work
    # that is later discarded by a rollback or scout session.
    executed = (stats.normal_insts + stats.ahead_insts
                + stats.replay_insts)
    components = _common_components(result, weights, executed=executed)
    checkpoints = result.extra["checkpoints"]
    sb = result.extra["sb"]
    components["checkpoints"] = checkpoints.taken * weights.checkpoint_take
    components["deferred_queue"] = (
        (stats.deferred + stats.replay_insts) * weights.dq_entry
    )
    components["store_buffer"] = (
        (sb.appends + sb.forwards) * weights.sb_entry
    )
    components["na_bits"] = stats.deferred * weights.na_bit_update
    return components
