"""Structure-level core-area estimates.

Relative area units; an in-order scalar integer pipeline with its L1s
is the unit of account.  The intent is the paper's area argument:

* an OoO core pays for rename (multiported map + free list), a ROB, an
  issue-queue CAM, and an LSQ CAM — all of which grow superlinearly in
  ports/entries (modelled here as linear-in-entries with a CAM
  multiplier, conservative in the OoO core's favour);
* an SST core pays only for checkpoint register-file copies, the DQ
  RAM, and the store-buffer RAM+CAM — small adders on the in-order
  core.

``cores_per_die`` turns core area into the paper's CMP argument: how
many of each core fit in a fixed budget.
"""

from __future__ import annotations

import dataclasses

from repro.config import InOrderConfig, OoOConfig, SSTConfig

# Relative area of one architectural register (64 bits, modest ports).
_REG_AREA = 0.004


@dataclasses.dataclass(frozen=True)
class AreaWeights:
    """Areas in units of one scalar in-order core (pipeline + L1s)."""

    inorder_base: float = 1.0
    per_extra_width: float = 0.25  # second+ issue slot: ports, bypass

    # Out-of-order adders (per entry unless stated).
    rename_table: float = 0.15  # flat: map table + free list + ports
    rob_per_entry: float = 0.004
    iq_cam_per_entry: float = 0.012  # CAM-heavy
    lsq_cam_per_entry: float = 0.012

    # SST adders.
    checkpoint_per_copy: float = 32 * _REG_AREA  # one regfile flash copy
    dq_per_entry: float = 0.003  # RAM
    sb_per_entry: float = 0.006  # RAM + one CAM port


def inorder_area(config: InOrderConfig,
                 weights: AreaWeights = AreaWeights()) -> float:
    return (weights.inorder_base
            + (config.width - 1) * weights.per_extra_width)


def ooo_area(config: OoOConfig,
             weights: AreaWeights = AreaWeights()) -> float:
    base = (weights.inorder_base
            + (config.issue_width - 1) * weights.per_extra_width)
    return (base
            + weights.rename_table
            + config.rob_size * weights.rob_per_entry
            + config.iq_size * weights.iq_cam_per_entry
            + config.lsq_size * weights.lsq_cam_per_entry)


def sst_area(config: SSTConfig,
             weights: AreaWeights = AreaWeights()) -> float:
    base = (weights.inorder_base
            + (config.width - 1) * weights.per_extra_width)
    return (base
            + config.checkpoints * weights.checkpoint_per_copy
            + config.dq_size * weights.dq_per_entry
            + config.sb_size * weights.sb_per_entry)


def core_area(config, weights: AreaWeights = AreaWeights()) -> float:
    """Area of any core config (dispatch on type)."""
    if isinstance(config, InOrderConfig):
        return inorder_area(config, weights)
    if isinstance(config, OoOConfig):
        return ooo_area(config, weights)
    if isinstance(config, SSTConfig):
        return sst_area(config, weights)
    raise TypeError(f"not a core config: {type(config).__name__}")


def cores_per_die(config, die_budget: float,
                  weights: AreaWeights = AreaWeights()) -> int:
    """How many of these cores fit in ``die_budget`` area units."""
    if die_budget <= 0:
        raise ValueError("die_budget must be positive")
    return int(die_budget // core_area(config, weights))
