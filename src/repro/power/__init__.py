"""Energy, area, and chip-level throughput models.

The abstract's actual claim is not raw speed — it is that SST makes
*area- and power-efficient* cores for chip multiprocessors by
eliminating "complex and power-inefficient structures such as register
renaming logic, reorder buffers, memory disambiguation buffers, and
large issue windows".  This package quantifies that claim:

* :mod:`repro.power.energy` — event-based energy accounting on top of
  the statistics every core already reports (rename/IQ/ROB events for
  the OoO core, checkpoint/DQ/SB events for SST, cache/DRAM for all).
* :mod:`repro.power.area` — structure-level core area estimates and
  cores-per-die under a fixed budget.
* :mod:`repro.power.cmp` — a bandwidth-capped chip throughput model:
  many small cores win until shared DRAM bandwidth saturates.

All constants are *relative* units calibrated to published
rules-of-thumb (CAM and multi-ported RAM structures dominate), not
absolute joules/mm² — consistent with the library's shape-reproduction
goal.
"""

from repro.power.energy import (
    EnergyBreakdown,
    EnergyWeights,
    estimate_energy,
)
from repro.power.area import AreaWeights, core_area, cores_per_die
from repro.power.cmp import ChipPoint, chip_throughput

__all__ = [
    "EnergyBreakdown",
    "EnergyWeights",
    "estimate_energy",
    "AreaWeights",
    "core_area",
    "cores_per_die",
    "ChipPoint",
    "chip_throughput",
]
