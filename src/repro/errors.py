"""Exception hierarchy for the SST reproduction library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type at the API boundary.  The subclasses separate
user mistakes (bad assembly, bad configuration) from simulator-internal
invariant violations, which always indicate a library bug.
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class for every error raised by this library."""


class AssemblyError(ReproError):
    """The assembler rejected the source text (syntax, unknown opcode,
    undefined label, out-of-range operand)."""

    def __init__(self, message: str, line_number: int = 0, line: str = ""):
        self.line_number = line_number
        self.line = line
        if line_number:
            message = f"line {line_number}: {message}: {line!r}"
        super().__init__(message)


class ConfigError(ReproError):
    """A configuration value is out of its legal range or the combination
    of values is inconsistent (e.g. zero checkpoints with SST enabled)."""


class ProgramLintError(ReproError):
    """Strict-mode verification rejected a program.

    Raised by :func:`repro.analysis.proglint.check_program` (and the
    build-time verification of the workload generators) when the static
    verifier reports one or more diagnostics.  ``diagnostics`` carries
    the structured findings.
    """

    def __init__(self, diagnostics, program_name: str = ""):
        self.diagnostics = list(diagnostics)
        self.program_name = program_name
        listing = "\n".join(f"  {diag}" for diag in self.diagnostics)
        super().__init__(
            f"program {program_name!r} failed static verification with "
            f"{len(self.diagnostics)} diagnostic(s):\n{listing}"
        )


class ExecutionError(ReproError):
    """The simulated program performed an illegal operation (misaligned
    access, division by zero, jump outside the program, runaway loop)."""


class SimulatorInvariantError(ReproError):
    """An internal consistency check of a timing model failed.

    This never indicates a problem with the simulated program; it means
    the simulator itself is broken and should be reported as a bug.
    """


class SanitizerError(SimulatorInvariantError):
    """The microarchitectural sanitizer caught an invariant violation.

    Raised only when ``REPRO_SANITIZE`` is enabled (see
    :mod:`repro.analysis.sanitizer`).  The message always carries the
    failing invariant plus cycle/strand context, so a violation deep in
    a long run is attributable without re-running under a debugger.
    """

    def __init__(self, invariant: str, detail: str, *,
                 core: str = "", cycle: Optional[int] = None,
                 strand: str = ""):
        self.invariant = invariant
        self.detail = detail
        self.core = core
        self.cycle = cycle
        self.strand = strand
        context = []
        if core:
            context.append(f"core={core}")
        if cycle is not None:
            context.append(f"cycle={cycle}")
        if strand:
            context.append(f"strand={strand}")
        suffix = f" [{', '.join(context)}]" if context else ""
        super().__init__(f"sanitizer: {invariant}: {detail}{suffix}")


class TaintError(SimulatorInvariantError):
    """The dynamic taint tracker observed a speculative-leak event the
    static taint pass did not predict.

    The static analysis (:mod:`repro.analysis.taint`) is a conservative
    may-analysis, so every dynamically observed tainted transient cache
    fill must fall inside its gadget set.  A dynamic observation outside
    that set means one of the two sides is wrong — a hard error.  The
    reverse direction (static gadget never observed) is ordinary
    imprecision and is reported, not raised.  Raised only when
    ``REPRO_TAINT`` is enabled (see :mod:`repro.analysis.taint_tracker`).
    """

    def __init__(self, detail: str, *, core: str = "", program: str = ""):
        self.detail = detail
        self.core = core
        self.program = program
        context = []
        if core:
            context.append(f"core={core}")
        if program:
            context.append(f"program={program}")
        suffix = f" [{', '.join(context)}]" if context else ""
        super().__init__(f"taint: {detail}{suffix}")
