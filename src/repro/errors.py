"""Exception hierarchy for the SST reproduction library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type at the API boundary.  The subclasses separate
user mistakes (bad assembly, bad configuration) from simulator-internal
invariant violations, which always indicate a library bug.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class AssemblyError(ReproError):
    """The assembler rejected the source text (syntax, unknown opcode,
    undefined label, out-of-range operand)."""

    def __init__(self, message: str, line_number: int = 0, line: str = ""):
        self.line_number = line_number
        self.line = line
        if line_number:
            message = f"line {line_number}: {message}: {line!r}"
        super().__init__(message)


class ConfigError(ReproError):
    """A configuration value is out of its legal range or the combination
    of values is inconsistent (e.g. zero checkpoints with SST enabled)."""


class ExecutionError(ReproError):
    """The simulated program performed an illegal operation (misaligned
    access, division by zero, jump outside the program, runaway loop)."""


class SimulatorInvariantError(ReproError):
    """An internal consistency check of a timing model failed.

    This never indicates a problem with the simulated program; it means
    the simulator itself is broken and should be reported as a bug.
    """
