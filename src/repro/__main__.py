"""``python -m repro`` — same entry point as the ``repro`` console script."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
