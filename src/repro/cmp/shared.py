"""Per-core hierarchies sharing an L2, DRAM channel and prefetcher.

Each core gets its own :class:`~repro.memory.hierarchy.MemoryHierarchy`
(private L1I/L1D/MSHRs/TLB) whose L2-side structures are aliased to one
shared set of objects.  Coherence is out of scope (DESIGN.md): the
cores run *independent programs* over disjoint heaps, so only capacity,
MSHR and bandwidth contention are architecturally meaningful — and
those are exactly what the shared objects provide.
"""

from __future__ import annotations

from typing import List

from repro.config import HierarchyConfig
from repro.errors import ConfigError
from repro.memory.hierarchy import MemoryHierarchy


def build_shared_hierarchies(config: HierarchyConfig, cores: int, *,
                             share_l1: bool = False,
                             ) -> List[MemoryHierarchy]:
    """``cores`` hierarchies with private L1s and one shared L2/DRAM.

    ``share_l1=True`` additionally shares the L1s and their MSHRs —
    the model of two *hardware threads on one core* (ROCK runs two
    strands per core, usable either as two application threads or as
    one thread's ahead+replay pair; see experiment E18).  Thread
    contexts on one core contend for the same cache, so no address
    displacement is applied between them in that mode.
    """
    if cores < 1:
        raise ConfigError("cores must be >= 1")
    hierarchies = [MemoryHierarchy(config) for _ in range(cores)]
    shared = hierarchies[0]
    for index, hierarchy in enumerate(hierarchies):
        # Displace each core's physical address space so private data
        # cannot falsely share lines in shared tag structures.  Thread
        # contexts sharing an L1 keep the displacement too: they run
        # *different programs* whose identical generator addresses are
        # logically distinct data.
        hierarchy.addr_offset = index << 44
        if hierarchy is not shared:
            hierarchy.l2 = shared.l2
            hierarchy.l2_mshr = shared.l2_mshr
            hierarchy.dram = shared.dram
            hierarchy.prefetcher = shared.prefetcher
            if share_l1:
                hierarchy.l1d = shared.l1d
                hierarchy.l1i = shared.l1i
                hierarchy.l1d_mshr = shared.l1d_mshr
                hierarchy.l1i_mshr = shared.l1i_mshr
                hierarchy.dtlb = shared.dtlb
    return hierarchies
