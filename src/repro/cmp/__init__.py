"""Chip-multiprocessor simulation.

ROCK is a CMP of SST cores; this package runs *multiprogrammed*
multicore simulations: N cores (any SST-family configuration — the
zero-checkpoint degenerate is the in-order core) with private L1s and
TLBs, sharing one L2, one DRAM channel, and one L2 prefetcher.

Cores are interleaved in bounded-skew time quanta via
:meth:`repro.core.sst_core.SSTCore.advance`, so shared-structure
contention (L2 capacity, L2 MSHRs, DRAM bandwidth) is simulated, not
modelled analytically — the analytic model in :mod:`repro.power.cmp`
can be validated against it (experiment E17).
"""

from repro.cmp.shared import build_shared_hierarchies
from repro.cmp.multicore import Multicore, MulticoreResult

__all__ = ["build_shared_hierarchies", "Multicore", "MulticoreResult"]
