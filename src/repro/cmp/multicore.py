"""Quantum-interleaved multiprogrammed multicore simulation.

The scheduler repeatedly advances the core with the *smallest local
clock* by one time quantum, so accesses to the shared L2/DRAM arrive in
near-global time order: cross-core ordering skew is bounded by the
quantum (the hierarchy's timing contract tolerates bounded skew; see
``tests/cmp`` for the single-core-equivalence check).

Throughput accounting follows the multiprogrammed convention: each
core's IPC is measured over its own completion time, and chip
throughput is the sum — the same metric the analytic model in
:mod:`repro.power.cmp` predicts, which experiment E17 cross-validates.
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import List, Optional, Sequence

from repro.baselines.core_base import CoreResult, DEFAULT_MAX_INSTRUCTIONS
from repro.cmp.shared import build_shared_hierarchies
from repro.config import HierarchyConfig, SSTConfig
from repro.core.sst_core import SSTCore
from repro.errors import ConfigError
from repro.isa.program import Program

DEFAULT_QUANTUM = 200


@dataclasses.dataclass
class MulticoreResult:
    """Outcome of one multiprogrammed run."""

    per_core: List[CoreResult]
    quantum: int
    # Scheduler observability: idle quanta the scheduler telescoped into
    # single clock jumps instead of advancing quantum by quantum.
    idle_quanta_skipped: int = 0

    @property
    def cores(self) -> int:
        return len(self.per_core)

    @property
    def makespan(self) -> int:
        return max(result.cycles for result in self.per_core)

    @property
    def aggregate_ipc(self) -> float:
        """Sum of per-core IPCs (the throughput metric)."""
        return sum(result.ipc for result in self.per_core)

    @property
    def total_instructions(self) -> int:
        return sum(result.instructions for result in self.per_core)


class Multicore:
    """N SST-family cores over a shared L2/DRAM."""

    def __init__(self, hierarchy: HierarchyConfig,
                 core_configs: Sequence[SSTConfig],
                 programs: Sequence[Program],
                 quantum: int = DEFAULT_QUANTUM,
                 share_l1: bool = False):
        if not core_configs:
            raise ConfigError("need at least one core")
        if len(core_configs) != len(programs):
            raise ConfigError(
                f"{len(core_configs)} cores but {len(programs)} programs"
            )
        if quantum < 1:
            raise ConfigError("quantum must be >= 1")
        self.quantum = quantum
        # Retained verbatim so the run's semantic identity — the
        # baseline-firewall key over (hierarchy, cores, programs,
        # quantum, sharing) — can be derived after construction.
        self.hierarchy_config = hierarchy
        self.core_configs: Sequence[SSTConfig] = tuple(core_configs)
        self.programs: Sequence[Program] = tuple(programs)
        self.share_l1 = share_l1
        self.hierarchies = build_shared_hierarchies(
            hierarchy, len(core_configs), share_l1=share_l1
        )
        self.cores: List[SSTCore] = [
            SSTCore(program, private, config)
            for program, private, config
            in zip(programs, self.hierarchies, core_configs)
        ]

    def run(self, max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
            max_cycles: Optional[int] = None) -> MulticoreResult:
        """Interleave all cores to completion."""
        # Min-heap of (local clock, index); ties broken by index so the
        # schedule is deterministic.
        heap = [(core.cycle, index) for index, core in enumerate(self.cores)]
        heapq.heapify(heap)
        results: List[Optional[CoreResult]] = [None] * len(self.cores)
        remaining = len(self.cores)
        quantum = self.quantum
        skipped_quanta = 0
        while remaining:
            clock, index = heapq.heappop(heap)
            core = self.cores[index]
            if max_cycles is not None and clock >= max_cycles:
                raise ConfigError(
                    f"core {index} exceeded max_cycles={max_cycles}"
                )
            until = clock + quantum
            if max_cycles is None:
                hint = core.next_event_hint
                if hint > until:
                    # The core cannot issue, commit, or touch the shared
                    # hierarchy before ``hint``: telescope the idle
                    # quanta into one clock jump.  The jump lands on the
                    # exact lockstep boundary the quantum-by-quantum
                    # schedule would reach (``clock + k*quantum``) and
                    # performs zero shared-hierarchy accesses, so the
                    # cross-core access interleaving — and therefore
                    # every simulated cycle count — is unchanged.
                    # (Disabled under ``max_cycles``, which is checked
                    # at every quantum boundary.)
                    skip = (hint - clock) // quantum
                    until = clock + skip * quantum
                    skipped_quanta += skip - 1
            halted = core.advance(until, max_instructions)
            if halted:
                result = core.finalize()
                result.core_name = f"core{index}-{core.config.mode_name}"
                results[index] = result
                remaining -= 1
            else:
                heapq.heappush(heap, (core.cycle, index))
        return MulticoreResult(per_core=list(results), quantum=self.quantum,
                               idle_quanta_skipped=skipped_quanta)
