"""All machine configuration, as validated dataclasses.

Everything a simulation depends on is named here and nowhere else:
cache geometry, DRAM latency/bandwidth, branch-predictor choice,
functional-unit latencies, and the per-core structural parameters
(checkpoint count, deferred-queue depth, store-buffer depth, ROB/IQ/LSQ
sizes...).  The presets at the bottom mirror the machine points the
paper compares: a ROCK-like SST core, the same pipeline restricted to
execute-ahead / scout / plain in-order, and out-of-order cores of
increasing size ("larger and higher-powered" comparators).

Every dataclass validates itself in ``__post_init__`` and raises
:class:`~repro.errors.ConfigError` on bad values, so a mistyped sweep
fails immediately instead of producing a silently wrong machine.
"""

from __future__ import annotations

import dataclasses
import enum
import os
from typing import Optional

from repro.errors import ConfigError


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


def _is_pow2(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


# ---------------------------------------------------------------------------
# Memory system.
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    size_bytes: int
    assoc: int
    line_bytes: int = 64
    hit_latency: int = 1
    mshr_entries: int = 8

    def __post_init__(self) -> None:
        _require(_is_pow2(self.line_bytes), "line_bytes must be a power of two")
        _require(self.line_bytes >= 8, "line_bytes must hold a 64-bit word")
        _require(self.assoc >= 1, "assoc must be >= 1")
        _require(self.size_bytes >= self.line_bytes * self.assoc,
                 "cache smaller than one set")
        sets = self.size_bytes // (self.line_bytes * self.assoc)
        _require(_is_pow2(sets),
                 f"number of sets must be a power of two, got {sets}")
        _require(self.hit_latency >= 0, "hit_latency must be >= 0")
        _require(self.mshr_entries >= 1, "mshr_entries must be >= 1")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.assoc)


@dataclasses.dataclass(frozen=True)
class DRAMConfig:
    """Main memory: flat latency plus a bandwidth limit.

    ``min_interval`` is the minimum number of cycles between the starts
    of two DRAM accesses (a token-bucket bandwidth model); 0 disables
    the limit.
    """

    latency: int = 300
    min_interval: int = 4

    def __post_init__(self) -> None:
        _require(self.latency >= 1, "DRAM latency must be >= 1")
        _require(self.min_interval >= 0, "min_interval must be >= 0")


class PrefetcherKind(enum.Enum):
    NONE = "none"
    NEXT_LINE = "next_line"
    STRIDE = "stride"


@dataclasses.dataclass(frozen=True)
class PrefetcherConfig:
    kind: PrefetcherKind = PrefetcherKind.NONE
    degree: int = 1
    # Stride table entries (stride prefetcher only).
    table_entries: int = 64

    def __post_init__(self) -> None:
        _require(self.degree >= 1, "prefetch degree must be >= 1")
        _require(self.table_entries >= 1, "table_entries must be >= 1")


@dataclasses.dataclass(frozen=True)
class TLBConfig:
    """Data TLB: fully-associative translation cache with a fixed
    table-walk latency (see :mod:`repro.memory.tlb`)."""

    entries: int = 64
    page_bytes: int = 8192
    walk_latency: int = 120

    def __post_init__(self) -> None:
        _require(self.entries >= 1, "TLB entries must be >= 1")
        _require(self.page_bytes >= 64 and _is_pow2(self.page_bytes),
                 "page_bytes must be a power of two >= 64")
        _require(self.walk_latency >= 1, "walk_latency must be >= 1")


@dataclasses.dataclass(frozen=True)
class HierarchyConfig:
    """The full L1D/L1I/L2/DRAM stack one core sees."""

    l1d: CacheConfig = CacheConfig(size_bytes=32 * 1024, assoc=4,
                                   hit_latency=2, mshr_entries=8)
    l1i: CacheConfig = CacheConfig(size_bytes=32 * 1024, assoc=4,
                                   hit_latency=1, mshr_entries=4)
    l2: CacheConfig = CacheConfig(size_bytes=2 * 1024 * 1024, assoc=8,
                                  hit_latency=20, mshr_entries=16)
    dram: DRAMConfig = DRAMConfig()
    l2_prefetcher: PrefetcherConfig = PrefetcherConfig()
    # Data TLB; None disables translation timing entirely.
    tlb: Optional[TLBConfig] = None
    # Instruction fetch modelling is optional; commercial traces have
    # bigger I-footprints, but the SST mechanism is D-side, and the
    # workload generators emit small loops.  Off by default.
    model_ifetch: bool = False

    def l2_miss_latency(self) -> int:
        """Unloaded latency of a full miss to DRAM (for defer thresholds)."""
        return self.l1d.hit_latency + self.l2.hit_latency + self.dram.latency


# ---------------------------------------------------------------------------
# Branch prediction.
# ---------------------------------------------------------------------------


class PredictorKind(enum.Enum):
    ALWAYS_TAKEN = "taken"
    ALWAYS_NOT_TAKEN = "not_taken"
    BIMODAL = "bimodal"
    GSHARE = "gshare"
    TOURNAMENT = "tournament"  # bimodal vs gshare with a chooser


@dataclasses.dataclass(frozen=True)
class BranchPredictorConfig:
    kind: PredictorKind = PredictorKind.GSHARE
    table_bits: int = 12
    history_bits: int = 10
    btb_entries: int = 512
    ras_entries: int = 8
    mispredict_penalty: int = 8

    def __post_init__(self) -> None:
        _require(1 <= self.table_bits <= 24, "table_bits out of range")
        _require(0 <= self.history_bits <= self.table_bits,
                 "history_bits must be <= table_bits")
        _require(_is_pow2(self.btb_entries), "btb_entries must be a power of two")
        _require(self.ras_entries >= 1, "ras_entries must be >= 1")
        _require(self.mispredict_penalty >= 0, "penalty must be >= 0")


# ---------------------------------------------------------------------------
# Functional-unit latencies (shared by every core).
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class LatencyConfig:
    alu: int = 1
    mul: int = 6
    div: int = 24

    def __post_init__(self) -> None:
        _require(self.alu >= 1 and self.mul >= 1 and self.div >= 1,
                 "latencies must be >= 1")


# ---------------------------------------------------------------------------
# Cores.
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class InOrderConfig:
    """Scoreboarded in-order core (stall-on-use)."""

    width: int = 2
    latencies: LatencyConfig = LatencyConfig()
    predictor: BranchPredictorConfig = BranchPredictorConfig()

    def __post_init__(self) -> None:
        _require(1 <= self.width <= 8, "width out of range")


@dataclasses.dataclass(frozen=True)
class OoOConfig:
    """Classical out-of-order core: rename + ROB + IQ + LSQ.

    This is the paper's comparator.  ``perfect_disambiguation`` lets the
    LSQ speculate loads past unresolved stores with an oracle (an upper
    bound for the OoO core, making the SST comparison conservative).
    """

    fetch_width: int = 4
    issue_width: int = 4
    commit_width: int = 4
    rob_size: int = 128
    iq_size: int = 48
    lsq_size: int = 48
    latencies: LatencyConfig = LatencyConfig()
    predictor: BranchPredictorConfig = BranchPredictorConfig()
    perfect_disambiguation: bool = False

    def __post_init__(self) -> None:
        _require(self.fetch_width >= 1, "fetch_width must be >= 1")
        _require(self.issue_width >= 1, "issue_width must be >= 1")
        _require(self.commit_width >= 1, "commit_width must be >= 1")
        _require(self.rob_size >= 2, "rob_size must be >= 2")
        _require(self.iq_size >= 1, "iq_size must be >= 1")
        _require(self.lsq_size >= 1, "lsq_size must be >= 1")
        _require(self.iq_size <= self.rob_size, "iq_size cannot exceed rob_size")
        _require(self.lsq_size <= self.rob_size, "lsq_size cannot exceed rob_size")


class DeferTrigger(enum.Enum):
    """Which load events start speculation in the SST core."""

    L1_MISS = "l1_miss"  # defer on any L1D miss
    L2_MISS = "l2_miss"  # defer only on misses that go to DRAM


@dataclasses.dataclass(frozen=True)
class SSTConfig:
    """The SST/ROCK core (the paper's contribution).

    * ``checkpoints=0`` with ``scout_enabled=False`` degenerates to the
      plain in-order pipeline.
    * ``checkpoints=1, scout_only=True`` is hardware scout (run ahead
      purely for prefetch, always roll back).
    * ``checkpoints=1`` is execute-ahead (EA): replay stalls the ahead
      strand.
    * ``checkpoints>=2`` is full SST: the deferred strand replays
      *simultaneously* with continued ahead execution.
    """

    width: int = 2
    checkpoints: int = 2
    dq_size: int = 64
    sb_size: int = 32
    defer_trigger: DeferTrigger = DeferTrigger.L1_MISS
    # Also defer the dependence slice of long integer ops (DIV, MUL).
    defer_long_ops: bool = False
    # Treat a data-TLB miss (table walk) as a deferrable event, like
    # ROCK does; only meaningful when the hierarchy models a TLB.
    defer_on_tlb_miss: bool = True
    scout_enabled: bool = True
    scout_only: bool = False
    # Let loads speculatively bypass older unresolved (deferred) stores,
    # validating at replay; False defers such loads conservatively.
    bypass_unresolved_stores: bool = True
    # Pipeline-flush cost of a failed speculation (checkpoint restore).
    rollback_penalty: int = 8
    # Cost of taking a register checkpoint (flash copy; ~free in ROCK).
    checkpoint_latency: int = 1
    # Stores drained from the speculative store buffer per cycle at commit.
    commit_drain_per_cycle: int = 2
    latencies: LatencyConfig = LatencyConfig()
    predictor: BranchPredictorConfig = BranchPredictorConfig()

    def __post_init__(self) -> None:
        _require(1 <= self.width <= 8, "width out of range")
        _require(self.checkpoints >= 0, "checkpoints must be >= 0")
        _require(self.dq_size >= 1, "dq_size must be >= 1")
        _require(self.sb_size >= 1, "sb_size must be >= 1")
        _require(self.rollback_penalty >= 0, "rollback_penalty must be >= 0")
        _require(self.checkpoint_latency >= 0, "checkpoint_latency must be >= 0")
        _require(self.commit_drain_per_cycle >= 1,
                 "commit_drain_per_cycle must be >= 1")
        if self.scout_only:
            _require(self.checkpoints >= 1, "scout needs one checkpoint")
        if self.checkpoints == 0:
            _require(not self.scout_only,
                     "scout_only requires at least one checkpoint")

    @property
    def mode_name(self) -> str:
        """Human name of the degenerate configuration."""
        if self.checkpoints == 0:
            return "inorder"
        if self.scout_only:
            return "scout"
        if self.checkpoints == 1:
            return "execute-ahead"
        return "sst"


# ---------------------------------------------------------------------------
# Whole machine.
# ---------------------------------------------------------------------------


class CoreKind(enum.Enum):
    INORDER = "inorder"
    OOO = "ooo"
    SST = "sst"


@dataclasses.dataclass(frozen=True)
class MachineConfig:
    """One core + its memory hierarchy."""

    core_kind: CoreKind
    hierarchy: HierarchyConfig = HierarchyConfig()
    inorder: Optional[InOrderConfig] = None
    ooo: Optional[OoOConfig] = None
    sst: Optional[SSTConfig] = None
    name: str = ""

    def __post_init__(self) -> None:
        selected = {
            CoreKind.INORDER: self.inorder,
            CoreKind.OOO: self.ooo,
            CoreKind.SST: self.sst,
        }[self.core_kind]
        _require(selected is not None,
                 f"core_kind={self.core_kind.value} but its config is None")
        if not self.name:
            object.__setattr__(self, "name", self.core_kind.value)


# ---------------------------------------------------------------------------
# Presets — the machine points the paper's evaluation compares.
# ---------------------------------------------------------------------------


def inorder_machine(hierarchy: HierarchyConfig = HierarchyConfig(),
                    width: int = 2) -> MachineConfig:
    """The simple in-order baseline (same pipeline as SST, no speculation)."""
    return MachineConfig(
        core_kind=CoreKind.INORDER,
        hierarchy=hierarchy,
        inorder=InOrderConfig(width=width),
        name=f"inorder-{width}w",
    )


def scout_machine(hierarchy: HierarchyConfig = HierarchyConfig(),
                  width: int = 2) -> MachineConfig:
    """Hardware scout: run-ahead prefetching only, always rolls back."""
    return MachineConfig(
        core_kind=CoreKind.SST,
        hierarchy=hierarchy,
        sst=SSTConfig(width=width, checkpoints=1, scout_only=True),
        name=f"scout-{width}w",
    )


def ea_machine(hierarchy: HierarchyConfig = HierarchyConfig(),
               width: int = 2, dq_size: int = 64) -> MachineConfig:
    """Execute-ahead: one checkpoint, replay stalls the ahead strand."""
    return MachineConfig(
        core_kind=CoreKind.SST,
        hierarchy=hierarchy,
        sst=SSTConfig(width=width, checkpoints=1, dq_size=dq_size),
        name=f"ea-{width}w",
    )


def sst_machine(hierarchy: HierarchyConfig = HierarchyConfig(),
                width: int = 2, checkpoints: int = 2,
                dq_size: int = 64, sb_size: int = 32) -> MachineConfig:
    """The ROCK-like SST core (the paper's design point)."""
    return MachineConfig(
        core_kind=CoreKind.SST,
        hierarchy=hierarchy,
        sst=SSTConfig(width=width, checkpoints=checkpoints,
                      dq_size=dq_size, sb_size=sb_size),
        name=f"sst-{width}w-{checkpoints}ckpt",
    )


def ooo_machine(hierarchy: HierarchyConfig = HierarchyConfig(),
                rob_size: int = 128, width: int = 4) -> MachineConfig:
    """An out-of-order comparator; scale ``rob_size`` for the
    32/64/128-entry design points the evaluation sweeps."""
    iq = max(8, rob_size // 3)
    lsq = max(8, rob_size // 3)
    return MachineConfig(
        core_kind=CoreKind.OOO,
        hierarchy=hierarchy,
        ooo=OoOConfig(fetch_width=width, issue_width=width,
                      commit_width=width, rob_size=rob_size,
                      iq_size=iq, lsq_size=lsq),
        name=f"ooo-{width}w-rob{rob_size}",
    )


# ---------------------------------------------------------------------------
# Runtime environment knobs.
#
# The simulator reads a small set of REPRO_* environment variables; the
# knob constants and shared parsers live here so there is one documented
# home for them.  The full set (tests/config/test_env_registry.py greps
# this block against the actual ``os.environ.get("REPRO_...`` call
# sites, so keep it complete):
#
#   REPRO_JOBS              worker-pool size for ParallelRunner
#   REPRO_CACHE             "0" disables the result cache
#   REPRO_CACHE_DIR         result-cache directory override
#   REPRO_CACHE_MAX_BYTES   LRU size cap for the result cache
#   REPRO_BLOCK_DISPATCH    "0" restores per-instruction dispatch
#   REPRO_ENSEMBLE          "0" disables the vectorized ensemble
#                           backend (falls back to the scalar
#                           per-lane interpreter loop)
#   REPRO_ENSEMBLE_LANES    lane-chunk width for run_ensemble
#                           (default 64)
#   REPRO_TIMING_ENSEMBLE   "0" disables lane-batched *timing*
#                           simulation (repro.sim.timing_ensemble);
#                           eligible task groups then run lane-by-lane
#                           through the scalar cores
#   REPRO_SANITIZE          "1" enables the invariant sanitizer
#   REPRO_TAINT             "1" enables the speculative-leak taint
#                           tracker (and the e19 gadget gate)
#   REPRO_BASELINE          behavioral-firewall observation mode
#                           (capture/verify) for every simulated point
#   REPRO_BASELINE_DIR      baseline-record directory override
#   REPRO_BENCH_SMOKE       "1" shrinks benchmarks to smoke scale
#   REPRO_BENCH_MAX_INSTRUCTIONS   per-run instruction budget cap
#   REPRO_RESULTS_DIR       benchmark-results directory override
#   REPRO_PERF_BASELINE     committed perf-baseline snapshot override
#   REPRO_TASK_TIMEOUT / REPRO_TASK_RETRIES   parallel-engine limits
#   REPRO_FAULT_INJECT      deterministic fault-injection spec
# ---------------------------------------------------------------------------

ENSEMBLE_ENV = "REPRO_ENSEMBLE"
ENSEMBLE_LANES_ENV = "REPRO_ENSEMBLE_LANES"
TIMING_ENSEMBLE_ENV = "REPRO_TIMING_ENSEMBLE"
DEFAULT_ENSEMBLE_LANES = 64


def env_int(name: str, default: int) -> int:
    """Parse an integer REPRO_* knob, naming the variable on error.

    Blank values (``REPRO_JOBS=""``) fall back to ``default`` like an
    unset variable; anything else must parse as an integer or the
    error says *which* knob was malformed instead of a bare
    ``ValueError`` traceback.
    """
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        return int(raw)
    except ValueError:
        raise ConfigError(
            f"{name} must be an integer, got {raw!r}"
        ) from None


def env_flag(name: str, default: bool = True) -> bool:
    """A REPRO_* on/off switch.

    The library's switch convention is asymmetric by default: kill
    switches (default True) are off only at the literal ``"0"``, while
    opt-ins (default False) are on only at ``"1"``/``"on"``/``"true"``.
    This helper encodes both so call sites cannot drift.
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    if default:
        return raw != "0"
    return raw.strip().lower() in ("1", "on", "true")


def ensemble_enabled() -> bool:
    """True unless ``REPRO_ENSEMBLE=0`` — the ensemble kill switch,
    mirroring ``REPRO_BLOCK_DISPATCH``.  When off, ensemble entry
    points run every lane through the scalar golden interpreter."""
    return env_flag(ENSEMBLE_ENV, default=True)


def timing_ensemble_enabled() -> bool:
    """True unless ``REPRO_TIMING_ENSEMBLE=0`` — the kill switch for
    lane-batched timing simulation (:mod:`repro.sim.timing_ensemble`).
    When off, eligible task groups run lane-by-lane through the scalar
    timing cores instead."""
    return env_flag(TIMING_ENSEMBLE_ENV, default=True)


def ensemble_lanes() -> int:
    """Lane-chunk width for ensemble execution (``REPRO_ENSEMBLE_LANES``,
    default 64): cold lanes are vectorized in chunks of this many."""
    lanes = env_int(ENSEMBLE_LANES_ENV, DEFAULT_ENSEMBLE_LANES)
    _require(lanes >= 1, f"{ENSEMBLE_LANES_ENV} must be >= 1, got {lanes}")
    return lanes
