"""Machine assembly: config → (core + fresh memory hierarchy).

A :class:`Machine` is cheap to construct and single-use per run — every
``run`` builds a fresh hierarchy and core so results never leak state
between experiments (cache warmth across runs would silently corrupt a
sweep).
"""

from __future__ import annotations

import time

from repro.baselines.core_base import Core, CoreResult, DEFAULT_MAX_INSTRUCTIONS
from repro.baselines.inorder import InOrderCore
from repro.baselines.ooo import OoOCore
from repro.config import CoreKind, HierarchyConfig, MachineConfig
from repro.core import SSTCore
from repro.errors import ConfigError
from repro.isa.program import Program
from repro.memory.hierarchy import MemoryHierarchy


def build_hierarchy(config: HierarchyConfig) -> MemoryHierarchy:
    """A fresh (cold) memory hierarchy."""
    return MemoryHierarchy(config)


def build_core(config: MachineConfig, program: Program,
               hierarchy: MemoryHierarchy) -> Core:
    """Instantiate the configured core bound to ``program``."""
    if config.core_kind is CoreKind.INORDER:
        assert config.inorder is not None
        return InOrderCore(program, hierarchy, config.inorder)
    if config.core_kind is CoreKind.OOO:
        assert config.ooo is not None
        return OoOCore(program, hierarchy, config.ooo)
    if config.core_kind is CoreKind.SST:
        assert config.sst is not None
        return SSTCore(program, hierarchy, config.sst)
    raise ConfigError(f"unknown core kind {config.core_kind}")


class Machine:
    """One named machine configuration, runnable on any program."""

    def __init__(self, config: MachineConfig):
        self.config = config

    @property
    def name(self) -> str:
        return self.config.name

    def run(self, program: Program,
            max_instructions: int = DEFAULT_MAX_INSTRUCTIONS) -> CoreResult:
        hierarchy = build_hierarchy(self.config.hierarchy)
        core = build_core(self.config, program, hierarchy)
        started = time.perf_counter()
        result = core.run(max_instructions=max_instructions)
        if not result.wall_seconds:
            # Cores time themselves (tighter bound); fall back to the
            # harness-side measurement for any that don't.
            result.wall_seconds = time.perf_counter() - started
        # Re-label with the configured machine name so sweeps stay legible.
        result.core_name = self.name
        return result
