"""Failure taxonomy and retry policy for the parallel engine.

SST is itself a recovery architecture: a failed speculative episode
rolls the core back to a checkpoint and replays instead of crashing the
pipeline.  The batch runner applies the same discipline to whole
simulation points.  Every failure a :class:`~repro.sim.parallel
.ParallelRunner` can observe is classified *structurally* into one of
four kinds — never by matching exception-name strings, which confuses a
workload that happens to raise ``TimeoutError`` with the pool's own
deadline machinery:

``task-error``
    The simulation itself raised (diverging config, instruction-budget
    runaway, illegal operation).  Deterministic: retrying would fail
    identically, so these are reported immediately.

``pool-timeout``
    The per-task deadline (``timeout`` / ``REPRO_TASK_TIMEOUT``)
    expired before the worker produced a result.  Transient: the task
    may simply have been queued behind a hung sibling, so it is
    re-dispatched on a fresh pool.

``worker-crash``
    The worker process died or its result could not be transported
    back (killed by a signal, unpicklable payload).  Transient.

``cache-corrupt``
    A cached result failed integrity checking (golden verification,
    key mismatch, codec failure).  The entry is quarantined and the
    point falls through to re-simulation — one bad file can never
    poison a point permanently.

Transient kinds are retried with exponential backoff up to
``REPRO_TASK_RETRIES`` extra rounds (default 2); each retry round runs
only the still-unfinished tasks on a fresh worker pool, so finished
points are never re-simulated and their results are bit-identical to a
failure-free run.
"""

from __future__ import annotations

import dataclasses
import os
import time
from typing import Callable, Optional

from repro.config import env_int
from repro.errors import ConfigError

# The closed failure taxonomy (TaskOutcome.kind values).
KIND_TASK_ERROR = "task-error"
KIND_POOL_TIMEOUT = "pool-timeout"
KIND_WORKER_CRASH = "worker-crash"
KIND_CACHE_CORRUPT = "cache-corrupt"

ALL_KINDS = frozenset({
    KIND_TASK_ERROR, KIND_POOL_TIMEOUT, KIND_WORKER_CRASH,
    KIND_CACHE_CORRUPT,
})

# Kinds worth retrying through the pool.  ``cache-corrupt`` recovers by
# a different route (quarantine + unconditional re-simulation, not
# subject to the retry budget) and ``task-error`` is deterministic.
TRANSIENT_KINDS = frozenset({KIND_POOL_TIMEOUT, KIND_WORKER_CRASH})

DEFAULT_TASK_RETRIES = 2


def resolve_retries(retries: Optional[int] = None) -> int:
    """Retry budget: explicit argument, else ``REPRO_TASK_RETRIES``,
    else :data:`DEFAULT_TASK_RETRIES`."""
    if retries is None:
        retries = env_int("REPRO_TASK_RETRIES", DEFAULT_TASK_RETRIES)
    if retries < 0:
        raise ConfigError(
            f"task retries must be >= 0, got {retries}"
        )
    return retries


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """How many extra rounds transient failures get, and how long to
    back off between rounds (exponential, capped)."""

    retries: int = DEFAULT_TASK_RETRIES
    backoff_base: float = 0.25
    backoff_factor: float = 2.0
    backoff_max: float = 5.0
    sleeper: Callable[[float], None] = time.sleep

    def should_retry(self, kind: Optional[str], attempt: int) -> bool:
        """Does a failure of ``kind`` on (1-based) ``attempt`` earn
        another round?"""
        return kind in TRANSIENT_KINDS and attempt <= self.retries

    def delay(self, attempt: int) -> float:
        """Backoff before the round following (1-based) ``attempt``."""
        return min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** (attempt - 1),
        )

    def pause(self, attempt: int) -> None:
        delay = self.delay(attempt)
        if delay > 0:
            self.sleeper(delay)


def policy_from_env(retries: Optional[int] = None) -> RetryPolicy:
    """A :class:`RetryPolicy` honoring ``REPRO_TASK_RETRIES``."""
    return RetryPolicy(retries=resolve_retries(retries))
