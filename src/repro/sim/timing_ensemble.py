"""Lane-batched *timing* simulation of the in-order core.

:mod:`repro.sim.ensemble` batches the functional golden interpreter
over N seed/parameter-varied lanes of one program shape; this module
does the same for the :class:`~repro.baselines.inorder.InOrderCore`
timing model.  N lanes execute in lockstep over structure-of-arrays
state — lane-axis register files, scoreboard ready/producer matrices,
issue-clock vectors, lane-axis L1/L2 tag matrices
(:class:`~repro.memory.cache.LaneCacheArray`) and MSHR/TLB mirror
vectors — with divergent control flow handled by the same cohort
worklist scheme as the functional engine (lanes split at branches and
reconverge when they meet at a PC).

Bit-identity with the scalar core is the contract: every lane's
:class:`~repro.baselines.core_base.CoreResult` — cycles, instructions,
architectural state *including the exact sparse-memory word set*, and
the full ``extra`` payload (branch stats, hierarchy stats, L1D/L2
cache stats, CPI stack, perf counters) — equals a scalar
``InOrderCore`` run of the same lane program on a fresh hierarchy.
That identity is what lets batched results share the PR-9 behavioral
firewall corpus and the result cache with scalar runs.

The engine is split-authority:

* **vectorized fast paths** — issue-clock arithmetic, scoreboard
  stall resolution, ALU/branch execution, and the L1 hit path (tag
  probe + commit with an MSHR-idle mirror check and a TLB-MRU mirror
  check) run as numpy expressions over whole cohorts;
* **per-lane slow paths** — anything that touches MSHR allocation,
  L2, DRAM, the prefetcher, or a TLB walk calls the *real*
  per-lane :class:`~repro.memory.hierarchy.MemoryHierarchy`, whose
  cache attributes are :class:`~repro.memory.cache.LaneCacheView`
  facades over the shared tag matrices and whose ``stats`` object is
  a property view over the engine's lane-axis stat vectors.  The
  scalar miss/merge/writeback machinery therefore runs unmodified,
  and fast and slow paths mutate one tag store by construction.

The mirror vectors are conservative, never wrong: ``idle_at(c)`` is
exactly ``max_pending_ready() <= c`` (lazy MSHR expiry is transparent
to that comparison), and an access to the TLB's MRU page is a hit
whose ``move_to_end`` is a no-op — so a mirror *miss* merely routes
the lane through the slow path, which recomputes the truth.

Scope note: only the in-order core is batched.  Batching the SST
core's checkpoint/defer/replay machinery over the lane axis was
evaluated and deliberately dropped — its per-lane divergence (defer
queues drain at data-dependent times, speculation depth varies per
lane) destroys the lockstep cohorts this design needs, so an SST lane
batch would degenerate to a python loop over scalar cores with extra
overhead.  Ensemble sweeps of SST points keep the scalar path.

Eligibility is checked by :func:`timing_ensemble_eligible`: numpy
present, ``REPRO_TIMING_ENSEMBLE`` not ``0``, an in-order machine
config with a gshare or bimodal direction predictor (tournament and
static predictors fall back to scalar runs), no observational
sanitizer (``REPRO_SANITIZE`` hooks the scalar cores) and no fault
injection plan (``REPRO_FAULT_INJECT`` targets per-task workers).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.sanitizer import sanitize_enabled
from repro.baselines.core_base import (
    Core,
    CoreResult,
    DEFAULT_MAX_INSTRUCTIONS,
)
from repro.branch.predictors import BranchStats
from repro.config import (
    CoreKind,
    MachineConfig,
    PredictorKind,
    timing_ensemble_enabled,
)
from repro.isa import blockcache
from repro.isa.blockcache import (
    K_BARRIER,
    K_BRANCH,
    K_DIV,
    K_HALT,
    K_JUMP,
    K_JUMP_INDIRECT,
    K_LOAD,
    K_MUL,
    K_NOP,
    K_PREFETCH,
    K_STORE,
    R_FN,
    R_INST,
    R_KIND,
    R_RD,
    R_RS1,
    R_RS2,
    R_SOURCES,
    R_TARGET,
    R_USES_IMM,
)
from repro.isa.interpreter import ArchState
from repro.isa.opcodes import Op
from repro.isa.program import Program
from repro.isa.registers import REG_COUNT
from repro.isa.semantics import MASK64, to_signed
from repro.memory.cache import LaneCacheArray, LaneCacheView
from repro.memory.hierarchy import (
    HierarchyStats,
    ICODE_BASE,
    ICODE_BYTES_PER_INST,
    MemoryHierarchy,
)
from repro.memory.request import AccessType
from repro.core.timing import PerfCounters
from repro.sim.ensemble import (
    EnsembleError,
    _check_lane_contract,
    _sparse_from_words,
    LaneMemoryImage,
)
from repro.sim.faults import fault_plan_from_env

try:  # numpy is the optional `ensemble` extra, not a hard dependency.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via monkeypatch
    _np = None  # type: ignore[assignment]

# Stall-cause indices into the (lanes, 6) stall matrix.  The first
# three double as the register-producer codes, so a stall-on-use
# attribution is one gather from the producer matrix.
_S_MEMORY = 0
_S_LONG_OP = 1
_S_COMPUTE = 2
_S_FETCH = 3
_S_BRANCH = 4
_S_DRAIN = 5
_STALL_KEYS = ("memory", "long_op", "compute", "fetch", "branch", "drain")

# Columns of the consolidated per-lane clock/counter matrix.  Keeping
# the whole issue-clock in one (lanes, 14) int64 matrix turns the
# per-step bookkeeping into ONE gather and ONE scatter instead of a
# dozen — the dominant cost of a vectorized step is numpy call count,
# not element count.
_C_CYCLE = 0       # IssueClock.cycle
_C_SLOTS = 1       # IssueClock.slots
_C_SCYCLE = 2      # IssueClock._stepped_cycle
_C_EXEC = 3        # instructions executed
_C_STEP = 4        # perf.cycles_stepped
_C_SKIP = 5        # perf.cycles_skipped
_C_FFWD = 6        # perf.fast_forwards
_C_LSD = 7         # last_store_done
_C_STALL = 8       # stall cycles, 6 columns in _STALL_KEYS order
_NCOLS = 14

_VECTOR_PREDICTORS = (PredictorKind.GSHARE, PredictorKind.BIMODAL)

# Lane-axis hierarchy stat vectors (mirrors HierarchyStats' counters).
_HIER_FIELDS = (
    "demand_accesses", "demand_l1_hits", "demand_l2_hits", "demand_dram",
    "demand_merges", "prefetches_issued", "ifetches",
    "fastpath_l1d", "fastpath_l1i",
)


class _LaneHierStats:
    """One lane's ``HierarchyStats``, backed by the engine's vectors.

    Installed as the per-lane hierarchy's ``stats`` attribute so the
    scalar slow-path code (``stats.demand_dram += 1`` and friends)
    increments the same lane-axis counters the vectorized fast path
    updates with masked adds.
    """

    __slots__ = ("_h", "_lane")

    def __init__(self, vectors: Dict[str, Any], lane: int):
        self._h = vectors
        self._lane = lane


_ARITH_OPS = frozenset((
    Op.ADD, Op.ADDI, Op.SUB, Op.MUL,
    Op.AND, Op.ANDI, Op.OR, Op.ORI, Op.XOR, Op.XORI,
))


def _hier_prop(name: str) -> property:
    def _get(self: _LaneHierStats) -> int:
        return int(self._h[name][self._lane])

    def _set(self: _LaneHierStats, value: int) -> None:
        self._h[name][self._lane] = value

    return property(_get, _set)


for _field in _HIER_FIELDS:
    setattr(_LaneHierStats, _field, _hier_prop(_field))


@dataclasses.dataclass
class TimingLaneOutcome:
    """One lane of a batched timing run: a full scalar-identical
    :class:`CoreResult`, or the error a scalar run would have raised
    (rendered ``"ExceptionType: message"``)."""

    result: Optional[CoreResult] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


def timing_ensemble_eligible(config: MachineConfig) -> bool:
    """Can same-shape sweeps of ``config`` batch through the timing
    engine?  False falls back to scalar runs, never errors."""
    if _np is None or not timing_ensemble_enabled():
        return False
    if config.core_kind is not CoreKind.INORDER or config.inorder is None:
        return False
    if config.inorder.predictor.kind not in _VECTOR_PREDICTORS:
        return False
    # The observational sanitizer and the fault injector hook the
    # scalar per-task path; batching would silently bypass them.
    if sanitize_enabled() or fault_plan_from_env() is not None:
        return False
    return True


def run_timing_ensemble(
    config: MachineConfig,
    programs: Sequence[Program],
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
) -> List[TimingLaneOutcome]:
    """Run N shape-compatible lane programs through the batched
    in-order timing model; one outcome per lane, in lane order.

    ``wall_seconds`` on each result is the batch wall time divided
    evenly across lanes (excluded from result equality).
    """
    if _np is None:
        raise EnsembleError(
            "the timing ensemble requires numpy; guard calls with "
            "timing_ensemble_eligible()"
        )
    if config.core_kind is not CoreKind.INORDER or config.inorder is None:
        raise EnsembleError(
            "the timing ensemble batches in-order machines only, got "
            f"core_kind={config.core_kind.value}"
        )
    if config.inorder.predictor.kind not in _VECTOR_PREDICTORS:
        raise EnsembleError(
            "the timing ensemble vectorizes gshare/bimodal predictors "
            f"only, got {config.inorder.predictor.kind.value}"
        )
    lane_programs = list(programs)
    _check_lane_contract(lane_programs)
    started = time.perf_counter()
    engine = _TimingVectorEngine(config, lane_programs, max_instructions)
    outcomes = engine.run()
    wall = (time.perf_counter() - started) / max(1, len(lane_programs))
    for outcome in outcomes:
        if outcome.result is not None:
            outcome.result.wall_seconds = wall
    return outcomes


class _TimingVectorEngine:
    """SoA state + lockstep per-instruction stepping for one batch."""

    def __init__(self, config: MachineConfig, programs: List[Program],
                 max_instructions: int):
        np = _np
        inorder = config.inorder
        assert inorder is not None
        self.config = config
        self.programs = programs
        self.max_instructions = max_instructions
        self.n_lanes = n = len(programs)
        base = programs[0]
        self.rows = blockcache.rows_for(base)
        self.n_insts = len(self.rows)
        self.width = inorder.width
        self.lat_alu = inorder.latencies.alu
        self.lat_mul = inorder.latencies.mul
        self.lat_div = inorder.latencies.div
        self.model_ifetch = config.hierarchy.model_ifetch

        # Architectural + scoreboard state (column 0 is the hardwired
        # zero register: never written, always ready).
        self.R = np.zeros((n, REG_COUNT), dtype=np.uint64)
        self.ready = np.zeros((n, REG_COUNT), dtype=np.int64)
        self.producer = np.full((n, REG_COUNT), _S_COMPUTE, dtype=np.int64)
        self.mem_image = LaneMemoryImage(programs)

        # Consolidated issue-clock + perf-counter matrix (see the
        # _C_* column map above).
        self.S = np.zeros((n, _NCOLS), dtype=np.int64)
        self.S[:, _C_SCYCLE] = -1
        # Monotone upper bound on max(executed) across lanes: bumps by
        # one per step, so the per-lane budget check is skipped until
        # it could possibly fire.
        self._exec_hi = 0

        # Branch unit: vectorized 2-bit counter table (+ gshare
        # history); BTB dicts and RAS lists stay per-lane Python.
        predictor = inorder.predictor
        self.gshare = predictor.kind is PredictorKind.GSHARE
        self.ptable = np.full(
            (n, 1 << predictor.table_bits), 2, dtype=np.int8
        )
        self.pmask = (1 << predictor.table_bits) - 1
        self.history = np.zeros(n, dtype=np.int64)
        self.hmask = (1 << predictor.history_bits) - 1
        self.btb_mask = predictor.btb_entries - 1
        self.ras_entries = predictor.ras_entries
        self.penalty = predictor.mispredict_penalty
        self.btb: List[Dict[int, int]] = [{} for _ in range(n)]
        self.ras: List[List[int]] = [[] for _ in range(n)]
        self.b_cond_pred = np.zeros(n, dtype=np.int64)
        self.b_cond_misp = np.zeros(n, dtype=np.int64)
        self.b_ind_pred = np.zeros(n, dtype=np.int64)
        self.b_ind_misp = np.zeros(n, dtype=np.int64)
        self.b_ras_hits = np.zeros(n, dtype=np.int64)
        self.b_ras_misses = np.zeros(n, dtype=np.int64)

        # Memory hierarchy: shared lane-axis tag matrices + one real
        # scalar hierarchy per lane for the slow paths, viewing them.
        hconfig = config.hierarchy
        self.l1d_arr = LaneCacheArray(hconfig.l1d, n, name="L1D")
        self.l1i_arr = LaneCacheArray(hconfig.l1i, n, name="L1I")
        self.l2_arr = LaneCacheArray(hconfig.l2, n, name="L2")
        self.hvec: Dict[str, Any] = {
            name: np.zeros(n, dtype=np.int64) for name in _HIER_FIELDS
        }
        self.hiers: List[MemoryHierarchy] = []
        for lane in range(n):
            hier = MemoryHierarchy(hconfig, caches=(
                LaneCacheView(self.l1d_arr, lane),
                LaneCacheView(self.l1i_arr, lane),
                LaneCacheView(self.l2_arr, lane),
            ))
            hier.stats = _LaneHierStats(self.hvec, lane)  # type: ignore
            self.hiers.append(hier)
        self.l1d_lat = hconfig.l1d.hit_latency
        self.l1i_lat = hconfig.l1i.hit_latency
        # Mirror vectors: latest pending MSHR completion per lane
        # (idle_at(c) == mirror <= c) and the TLB's MRU page (-1 when
        # the structure is empty / absent).
        self.l1d_max = np.full(n, -1, dtype=np.int64)
        self._l1d_phi = -1
        self.l1i_max = np.full(n, -1, dtype=np.int64)
        # Full L1D pending-set mirror, (lanes, mshr_entries): a tag hit
        # while fills are outstanding is still a plain hit unless *this
        # line* is pending with a later ready ("hit under miss"), so
        # mirroring the whole pending set keeps hits vectorized during
        # miss windows.  A row slot with ready -1 is empty; stale
        # entries (ready in the past) never match because the merge
        # test compares against a future hit_ready.
        entries = max(1, hconfig.l1d.mshr_entries)
        self.l1d_plines = np.zeros((n, entries), dtype=np.uint64)
        self.l1d_pready = np.full((n, entries), -1, dtype=np.int64)
        self.has_tlb = hconfig.tlb is not None
        self.tlb_mru = np.full(n, -1, dtype=np.int64)
        if self.has_tlb:
            self._tlb_shift = np.uint64(
                hconfig.tlb.page_bytes.bit_length() - 1
            )
        line_bytes = hconfig.l1i.line_bytes
        self._l1i_line_shift = line_bytes.bit_length() - 1

        # Per-lane terminal state.
        self.halted = np.zeros(n, dtype=bool)
        self.total = np.zeros(n, dtype=np.int64)
        self._all_lanes = np.arange(n, dtype=np.intp)
        self.errors: List[Optional[str]] = [None] * n

        self._imm_cache: Dict[int, Tuple[Optional[int], Any]] = {}
        self._imm_raw: Dict[int, List[int]] = {}
        self._imm_box: Dict[int, Any] = {}

    # -- immediates ----------------------------------------------------

    def _imm_info(self, pc: int) -> Tuple[Optional[int], Any]:
        """``(uniform_imm, None)`` when every lane agrees at ``pc``,
        else ``(None, per-lane uint64 vector)`` (full lane length)."""
        cached = self._imm_cache.get(pc)
        if cached is not None:
            return cached
        imms = [program[pc].imm for program in self.programs]
        first = imms[0]
        if all(value == first for value in imms):
            info: Tuple[Optional[int], Any] = (first, None)
        else:
            vec = _np.array([value & MASK64 for value in imms],
                            dtype=_np.uint64)
            info = (None, vec)
        self._imm_cache[pc] = info
        return info

    def _imm_u64(self, pc: int, ix: Any) -> Any:
        boxed = self._imm_box.get(pc)
        if boxed is not None:
            return boxed
        uniform, vec = self._imm_info(pc)
        if vec is None:
            boxed = _np.uint64(uniform & MASK64)  # type: ignore[operator]
            self._imm_box[pc] = boxed
            return boxed
        return vec[ix]

    def _imm_raws(self, pc: int) -> List[int]:
        cached = self._imm_raw.get(pc)
        if cached is None:
            cached = [program[pc].imm for program in self.programs]
            self._imm_raw[pc] = cached
        return cached

    # -- ALU / branch value computation --------------------------------

    def _alu_value(self, pc: int, row: Any, idx: Any, ix: Any) -> Any:
        """The batched result of the arithmetic op at ``pc`` — same
        per-op policy as the functional vector engine (signed compares
        through int64 views, shift counts masked to 63, DIV/REM
        through the scalar handler per lane).  ``ix`` is the
        whole-axis slice when the cohort is every lane, else ``idx``."""
        np = _np
        op = row[R_INST].op
        uses_imm = row[R_USES_IMM]
        if op is Op.MOVI:
            uniform, vec = self._imm_info(pc)
            if vec is None:
                return np.full(idx.size, uniform & MASK64, np.uint64)
            return vec[ix]
        a = self.R[ix, row[R_RS1]]
        if op in _ARITH_OPS:
            b = (self._imm_u64(pc, ix) if uses_imm
                 else self.R[ix, row[R_RS2]])
            if op is Op.ADD or op is Op.ADDI:
                return a + b
            if op is Op.SUB:
                return a - b
            if op is Op.MUL:
                return a * b
            if op is Op.AND or op is Op.ANDI:
                return a & b
            if op is Op.OR or op is Op.ORI:
                return a | b
            return a ^ b  # XOR / XORI
        if op in (Op.DIV, Op.REM):
            fn = row[R_FN]
            out = np.empty(idx.size, dtype=np.uint64)
            avals = a.tolist()
            if uses_imm:
                raws = self._imm_raws(pc)
                lanes = idx.tolist()
                for j, value in enumerate(avals):
                    out[j] = fn(value, raws[lanes[j]])
            else:
                bvals = self.R[ix, row[R_RS2]].tolist()
                for j, value in enumerate(avals):
                    out[j] = fn(value, bvals[j])
            return out
        if op in (Op.SLT, Op.SLTI):
            if uses_imm:
                uniform, vec = self._imm_info(pc)
                b = (to_signed(uniform & MASK64) if vec is None
                     else vec.view(np.int64)[ix])
            else:
                b = self.R[ix, row[R_RS2]].view(np.int64)
            return (a.view(np.int64) < b).astype(np.uint64)
        if op is Op.SLTU:
            b = (self._imm_u64(pc, ix) if uses_imm
                 else self.R[ix, row[R_RS2]])
            return (a < b).astype(np.uint64)
        if op in (Op.SRA, Op.SRAI):
            if uses_imm:
                uniform, vec = self._imm_info(pc)
                count = (uniform & 63 if vec is None
                         else (vec[ix] & np.uint64(63)).astype(np.int64))
            else:
                count = (self.R[ix, row[R_RS2]]
                         & np.uint64(63)).astype(np.int64)
            return (a.view(np.int64) >> count).view(np.uint64)
        if op in (Op.SLL, Op.SLLI, Op.SRL, Op.SRLI):
            if uses_imm:
                uniform, vec = self._imm_info(pc)
                count = (np.uint64(uniform & 63) if vec is None
                         else vec[ix] & np.uint64(63))
            else:
                count = self.R[ix, row[R_RS2]] & np.uint64(63)
            if op in (Op.SLL, Op.SLLI):
                return a << count
            return a >> count
        raise AssertionError(f"unhandled ALU op {op}")  # pragma: no cover

    @staticmethod
    def _cond_value(op: Op, a: Any, b: Any) -> Any:
        np = _np
        if op is Op.BEQ:
            return a == b
        if op is Op.BNE:
            return a != b
        if op is Op.BLTU:
            return a < b
        if op is Op.BGEU:
            return a >= b
        if op is Op.BLT:
            return a.view(np.int64) < b.view(np.int64)
        if op is Op.BGE:
            return a.view(np.int64) >= b.view(np.int64)
        raise AssertionError(f"unhandled branch op {op}")  # pragma: no cover

    # -- memory fast/slow split ----------------------------------------

    def _refresh_l1d(self, lane: int, hier: MemoryHierarchy) -> None:
        """Re-mirror one lane's L1D MSHR + TLB after a slow-path call."""
        pending = hier.l1d_mshr._pending
        latest = max(pending.values()) if pending else -1
        self.l1d_max[lane] = latest
        if latest > self._l1d_phi:
            self._l1d_phi = latest
        row_lines = self.l1d_plines[lane]
        row_ready = self.l1d_pready[lane]
        row_ready[:] = -1
        for j, (line, ready) in enumerate(pending.items()):
            row_lines[j] = line
            row_ready[j] = ready
        if self.has_tlb:
            self.tlb_mru[lane] = hier.dtlb.mru_page  # type: ignore

    def _data_access(self, idx: Any, slot: Any, addrs: Any,
                     store: bool, pc: int) -> Any:
        """Batched ``MemoryHierarchy.data_access``: both scalar L1D hit
        paths (MSHR-idle single probe, and hit-under-miss with no merge
        on this line) vectorized behind a TLB-MRU mirror check;
        everything else through the lane's real hierarchy."""
        np = _np
        lines = self.l1d_arr.line_addr_lanes(addrs)
        hit, sets, ways = self.l1d_arr.probe_lanes(idx, lines)
        hit_ready = slot + self.l1d_lat
        # ``_l1d_phi`` is a running upper bound on every lane's latest
        # outstanding fill completion.  Once it trails the cohort's
        # earliest issue slot, every lane's MSHR is provably idle: no
        # merge can match and every hit is the fastpath — skip the
        # whole merge matrix (the steady state once cold misses drain).
        quiet = self._l1d_phi <= int(slot.min()) if idx.size else True
        if quiet:
            pmatch = merges = None
        else:
            # A tag hit merges only when this exact line's fill lands
            # after hit_ready ("pending > hit_ready" in the scalar
            # non-idle hit path); stale mirror rows have ready <= slot
            # < hit_ready and never match, so no expiry is needed.
            pmatch = (
                (self.l1d_plines[idx] == lines[:, None])
                & (self.l1d_pready[idx] > hit_ready[:, None])
            )
            merges = pmatch.any(axis=1)
        fast = hit
        if self.has_tlb:
            page = (addrs >> self._tlb_shift).astype(np.int64)
            fast = fast & (page == self.tlb_mru[idx])
        hv = self.hvec
        all_fast = bool(fast.all())
        if not all_fast:
            ready = np.empty(idx.size, dtype=np.int64)
            if not fast.any():
                access = AccessType.STORE if store else AccessType.LOAD
                for j in range(idx.size):
                    lane = int(idx[j])
                    hier = self.hiers[lane]
                    result = hier.data_access(int(addrs[j]), int(slot[j]),
                                              access, pc=pc)
                    ready[j] = result.ready_cycle
                    self._refresh_l1d(lane, hier)
                return ready
            fi = idx[fast]
            self.l1d_arr.commit_hit_lanes(fi, sets[fast], ways[fast],
                                          mark_dirty=store)
            hv["demand_accesses"][fi] += 1
            fmerges = None if merges is None else merges[fast]
            if fmerges is not None and fmerges.any():
                hv["demand_l1_hits"][fi[~fmerges]] += 1
                hv["demand_merges"][fi[fmerges]] += 1
                idle = self.l1d_max[fi] <= slot[fast]
                hv["fastpath_l1d"][fi[idle]] += 1
                mready = np.where(pmatch[fast], self.l1d_pready[fi],
                                  np.int64(-1)).max(axis=1)
                ready[fast] = np.where(fmerges, mready, hit_ready[fast])
            else:
                hv["demand_l1_hits"][fi] += 1
                if quiet:
                    hv["fastpath_l1d"][fi] += 1
                else:
                    idle = self.l1d_max[fi] <= slot[fast]
                    hv["fastpath_l1d"][fi[idle]] += 1
                ready[fast] = hit_ready[fast]
            access = AccessType.STORE if store else AccessType.LOAD
            for j in np.nonzero(~fast)[0].tolist():
                lane = int(idx[j])
                hier = self.hiers[lane]
                result = hier.data_access(int(addrs[j]), int(slot[j]),
                                          access, pc=pc)
                ready[j] = result.ready_cycle
                self._refresh_l1d(lane, hier)
            return ready
        # Whole cohort hits: one vectorized commit, no slow calls.
        self.l1d_arr.commit_hit_lanes(idx, sets, ways, mark_dirty=store)
        hv["demand_accesses"][idx] += 1
        if merges is not None and merges.any():
            idle = self.l1d_max[idx] <= slot
            hv["demand_l1_hits"][idx[~merges]] += 1
            hv["demand_merges"][idx[merges]] += 1
            hv["fastpath_l1d"][idx[idle]] += 1
            mready = np.where(pmatch, self.l1d_pready[idx],
                              np.int64(-1)).max(axis=1)
            return np.where(merges, mready, hit_ready)
        hv["demand_l1_hits"][idx] += 1
        if quiet:
            hv["fastpath_l1d"][idx] += 1
        else:
            idle = self.l1d_max[idx] <= slot
            if idle.all():
                hv["fastpath_l1d"][idx] += 1
            else:
                hv["fastpath_l1d"][idx[idle]] += 1
        return hit_ready

    def _ifetch(self, idx: Any, cycle: Any, pc: int) -> Any:
        """Batched ``MemoryHierarchy.ifetch`` (model_ifetch only)."""
        np = _np
        shift = self._l1i_line_shift
        line = ((ICODE_BASE + pc * ICODE_BYTES_PER_INST)
                >> shift) << shift
        lines = np.full(idx.size, line, dtype=np.uint64)
        fast = self.l1i_max[idx] <= cycle
        hit, sets, ways = self.l1i_arr.probe_lanes(idx, lines)
        fast &= hit
        hv = self.hvec
        if fast.all():
            self.l1i_arr.commit_hit_lanes(idx, sets, ways)
            hv["ifetches"][idx] += 1
            hv["fastpath_l1i"][idx] += 1
            return cycle + self.l1i_lat
        ready = np.empty(idx.size, dtype=np.int64)
        if fast.any():
            fi = idx[fast]
            self.l1i_arr.commit_hit_lanes(fi, sets[fast], ways[fast])
            hv["ifetches"][fi] += 1
            hv["fastpath_l1i"][fi] += 1
            ready[fast] = cycle[fast] + self.l1i_lat
        for j in np.nonzero(~fast)[0].tolist():
            lane = int(idx[j])
            hier = self.hiers[lane]
            result = hier.ifetch(pc, int(cycle[j]))
            ready[j] = result.ready_cycle
            self.l1i_max[lane] = hier.l1i_mshr.max_pending_ready()
        return ready

    # -- clock helpers -------------------------------------------------

    def _advance_to(self, lanes: Any, target: Any, cause: int) -> None:
        """Vectorized ``IssueClock.advance_to`` over ``lanes``."""
        current = self.S[lanes, _C_CYCLE]
        moved = target > current
        if not moved.any():
            return
        lm = lanes[moved]
        diff = target[moved] - current[moved]
        self.S[lm, _C_SKIP] += diff
        self.S[lm, _C_FFWD] += 1
        self.S[lm, _C_STALL + cause] += diff
        self.S[lm, _C_CYCLE] = target[moved]
        self.S[lm, _C_SLOTS] = 0

    # -- the lockstep step ---------------------------------------------

    def _enqueue(self, active: Dict[int, Any], pc: int, lanes: Any) -> None:
        if lanes.size == 0:
            return
        current = active.get(pc)
        active[pc] = (lanes if current is None
                      else _np.concatenate((current, lanes)))

    def _kill(self, lanes: Any, messages: Callable[[int], str]) -> None:
        for lane in lanes.tolist():
            self.errors[lane] = messages(lane)

    def _step(self, active: Dict[int, Any], pc: int, idx: Any) -> None:
        np = _np
        # Loop-top checks, scalar order: budget before PC bounds.
        # ``_exec_hi`` is a monotone upper bound on max(executed): each
        # step raises any lane's count by at most one, so the vector
        # compare is skipped entirely until it can possibly fire.
        if self._exec_hi >= self.max_instructions:
            over = self.S[idx, _C_EXEC] >= self.max_instructions
            if over.any():
                budget = self.max_instructions
                self._kill(idx[over], lambda lane: (
                    "ExecutionError: inorder: exceeded "
                    f"{budget} instructions without HALT "
                    f"(program {self.programs[lane].name!r})"
                ))
                idx = idx[~over]
                if idx.size == 0:
                    return
        self._exec_hi += 1
        if pc < 0 or pc >= self.n_insts:
            self._kill(idx, lambda lane: (
                f"ExecutionError: PC {pc} outside program"
            ))
            return
        row = self.rows[pc]
        kind = row[R_KIND]

        # When the cohort is every lane (the common lockstep case) a
        # whole-axis slice replaces the fancy-index gathers: row reads
        # become views and the issue-clock gather/scatter vanishes.
        # A full cohort can arrive as an arbitrary permutation (branch
        # reconvergence concatenates taken before fallthrough lanes),
        # so it is canonicalised to lane order first — every per-lane
        # op is element-wise, so reordering the cohort is free.
        # ``ix`` is only safe where the second index is a scalar —
        # paired-array indexing (ptable, probe_lanes) keeps ``idx``.
        full = idx.size == self.n_lanes
        if full:
            idx = self._all_lanes
        ix: Any = slice(None) if full else idx

        # One gather of the whole issue clock for the cohort; scattered
        # back exactly once below (before the kind handlers run — a lane
        # killed by a handler leaves its clock columns unobservable,
        # matching the scalar raise-after-issue ordering).
        S = self.S[ix]
        cycle = S[:, _C_CYCLE]

        # Stall resolution: fetch completion first, then stall-on-use
        # with first-source-wins on ties (strict > takeover).
        earliest = cycle
        src_code: Optional[Any] = None
        if self.model_ifetch:
            fetch_ready = self._ifetch(idx, cycle, pc)
            upd = fetch_ready > earliest
            if upd.any():
                earliest = cycle.copy()
                earliest[upd] = fetch_ready[upd]
                src_code = np.full(idx.size, -1, dtype=np.int64)
                src_code[upd] = _S_FETCH
        sources = row[R_SOURCES]
        if len(sources) == 2:
            # Fused two-source resolution: one compare instead of two.
            # First-source-wins on ties means source 1 owns the stall
            # exactly where its ready time is >= source 2's.
            s1, s2 = sources
            r1 = self.ready[ix, s1]
            r2 = self.ready[ix, s2]
            rmax = np.maximum(r1, r2)
            upd = rmax > earliest
            if upd.any():
                if src_code is None:
                    earliest = cycle.copy()
                    src_code = np.full(idx.size, -1, dtype=np.int64)
                earliest[upd] = rmax[upd]
                win1 = r1 >= r2
                src_code[upd] = np.where(
                    win1[upd],
                    self.producer[ix, s1][upd],
                    self.producer[ix, s2][upd],
                )
        else:
            for src in sources:
                reg_ready = self.ready[ix, src]
                upd = reg_ready > earliest
                if upd.any():
                    if src_code is None:
                        earliest = cycle.copy()
                        src_code = np.full(idx.size, -1, dtype=np.int64)
                    earliest[upd] = reg_ready[upd]
                    src_code[upd] = self.producer[ix, src][upd]
        if src_code is not None:
            rows_ = np.nonzero(src_code >= 0)[0]
            S[rows_, _C_STALL + src_code[rows_]] += (
                earliest[rows_] - cycle[rows_]
            )

        if kind == K_HALT:
            S[:, _C_EXEC] += 1
            final = np.maximum(earliest, self.ready[ix].max(axis=1))
            np.maximum(final, S[:, _C_LSD], out=final)
            self.total[ix] = np.maximum(final, 1)
            self.halted[ix] = True
            if not full:
                self.S[idx] = S
            return

        # issue_at, vectorized (fast-forward + slot accounting).  Where
        # no stall fired ``earliest`` aliases ``cycle`` (diff 0, ff
        # False), so the adds below are maskless but still exact.
        slots_v = S[:, _C_SLOTS]
        if src_code is not None:
            ff = earliest > cycle
            S[:, _C_SKIP] += earliest - cycle
            S[:, _C_FFWD] += ff
            slots_v[ff] = 0
            cycle[:] = earliest
        scyc = S[:, _C_SCYCLE]
        S[:, _C_STEP] += cycle != scyc
        scyc[:] = cycle
        slot = cycle.copy()
        slots_v += 1
        wrap = slots_v >= self.width
        cycle += wrap
        slots_v[wrap] = 0
        S[:, _C_EXEC] += 1
        if not full:
            self.S[idx] = S

        if kind <= K_DIV:  # ALU / MUL / DIV
            rd = row[R_RD]
            if rd != 0:
                self.R[ix, rd] = self._alu_value(pc, row, idx, ix)
                if kind == K_MUL or kind == K_DIV:
                    latency, code = (
                        (self.lat_mul, _S_LONG_OP) if kind == K_MUL
                        else (self.lat_div, _S_LONG_OP)
                    )
                else:
                    latency, code = self.lat_alu, _S_COMPUTE
                self.ready[ix, rd] = slot + latency
                self.producer[ix, rd] = code
            self._enqueue(active, pc + 1, idx)
        elif kind == K_LOAD:
            addrs = self.R[ix, row[R_RS1]] + self._imm_u64(pc, ix)
            bad = (addrs & np.uint64(7)) != 0
            if bad.any():
                bad_addrs = addrs[bad].tolist()
                bad_lanes = idx[bad].tolist()
                for lane, addr in zip(bad_lanes, bad_addrs):
                    self.errors[lane] = (
                        "ExecutionError: misaligned 8-byte access at "
                        f"{addr:#x}"
                    )
                keep = ~bad
                idx, addrs, slot = idx[keep], addrs[keep], slot[keep]
                ix = idx
                if idx.size == 0:
                    return
            values = self.mem_image.load_words(idx, addrs)
            ready = self._data_access(idx, slot, addrs, False, pc)
            rd = row[R_RD]
            if rd != 0:
                self.R[ix, rd] = values
                self.ready[ix, rd] = ready
                self.producer[ix, rd] = _S_MEMORY
            self._enqueue(active, pc + 1, idx)
        elif kind == K_STORE:
            addrs = self.R[ix, row[R_RS1]] + self._imm_u64(pc, ix)
            bad = (addrs & np.uint64(7)) != 0
            if bad.any():
                bad_addrs = addrs[bad].tolist()
                bad_lanes = idx[bad].tolist()
                for lane, addr in zip(bad_lanes, bad_addrs):
                    self.errors[lane] = (
                        "ExecutionError: misaligned 8-byte access at "
                        f"{addr:#x}"
                    )
                keep = ~bad
                idx, addrs, slot = idx[keep], addrs[keep], slot[keep]
                ix = idx
                if idx.size == 0:
                    return
            self.mem_image.store_words(idx, addrs, self.R[ix, row[R_RS2]])
            ready = self._data_access(idx, slot, addrs, True, pc)
            np.maximum(self.S[ix, _C_LSD], ready, out=ready)
            self.S[ix, _C_LSD] = ready
            self._enqueue(active, pc + 1, idx)
        elif kind == K_PREFETCH:
            addrs = self.R[ix, row[R_RS1]] + self._imm_u64(pc, ix)
            addr_list = addrs.tolist()
            slot_list = slot.tolist()
            for j, lane in enumerate(idx.tolist()):
                hier = self.hiers[lane]
                hier.prefetch(addr_list[j], slot_list[j])
                self._refresh_l1d(lane, hier)
            self._enqueue(active, pc + 1, idx)
        elif kind == K_BRANCH:
            op = row[R_INST].op
            taken = self._cond_value(
                op, self.R[ix, row[R_RS1]], self.R[ix, row[R_RS2]]
            )
            if self.gshare:
                index = (self.history[ix] ^ pc) & self.pmask
            else:
                index = np.full(idx.size, pc & self.pmask, dtype=np.int64)
            counter = self.ptable[idx, index]
            predicted = counter >= 2
            self.ptable[idx, index] = np.where(
                taken,
                np.minimum(counter + 1, 3),
                np.maximum(counter - 1, 0),
            ).astype(np.int8)
            if self.gshare:
                self.history[ix] = (
                    (self.history[ix] << 1) | taken
                ) & self.hmask
            self.b_cond_pred[ix] += 1
            mispredicted = predicted != taken
            if mispredicted.any():
                lm = idx[mispredicted]
                self.b_cond_misp[lm] += 1
                self._advance_to(
                    lm,
                    slot[mispredicted] + self.lat_alu + self.penalty,
                    _S_BRANCH,
                )
            self._enqueue(active, row[R_TARGET], idx[taken])
            self._enqueue(active, pc + 1, idx[~taken])
        elif kind == K_JUMP:
            rd = row[R_RD]
            if rd != 0:
                self.R[ix, rd] = np.uint64(pc + 1)
                self.ready[ix, rd] = slot + 1
                self.producer[ix, rd] = _S_COMPUTE
            if Core.is_call(row[R_INST]):
                self._push_returns(idx, pc + 1)
            self._enqueue(active, row[R_TARGET], idx)
        elif kind == K_JUMP_INDIRECT:
            targets = self.R[ix, row[R_RS1]] + self._imm_u64(pc, ix)
            bad = targets >= np.uint64(self.n_insts)
            if bad.any():
                bad_targets = targets[bad].tolist()
                bad_lanes = idx[bad].tolist()
                for lane, target in zip(bad_lanes, bad_targets):
                    self.errors[lane] = (
                        f"ExecutionError: PC {target} outside program"
                    )
                keep = ~bad
                idx, targets, slot = idx[keep], targets[keep], slot[keep]
                ix = idx
                if idx.size == 0:
                    return
            inst = row[R_INST]
            mispredicted = self._resolve_indirect(
                idx, pc, targets, Core.is_return(inst)
            )
            rd = row[R_RD]
            if rd != 0:
                self.R[ix, rd] = np.uint64(pc + 1)
                self.ready[ix, rd] = slot + 1
                self.producer[ix, rd] = _S_COMPUTE
            if Core.is_call(inst):
                self._push_returns(idx, pc + 1)
            if mispredicted.any():
                self._advance_to(
                    idx[mispredicted],
                    slot[mispredicted] + self.lat_alu + self.penalty,
                    _S_BRANCH,
                )
            for target in set(targets.tolist()):
                self._enqueue(active, int(target),
                              idx[targets == np.uint64(target)])
        elif kind == K_BARRIER:
            drain = np.maximum(
                self.ready[ix].max(axis=1), self.S[ix, _C_LSD]
            )
            self._advance_to(idx, drain, _S_DRAIN)
            self._enqueue(active, pc + 1, idx)
        elif kind == K_NOP:
            self._enqueue(active, pc + 1, idx)
        else:  # pragma: no cover - exhaustiveness guard
            raise AssertionError(f"unhandled kind {kind} at PC {pc}")

    def _push_returns(self, idx: Any, return_pc: int) -> None:
        cap = self.ras_entries
        for lane in idx.tolist():
            ras = self.ras[lane]
            ras.append(return_pc)
            if len(ras) > cap:
                ras.pop(0)

    def _resolve_indirect(self, idx: Any, pc: int, targets: Any,
                          is_return: bool) -> Any:
        """Per-lane ``BranchUnit.resolve_indirect`` over the cohort;
        returns the mispredicted mask."""
        np = _np
        self.b_ind_pred[idx] += 1
        mispredicted = np.zeros(idx.size, dtype=bool)
        target_list = targets.tolist()
        key = pc & self.btb_mask
        for j, lane in enumerate(idx.tolist()):
            target = target_list[j]
            if is_return and self.ras[lane]:
                predicted = self.ras[lane].pop()
                if predicted == target:
                    self.b_ras_hits[lane] += 1
                else:
                    self.b_ras_misses[lane] += 1
                    self.b_ind_misp[lane] += 1
                    mispredicted[j] = True
                continue
            btb = self.btb[lane]
            predicted = btb.get(key)
            btb[key] = target
            if predicted != target:
                self.b_ind_misp[lane] += 1
                mispredicted[j] = True
        return mispredicted

    # -- scheduling + collection ---------------------------------------

    def run(self) -> List[TimingLaneOutcome]:
        np = _np
        active: Dict[int, Any] = {0: np.arange(self.n_lanes, dtype=np.intp)}
        while active:
            # Deepest-PC-first (same heuristic as the functional
            # engine): lanes deep in a loop body reach the back edge
            # and pile up on the head while shallower cohorts drain.
            pc = max(active)
            idx = active.pop(pc)
            self._step(active, pc, idx)
        return self._collect()

    def _collect(self) -> List[TimingLaneOutcome]:
        outcomes: List[TimingLaneOutcome] = []
        for lane in range(self.n_lanes):
            error = self.errors[lane]
            if error is not None:
                outcomes.append(TimingLaneOutcome(error=error))
                continue
            if not self.halted[lane]:  # pragma: no cover - invariant
                raise EnsembleError(
                    f"timing lane {lane} neither halted nor faulted"
                )
            outcomes.append(TimingLaneOutcome(result=self._result(lane)))
        return outcomes

    def _result(self, lane: int) -> CoreResult:
        """Assemble one lane's scalar-identical CoreResult.  Every
        numeric passes through ``int()``: numpy scalars are not Python
        ints and would poison semantic-id hashing downstream."""
        state = ArchState(
            regs=[int(value) for value in self.R[lane]],
            memory=_sparse_from_words(self.mem_image.exact_lane_words(lane)),
            pc=0,  # the scalar core never touches its ArchState.pc
        )
        stalls = {
            key: int(self.S[lane, _C_STALL + index])
            for index, key in enumerate(_STALL_KEYS)
        }
        perf = PerfCounters(
            cycles_stepped=int(self.S[lane, _C_STEP]),
            cycles_skipped=int(self.S[lane, _C_SKIP]),
            fast_forwards=int(self.S[lane, _C_FFWD]),
            stall_cycles=stalls,
        )
        total = int(self.total[lane])
        cpi_stack = dict(stalls)
        cpi_stack["busy"] = max(total - sum(stalls.values()), 0)
        branch = BranchStats(
            cond_predictions=int(self.b_cond_pred[lane]),
            cond_mispredicts=int(self.b_cond_misp[lane]),
            indirect_predictions=int(self.b_ind_pred[lane]),
            indirect_mispredicts=int(self.b_ind_misp[lane]),
            ras_hits=int(self.b_ras_hits[lane]),
            ras_misses=int(self.b_ras_misses[lane]),
        )
        hvec = self.hvec
        hierarchy = HierarchyStats(**{
            name: int(hvec[name][lane]) for name in _HIER_FIELDS
        })
        return CoreResult(
            core_name=self.config.name,
            program_name=self.programs[lane].name,
            cycles=total,
            instructions=int(self.S[lane, _C_EXEC]),
            state=state,
            extra={
                "branch": branch,
                "hierarchy": hierarchy,
                "l1d": self.l1d_arr.stats_for(lane),
                "l2": self.l2_arr.stats_for(lane),
                "cpi_stack": cpi_stack,
                "perf": perf,
            },
        )
