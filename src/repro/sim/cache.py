"""Content-addressed simulation result cache.

``Machine.run`` is deliberately side-effect-free: the outcome of one
simulation point is a pure function of (machine config, program,
instruction budget).  That makes every point cacheable under a stable
content hash — identical points re-requested by a different benchmark
module, a different sweep, or a later process simply reload their
:class:`~repro.baselines.core_base.CoreResult` from disk instead of
re-simulating up to tens of millions of instructions.

The key is a SHA-256 over a *canonical* rendering of the inputs:

* every primitive is type-prefixed (``int:4`` vs ``str:4`` cannot
  collide), dict keys are sorted, dataclasses contribute their class
  name plus sorted fields, enums contribute class and value;
* the program contributes its content fingerprint
  (:meth:`~repro.isa.program.Program.fingerprint`): the instruction
  stream and initial data image, not the object identity;
* :data:`SIM_SCHEMA_VERSION` is hashed into every key, so bumping it
  after any core-semantics change atomically invalidates all previously
  cached results (stale entries are simply never addressed again).

Results are stored one JSON file per key under ``benchmarks/.simcache/``
(override with ``REPRO_CACHE_DIR``).  Serialization is a small tagged
codec covering the closed set of types a ``CoreResult`` transitively
contains; anything outside that set raises, so a new stats type cannot
be silently dropped from cached results.
"""

from __future__ import annotations

import dataclasses
import enum
import json
import os
import pathlib
import tempfile
from typing import Any, Dict, List, Optional, Type

from repro.baselines.core_base import CoreResult
from repro.baselines.ooo.ooo_core import OoOStats
from repro.branch.predictors import BranchStats
from repro.core.checkpoint import CheckpointStats
from repro.core.deferred_queue import DQStats
from repro.core.modes import ExecMode, FailCause, ScoutCause
from repro.core.sst_core import SSTStats
from repro.core.store_buffer import SBStats
from repro.config import env_int
from repro.core.timing import PerfCounters
from repro.isa.interpreter import ArchState, InterpreterStats
from repro.regress.semid import SemanticIdError, canonicalize, digest_material
from repro.isa.program import Program
from repro.memory.cache import CacheStats
from repro.memory.hierarchy import HierarchyStats
from repro.memory.sparse_memory import SparseMemory
from repro.sim import faults
from repro.stats.histogram import Histogram

# Bump on ANY change to core timing/functional semantics or to the
# serialized result layout: the version is part of every cache key, so
# a bump orphans (never re-addresses) every previously cached result.
# 2: PerfCounters ride on every CoreResult's extra["perf"].
SIM_SCHEMA_VERSION = 2

# Anchored to the repository root (not the process cwd) so running the
# harness from inside benchmarks/ hits the same cache.
DEFAULT_CACHE_DIR = (
    pathlib.Path(__file__).resolve().parents[3] / "benchmarks" / ".simcache"
)


class CacheCodecError(SemanticIdError):
    """A value outside the serializable closed set of result types.

    Subclasses :class:`~repro.regress.semid.SemanticIdError` so callers
    guarding a store/key computation can catch the shared parent: key
    canonicalization failures (raised by ``semid``) and codec failures
    (raised here) are the same "this value cannot be content-addressed"
    condition.
    """


# ---------------------------------------------------------------------------
# Canonical key material — the shared semantic-ID scheme.
#
# ``canonicalize`` lives in :mod:`repro.regress.semid` now (re-exported
# here for compatibility): the cache key, the result documents, and the
# baseline firewall all hash through one documented canonicalization,
# and the key format below is bit-compatible with every entry written
# before the unification.
# ---------------------------------------------------------------------------


def result_key(config: Any, program: Program, max_instructions: int) -> str:
    """The content hash addressing one simulation point.

    Doubles as the point's *semantic ID* in the baseline firewall
    (:mod:`repro.regress`): the cache and the firewall agree on input
    identity by construction.
    """
    return digest_material({
        "schema": SIM_SCHEMA_VERSION,
        "config": canonicalize(config),
        "program": program.fingerprint(),
        "max_instructions": max_instructions,
    })


# ---------------------------------------------------------------------------
# Result (de)serialization — a tagged codec over the closed type set.
# ---------------------------------------------------------------------------

_DATACLASSES: Dict[str, Type] = {
    cls.__name__: cls
    for cls in (
        CoreResult, ArchState, SSTStats, BranchStats, HierarchyStats,
        CacheStats, DQStats, SBStats, CheckpointStats, OoOStats,
        InterpreterStats, PerfCounters,
    )
}

_ENUMS: Dict[str, Type] = {
    cls.__name__: cls for cls in (ExecMode, FailCause, ScoutCause)
}


def encode_value(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        name = type(value).__name__
        if name not in _ENUMS:
            raise CacheCodecError(f"unregistered enum {name}")
        return {"__enum__": name, "value": value.value}
    if isinstance(value, SparseMemory):
        return {"__memory__": sorted(value.items())}
    if isinstance(value, Histogram):
        return {"__histogram__": value.name, "counts": list(value.items())}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        name = type(value).__name__
        if name not in _DATACLASSES:
            raise CacheCodecError(f"unregistered dataclass {name}")
        return {
            "__dataclass__": name,
            "fields": {
                field.name: encode_value(getattr(value, field.name))
                for field in dataclasses.fields(value)
            },
        }
    if isinstance(value, dict):
        # Pair list, so non-string keys (enums, ints) round-trip.
        return {"__table__": [[encode_value(key), encode_value(item)]
                              for key, item in value.items()]}
    if isinstance(value, (list, tuple)):
        return [encode_value(item) for item in value]
    raise CacheCodecError(
        f"cannot serialize {type(value).__name__} into the result cache"
    )


def decode_value(payload: Any) -> Any:
    if payload is None or isinstance(payload, (bool, int, float, str)):
        return payload
    if isinstance(payload, list):
        return [decode_value(item) for item in payload]
    if "__enum__" in payload:
        return _ENUMS[payload["__enum__"]](payload["value"])
    if "__memory__" in payload:
        memory = SparseMemory()
        for addr, value in payload["__memory__"]:
            memory.write(addr, value)
        return memory
    if "__histogram__" in payload:
        histogram = Histogram(payload["__histogram__"])
        for value, weight in payload["counts"]:
            histogram.add(value, weight)
        return histogram
    if "__dataclass__" in payload:
        cls = _DATACLASSES[payload["__dataclass__"]]
        fields = {
            name: decode_value(item)
            for name, item in payload["fields"].items()
        }
        return cls(**fields)
    if "__table__" in payload:
        return {decode_value(key): decode_value(item)
                for key, item in payload["__table__"]}
    raise CacheCodecError(f"unrecognized cache payload: {payload!r}")


# ---------------------------------------------------------------------------
# The on-disk cache.
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class ResultCacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalid: int = 0  # corrupt / stale / mismatched files treated as misses
    evictions: int = 0  # entries removed by the LRU size cap


@dataclasses.dataclass
class FsckReport:
    """What one :meth:`ResultCache.fsck` scan found (and removed)."""

    scanned: int = 0
    ok: int = 0
    key_mismatch: int = 0  # stored "key" field != the addressing filename
    schema_stale: int = 0  # written under an older SIM_SCHEMA_VERSION
    corrupt: int = 0       # unparseable JSON or undecodable payload
    orphan_tmp: int = 0    # .tmp-* leftovers from interrupted stores
    repaired: bool = False
    removed: List[str] = dataclasses.field(default_factory=list)

    @property
    def problems(self) -> int:
        return (self.key_mismatch + self.schema_stale + self.corrupt
                + self.orphan_tmp)

    def summary(self) -> str:
        verb = "removed" if self.repaired else "found"
        return (
            f"{self.scanned} entries scanned: {self.ok} ok, "
            f"{self.key_mismatch} key-mismatched, "
            f"{self.schema_stale} schema-stale, "
            f"{self.corrupt} corrupt, "
            f"{self.orphan_tmp} orphan tmp files "
            f"({self.problems} {verb})"
        )


class ResultCache:
    """One directory of ``<sha256>.json`` cached simulation results.

    Concurrent writers (parallel sweeps, independent processes) are safe:
    files are written to a temp name and atomically renamed, and any
    reader that finds a corrupt or stale file treats it as a miss.  A
    loaded entry must also carry the requested key in its ``"key"``
    field, so a renamed or copied cache file can never silently serve
    the wrong simulation's result.

    ``max_bytes`` (or ``REPRO_CACHE_MAX_BYTES``) caps the directory
    size: after each store, least-recently-used entries (by mtime; hits
    refresh it) are evicted until the cap holds.  Unset means unbounded.
    """

    def __init__(self, root: Optional[os.PathLike] = None, *,
                 max_bytes: Optional[int] = None):
        self.root = pathlib.Path(
            root if root is not None
            else os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
        )
        if max_bytes is None:
            parsed = env_int("REPRO_CACHE_MAX_BYTES", -1)
            max_bytes = parsed if parsed >= 0 else None
        self.max_bytes = max_bytes
        self.stats = ResultCacheStats()

    def key(self, config: Any, program: Program,
            max_instructions: int) -> str:
        return result_key(config, program, max_instructions)

    def _path(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.json"

    def _entries(self) -> List[pathlib.Path]:
        """Real cache entries (pathlib's ``*.json`` also matches hidden
        ``.tmp-*.json`` leftovers, which are not entries)."""
        if not self.root.is_dir():
            return []
        return [path for path in self.root.glob("*.json")
                if path.is_file() and not path.name.startswith(".tmp-")]

    def _orphans(self) -> List[pathlib.Path]:
        """``.tmp-*`` leftovers from interrupted stores."""
        if not self.root.is_dir():
            return []
        return [path for path in self.root.glob(".tmp-*")
                if path.is_file()]

    def load(self, key: str) -> Optional[CoreResult]:
        """The cached result for ``key``, or None (counts a miss)."""
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, json.JSONDecodeError):
            self.stats.invalid += 1
            self.stats.misses += 1
            return None
        try:
            if payload.get("schema") != SIM_SCHEMA_VERSION:
                raise CacheCodecError("schema version mismatch")
            if payload.get("key") != key:
                raise CacheCodecError(
                    "stored key does not match the addressing filename"
                )
            result = decode_value(payload["result"])
            if not isinstance(result, CoreResult):
                raise CacheCodecError("cached payload is not a CoreResult")
        except (CacheCodecError, KeyError, TypeError, ValueError):
            self.stats.invalid += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        if self.max_bytes is not None:
            try:  # refresh LRU recency; best-effort (read-only mounts)
                os.utime(path)
            except OSError:
                pass
        return result

    def store(self, key: str, result: CoreResult) -> None:
        """Persist ``result`` under ``key`` (atomic rename)."""
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": SIM_SCHEMA_VERSION,
            "key": key,
            "result": encode_value(result),
        }
        text = json.dumps(payload)
        if faults.should_corrupt_store():
            # Injected corruption (REPRO_FAULT_INJECT=corrupt-cache:N):
            # a truncated payload, as an interrupted non-atomic writer
            # would have left behind.
            text = text[: max(1, len(text) // 2)]
        handle, tmp_name = tempfile.mkstemp(
            dir=self.root, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(handle, "w") as tmp:
                tmp.write(text)
            os.replace(tmp_name, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        if self.max_bytes is not None:
            self._evict_to_cap()

    def invalidate(self, key: str) -> bool:
        """Quarantine (delete) the entry for ``key``; True if one
        existed.  Counted in ``stats.invalid``."""
        try:
            self._path(key).unlink()
        except FileNotFoundError:
            return False
        except OSError:
            return False
        self.stats.invalid += 1
        return True

    def _evict_to_cap(self) -> None:
        """Drop least-recently-used entries until ``max_bytes`` holds.

        Filesystem mtimes are coarse (1s on some mounts), so entries
        stored in one burst routinely tie; the file name is the
        deterministic tie-break, making eviction order reproducible
        across runs instead of depending on directory-listing order.
        """
        assert self.max_bytes is not None
        sized = []
        for path in self._entries():
            try:
                stat = path.stat()
            except OSError:
                continue
            sized.append((stat.st_mtime, path.name, stat.st_size, path))
        total = sum(size for _, _, size, _ in sized)
        sized.sort(key=lambda item: (item[0], item[1]))
        for _, _, size, path in sized:
            if total <= self.max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            self.stats.evictions += 1

    # -- integrity ----------------------------------------------------

    def fsck(self, repair: bool = True) -> FsckReport:
        """Scan every entry for integrity problems; with ``repair``
        (default) remove what fails.

        Checks per entry: parseable JSON, current schema version, the
        stored ``"key"`` field matching the addressing filename, and a
        decodable :class:`CoreResult` payload.  Orphan ``.tmp-*`` files
        from interrupted stores are always flagged (and removed under
        ``repair``).
        """
        report = FsckReport(repaired=repair)
        bad: List[pathlib.Path] = []
        for path in sorted(self._entries()):
            report.scanned += 1
            problem = self._check_entry(path)
            if problem is None:
                report.ok += 1
                continue
            setattr(report, problem, getattr(report, problem) + 1)
            bad.append(path)
        orphans = sorted(self._orphans())
        report.orphan_tmp = len(orphans)
        if repair:
            for path in bad + orphans:
                try:
                    path.unlink()
                except OSError:
                    continue
                report.removed.append(path.name)
        return report

    def _check_entry(self, path: pathlib.Path) -> Optional[str]:
        """The FsckReport counter an entry violates, or None if sound."""
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return "corrupt"
        if not isinstance(payload, dict):
            return "corrupt"
        if payload.get("schema") != SIM_SCHEMA_VERSION:
            return "schema_stale"
        if payload.get("key") != path.stem:
            return "key_mismatch"
        try:
            result = decode_value(payload["result"])
            if not isinstance(result, CoreResult):
                raise CacheCodecError("not a CoreResult")
        except (CacheCodecError, KeyError, TypeError, ValueError):
            return "corrupt"
        return None

    def disk_stats(self) -> Dict[str, Any]:
        """On-disk usage (for ``repro cache stats``)."""
        entries = self._entries()
        total = 0
        for path in entries:
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return {
            "dir": str(self.root),
            "schema": SIM_SCHEMA_VERSION,
            "entries": len(entries),
            "total_bytes": total,
            "orphan_tmp": len(self._orphans()),
            "max_bytes": self.max_bytes,
        }

    def clear(self) -> int:
        """Delete every cached entry (and any ``.tmp-*`` leftovers);
        returns the number of *entries* removed."""
        removed = 0
        for path in self._entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for path in self._orphans():
            try:
                path.unlink()
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        return len(self._entries())


def cache_enabled_by_env() -> bool:
    """``REPRO_CACHE`` gate: unset/1/on = enabled, 0/off = disabled."""
    return os.environ.get("REPRO_CACHE", "1").lower() not in (
        "0", "off", "false", "no",
    )


def cache_from_env() -> Optional[ResultCache]:
    """A :class:`ResultCache` honoring ``REPRO_CACHE``/``REPRO_CACHE_DIR``,
    or None when caching is disabled."""
    return ResultCache() if cache_enabled_by_env() else None
