"""Simulation driving: build a machine from a config, run programs,
verify against the golden model, sweep parameters, compare cores —
in parallel and with content-addressed result caching."""

from repro.sim.cache import (
    FsckReport,
    ResultCache,
    ResultCacheStats,
    SIM_SCHEMA_VERSION,
    cache_from_env,
    result_key,
)
from repro.sim.compare import compare_machines, speedup_table
from repro.sim.faults import FaultPlan, fault_plan_from_env, parse_fault_spec
from repro.sim.machine import Machine, build_core, build_hierarchy
from repro.sim.parallel import (
    ParallelRunner,
    SimTask,
    SimTaskError,
    TaskOutcome,
    resolve_jobs,
    run_simulations,
)
from repro.sim.resilience import (
    KIND_CACHE_CORRUPT,
    KIND_POOL_TIMEOUT,
    KIND_TASK_ERROR,
    KIND_WORKER_CRASH,
    TRANSIENT_KINDS,
    RetryPolicy,
    resolve_retries,
)
from repro.sim.runner import simulate, verify_against_golden
from repro.sim.sweep import sweep, sweep_many

__all__ = [
    "FaultPlan",
    "FsckReport",
    "KIND_CACHE_CORRUPT",
    "KIND_POOL_TIMEOUT",
    "KIND_TASK_ERROR",
    "KIND_WORKER_CRASH",
    "Machine",
    "ParallelRunner",
    "ResultCache",
    "ResultCacheStats",
    "RetryPolicy",
    "SIM_SCHEMA_VERSION",
    "SimTask",
    "SimTaskError",
    "TRANSIENT_KINDS",
    "TaskOutcome",
    "build_core",
    "build_hierarchy",
    "cache_from_env",
    "compare_machines",
    "fault_plan_from_env",
    "parse_fault_spec",
    "resolve_jobs",
    "resolve_retries",
    "result_key",
    "run_simulations",
    "simulate",
    "speedup_table",
    "sweep",
    "sweep_many",
    "verify_against_golden",
]
