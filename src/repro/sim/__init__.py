"""Simulation driving: build a machine from a config, run programs,
verify against the golden model, sweep parameters, compare cores —
in parallel and with content-addressed result caching."""

from repro.sim.cache import (
    FsckReport,
    ResultCache,
    ResultCacheStats,
    SIM_SCHEMA_VERSION,
    cache_from_env,
    result_key,
)
from repro.sim.compare import compare_machines, speedup_table
from repro.sim.ensemble import (
    BACKEND_NUMPY,
    BACKEND_PYTHON,
    EnsembleError,
    EnsembleDependencyError,
    EnsembleInterpreter,
    EnsembleTask,
    EnsembleTaskError,
    LaneOutcome,
    ensemble_key,
    numpy_available,
    resolve_backend,
    run_ensemble,
)
from repro.sim.faults import FaultPlan, fault_plan_from_env, parse_fault_spec
from repro.sim.machine import Machine, build_core, build_hierarchy
from repro.sim.parallel import (
    ParallelRunner,
    SimTask,
    SimTaskError,
    TaskOutcome,
    resolve_jobs,
    run_simulations,
)
from repro.sim.resilience import (
    KIND_CACHE_CORRUPT,
    KIND_POOL_TIMEOUT,
    KIND_TASK_ERROR,
    KIND_WORKER_CRASH,
    TRANSIENT_KINDS,
    RetryPolicy,
    resolve_retries,
)
from repro.sim.runner import simulate, verify_against_golden
from repro.sim.sweep import ensemble_sweep, sweep, sweep_many
from repro.sim.timing_ensemble import (
    TimingLaneOutcome,
    run_timing_ensemble,
    timing_ensemble_eligible,
)

__all__ = [
    "BACKEND_NUMPY",
    "BACKEND_PYTHON",
    "build_core",
    "build_hierarchy",
    "cache_from_env",
    "compare_machines",
    "ensemble_key",
    "ensemble_sweep",
    "EnsembleDependencyError",
    "EnsembleError",
    "EnsembleInterpreter",
    "EnsembleTask",
    "EnsembleTaskError",
    "fault_plan_from_env",
    "FaultPlan",
    "FsckReport",
    "KIND_CACHE_CORRUPT",
    "KIND_POOL_TIMEOUT",
    "KIND_TASK_ERROR",
    "KIND_WORKER_CRASH",
    "LaneOutcome",
    "Machine",
    "numpy_available",
    "ParallelRunner",
    "parse_fault_spec",
    "resolve_backend",
    "resolve_jobs",
    "resolve_retries",
    "result_key",
    "ResultCache",
    "ResultCacheStats",
    "RetryPolicy",
    "run_ensemble",
    "run_simulations",
    "run_timing_ensemble",
    "SIM_SCHEMA_VERSION",
    "SimTask",
    "SimTaskError",
    "simulate",
    "speedup_table",
    "sweep",
    "sweep_many",
    "TaskOutcome",
    "timing_ensemble_eligible",
    "TimingLaneOutcome",
    "TRANSIENT_KINDS",
    "verify_against_golden",
]
