"""Simulation driving: build a machine from a config, run programs,
verify against the golden model, sweep parameters, compare cores."""

from repro.sim.machine import Machine, build_core, build_hierarchy
from repro.sim.runner import simulate, verify_against_golden
from repro.sim.compare import compare_machines, speedup_table
from repro.sim.sweep import sweep

__all__ = [
    "Machine",
    "build_core",
    "build_hierarchy",
    "simulate",
    "verify_against_golden",
    "compare_machines",
    "speedup_table",
    "sweep",
]
