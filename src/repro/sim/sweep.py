"""Parameter sweeps: run one program family across a list of machine
configs derived from a parameter axis (DQ size, checkpoint count, DRAM
latency, ...), collecting (parameter value → result).

Sweeps execute through :class:`~repro.sim.parallel.ParallelRunner`: set
``REPRO_JOBS`` (or pass ``jobs``) to fan the axis out over worker
processes, and pass a :class:`~repro.sim.cache.ResultCache` to skip
points that were already simulated.  Results always come back in axis
order, identical to the serial path.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.baselines.core_base import CoreResult, DEFAULT_MAX_INSTRUCTIONS
from repro.config import MachineConfig
from repro.isa.program import Program
from repro.sim.cache import ResultCache
from repro.sim.parallel import ParallelRunner, SimTask


def sweep(program: Program,
          axis: Iterable,
          make_config: Callable[[object], MachineConfig], *,
          verify: bool = False,
          max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
          jobs: Optional[int] = None,
          cache: Optional[ResultCache] = None,
          on_error: str = "raise",
          ) -> List[Tuple[object, CoreResult]]:
    """Run ``program`` once per axis value.

    ``make_config(value)`` builds the machine for each point, so the
    sweep is explicit about exactly what varies.  With
    ``on_error="skip"`` a failing point (e.g. a diverging config) is
    dropped from the result list instead of aborting the sweep.
    """
    tasks = [
        SimTask(config=make_config(value), program=program,
                max_instructions=max_instructions, verify=verify,
                tag=value)
        for value in axis
    ]
    runner = ParallelRunner(jobs, cache=cache)
    results = runner.run(tasks, on_error=on_error)
    return [
        (task.tag, result)
        for task, result in zip(tasks, results)
        if result is not None
    ]


def sweep_many(programs: Sequence[Program],
               axis: Iterable,
               make_config: Callable[[object], MachineConfig], *,
               verify: bool = False,
               max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
               jobs: Optional[int] = None,
               cache: Optional[ResultCache] = None,
               on_error: str = "raise",
               ) -> Dict[str, List[Tuple[object, CoreResult]]]:
    """A sweep per program; returns program name → sweep results.

    The whole (program × axis) matrix is submitted as one batch, so a
    parallel runner overlaps points across programs, not just within
    one sweep.
    """
    axis_values = list(axis)
    tasks = [
        SimTask(config=make_config(value), program=program,
                max_instructions=max_instructions, verify=verify,
                tag=value)
        for program in programs
        for value in axis_values
    ]
    runner = ParallelRunner(jobs, cache=cache)
    results = runner.run(tasks, on_error=on_error)
    out: Dict[str, List[Tuple[object, CoreResult]]] = {
        program.name: [] for program in programs
    }
    for task, result in zip(tasks, results):
        if result is not None:
            out[task.program.name].append((task.tag, result))
    return out
