"""Parameter sweeps: run one program family across a list of machine
configs derived from a parameter axis (DQ size, checkpoint count, DRAM
latency, ...), collecting (parameter value → result).

Sweeps execute through :class:`~repro.sim.parallel.ParallelRunner`: set
``REPRO_JOBS`` (or pass ``jobs``) to fan the axis out over worker
processes, and pass a :class:`~repro.sim.cache.ResultCache` to skip
points that were already simulated.  Results always come back in axis
order, identical to the serial path.

Uncached in-order points that share a program shape and budget batch
transparently through the lane-axis timing engine
(:mod:`repro.sim.timing_ensemble`) inside the runner — same results,
same cache keys, fewer host seconds; ``REPRO_TIMING_ENSEMBLE=0``
restores pure lane-by-lane execution.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.baselines.core_base import CoreResult, DEFAULT_MAX_INSTRUCTIONS
from repro.config import MachineConfig
from repro.isa.program import Program
from repro.sim.cache import ResultCache
from repro.sim.parallel import ParallelRunner, SimTask


def sweep(program: Program,
          axis: Iterable,
          make_config: Callable[[object], MachineConfig], *,
          verify: bool = False,
          max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
          jobs: Optional[int] = None,
          cache: Optional[ResultCache] = None,
          on_error: str = "raise",
          ) -> List[Tuple[object, CoreResult]]:
    """Run ``program`` once per axis value.

    ``make_config(value)`` builds the machine for each point, so the
    sweep is explicit about exactly what varies.  With
    ``on_error="skip"`` a failing point (e.g. a diverging config) is
    dropped from the result list instead of aborting the sweep.

    Cache interaction: points already in ``cache`` load instead of
    re-simulating.  A cached-but-corrupt entry (one that fails golden
    verification under ``verify=True``, or that cannot be decoded at
    all) never fails the sweep by itself under either ``on_error``
    mode: the entry is quarantined and the point transparently
    re-simulated, and the fresh result replaces the corrupt file.
    ``on_error`` governs *simulation* failures only — a point is
    skipped (or raised on) exactly when its re-simulation fails, never
    merely because its cache entry was bad.
    """
    tasks = [
        SimTask(config=make_config(value), program=program,
                max_instructions=max_instructions, verify=verify,
                tag=value)
        for value in axis
    ]
    runner = ParallelRunner(jobs, cache=cache)
    results = runner.run(tasks, on_error=on_error)
    return [
        (task.tag, result)
        for task, result in zip(tasks, results)
        if result is not None
    ]


def sweep_many(programs: Sequence[Program],
               axis: Iterable,
               make_config: Callable[[object], MachineConfig], *,
               verify: bool = False,
               max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
               jobs: Optional[int] = None,
               cache: Optional[ResultCache] = None,
               on_error: str = "raise",
               ) -> Dict[str, List[Tuple[object, CoreResult]]]:
    """A sweep per program; returns program name → sweep results.

    The whole (program × axis) matrix is submitted as one batch, so a
    parallel runner overlaps points across programs, not just within
    one sweep.  Caching and ``on_error`` behave exactly as in
    :func:`sweep`: warm points load, cached-but-corrupt points are
    quarantined and re-simulated (they do not raise under either
    mode), and ``on_error`` applies to simulation failures only.

    For seed-varied instances of *one* workload shape, the vectorized
    ensemble backend (:func:`repro.sim.ensemble.run_ensemble`, or
    :func:`ensemble_sweep` below) executes all instances in lockstep
    instead of one sweep task per instance.
    """
    axis_values = list(axis)
    tasks = [
        SimTask(config=make_config(value), program=program,
                max_instructions=max_instructions, verify=verify,
                tag=value)
        for program in programs
        for value in axis_values
    ]
    runner = ParallelRunner(jobs, cache=cache)
    results = runner.run(tasks, on_error=on_error)
    out: Dict[str, List[Tuple[object, CoreResult]]] = {
        program.name: [] for program in programs
    }
    for task, result in zip(tasks, results):
        if result is not None:
            out[task.program.name].append((task.tag, result))
    return out


def ensemble_sweep(make_program: Callable[[object], Program],
                   axis: Iterable, *,
                   max_steps: Optional[int] = None,
                   jobs: Optional[int] = None,
                   cache: Optional[ResultCache] = None,
                   backend: Optional[str] = None,
                   lanes: Optional[int] = None,
                   on_error: str = "raise",
                   ) -> List[Tuple[object, CoreResult]]:
    """A functional sweep along a *program* axis, executed in lockstep.

    Where :func:`sweep` varies the machine and :func:`sweep_many`
    crosses programs with machines, this varies the program itself —
    ``make_program(value)`` builds one instance per axis value (the
    ``e*`` experiments' seed loops) — and hands the whole batch to the
    vectorized ensemble backend, which simulates every lane
    simultaneously instead of one task at a time.  All instances must
    share a code shape (``Program.shape_fingerprint``); results are
    functional (final state + interpreter stats, no timing).  Caching
    is per lane program, so warm lanes load and only cold lanes
    execute; ``on_error="skip"`` drops failed lanes like :func:`sweep`
    drops failed points.
    """
    from repro.isa.interpreter import DEFAULT_MAX_STEPS
    from repro.sim.ensemble import run_ensemble

    axis_values = list(axis)
    programs = [make_program(value) for value in axis_values]
    results = run_ensemble(
        programs,
        max_steps=DEFAULT_MAX_STEPS if max_steps is None else max_steps,
        cache=cache, backend=backend, lanes=lanes, jobs=jobs,
        on_error=on_error,
    )
    return [
        (value, result)
        for value, result in zip(axis_values, results)
        if result is not None
    ]
