"""Parameter sweeps: run one program family across a list of machine
configs derived from a parameter axis (DQ size, checkpoint count, DRAM
latency, ...), collecting (parameter value → result)."""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from repro.baselines.core_base import CoreResult, DEFAULT_MAX_INSTRUCTIONS
from repro.config import MachineConfig
from repro.isa.program import Program
from repro.sim.runner import simulate


def sweep(program: Program,
          axis: Iterable,
          make_config: Callable[[object], MachineConfig], *,
          verify: bool = False,
          max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
          ) -> List[Tuple[object, CoreResult]]:
    """Run ``program`` once per axis value.

    ``make_config(value)`` builds the machine for each point, so the
    sweep is explicit about exactly what varies.
    """
    results: List[Tuple[object, CoreResult]] = []
    for value in axis:
        config = make_config(value)
        results.append(
            (value, simulate(config, program, verify=verify,
                             max_instructions=max_instructions))
        )
    return results


def sweep_many(programs: Sequence[Program],
               axis: Iterable,
               make_config: Callable[[object], MachineConfig], *,
               max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
               ) -> Dict[str, List[Tuple[object, CoreResult]]]:
    """A sweep per program; returns program name → sweep results."""
    return {
        program.name: sweep(program, axis, make_config,
                            max_instructions=max_instructions)
        for program in programs
    }
