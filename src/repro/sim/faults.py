"""Deterministic fault injection for the parallel engine.

Every recovery path in :mod:`repro.sim.parallel` and
:mod:`repro.sim.cache` can be exercised on demand by setting
``REPRO_FAULT_INJECT`` to a comma-separated list of directives:

``crash:P[@N|@all]``
    A task crashes its worker with probability ``P`` (0 < P <= 1).
    Whether a given task crashes is *deterministic*: a SHA-256 over the
    task label decides, so the same sweep injects the same faults every
    run.  By default a doomed task crashes only on attempt 1 (so
    retries always recover it); ``@N`` extends the sabotage to attempts
    1..N and ``@all`` to every attempt (for retry-exhaustion testing).
    ``P >= 1`` dooms every task.

``hang:SUBSTR[@N|@all]``
    A task whose label contains ``SUBSTR`` hangs: inside a pool worker
    it sleeps until the per-task deadline reaps it; on the inline path
    it reports a synthetic pool-timeout without sleeping.  Attempt
    scoping as for ``crash`` (default: attempt 1 only).

``corrupt-cache:N``
    Every Nth :meth:`ResultCache.store <repro.sim.cache.ResultCache
    .store>` writes a truncated (unparseable) payload instead of the
    real one, exercising the corrupt-entry quarantine and ``fsck``
    paths.

Example: ``REPRO_FAULT_INJECT="crash:0.1,hang:e2/btree,corrupt-cache:3"``.

Injection never changes *measured results*: a crashed or hung task is
re-simulated from scratch and a corrupted cache entry is quarantined
and re-simulated, so a faulty run's cycle counts are bit-identical to a
fault-free run (enforced by ``tests/sim/test_faults.py``).
"""

from __future__ import annotations

import dataclasses
import os
from typing import Dict, Optional

from repro.errors import ConfigError
from repro.regress.semid import deterministic_fraction

ENV_VAR = "REPRO_FAULT_INJECT"

# Attempt ceiling meaning "sabotage every attempt".
EVERY_ATTEMPT = -1

# Default sleep for an injected hang inside a pool worker.  The
# collector's deadline reaps the worker long before this expires; the
# value only bounds how long a hang can stall a run with no timeout.
HANG_SECONDS = 3600.0


# The deterministic [0, 1) fraction now lives in the shared semantic-ID
# module; the local alias keeps the planner's call sites (and tests)
# stable.
_fraction = deterministic_fraction


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A parsed ``REPRO_FAULT_INJECT`` spec."""

    crash_prob: float = 0.0
    crash_attempts: int = 1
    hang_match: Optional[str] = None
    hang_attempts: int = 1
    corrupt_every: int = 0
    hang_seconds: float = HANG_SECONDS
    spec: str = ""

    def _in_scope(self, attempt: int, limit: int) -> bool:
        return limit == EVERY_ATTEMPT or attempt <= limit

    def should_crash(self, label: str, attempt: int) -> bool:
        """Does the task called ``label`` crash on this attempt?"""
        if self.crash_prob <= 0:
            return False
        if not self._in_scope(attempt, self.crash_attempts):
            return False
        if self.crash_prob >= 1:
            return True
        return _fraction(f"crash:{label}") < self.crash_prob

    def should_hang(self, label: str, attempt: int) -> bool:
        """Does the task called ``label`` hang on this attempt?"""
        if self.hang_match is None:
            return False
        if not self._in_scope(attempt, self.hang_attempts):
            return False
        return self.hang_match in label


def _split_attempts(arg: str, directive: str) -> "tuple[str, int]":
    """Split a ``VALUE[@N|@all]`` argument into (value, attempt limit)."""
    if "@" not in arg:
        return arg, 1
    value, _, scope = arg.rpartition("@")
    if scope == "all":
        return value, EVERY_ATTEMPT
    try:
        attempts = int(scope)
    except ValueError:
        raise ConfigError(
            f"{ENV_VAR}: bad attempt scope {scope!r} in {directive!r} "
            f"(expected an integer or 'all')"
        ) from None
    if attempts < 1:
        raise ConfigError(
            f"{ENV_VAR}: attempt scope must be >= 1 in {directive!r}"
        )
    return value, attempts


def parse_fault_spec(spec: str) -> FaultPlan:
    """Parse a ``REPRO_FAULT_INJECT`` spec string (see module docs).

    Raises :class:`~repro.errors.ConfigError` on any grammar violation
    so a typo fails loudly instead of silently injecting nothing.
    """
    fields: Dict[str, object] = {"spec": spec}
    for directive in spec.split(","):
        directive = directive.strip()
        if not directive:
            continue
        kind, sep, arg = directive.partition(":")
        kind = kind.strip()
        arg = arg.strip()
        if not sep or not arg:
            raise ConfigError(
                f"{ENV_VAR}: directive {directive!r} must look like "
                f"kind:value"
            )
        if kind == "crash":
            value, attempts = _split_attempts(arg, directive)
            try:
                prob = float(value)
            except ValueError:
                raise ConfigError(
                    f"{ENV_VAR}: crash probability must be a number, "
                    f"got {value!r}"
                ) from None
            if not 0 < prob <= 1:
                raise ConfigError(
                    f"{ENV_VAR}: crash probability must be in (0, 1], "
                    f"got {prob}"
                )
            fields["crash_prob"] = prob
            fields["crash_attempts"] = attempts
        elif kind == "hang":
            value, attempts = _split_attempts(arg, directive)
            if not value:
                raise ConfigError(
                    f"{ENV_VAR}: hang needs a label substring"
                )
            fields["hang_match"] = value
            fields["hang_attempts"] = attempts
        elif kind == "corrupt-cache":
            try:
                every = int(arg)
            except ValueError:
                raise ConfigError(
                    f"{ENV_VAR}: corrupt-cache interval must be an "
                    f"integer, got {arg!r}"
                ) from None
            if every < 1:
                raise ConfigError(
                    f"{ENV_VAR}: corrupt-cache interval must be >= 1, "
                    f"got {every}"
                )
            fields["corrupt_every"] = every
        else:
            raise ConfigError(
                f"{ENV_VAR}: unknown fault kind {kind!r} "
                f"(expected crash, hang, or corrupt-cache)"
            )
    return FaultPlan(**fields)  # type: ignore[arg-type]


# Parsed plans memoized by spec string — the env var is consulted per
# task, the grammar only once per distinct value.
_PLAN_MEMO: Dict[str, FaultPlan] = {}

# 1-based count of cache stores this process has performed, driving the
# deterministic every-Nth corrupt-cache schedule.
_STORE_COUNTER = 0


def fault_plan_from_env() -> Optional[FaultPlan]:
    """The active :class:`FaultPlan`, or None when ``REPRO_FAULT_INJECT``
    is unset/empty."""
    spec = os.environ.get(ENV_VAR, "").strip()
    if not spec:
        return None
    plan = _PLAN_MEMO.get(spec)
    if plan is None:
        plan = parse_fault_spec(spec)
        _PLAN_MEMO[spec] = plan
    return plan


def should_corrupt_store() -> bool:
    """Advance the store counter; True when this store should write a
    corrupted payload (every Nth under ``corrupt-cache:N``)."""
    plan = fault_plan_from_env()
    if plan is None or plan.corrupt_every < 1:
        return False
    global _STORE_COUNTER
    _STORE_COUNTER += 1
    return _STORE_COUNTER % plan.corrupt_every == 0


def reset_fault_state() -> None:
    """Reset the store counter (test isolation)."""
    global _STORE_COUNTER
    _STORE_COUNTER = 0
