"""Parallel simulation engine.

Every simulation point in a sweep or benchmark matrix is independent —
``Machine.run`` builds a fresh hierarchy and core per run — so a batch
of points is embarrassingly parallel.  :class:`ParallelRunner` is the
one execution engine behind :func:`repro.sim.sweep.sweep`,
``sweep_many``, ``compare_machines`` and the benchmark harness's
``run_matrix``:

* **worker pool** — ``REPRO_JOBS`` (or the ``jobs`` argument) processes
  via ``multiprocessing``; ``jobs=1`` short-circuits to a zero-overhead
  in-process loop, so the default behavior (env unset) is byte-for-byte
  the old serial path;
* **ordered collection** — results come back in task-submission order
  regardless of completion order, so sweeps stay aligned with their
  axis;
* **crash isolation** — a task that raises (e.g. a diverging config
  exhausting its instruction budget) reports a per-task failure instead
  of killing the whole batch; ``on_error="skip"`` drops such points,
  ``"raise"`` re-raises after every other point has finished;
* **per-task timeout** — ``timeout`` seconds (or ``REPRO_TASK_TIMEOUT``)
  bounds each point; on expiry the pool is torn down and unfinished
  points report timeout failures;
* **result cache** — when given a
  :class:`~repro.sim.cache.ResultCache`, cached points are restored
  without touching the pool and fresh results are persisted afterwards.

Workers recompute nothing hidden: a task is (config, program, budget,
verify) and the worker calls the same :func:`repro.sim.runner.simulate`
the serial path uses, so parallel results are bit-identical to serial
ones.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
from typing import Any, List, Optional, Sequence

from repro.baselines.core_base import CoreResult, DEFAULT_MAX_INSTRUCTIONS
from repro.config import MachineConfig
from repro.errors import ConfigError, ReproError
from repro.isa.program import Program
from repro.sim.cache import ResultCache
from repro.sim.runner import simulate, verify_against_golden


class SimTaskError(ReproError):
    """One or more simulation tasks failed inside a parallel batch."""


@dataclasses.dataclass(frozen=True)
class SimTask:
    """One simulation point: a (machine, program, budget) triple."""

    config: MachineConfig
    program: Program
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS
    verify: bool = False
    # Caller's correlation key (e.g. the sweep-axis value); carried
    # through unchanged so outcomes are self-describing.
    tag: Any = None

    @property
    def label(self) -> str:
        return f"{self.config.name}/{self.program.name}"


@dataclasses.dataclass
class TaskOutcome:
    """What happened to one task: a result, or an isolated failure."""

    task: SimTask
    result: Optional[CoreResult] = None
    error: Optional[str] = None
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit argument, else ``REPRO_JOBS``, else 1.

    Inside a pool worker (daemonic process) this always resolves to 1:
    daemon processes cannot fork children, so nested parallel calls
    degrade gracefully to inline execution.
    """
    if multiprocessing.current_process().daemon:
        return 1
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if not env:
            return 1
        try:
            jobs = int(env)
        except ValueError:
            raise ConfigError(
                f"REPRO_JOBS must be an integer, got {env!r}"
            ) from None
    if jobs <= 0:  # 0 / negative = "use every core"
        jobs = os.cpu_count() or 1
    return max(1, jobs)


def _execute_task(task: SimTask):
    """Pool worker body: never raises (crash isolation)."""
    try:
        result = simulate(
            task.config, task.program, verify=task.verify,
            max_instructions=task.max_instructions,
        )
        return "ok", result
    except Exception as exc:  # noqa: BLE001 - isolate any task failure
        return "error", f"{type(exc).__name__}: {exc}"


class ParallelRunner:
    """Runs batches of :class:`SimTask` with caching and a process pool."""

    def __init__(self, jobs: Optional[int] = None, *,
                 timeout: Optional[float] = None,
                 cache: Optional[ResultCache] = None):
        self.jobs = resolve_jobs(jobs)
        if timeout is None:
            env = os.environ.get("REPRO_TASK_TIMEOUT", "").strip()
            timeout = float(env) if env else None
        self.timeout = timeout
        self.cache = cache

    # ------------------------------------------------------------------

    def run_outcomes(self, tasks: Sequence[SimTask]) -> List[TaskOutcome]:
        """Execute every task; outcomes in task order, failures isolated."""
        tasks = list(tasks)
        outcomes: List[Optional[TaskOutcome]] = [None] * len(tasks)

        pending: List[int] = []
        for index, task in enumerate(tasks):
            hit = self._try_cache_load(task)
            if hit is not None:
                outcomes[index] = hit
            else:
                pending.append(index)

        if pending:
            if self.jobs > 1 and len(pending) > 1:
                executed = self._run_pool([tasks[i] for i in pending])
            else:
                executed = [self._run_inline(tasks[i]) for i in pending]
            for index, outcome in zip(pending, executed):
                outcomes[index] = outcome
                if outcome.ok and self.cache is not None:
                    key = self.cache.key(
                        outcome.task.config, outcome.task.program,
                        outcome.task.max_instructions,
                    )
                    self.cache.store(key, outcome.result)

        return [outcome for outcome in outcomes if outcome is not None]

    def run(self, tasks: Sequence[SimTask], *,
            on_error: str = "raise") -> List[Optional[CoreResult]]:
        """Results in task order.

        ``on_error="raise"``: raise :class:`SimTaskError` listing every
        failure (after all other tasks completed).  ``"skip"``: failed
        points come back as None for the caller to filter.
        """
        if on_error not in ("raise", "skip"):
            raise ValueError(f"on_error must be 'raise' or 'skip', "
                             f"got {on_error!r}")
        outcomes = self.run_outcomes(tasks)
        failures = [o for o in outcomes if not o.ok]
        if failures and on_error == "raise":
            summary = "; ".join(
                f"{o.task.label}: {o.error}" for o in failures[:4]
            )
            raise SimTaskError(
                f"{len(failures)}/{len(outcomes)} simulation tasks "
                f"failed ({summary})"
            )
        return [outcome.result for outcome in outcomes]

    # ------------------------------------------------------------------

    def _try_cache_load(self, task: SimTask) -> Optional[TaskOutcome]:
        if self.cache is None:
            return None
        key = self.cache.key(task.config, task.program,
                             task.max_instructions)
        result = self.cache.load(key)
        if result is None:
            return None
        if task.verify:
            # Cached state is still golden-checked: the check is cheap
            # next to a timing run and guards against cache corruption.
            try:
                verify_against_golden(result, task.program)
            except Exception as exc:  # noqa: BLE001
                return TaskOutcome(task=task, cached=True,
                                   error=f"{type(exc).__name__}: {exc}")
        return TaskOutcome(task=task, result=result, cached=True)

    def _run_inline(self, task: SimTask) -> TaskOutcome:
        status, payload = _execute_task(task)
        if status == "ok":
            return TaskOutcome(task=task, result=payload)
        return TaskOutcome(task=task, error=payload)

    def _run_pool(self, tasks: List[SimTask]) -> List[TaskOutcome]:
        workers = min(self.jobs, len(tasks))
        context = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else None
        )
        outcomes: List[TaskOutcome] = []
        pool = context.Pool(processes=workers)
        aborted = False
        try:
            handles = [pool.apply_async(_execute_task, (task,))
                       for task in tasks]
            for task, handle in zip(tasks, handles):
                if aborted:
                    # Pool already torn down by an earlier timeout;
                    # salvage anything that finished before it.
                    outcome = self._collect_finished(task, handle)
                else:
                    outcome = self._collect(task, handle)
                    if outcome.error is not None \
                            and outcome.error.startswith("TimeoutError"):
                        pool.terminate()
                        aborted = True
                outcomes.append(outcome)
        finally:
            if not aborted:
                pool.close()
            pool.join()
        return outcomes

    def _collect(self, task: SimTask, handle) -> TaskOutcome:
        try:
            status, payload = handle.get(self.timeout)
        except multiprocessing.TimeoutError:
            return TaskOutcome(task=task, error=(
                f"TimeoutError: no result within {self.timeout}s"
            ))
        except Exception as exc:  # worker process died (e.g. signal)
            return TaskOutcome(task=task,
                               error=f"{type(exc).__name__}: {exc}")
        if status == "ok":
            return TaskOutcome(task=task, result=payload)
        return TaskOutcome(task=task, error=payload)

    def _collect_finished(self, task: SimTask, handle) -> TaskOutcome:
        if handle.ready():
            return self._collect(task, handle)
        return TaskOutcome(task=task, error=(
            "TimeoutError: batch aborted by an earlier task timeout"
        ))


def run_simulations(tasks: Sequence[SimTask], *,
                    jobs: Optional[int] = None,
                    timeout: Optional[float] = None,
                    cache: Optional[ResultCache] = None,
                    on_error: str = "raise") -> List[Optional[CoreResult]]:
    """One-shot convenience wrapper over :class:`ParallelRunner`."""
    runner = ParallelRunner(jobs, timeout=timeout, cache=cache)
    return runner.run(tasks, on_error=on_error)
