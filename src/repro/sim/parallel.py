"""Parallel simulation engine.

Every simulation point in a sweep or benchmark matrix is independent —
``Machine.run`` builds a fresh hierarchy and core per run — so a batch
of points is embarrassingly parallel.  :class:`ParallelRunner` is the
one execution engine behind :func:`repro.sim.sweep.sweep`,
``sweep_many``, ``compare_machines`` and the benchmark harness's
``run_matrix``:

* **worker pool** — ``REPRO_JOBS`` (or the ``jobs`` argument) processes
  via ``multiprocessing``; ``jobs=1`` short-circuits to a zero-overhead
  in-process loop, so the default behavior (env unset) is byte-for-byte
  the old serial path;
* **ordered collection** — results come back in task-submission order
  regardless of completion order, so sweeps stay aligned with their
  axis;
* **failure taxonomy** — every failure is classified structurally
  (:mod:`repro.sim.resilience`): deterministic simulation errors
  (``task-error``) are reported immediately; per-task deadline expiry
  (``pool-timeout``) and dead workers (``worker-crash``) are transient
  and retried with exponential backoff up to ``REPRO_TASK_RETRIES``
  extra rounds, each round re-dispatching *only* the unfinished tasks
  on a fresh pool — finished points are never re-run; ``on_error``
  ("raise"/"skip") governs what happens to failures that exhaust their
  retries;
* **result cache** — when given a
  :class:`~repro.sim.cache.ResultCache`, cached points are restored
  without touching the pool; a cached entry that fails integrity
  checking (``cache-corrupt``) is quarantined and the point re-simulated,
  and a store that fails (full disk, unregistered stats type) warns and
  continues instead of discarding the finished batch;
* **lane batching** — groups of pending in-order points that share a
  program *shape* (same opcodes/operands/targets, differing only in
  immediates and data — exactly the sweep pattern) and a config/budget
  are peeled off and executed in one pass through the vectorized
  timing engine (:mod:`repro.sim.timing_ensemble`), whose per-lane
  results are bit-identical to scalar runs and hit the same result
  cache keys; ineligible points (non-in-order cores, odd predictors,
  numpy missing, ``REPRO_TIMING_ENSEMBLE=0``, sanitizer or fault
  hooks active) and singleton groups fall through to the scalar path,
  as does the whole group if the batched engine itself fails;
* **fault injection** — ``REPRO_FAULT_INJECT``
  (:mod:`repro.sim.faults`) deterministically exercises every one of
  these recovery paths.

Workers recompute nothing hidden: a task is (config, program, budget,
verify) and the worker calls the same :func:`repro.sim.runner.simulate`
the serial path uses, so parallel results — including retried ones —
are bit-identical to serial, failure-free runs.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import time
import warnings
from typing import Any, List, Optional, Sequence, Tuple

from repro.baselines.core_base import CoreResult, DEFAULT_MAX_INSTRUCTIONS
from repro.config import MachineConfig, env_int
from repro.errors import ConfigError, ReproError
from repro.isa.program import Program
from repro.regress.semid import SemanticIdError
from repro.sim.cache import ResultCache
from repro.sim.faults import fault_plan_from_env
from repro.sim.resilience import (
    KIND_CACHE_CORRUPT,
    KIND_POOL_TIMEOUT,
    KIND_TASK_ERROR,
    KIND_WORKER_CRASH,
    RetryPolicy,
    policy_from_env,
)
from repro.sim.runner import simulate, verify_against_golden


class SimTaskError(ReproError):
    """One or more simulation tasks failed inside a parallel batch."""


@dataclasses.dataclass(frozen=True)
class SimTask:
    """One simulation point: a (machine, program, budget) triple."""

    config: MachineConfig
    program: Program
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS
    verify: bool = False
    # Caller's correlation key (e.g. the sweep-axis value); carried
    # through unchanged so outcomes are self-describing.
    tag: Any = None

    @property
    def label(self) -> str:
        return f"{self.config.name}/{self.program.name}"


@dataclasses.dataclass
class TaskOutcome:
    """What happened to one task: a result, or a classified failure.

    ``kind`` is one of the :mod:`repro.sim.resilience` taxonomy values
    (``task-error``, ``pool-timeout``, ``worker-crash``,
    ``cache-corrupt``) whenever ``error`` is set, and None on success.
    ``attempts`` counts execution attempts, so a point recovered by the
    retry machinery is distinguishable from one that succeeded outright.
    """

    task: SimTask
    result: Optional[CoreResult] = None
    error: Optional[str] = None
    cached: bool = False
    kind: Optional[str] = None
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.error is None


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit argument, else ``REPRO_JOBS``, else 1.

    Inside a pool worker (daemonic process) this always resolves to 1:
    daemon processes cannot fork children, so nested parallel calls
    degrade gracefully to inline execution.
    """
    if multiprocessing.current_process().daemon:
        return 1
    if jobs is None:
        jobs = env_int("REPRO_JOBS", 1)
    if jobs <= 0:  # 0 / negative = "use every core"
        jobs = os.cpu_count() or 1
    return max(1, jobs)


def _execute_task(task: SimTask, attempt: int = 1,
                  in_pool: bool = False) -> Tuple[str, Any]:
    """Pool worker body: never raises (crash isolation).

    Returns a (status, payload) pair; ``status`` is ``"ok"``,
    ``"error"`` (the simulation raised — deterministic), ``"crash"``
    (injected worker death), or ``"timeout"`` (injected hang on the
    inline path, where there is no deadline to reap a real sleep).
    """
    plan = fault_plan_from_env()
    if plan is not None:
        if plan.should_crash(task.label, attempt):
            return "crash", (
                f"injected worker crash (REPRO_FAULT_INJECT, "
                f"attempt {attempt})"
            )
        if plan.should_hang(task.label, attempt):
            if in_pool:
                # A real hang: the collector's per-task deadline reaps
                # this worker, exercising the pool-timeout path.
                time.sleep(plan.hang_seconds)
            else:
                return "timeout", (
                    f"injected hang (REPRO_FAULT_INJECT, "
                    f"attempt {attempt})"
                )
    try:
        result = simulate(
            task.config, task.program, verify=task.verify,
            max_instructions=task.max_instructions,
        )
        return "ok", result
    except Exception as exc:  # noqa: BLE001 - isolate any task failure
        return "error", f"{type(exc).__name__}: {exc}"


class ParallelRunner:
    """Runs batches of :class:`SimTask` with caching, a process pool,
    and transient-failure retries."""

    def __init__(self, jobs: Optional[int] = None, *,
                 timeout: Optional[float] = None,
                 cache: Optional[ResultCache] = None,
                 retries: Optional[int] = None,
                 retry_policy: Optional[RetryPolicy] = None):
        self.jobs = resolve_jobs(jobs)
        if timeout is None:
            env = os.environ.get("REPRO_TASK_TIMEOUT", "").strip()
            if env:
                try:
                    timeout = float(env)
                except ValueError:
                    raise ConfigError(
                        f"REPRO_TASK_TIMEOUT must be a number, got {env!r}"
                    ) from None
        self.timeout = timeout
        self.cache = cache
        self.retry_policy = (
            retry_policy if retry_policy is not None
            else policy_from_env(retries)
        )

    # ------------------------------------------------------------------

    def run_outcomes(self, tasks: Sequence[SimTask]) -> List[TaskOutcome]:
        """Execute every task; outcomes in task order, failures isolated."""
        tasks = list(tasks)
        outcomes: List[Optional[TaskOutcome]] = [None] * len(tasks)

        pending: List[int] = []
        for index, task in enumerate(tasks):
            hit = self._try_cache_load(task)
            if hit is None:
                pending.append(index)
            elif hit.kind == KIND_CACHE_CORRUPT:
                # The entry was quarantined inside _try_cache_load;
                # fall through to re-simulation so one bad file cannot
                # poison this point forever.
                pending.append(index)
            else:
                outcomes[index] = hit

        if pending:
            pending = self._run_timing_batches(tasks, pending, outcomes)
        if pending:
            executed = self._execute_batch([tasks[i] for i in pending])
            for index, outcome in zip(pending, executed):
                outcomes[index] = outcome
                if outcome.ok and self.cache is not None:
                    self._store_result(outcome)

        return [outcome for outcome in outcomes if outcome is not None]

    def _run_timing_batches(self, tasks: List[SimTask],
                            pending: List[int],
                            outcomes: List[Optional[TaskOutcome]]
                            ) -> List[int]:
        """Batch same-shape in-order points through the vectorized
        timing engine; returns the pending indices it did *not* handle.

        Grouping key is (config, program shape fingerprint, budget) —
        the engine's lane-compatibility contract.  Only groups of two
        or more lanes batch (a singleton gains nothing and keeps the
        scalar path's retry/fault machinery); groups wider than
        ``REPRO_ENSEMBLE_LANES`` run in chunks.  Each lane's result is
        verified and cached exactly as a scalar run would be, and the
        behavioral-baseline firewall observes it through the same
        hook as :func:`repro.sim.runner.simulate`.  If the engine
        itself fails, the whole group falls back to scalar execution
        with a warning — batching is an optimization, never a new way
        to lose a sweep.
        """
        from repro.config import ensemble_lanes
        from repro.sim.timing_ensemble import (
            run_timing_ensemble,
            timing_ensemble_eligible,
        )

        groups: List[Tuple[SimTask, List[int]]] = []
        for index in pending:
            task = tasks[index]
            if not timing_ensemble_eligible(task.config):
                continue
            shape = task.program.shape_fingerprint()
            for head, members in groups:
                if (head.max_instructions == task.max_instructions
                        and head.program.shape_fingerprint() == shape
                        and head.config == task.config):
                    members.append(index)
                    break
            else:
                groups.append((task, [index]))

        handled: set = set()
        width = max(2, ensemble_lanes())
        observe_baseline = bool(
            os.environ.get("REPRO_BASELINE", "").strip()
        )
        for head, members in groups:
            if len(members) < 2:
                continue
            for start in range(0, len(members), width):
                chunk = members[start:start + width]
                try:
                    lane_outcomes = run_timing_ensemble(
                        head.config,
                        [tasks[i].program for i in chunk],
                        max_instructions=head.max_instructions,
                    )
                except Exception as exc:  # noqa: BLE001 - engine crash
                    warnings.warn(
                        f"timing-ensemble batch of {len(chunk)} "
                        f"{head.config.name} lanes failed "
                        f"({type(exc).__name__}: {exc}); falling back "
                        f"to scalar execution",
                        RuntimeWarning,
                        stacklevel=4,
                    )
                    continue
                for index, lane in zip(chunk, lane_outcomes):
                    task = tasks[index]
                    if lane.error is not None:
                        outcome = TaskOutcome(task=task, error=lane.error,
                                              kind=KIND_TASK_ERROR)
                    else:
                        outcome = self._check_batched_lane(
                            task, lane.result, observe_baseline
                        )
                    outcomes[index] = outcome
                    handled.add(index)
                    if outcome.ok and self.cache is not None:
                        self._store_result(outcome)
        return [index for index in pending if index not in handled]

    def _check_batched_lane(self, task: SimTask, result: CoreResult,
                            observe_baseline: bool) -> TaskOutcome:
        """Golden-check + firewall-observe one batched lane, mirroring
        what :func:`repro.sim.runner.simulate` does on the scalar path
        (including the error rendering of a failed check)."""
        try:
            if task.verify:
                verify_against_golden(result, task.program)
            if observe_baseline:
                from repro.regress.firewall import observe_point_from_env

                observe_point_from_env(
                    task.config, task.program, task.max_instructions,
                    result,
                )
        except Exception as exc:  # noqa: BLE001 - mirror _execute_task
            return TaskOutcome(task=task, kind=KIND_TASK_ERROR,
                               error=f"{type(exc).__name__}: {exc}")
        return TaskOutcome(task=task, result=result)

    def run(self, tasks: Sequence[SimTask], *,
            on_error: str = "raise") -> List[Optional[CoreResult]]:
        """Results in task order.

        ``on_error="raise"``: raise :class:`SimTaskError` listing every
        failure (after all other tasks completed).  ``"skip"``: failed
        points come back as None for the caller to filter.
        """
        if on_error not in ("raise", "skip"):
            raise ValueError(f"on_error must be 'raise' or 'skip', "
                             f"got {on_error!r}")
        outcomes = self.run_outcomes(tasks)
        failures = [o for o in outcomes if not o.ok]
        if failures and on_error == "raise":
            summary = "; ".join(
                f"{o.task.label}: [{o.kind} after {o.attempts} "
                f"attempt(s)] {o.error}"
                for o in failures[:4]
            )
            raise SimTaskError(
                f"{len(failures)}/{len(outcomes)} simulation tasks "
                f"failed ({summary})"
            )
        return [outcome.result for outcome in outcomes]

    def run_ensemble(self, task: "Any", *,
                     on_error: str = "raise",
                     backend: Optional[str] = None,
                     lanes: Optional[int] = None
                     ) -> List[Optional[CoreResult]]:
        """Run one :class:`repro.sim.ensemble.EnsembleTask` through the
        vectorized ensemble backend, reusing this runner's cache and
        worker budget.

        Lane results are content-addressed per lane program
        (:func:`repro.sim.ensemble.ensemble_key`), so warm lanes load
        from ``self.cache`` and only cold lanes execute; cold lanes are
        chunked ``lanes`` wide and chunks are spread over up to
        ``self.jobs`` worker processes.  Semantics of ``on_error``
        match :meth:`run`.
        """
        from repro.sim.ensemble import run_ensemble

        return run_ensemble(
            list(task.programs),
            max_steps=task.max_steps,
            cache=self.cache,
            backend=backend,
            lanes=lanes,
            jobs=self.jobs,
            on_error=on_error,
        )

    # ------------------------------------------------------------------
    # Caching.
    # ------------------------------------------------------------------

    def _try_cache_load(self, task: SimTask) -> Optional[TaskOutcome]:
        if self.cache is None:
            return None
        key = self.cache.key(task.config, task.program,
                             task.max_instructions)
        result = self.cache.load(key)
        if result is None:
            return None
        if task.verify:
            # Cached state is still golden-checked: the check is cheap
            # next to a timing run and guards against cache corruption.
            try:
                verify_against_golden(result, task.program)
            except Exception as exc:  # noqa: BLE001
                self.cache.invalidate(key)
                return TaskOutcome(
                    task=task, cached=True, kind=KIND_CACHE_CORRUPT,
                    error=(f"quarantined corrupt cache entry: "
                           f"{type(exc).__name__}: {exc}"),
                )
        return TaskOutcome(task=task, result=result, cached=True)

    def _store_result(self, outcome: TaskOutcome) -> None:
        """Persist one finished result; a store failure (full disk,
        unregistered stats type) must not discard the batch."""
        assert self.cache is not None and outcome.result is not None
        key = self.cache.key(
            outcome.task.config, outcome.task.program,
            outcome.task.max_instructions,
        )
        try:
            self.cache.store(key, outcome.result)
        except (SemanticIdError, OSError) as exc:
            warnings.warn(
                f"result cache store failed for {outcome.task.label} "
                f"({type(exc).__name__}: {exc}); result kept in memory, "
                f"continuing without caching this point",
                RuntimeWarning,
                stacklevel=4,
            )

    # ------------------------------------------------------------------
    # Execution with retry rounds.
    # ------------------------------------------------------------------

    def _execute_batch(self, tasks: List[SimTask]) -> List[TaskOutcome]:
        """All tasks through retry rounds; one final outcome per task,
        in submission order.

        Round 1 runs everything; each later round re-dispatches only
        the tasks whose failure kind is transient (pool-timeout,
        worker-crash) on a *fresh* pool, so a hung worker from an
        earlier round can never block a retry.
        """
        final: List[Optional[TaskOutcome]] = [None] * len(tasks)
        remaining = list(range(len(tasks)))
        attempt = 1
        while remaining:
            batch = [tasks[i] for i in remaining]
            if self.jobs > 1 and len(batch) > 1:
                round_outcomes = self._pool_round(batch, attempt)
            else:
                round_outcomes = [self._run_inline(task, attempt)
                                  for task in batch]
            retry: List[int] = []
            for index, outcome in zip(remaining, round_outcomes):
                outcome.attempts = attempt
                final[index] = outcome
                if not outcome.ok and self.retry_policy.should_retry(
                        outcome.kind, attempt):
                    retry.append(index)
            if retry:
                self.retry_policy.pause(attempt)
            remaining = retry
            attempt += 1
        return [outcome for outcome in final if outcome is not None]

    def _run_inline(self, task: SimTask, attempt: int = 1) -> TaskOutcome:
        status, payload = _execute_task(task, attempt)
        return self._classify(task, status, payload)

    def _pool_round(self, tasks: List[SimTask],
                    attempt: int) -> List[TaskOutcome]:
        """One dispatch of ``tasks`` over a fresh pool.

        Each task gets its own collection deadline; a task that times
        out is reported as ``pool-timeout`` while the rest of the batch
        keeps collecting (other workers are still making progress).  If
        anything timed out the pool is torn down at the end of the
        round — its hung workers can never drain — and the retry round
        builds a new one.
        """
        workers = min(self.jobs, len(tasks))
        context = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else None
        )
        outcomes: List[TaskOutcome] = []
        timed_out = False
        pool = context.Pool(processes=workers)
        try:
            handles = [pool.apply_async(_execute_task,
                                        (task, attempt, True))
                       for task in tasks]
            for task, handle in zip(tasks, handles):
                outcome = self._collect(task, handle)
                if outcome.kind == KIND_POOL_TIMEOUT:
                    timed_out = True
                outcomes.append(outcome)
        finally:
            if timed_out:
                pool.terminate()
            else:
                pool.close()
            pool.join()
        return outcomes

    def _collect(self, task: SimTask, handle: Any) -> TaskOutcome:
        try:
            status, payload = handle.get(self.timeout)
        except multiprocessing.TimeoutError:
            # Structural classification: only the pool's own deadline
            # machinery lands here.  A workload raising TimeoutError
            # inside simulate comes back as a task-error payload.
            return TaskOutcome(task=task, kind=KIND_POOL_TIMEOUT, error=(
                f"no result within {self.timeout}s"
            ))
        except Exception as exc:  # worker died / untransportable result
            return TaskOutcome(task=task, kind=KIND_WORKER_CRASH,
                               error=f"{type(exc).__name__}: {exc}")
        return self._classify(task, status, payload)

    @staticmethod
    def _classify(task: SimTask, status: str, payload: Any) -> TaskOutcome:
        if status == "ok":
            return TaskOutcome(task=task, result=payload)
        kind = {
            "error": KIND_TASK_ERROR,
            "crash": KIND_WORKER_CRASH,
            "timeout": KIND_POOL_TIMEOUT,
        }[status]
        return TaskOutcome(task=task, kind=kind, error=payload)


def run_simulations(tasks: Sequence[SimTask], *,
                    jobs: Optional[int] = None,
                    timeout: Optional[float] = None,
                    cache: Optional[ResultCache] = None,
                    retries: Optional[int] = None,
                    on_error: str = "raise") -> List[Optional[CoreResult]]:
    """One-shot convenience wrapper over :class:`ParallelRunner`."""
    runner = ParallelRunner(jobs, timeout=timeout, cache=cache,
                            retries=retries)
    return runner.run(tasks, on_error=on_error)
