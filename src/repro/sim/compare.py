"""Cross-machine comparison — the backbone of every evaluation table.

``compare_machines`` runs one program on several machine configs (each
with a fresh hierarchy) and ``speedup_table`` renders the familiar
"speedup over baseline" rows with a geometric mean at the bottom.  Both
execute through :class:`~repro.sim.parallel.ParallelRunner`, so
``REPRO_JOBS`` / ``jobs`` parallelizes them and an optional
:class:`~repro.sim.cache.ResultCache` skips already-simulated points.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.baselines.core_base import CoreResult, DEFAULT_MAX_INSTRUCTIONS
from repro.config import MachineConfig
from repro.isa.program import Program
from repro.sim.cache import ResultCache
from repro.sim.parallel import ParallelRunner, SimTask
from repro.stats.report import Table, geomean


def compare_machines(program: Program, configs: Sequence[MachineConfig], *,
                     verify: bool = False,
                     max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
                     jobs: Optional[int] = None,
                     cache: Optional[ResultCache] = None,
                     ) -> Dict[str, CoreResult]:
    """Run ``program`` on every config; returns name → result."""
    tasks = [
        SimTask(config=config, program=program, verify=verify,
                max_instructions=max_instructions)
        for config in configs
    ]
    runner = ParallelRunner(jobs, cache=cache)
    results = runner.run(tasks)
    return {
        task.config.name: result
        for task, result in zip(tasks, results)
    }


def speedup_table(title: str,
                  programs: Iterable[Program],
                  configs: Sequence[MachineConfig],
                  baseline_name: str, *,
                  verify: bool = False,
                  max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
                  jobs: Optional[int] = None,
                  cache: Optional[ResultCache] = None,
                  ) -> Table:
    """One row per program: IPC of the baseline and speedup of every
    other machine over it; final row is the geometric mean.

    The full (program × config) matrix is one runner batch, so worker
    processes overlap points across rows."""
    programs = list(programs)
    configs = list(configs)
    names = [config.name for config in configs]
    if baseline_name not in names:
        raise ValueError(f"baseline {baseline_name!r} not among {names}")
    others = [name for name in names if name != baseline_name]
    table = Table(
        title,
        ["workload", f"{baseline_name} IPC"]
        + [f"{name} speedup" for name in others],
    )
    tasks = [
        SimTask(config=config, program=program, verify=verify,
                max_instructions=max_instructions)
        for program in programs
        for config in configs
    ]
    runner = ParallelRunner(jobs, cache=cache)
    flat = runner.run(tasks)
    by_program: Dict[str, Dict[str, CoreResult]] = {}
    for task, result in zip(tasks, flat):
        by_program.setdefault(task.program.name, {})[task.config.name] = result
    speedups: Dict[str, List[float]] = {name: [] for name in others}
    for program in programs:
        results = by_program[program.name]
        base = results[baseline_name]
        row: List = [program.name, round(base.ipc, 3)]
        for name in others:
            speedup = results[name].speedup_over(base)
            speedups[name].append(speedup)
            row.append(f"{speedup:.2f}x")
        table.add_row(*row)
    if any(speedups.values()):
        summary: List = ["geomean", ""]
        summary.extend(f"{geomean(values):.2f}x" for values in speedups.values())
        table.add_row(*summary)
    return table
