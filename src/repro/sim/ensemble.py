"""Vectorized ensemble backend: lockstep batched simulation over numpy.

The ROCK paper's throughput story is about serving many independent
request streams at once; the reproduction's batch-serving analogue is an
*ensemble* — N parameter-varied instances of one workload generator
(same code shape, different seeds/immediates/data images) executed
simultaneously.  :class:`EnsembleInterpreter` steps all lanes in
lockstep over structure-of-arrays state:

* an ``(N, REG_COUNT)`` uint64 register-file matrix,
* an ``(N, pages * page_words)`` uint64 paged data-image window — only
  32 KB pages the ensemble actually touches are materialized, with a
  page-table gather translating addresses and a poison slot catching
  accesses outside the mapped set (plus a per-lane overflow dict for
  the sparse tail the window refuses),
* per-lane PC, step-count and halted vectors.

Execution is whole-basic-block: for each entry PC a vectorized kernel
is generated (``exec``, the same idiom as
:mod:`repro.isa.blockcache`) that applies every instruction of the
block to all live lanes at once — ALU ops become numpy ufunc
expressions over the lane axis, loads/stores become gathers/scatters
with vectorized alignment masks, and the block terminator returns the
per-lane next PC.  Divergent branches partition lanes into *cohorts*
(an ``{entry_pc: lane-index-array}`` worklist); cohorts that arrive at
the same PC are merged, so lanes reconverge naturally at block
boundaries.  Lanes are independent, so scheduling order cannot affect
results — only batching efficiency.  Blocks whose terminator branches
back to their own entry (the inner loops that dominate every workload)
compile to *looping* kernels: registers stay resident in locals across
iterations and the kernel only returns to the scheduler on divergence,
step-budget pressure, or a fault.

Bit-identity with the scalar golden interpreter is the contract: every
lane's final registers, memory, PC and
:class:`~repro.isa.interpreter.InterpreterStats` equal a scalar
``Interpreter(program).run()`` of that lane's program — including
faulting lanes.  Three mechanisms keep the edge cases exact rather
than approximately right:

* value-sensitive ops whose scalar semantics are not reproducible with
  numpy integer arithmetic (DIV/REM round through floats in
  :mod:`repro.isa.semantics`) call the scalar handler per lane;
* faults (misaligned accesses, out-of-range indirect jumps) are
  *deferred*: kernels accumulate a per-lane fault mask, suppress the
  faulting lanes' stores, and at the end of the block rewind those
  lanes to their block-entry state and *peel* them — the SoA state is
  transplanted into a real scalar
  :class:`~repro.isa.interpreter.Interpreter` which replays the block
  (idempotent by construction: the replayed prefix recomputes exactly
  the values the vector engine computed) and raises the exact scalar
  error at the exact instruction;
* lanes whose next block would cross the step budget, or whose next PC
  falls outside the program, are peeled the same way, reproducing the
  scalar model's error ordering (budget before PC bounds) and messages
  by construction.

numpy is optional (``pip install repro[ensemble]``).  Without it — or
under the ``REPRO_ENSEMBLE=0`` kill switch — every entry point falls
back to a pure-Python lane loop (one scalar interpreter per lane) with
identical semantics.  ``REPRO_ENSEMBLE_LANES`` sets the lane-chunk
width :func:`run_ensemble` vectorizes at a time.
"""

from __future__ import annotations

import dataclasses
import functools
import multiprocessing
import time
from bisect import bisect_right
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.baselines.core_base import CoreResult
from repro.config import ensemble_enabled, ensemble_lanes
from repro.errors import ExecutionError, ReproError
from repro.isa import blockcache
from repro.isa.blockcache import (
    K_BARRIER,
    K_BRANCH,
    K_HALT,
    K_JUMP,
    K_JUMP_INDIRECT,
    K_LOAD,
    K_NOP,
    K_PREFETCH,
    K_STORE,
    R_FN,
    R_INST,
    R_KIND,
    R_RD,
    R_RS1,
    R_RS2,
    R_SOURCES,
    R_TARGET,
    R_WRITES,
)
from repro.isa.interpreter import (
    DEFAULT_MAX_STEPS,
    ArchState,
    Interpreter,
    InterpreterStats,
)
from repro.isa.opcodes import Op
from repro.isa.program import Program
from repro.isa.registers import REG_COUNT
from repro.isa.semantics import MASK64, to_signed
from repro.memory.sparse_memory import SparseMemory
from repro.sim.cache import ResultCache, result_key

try:  # numpy is the optional `ensemble` extra, not a hard dependency.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via monkeypatch
    _np = None  # type: ignore[assignment]

BACKEND_NUMPY = "numpy"
BACKEND_PYTHON = "python"

# The dense backing store is *paged*: the 64-bit address space is cut
# into 32 KiB pages and only anchored pages (initial image, plus pages
# reachable from address-like MOVI immediates) get a dense column range
# in M.  A small translation table maps page number -> slot base, so
# far-apart regions (result word, heap, log streams) stay dense without
# materializing the dead gaps between them.
_PAGE_WORDS = 4096              # words per dense page
_PAGE_SHIFT = 15                # byte address -> page number
_MOVI_HEADROOM_PAGES = 8        # growth room after each MOVI anchor
_SLOT_POISON = 1 << 60          # translation entry for unmapped pages
# Total dense-matrix ceiling: pages * lanes * page bytes is capped here
# and everything else spills to the per-lane overflow dicts.
_MAX_WINDOW_BYTES = 256 * 1024 * 1024


class EnsembleError(ReproError):
    """Invalid ensemble construction or failed ensemble lanes."""


class EnsembleDependencyError(EnsembleError, ImportError):
    """The numpy backend was requested but numpy is not installed."""


class EnsembleTaskError(EnsembleError):
    """Raised by :func:`run_ensemble` when lanes fail under
    ``on_error="raise"``."""


def numpy_available() -> bool:
    """True when the numpy backend can be used in this process."""
    return _np is not None


def resolve_backend(backend: Optional[str] = None) -> str:
    """Pick the execution backend.

    ``None`` selects numpy when it is installed and ``REPRO_ENSEMBLE``
    is not ``0``, else the pure-Python lane loop.  An explicit
    ``"numpy"`` request with numpy missing raises
    :class:`EnsembleDependencyError` (an ``ImportError``) with install
    guidance; an explicit request is honoured even under the kill
    switch — the switch governs default selection.
    """
    if backend is None:
        if ensemble_enabled() and numpy_available():
            return BACKEND_NUMPY
        return BACKEND_PYTHON
    if backend == BACKEND_NUMPY:
        if _np is None:
            raise EnsembleDependencyError(
                "the numpy ensemble backend requires numpy, which is not "
                "installed; install the extra with `pip install "
                "'repro[ensemble]'`, or use backend='python' for the "
                "pure-Python lane loop"
            )
        return BACKEND_NUMPY
    if backend == BACKEND_PYTHON:
        return BACKEND_PYTHON
    raise EnsembleError(
        f"unknown ensemble backend {backend!r}; expected "
        f"{BACKEND_NUMPY!r} or {BACKEND_PYTHON!r}"
    )


def _sparse_from_words(words: Dict[int, int]) -> SparseMemory:
    memory = SparseMemory()
    memory._words = words
    return memory


class _LazyLaneMemory(SparseMemory):
    """A :class:`SparseMemory` whose word dict materializes from the
    engine's dense row on first access.

    Rebuilding a Python dict from a big final image is the single most
    expensive part of collecting an ensemble, and throughput consumers
    (benchmarks, batch serving) read stats and a few result words, not
    full memory dumps — so the conversion is deferred until something
    actually touches the words.  The backing row is never mutated
    again once its lane leaves the vector engine, which makes the
    deferral safe.  Pickling (worker processes, result caches)
    materializes eagerly via ``__reduce__``.
    """

    def __init__(self, fill: Callable[[], Dict[int, int]]):
        super().__init__()
        self._fill: Optional[Callable[[], Dict[int, int]]] = fill

    @property
    def _words(self) -> Dict[int, int]:
        fill = self._fill
        if fill is not None:
            self._fill = None
            self._cached_words = fill()
        return self._cached_words

    @_words.setter
    def _words(self, value: Dict[int, int]) -> None:
        self._fill = None
        self._cached_words = value

    def __reduce__(self):
        return (_sparse_from_words, (dict(self._words),))


@dataclasses.dataclass
class LaneOutcome:
    """Final architectural state of one ensemble lane.

    ``error`` is ``None`` on clean HALT, else the scalar interpreter's
    error rendered as ``"ExceptionType: message"`` (identical to what a
    scalar run of the same lane program would raise).
    """

    state: ArchState
    stats: InterpreterStats
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


def _check_lane_contract(programs: Sequence[Program]) -> None:
    if not programs:
        raise EnsembleError("ensemble needs at least one lane program")
    for program in programs:
        program.validate()
    shape = programs[0].shape_fingerprint()
    for lane, program in enumerate(programs):
        if program.shape_fingerprint() != shape:
            raise EnsembleError(
                f"lane {lane} ({program.name!r}) does not share the code "
                f"shape of lane 0 ({programs[0].name!r}); ensemble lanes "
                "must differ only in immediates and data "
                "(Program.shape_fingerprint)"
            )


def _scalar_lane(program: Program, max_steps: int) -> LaneOutcome:
    """Reference path: one scalar golden-interpreter run."""
    interp = Interpreter(program, max_steps=max_steps)
    error: Optional[str] = None
    try:
        interp.run()
    except ExecutionError as exc:
        error = f"{type(exc).__name__}: {exc}"
    return LaneOutcome(state=interp.state, stats=interp.stats, error=error)


class EnsembleInterpreter:
    """Execute N shape-compatible lane programs in lockstep.

    ``backend=None`` auto-selects (numpy when available and enabled,
    else pure Python); ``run()`` returns one :class:`LaneOutcome` per
    lane, in lane order, bit-identical to scalar runs.
    """

    def __init__(
        self,
        programs: Sequence[Program],
        max_steps: int = DEFAULT_MAX_STEPS,
        backend: Optional[str] = None,
    ):
        self.programs: List[Program] = list(programs)
        _check_lane_contract(self.programs)
        self.max_steps = max_steps
        self.backend = resolve_backend(backend)

    def run(self) -> List[LaneOutcome]:
        if self.backend == BACKEND_NUMPY:
            return _VectorEngine(self.programs, self.max_steps).run()
        return [_scalar_lane(p, self.max_steps) for p in self.programs]


# ---------------------------------------------------------------------------
# The numpy engine.
# ---------------------------------------------------------------------------

_ALU_SYM = {
    Op.ADD: "+", Op.ADDI: "+", Op.SUB: "-", Op.MUL: "*",
    Op.AND: "&", Op.ANDI: "&", Op.OR: "|", Op.ORI: "|",
    Op.XOR: "^", Op.XORI: "^",
}
_BRANCH_COND = {
    Op.BEQ: "{a} == {b}",
    Op.BNE: "{a} != {b}",
    Op.BLTU: "{a} < {b}",
    Op.BGEU: "{a} >= {b}",
    Op.BLT: "{a}.view(_I8) < {b}.view(_I8)",
    Op.BGE: "{a}.view(_I8) >= {b}.view(_I8)",
}

_SKIP_KINDS = (K_PREFETCH, K_BARRIER, K_NOP)


@dataclasses.dataclass
class _Kernel:
    """One compiled batched kernel plus its static stat weights.

    ``execs`` counts, per lane, how many times this kernel's body ran
    (iterations, for looping kernels); loads/stores/branches/jumps per
    lane are derived as ``weight * execs`` at collection time instead
    of being updated on every dispatch.
    """

    length: int
    loads: int
    stores: int
    branches: int
    jumps: int
    is_loop: bool
    fn: Callable[..., Any]
    execs: Any


class LaneMemoryImage:
    """The paged dense memory window of N ensemble lanes (SoA).

    Extracted from the functional vector engine so the lane-batched
    *timing* engine (:mod:`repro.sim.timing_ensemble`) shares one
    proven layout: a ``(lanes, pages * page_words)`` uint64 matrix
    ``M`` for anchored pages, a page-number -> slot-base translation
    table ``T`` (poisoned for unmapped pages), and per-lane overflow
    dicts for everything outside the dense window.

    Two word-collection views exist because the two engines have
    different identity contracts:

    * :meth:`lane_words` — zero-valued words dropped (functional
      results; equality ignores zeros).
    * :meth:`exact_lane_words` — bit-exact replica of the scalar
      ``SparseMemory._words`` dict, including zero-valued entries from
      the initial image and from explicit zero stores.  Valid only
      when every store went through :meth:`store_words` (the timing
      engine's path), which maintains the zero-write bookkeeping; the
      functional engine's generated kernels scatter into ``M``
      directly and must use :meth:`lane_words`.
    """

    def __init__(self, programs: Sequence[Program]):
        np = _np
        self.programs = list(programs)
        self.n_lanes = len(self.programs)
        image_pages = {
            word.addr >> _PAGE_SHIFT
            for program in self.programs
            for word in program.data
        }
        # Anchor pages reachable from address-like MOVI immediates too:
        # workloads materialize result/log-region base pointers as MOVI
        # constants outside the initial data image, and stores through
        # them must stay on the dense fast path.  Non-address constants
        # that slip through the filter cost at most one false page each
        # (and small ones coalesce into page zero).
        movi_pages: Set[int] = set()
        for inst in self.programs[0].instructions:
            if inst.op is Op.MOVI:
                imm = inst.imm
                if (1 << 12) <= imm < (1 << 48) and imm % 8 == 0:
                    movi_pages.add(imm >> _PAGE_SHIFT)
        budget = max(
            1, _MAX_WINDOW_BYTES // (8 * self.n_lanes * _PAGE_WORDS)
        )
        # Priority order under the budget: the image itself, one page of
        # headroom after each image page (heap-adjacent growth), then
        # MOVI anchors.  Anchors above the image top get extra headroom
        # pages so append-style streams (logs) can grow past their base
        # pointer; anchors below it (result words, small tables) do not
        # grow and stay single-page.
        image_top = max(image_pages) if image_pages else -1
        selected: Set[int] = set()
        tiers = [
            sorted(image_pages),
            sorted(page + 1 for page in image_pages),
            sorted(movi_pages),
            sorted(
                page + extra
                for page in movi_pages
                if page > image_top
                for extra in range(1, _MOVI_HEADROOM_PAGES + 1)
            ),
        ]
        for tier in tiers:
            for page in tier:
                if len(selected) >= budget:
                    break
                selected.add(page)
        if not selected:
            selected.add(0)
        pages = sorted(selected)
        self._pages = np.array(pages, dtype=np.int64)  # slot -> page
        self.T = np.full(
            pages[-1] + 1, _SLOT_POISON, dtype=np.uint64
        )
        for slot, page in enumerate(pages):
            self.T[page] = slot * _PAGE_WORDS
        self.M = np.zeros(
            (self.n_lanes, len(pages) * _PAGE_WORDS), dtype=np.uint64
        )
        self.ovf: List[Dict[int, int]] = [{} for _ in range(self.n_lanes)]
        # Addresses whose *scalar* word dict holds an explicit zero (a
        # zero-valued image word, or a store of zero through
        # store_words) — invisible in M but part of the exact identity.
        self.zero_written: List[Set[int]] = [
            set() for _ in range(self.n_lanes)
        ]
        self._track_zeros = False
        for lane, program in enumerate(self.programs):
            data = program.data
            if not data:
                continue
            count = len(data)
            addrs = np.fromiter(
                (word.addr for word in data), dtype=np.uint64,
                count=count,
            )
            values = np.fromiter(
                (word.value & MASK64 for word in data), dtype=np.uint64,
                count=count,
            )
            if not values.all():
                # Rare: the image writes explicit zeros.  Replay the
                # scalar last-writer-wins build to find which survive.
                final: Dict[int, int] = {}
                for word in data:
                    final[word.addr] = word.value & MASK64
                zeros = {a for a, v in final.items() if v == 0}
                if zeros:
                    self.zero_written[lane].update(zeros)
                    self._track_zeros = True
            w2, dense, _ = self.addr_state(addrs)
            # Duplicate addresses must resolve last-writer-wins like
            # the scalar image build; numpy fancy assignment leaves
            # that unspecified.  Strictly increasing slots (the
            # generator norm) scatter directly; anything else goes
            # through a stable sort so later words win ties.
            if dense.all():
                if count == 1 or bool((np.diff(w2) > 0).all()):
                    self.M[lane, w2] = values
                else:
                    order = np.argsort(w2, kind="stable")
                    self.M[lane, w2[order]] = values[order]
                continue
            for j, word in enumerate(data):
                if dense[j]:
                    self.M[lane, w2[j]] = values[j]
                else:
                    self.ovf[lane][word.addr] = int(values[j])

    def addr_state(self, addrs: Any) -> Tuple[Any, Any, Any]:
        """Map a uint64 byte-address vector through the page table:
        ``(dense_index, dense_mask, aligned_mask)``.  ``dense_index``
        is only meaningful where ``dense_mask`` holds."""
        np = _np
        aligned = (addrs & np.uint64(7)) == 0
        page = addrs >> np.uint64(_PAGE_SHIFT)
        in_table = page < np.uint64(self.T.size)
        slot = self.T[np.where(in_table, page, 0).astype(np.intp)]
        dense = in_table & (slot != np.uint64(_SLOT_POISON))
        w2 = (
            np.where(dense, slot, 0)
            + ((addrs >> np.uint64(3)) & np.uint64(_PAGE_WORDS - 1))
        ).astype(np.intp)
        return w2, dense, aligned

    # -- aligned batched access (timing-engine path) ------------------

    def load_words(self, idx: Any, addrs: Any) -> Any:
        """Gather the words at aligned ``addrs`` for lanes ``idx``."""
        np = _np
        w2, dense, _ = self.addr_state(addrs)
        if dense.all():
            return self.M[idx, w2]
        out = np.empty(idx.size, dtype=np.uint64)
        out[dense] = self.M[idx[dense], w2[dense]]
        for j in np.nonzero(~dense)[0].tolist():
            out[j] = self.ovf[int(idx[j])].get(int(addrs[j]), 0)
        return out

    def store_words(self, idx: Any, addrs: Any, vals: Any) -> None:
        """Scatter ``vals`` to aligned ``addrs`` for lanes ``idx``,
        maintaining the exact-words bookkeeping (zero stores stay part
        of the word set, like ``SparseMemory.write``)."""
        np = _np
        w2, dense, _ = self.addr_state(addrs)
        zero = vals == np.uint64(0)
        if zero.any():
            self._track_zeros = True
        if self._track_zeros:
            # Slow bookkeeping path, entered only once a zero word
            # exists anywhere in the ensemble.
            for j in np.nonzero(dense)[0].tolist():
                tracked = self.zero_written[int(idx[j])]
                if zero[j]:
                    tracked.add(int(addrs[j]))
                else:
                    tracked.discard(int(addrs[j]))
        if dense.all():
            self.M[idx, w2] = vals
        else:
            self.M[idx[dense], w2[dense]] = vals[dense]
            for j in np.nonzero(~dense)[0].tolist():
                self.ovf[int(idx[j])][int(addrs[j])] = int(vals[j])

    # -- collection ----------------------------------------------------

    def lane_words(self, lane: int) -> Dict[int, int]:
        """Nonzero final words of one lane (functional identity)."""
        row = self.M[lane]
        nz = _np.nonzero(row)[0]
        pages = self._pages[nz // _PAGE_WORDS]
        addrs = (pages << _PAGE_SHIFT) + ((nz % _PAGE_WORDS) << 3)
        words = dict(zip(addrs.tolist(), row[nz].tolist()))
        for addr, value in self.ovf[lane].items():
            if value:
                words[addr] = value
            else:
                words.pop(addr, None)
        return words

    def exact_lane_words(self, lane: int) -> Dict[int, int]:
        """The scalar ``SparseMemory._words`` replica of one lane —
        zero-valued entries included (see class docstring)."""
        row = self.M[lane]
        nz = _np.nonzero(row)[0]
        pages = self._pages[nz // _PAGE_WORDS]
        addrs = (pages << _PAGE_SHIFT) + ((nz % _PAGE_WORDS) << 3)
        words = dict(zip(addrs.tolist(), row[nz].tolist()))
        for addr in self.zero_written[lane]:
            words[addr] = 0
        words.update(self.ovf[lane])
        return words

    def lane_memory(self, lane: int) -> SparseMemory:
        """The lane's final memory as a (lazily materialized) sparse
        image.  Only valid once the lane has left vector execution —
        its M row and overflow dict must not change afterwards."""
        return _LazyLaneMemory(functools.partial(self.lane_words, lane))


class _VectorEngine:
    """SoA state + generated batched block kernels for one ensemble."""

    def __init__(self, programs: List[Program], max_steps: int):
        np = _np
        self.programs = programs
        self.max_steps = max_steps
        base = programs[0]
        self.n_lanes = len(programs)
        self.n_insts = len(base)
        block_program = blockcache.get_block_program(base)
        self.rows = block_program.rows
        self.blocks = block_program.blocks
        self._block_starts = [start for start, _ in self.blocks]
        self._block_end_of = dict(self.blocks)

        self.R = np.zeros((self.n_lanes, REG_COUNT), dtype=np.uint64)
        self._init_memory()
        self.s_insts = np.zeros(self.n_lanes, dtype=np.int64)
        self.s_taken = np.zeros(self.n_lanes, dtype=np.int64)
        self.final_pc = np.zeros(self.n_lanes, dtype=np.int64)
        self.halted = np.zeros(self.n_lanes, dtype=bool)
        self.done: List[Optional[LaneOutcome]] = [None] * self.n_lanes

        self._imm_cache: Dict[int, Tuple[Optional[int], Any]] = {}
        self._kernels: Dict[int, _Kernel] = {}
        self._ns: Dict[str, Any] = {
            "_np": np,
            "_U8": np.uint64,
            "_I8": np.int64,
            "_IP": np.intp,
            "_63": np.uint64(63),
            "_7": np.uint64(7),
            "_3": np.uint64(3),
            "_53": np.uint64(53),
            "_NN": np.uint64(self.n_insts),
            "_T": self.T,
            "_PS": np.uint64(_PAGE_SHIFT),
            "_PM": np.uint64(_PAGE_WORDS - 1),
        }

    # -- memory layout ------------------------------------------------

    def _init_memory(self) -> None:
        # The image owns the arrays; the engine keeps direct aliases
        # because the generated kernels index M/T by bare name.  The
        # arrays are mutated in place and never rebound, so aliasing is
        # safe.
        image = LaneMemoryImage(self.programs)
        self.mem_image = image
        self.M = image.M
        self.T = image.T
        self.ovf = image.ovf
        self._pages = image._pages

    def _addr_state(self, addrs: Any) -> Tuple[Any, Any, Any]:
        return self.mem_image.addr_state(addrs)

    def _lane_memory(self, lane: int) -> SparseMemory:
        return self.mem_image.lane_memory(lane)

    # -- runtime helpers called from generated kernels ----------------

    def _lanewise(self, fn: Callable[[int, int], int], a: Any, b: Any) -> Any:
        """Per-lane scalar-handler fallback for value-sensitive ops
        (DIV/REM round through floats in the scalar model)."""
        np = _np
        out = np.empty(a.shape[0], dtype=np.uint64)
        avals = a.tolist()
        bvals = b.tolist() if isinstance(b, np.ndarray) else None
        if bvals is None:
            bconst = int(b)
            for i, x in enumerate(avals):
                out[i] = fn(x, bconst)
        else:
            for i, x in enumerate(avals):
                out[i] = fn(x, bvals[i])
        return out

    def _load_slow(self, idx: Any, addrs: Any, flt: Any) -> Any:
        """Mixed-destination load: dense pages gather from M, unmapped
        aligned addresses read the overflow dicts, misaligned lanes
        join the fault mask (their value is garbage and discarded by
        the rewind + peel).  Returns ``(values, updated_fault_mask)``.
        """
        np = _np
        w2, dense, aligned = self._addr_state(addrs)
        bad = ~aligned
        flt = bad if flt is None else (flt | bad)
        out = np.empty(idx.size, dtype=np.uint64)
        out[dense] = self.M[idx[dense], w2[dense]]
        for j in np.nonzero(~dense)[0].tolist():
            out[j] = self.ovf[int(idx[j])].get(int(addrs[j]), 0)
        return out, flt

    def _store_slow(self, idx: Any, addrs: Any, flt: Any, vals: Any) -> Any:
        """Mixed-destination store: dense pages scatter into M,
        unmapped aligned addresses write the overflow dicts, and lanes
        that faulted earlier in the block (or misalign here) are
        suppressed entirely.  Returns the updated fault mask."""
        np = _np
        w2, dense, aligned = self._addr_state(addrs)
        bad = ~aligned
        flt = bad if flt is None else (flt | bad)
        ok = dense & ~flt
        if ok.any():
            self.M[idx[ok], w2[ok]] = vals[ok]
        for j in np.nonzero(~(dense | flt))[0].tolist():
            self.ovf[int(idx[j])][int(addrs[j])] = int(vals[j])
        return flt

    def _halt(self, idx: Any, pc: int) -> None:
        self.final_pc[idx] = pc
        self.halted[idx] = True

    # -- scalar peel --------------------------------------------------

    def _lane_stats(self, lane: int) -> Tuple[int, int, int, int]:
        """Derive (loads, stores, branches, jumps) for one lane from
        the per-kernel execution counters."""
        loads = stores = branches = jumps = 0
        for kernel in self._kernels.values():
            execs = int(kernel.execs[lane])
            if execs:
                loads += kernel.loads * execs
                stores += kernel.stores * execs
                branches += kernel.branches * execs
                jumps += kernel.jumps * execs
        return loads, stores, branches, jumps

    def _peel_block(self, lanes: Any, start: int) -> None:
        """Retire faulted lanes: their SoA state was rewound to block
        entry, so the scalar replay re-raises the fault exactly."""
        for lane in lanes.tolist():
            self._finish_scalar(lane, start)

    def _finish_scalar(self, lane: int, pc: int) -> None:
        """Transplant one lane into a real scalar interpreter and run it
        to completion.

        Used for lanes the vector engine will not model further: a
        block that faulted (state rewound to block entry), a block that
        would cross the step budget (the scalar model raises its
        "exceeded N steps" error at an exact instruction, after
        checking the budget *before* the PC bounds) and next-PCs
        outside the program.  The scalar interpreter reproduces
        ordering, error text and final state by construction.
        """
        program = self.programs[lane]
        interp = Interpreter(program, max_steps=self.max_steps)
        interp.state.regs = [int(v) for v in self.R[lane]]
        interp.state.memory = self._lane_memory(lane)
        interp.state.pc = pc
        loads, stores, branches, jumps = self._lane_stats(lane)
        interp.stats = InterpreterStats(
            instructions=int(self.s_insts[lane]),
            loads=loads,
            stores=stores,
            branches=branches,
            branches_taken=int(self.s_taken[lane]),
            jumps=jumps,
        )
        error: Optional[str] = None
        try:
            interp.run()
        except ExecutionError as exc:
            error = f"{type(exc).__name__}: {exc}"
        self.done[lane] = LaneOutcome(
            state=interp.state, stats=interp.stats, error=error
        )

    # -- kernel generation --------------------------------------------

    def _imm_info(self, pc: int) -> Tuple[Optional[int], Any]:
        """``(uniform_imm, None)`` when every lane agrees at ``pc``,
        else ``(None, per-lane uint64 vector)``."""
        cached = self._imm_cache.get(pc)
        if cached is not None:
            return cached
        imms = [program[pc].imm for program in self.programs]
        first = imms[0]
        if all(value == first for value in imms):
            info: Tuple[Optional[int], Any] = (first, None)
        else:
            vec = _np.array([value & MASK64 for value in imms],
                            dtype=_np.uint64)
            info = (None, vec)
        self._imm_cache[pc] = info
        return info

    def _imm_operand(self, pc: int, mode: str) -> str:
        """Render the immediate of ``pc`` as a kernel expression.

        Modes: ``u64`` (masked uint64 scalar/vector), ``shiftu``
        (uint64 shift count), ``shifti`` (int64 shift count), ``signed``
        (int64 view for signed compares), ``raw`` (handler argument —
        the scalar fns mask internally, so masked vectors are
        congruent).
        """
        uniform, vec = self._imm_info(pc)
        if vec is None:
            assert uniform is not None
            if mode == "u64":
                name = f"_c{pc}"
                self._ns[name] = _np.uint64(uniform & MASK64)
                return name
            if mode in ("shiftu", "shifti"):
                return str(uniform & 63)
            if mode == "signed":
                return f"({to_signed(uniform & MASK64)})"
            return f"({uniform})"  # raw
        name = f"_imm{pc}"
        self._ns[name] = vec
        gathered = f"{name}[idx]"
        if mode == "u64" or mode == "raw":
            return gathered
        if mode == "shiftu":
            return f"({gathered} & _63)"
        if mode == "shifti":
            return f"({gathered} & _63).astype(_I8)"
        return f"{gathered}.view(_I8)"  # signed

    def _block_bounds(self, pc: int) -> int:
        start = self._block_starts[
            bisect_right(self._block_starts, pc) - 1
        ]
        return self._block_end_of[start]

    def _emit_inst(
        self,
        pc: int,
        row: Any,
        ind: str,
        emit: Callable[[str], None],
        read: Callable[[int], str],
        write: Callable[[int, str], None],
        imm: Callable[[int, str], str],
    ) -> None:
        """Emit one body instruction through the caller's codegen
        context (shared between straight-line and looping kernels).

        Memory ops use a *poisoned-index* fast path: the page-table
        lookup plus in-page offset plus alignment term is a valid
        index into M exactly when the address is aligned and lands on
        a mapped page; every other case (misaligned -> the ``<< 53``
        term, unmapped page -> the poison slot base, page beyond the
        table -> the ``_T`` gather itself) raises ``IndexError``,
        routing only the rare mixed case through ``_load_slow`` /
        ``_store_slow``.  The combined index stays below ``2**61`` by
        construction, so it can never alias a valid slot or wrap
        negative through numpy's intp cast.
        """
        kind = row[R_KIND]
        inst = row[R_INST]
        op = inst.op
        rd, rs1, rs2 = row[R_RD], row[R_RS1], row[R_RS2]
        if kind == K_LOAD:
            emit(f"{ind}_a = {read(rs1)} + {imm(pc, 'u64')}")
            emit(f"{ind}try:")
            emit(f"{ind}    _v = M[idx, _T[_a >> _PS] "
                 f"+ ((_a >> _3) & _PM) + ((_a & _7) << _53)]")
            emit(f"{ind}except IndexError:")
            emit(f"{ind}    _v, _flt = E._load_slow(idx, _a, _flt)")
            if rd != 0:
                write(rd, "_v")
            return
        if kind == K_STORE:
            emit(f"{ind}_a = {read(rs1)} + {imm(pc, 'u64')}")
            value = read(rs2)
            # A partial fast scatter before the IndexError is harmless:
            # lanes with an invalid index are never written, and lanes
            # with a valid one are rewritten identically by the slow
            # path.  Once any lane has faulted this block, stores must
            # be suppressed for it, so the fast path is gated on
            # ``_flt is None``.
            emit(f"{ind}if _flt is None:")
            emit(f"{ind}    try:")
            emit(f"{ind}        M[idx, _T[_a >> _PS] "
                 f"+ ((_a >> _3) & _PM) + ((_a & _7) << _53)] = {value}")
            emit(f"{ind}    except IndexError:")
            emit(f"{ind}        _flt = E._store_slow(idx, _a, _flt, "
                 f"{value})")
            emit(f"{ind}else:")
            emit(f"{ind}    _flt = E._store_slow(idx, _a, _flt, {value})")
            return
        # ALU / MUL / DIV family.
        uses_imm = inst.alu_uses_imm
        if op is Op.MOVI:
            uniform, _ = self._imm_info(pc)
            if uniform is not None:
                write(rd, f"_np.full(idx.size, {uniform & MASK64}, _U8)")
            else:
                write(rd, imm(pc, "u64"))
        elif op in (Op.DIV, Op.REM):
            if rd != 0:
                a = read(rs1)
                b = imm(pc, "raw") if uses_imm else read(rs2)
                self._ns[f"_fn{pc}"] = row[R_FN]
                write(rd, f"E._lanewise(_fn{pc}, {a}, {b})")
        elif op in (Op.SLT, Op.SLTI):
            a = read(rs1)
            b = (imm(pc, "signed") if uses_imm
                 else f"{read(rs2)}.view(_I8)")
            write(rd, f"({a}.view(_I8) < {b}).astype(_U8)")
        elif op is Op.SLTU:
            a = read(rs1)
            b = imm(pc, "u64") if uses_imm else read(rs2)
            write(rd, f"({a} < {b}).astype(_U8)")
        elif op in (Op.SRA, Op.SRAI):
            a = read(rs1)
            b = (imm(pc, "shifti") if uses_imm
                 else f"({read(rs2)} & _63).astype(_I8)")
            write(rd, f"({a}.view(_I8) >> {b}).view(_U8)")
        elif op in (Op.SLL, Op.SLLI, Op.SRL, Op.SRLI):
            a = read(rs1)
            b = (imm(pc, "shiftu") if uses_imm
                 else f"({read(rs2)} & _63)")
            sym = "<<" if op in (Op.SLL, Op.SLLI) else ">>"
            write(rd, f"({a} {sym} {b})")
        else:
            a = read(rs1)
            b = imm(pc, "u64") if uses_imm else read(rs2)
            write(rd, f"({a} {_ALU_SYM[op]} {b})")

    def _compile_kernel(self, start: int) -> _Kernel:
        end = self._block_bounds(start)
        rows = self.rows
        counts = [0, 0, 0, 0]  # loads, stores, branches, jumps
        for pc in range(start, end):
            kind = rows[pc][R_KIND]
            if kind == K_LOAD:
                counts[0] += 1
            elif kind == K_STORE:
                counts[1] += 1
            elif kind == K_BRANCH:
                counts[2] += 1
            elif kind in (K_JUMP, K_JUMP_INDIRECT):
                counts[3] += 1
        execs = _np.zeros(self.n_lanes, dtype=_np.int64)
        self._ns[f"_x{start}"] = execs
        last = rows[end - 1]
        is_loop = (last[R_KIND] == K_BRANCH and last[R_TARGET] == start)
        if is_loop:
            fn = self._compile_loop(start, end)
        else:
            fn = self._compile_straight(start, end)
        return _Kernel(
            length=end - start,
            loads=counts[0], stores=counts[1],
            branches=counts[2], jumps=counts[3],
            is_loop=is_loop, fn=fn, execs=execs,
        )

    def _compile_straight(self, start: int, end: int) -> Callable[..., Any]:
        """Generate the batched straight-line kernel for entry PC
        ``start`` through the end of its containing basic block.

        Signature ``_k(E, idx, R, M) -> (ret, idx)``: ``ret`` is
        ``None`` (no survivors continue), a Python int (uniform next
        PC), a ``(taken_mask, target, fallthrough)`` tuple for a
        divergent branch, or an int64 array for an indirect jump —
        always aligned with the possibly-narrowed returned ``idx``.
        Registers are gathered lazily on first read, kept in locals,
        and scattered back at the exit; faults are deferred into a
        block-wide mask and the faulting lanes rewound + peeled in one
        epilogue before the terminator.
        """
        length = end - start
        rows = self.rows
        has_fault = any(
            rows[pc][R_KIND] in (K_LOAD, K_STORE, K_JUMP_INDIRECT)
            for pc in range(start, end)
        )
        lines: List[str] = [f"def _k{start}(E, idx, R, M):"]
        emit = lines.append
        ind = "    "
        loc: List[str] = []
        have: Set[str] = set()
        dirty: Set[int] = set()
        if has_fault:
            # ``None`` means "no lane has faulted yet" — the common
            # case pays one identity test instead of mask arithmetic.
            emit(f"{ind}_flt = None")

        def read(reg: int) -> str:
            name = f"r{reg}"
            if name not in have:
                emit(f"{ind}{name} = R[idx, {reg}]")
                have.add(name)
                loc.append(name)
            return name

        def write(reg: int, expr: str) -> None:
            if reg == 0:
                return
            name = f"r{reg}"
            emit(f"{ind}{name} = {expr}")
            if name not in have:
                have.add(name)
                loc.append(name)
            dirty.add(reg)

        def imm(pc: int, mode: str) -> str:
            return self._imm_operand(pc, mode)

        def epilogue(extra: Tuple[str, ...] = ()) -> None:
            if not has_fault:
                return
            emit(f"{ind}if _flt is not None and _flt.any():")
            emit(f"{ind}    _f = idx[_flt]")
            emit(f"{ind}    E.s_insts[_f] -= {length}")
            emit(f"{ind}    _x{start}[_f] -= 1")
            emit(f"{ind}    E._peel_block(_f, {start})")
            emit(f"{ind}    _g = ~_flt")
            emit(f"{ind}    idx = idx[_g]")
            for name in loc + list(extra):
                emit(f"{ind}    {name} = {name}[_g]")
            emit(f"{ind}    if idx.size == 0:")
            emit(f"{ind}        return None, idx")

        def scatter() -> None:
            for reg in sorted(dirty):
                emit(f"{ind}R[idx, {reg}] = r{reg}")

        terminated = False
        for pc in range(start, end):
            row = rows[pc]
            kind = row[R_KIND]
            if kind in _SKIP_KINDS:
                continue
            if kind == K_BRANCH:
                epilogue()
                cond = _BRANCH_COND[row[R_INST].op].format(
                    a=read(row[R_RS1]), b=read(row[R_RS2])
                )
                emit(f"{ind}_t = {cond}")
                emit(f"{ind}E.s_taken[idx[_t]] += 1")
                scatter()
                emit(f"{ind}return (_t, {row[R_TARGET]}, {pc + 1}), idx")
                terminated = True
                break
            if kind == K_JUMP:
                epilogue()
                write(row[R_RD], f"_np.full(idx.size, {pc + 1}, _U8)")
                scatter()
                emit(f"{ind}return {row[R_TARGET]}, idx")
                terminated = True
                break
            if kind == K_JUMP_INDIRECT:
                emit(f"{ind}_d = {read(row[R_RS1])} + {imm(pc, 'u64')}")
                emit(f"{ind}_bad = _d >= _NN")
                emit(f"{ind}_flt = _bad if _flt is None "
                     f"else (_flt | _bad)")
                epilogue(extra=("_d",))
                write(row[R_RD], f"_np.full(idx.size, {pc + 1}, _U8)")
                scatter()
                emit(f"{ind}return _d.astype(_I8), idx")
                terminated = True
                break
            if kind == K_HALT:
                epilogue()
                scatter()
                emit(f"{ind}E._halt(idx, {pc})")
                emit(f"{ind}return None, idx")
                terminated = True
                break
            self._emit_inst(pc, row, ind, emit, read, write, imm)
        if not terminated:
            epilogue()
            scatter()
            emit(f"{ind}return {end}, idx")
        exec(compile("\n".join(lines), f"<ensemble:{start}>", "exec"),
             self._ns)
        return self._ns[f"_k{start}"]

    def _compile_loop(self, start: int, end: int) -> Callable[..., Any]:
        """Generate a *looping* kernel for a block whose terminator
        branches back to its own entry.

        Registers are gathered once into locals and the body iterates
        in-kernel while every live lane keeps taking the back edge,
        returning to the scheduler only on divergence, step-budget
        pressure (``_room``, sized so no lane can cross ``max_steps``
        mid-kernel), or a fault.  Step/exec/taken counters are applied
        lazily from iteration counts at every exit.  Blocks with memory
        ops snapshot their destination registers at each iteration top
        so a faulting lane can be rewound to its *iteration* entry (=
        block entry) and peeled exactly.
        """
        length = end - start
        rows = self.rows
        refs: Set[int] = set()
        dests: Set[int] = set()
        has_mem = False
        for pc in range(start, end):
            row = rows[pc]
            kind = row[R_KIND]
            if kind in _SKIP_KINDS:
                continue
            refs.update(row[R_SOURCES])
            if kind in (K_LOAD, K_STORE):
                has_mem = True
            if row[R_WRITES] and row[R_RD] != 0:
                dests.add(row[R_RD])
        dest_list = sorted(dests)

        pre: List[str] = [
            f"    _xk = _x{start}",
            "    _sti = E.s_insts",
            "    _stk = E.s_taken",
        ]
        narrow: List[str] = []
        for reg in sorted(refs | dests):
            pre.append(f"    r{reg} = R[idx, {reg}]")
            narrow.append(f"r{reg}")

        body: List[str] = []
        ind = "        "
        hoisted: Set[str] = set()

        def read(reg: int) -> str:
            return f"r{reg}"

        def write(reg: int, expr: str) -> None:
            if reg == 0:
                return
            body.append(f"{ind}r{reg} = {expr}")

        def imm(pc: int, mode: str) -> str:
            expr = self._imm_operand(pc, mode)
            if "[idx]" not in expr:
                return expr
            name = f"_i{pc}"
            if name not in hoisted:
                pre.append(f"    {name} = {expr}")
                hoisted.add(name)
                narrow.append(name)
            return name

        for pc in range(start, end - 1):
            row = rows[pc]
            if row[R_KIND] in _SKIP_KINDS:
                continue
            self._emit_inst(pc, row, ind, body.append, read, write, imm)

        last = rows[end - 1]
        cond = _BRANCH_COND[last[R_INST].op].format(
            a=read(last[R_RS1]), b=read(last[R_RS2])
        )

        snaps: List[str] = []
        fault_block: List[str] = []
        if has_mem:
            snaps = [f"{ind}_flt = None"]
            snaps += [f"{ind}_s{d} = r{d}" for d in dest_list]
            fault_block = [
                f"{ind}if _flt is not None and _flt.any():",
                f"{ind}    _dd = _k - _ap",
                f"{ind}    if _dd:",
                f"{ind}        _sti[idx] += _dd * {length}",
                f"{ind}        _xk[idx] += _dd",
                f"{ind}        _ap = _k",
                f"{ind}    _td = _k - _tap",
                f"{ind}    if _td:",
                f"{ind}        _stk[idx] += _td",
                f"{ind}        _tap = _k",
                f"{ind}    _f = idx[_flt]",
            ]
            for d in dest_list:
                fault_block.append(f"{ind}    R[_f, {d}] = _s{d}[_flt]")
            fault_block.extend([
                f"{ind}    E._peel_block(_f, {start})",
                f"{ind}    _g = ~_flt",
                f"{ind}    idx = idx[_g]",
            ])
            for name in narrow:
                fault_block.append(f"{ind}    {name} = {name}[_g]")
            fault_block.extend([
                f"{ind}    if idx.size == 0:",
                f"{ind}        return None, idx",
            ])

        exit_scatter = [f"R[idx, {d}] = r{d}" for d in dest_list]
        term: List[str] = [f"{ind}_t = {cond}"]
        term.append(f"{ind}if _t.all():")
        term.append(f"{ind}    _k += 1")
        term.append(f"{ind}    if _k >= _room:")
        term.append(f"{ind}        _dd = _k - _ap")
        term.append(f"{ind}        _sti[idx] += _dd * {length}")
        term.append(f"{ind}        _xk[idx] += _dd")
        term.append(f"{ind}        _td = _k - _tap")
        term.append(f"{ind}        if _td:")
        term.append(f"{ind}            _stk[idx] += _td")
        for line in exit_scatter:
            term.append(f"{ind}        {line}")
        term.append(f"{ind}        return {start}, idx")
        term.append(f"{ind}    continue")
        term.append(f"{ind}_k += 1")
        term.append(f"{ind}_dd = _k - _ap")
        term.append(f"{ind}_sti[idx] += _dd * {length}")
        term.append(f"{ind}_xk[idx] += _dd")
        term.append(f"{ind}_td = _k - 1 - _tap")
        term.append(f"{ind}if _td:")
        term.append(f"{ind}    _stk[idx] += _td")
        term.append(f"{ind}_stk[idx[_t]] += 1")
        for line in exit_scatter:
            term.append(f"{ind}{line}")
        term.append(f"{ind}return (_t, {start}, {end}), idx")

        lines = (
            [f"def _k{start}(E, idx, R, M):"]
            + pre
            + [
                "    _base = int(_sti[idx].max())",
                f"    _room = (E.max_steps - _base) // {length}",
                "    _k = 0",
                "    _ap = 0",
                "    _tap = 0",
                "    while True:",
            ]
            + snaps
            + body
            + fault_block
            + term
        )
        exec(compile("\n".join(lines), f"<ensemble:{start}>", "exec"),
             self._ns)
        return self._ns[f"_k{start}"]

    # -- the cohort scheduler -----------------------------------------

    def run(self) -> List[LaneOutcome]:
        np = _np
        max_steps = self.max_steps
        s_insts = self.s_insts
        kernels = self._kernels
        active: Dict[int, Any] = {
            0: np.arange(self.n_lanes, dtype=np.intp)
        }
        # A running upper bound on max(s_insts): lets the scheduler
        # skip the exact per-lane budget check until a block could
        # actually cross max_steps.
        insts_ub = 0
        # Divergence guard: data-dependent control flow that never
        # reconverges (out-of-phase search loops) shatters the lanes
        # into small cohorts that pay full dispatch + numpy overhead
        # for a handful of lanes each.  Track mean cohort width over a
        # rolling window of dispatches; when it collapses, drain every
        # remaining lane through the scalar interpreter, capping the
        # ensemble at roughly scalar speed instead of far below it.
        # Convergent splits (if/else diamonds) dispatch wide cohorts
        # and never trip the guard.
        drain_avg = max(2, self.n_lanes // 3)
        window = 256
        disp_count = 0
        disp_lanes = 0
        while active:
            # Deepest-PC-first: lanes furthest into a loop body reach
            # the back edge and pile up on the loop head (a low PC)
            # while the other cohorts drain, so the head dispatches one
            # wide reconverged cohort instead of many narrow ones.
            pc = max(active)
            idx = active.pop(pc)
            disp_count += 1
            disp_lanes += idx.size
            if disp_count == window:
                if disp_lanes < drain_avg * window:
                    for lane in idx.tolist():
                        self._finish_scalar(lane, pc)
                    for pc2, lanes in active.items():
                        for lane in lanes.tolist():
                            self._finish_scalar(lane, pc2)
                    active.clear()
                    break
                disp_count = 0
                disp_lanes = 0
            kernel = kernels.get(pc)
            if kernel is None:
                kernel = self._compile_kernel(pc)
                kernels[pc] = kernel
            length = kernel.length
            if kernel.is_loop or insts_ub + length > max_steps:
                over = s_insts[idx] + length > max_steps
                if over.any():
                    for lane in idx[over].tolist():
                        self._finish_scalar(lane, pc)
                    idx = idx[~over]
                    if idx.size == 0:
                        continue
            if kernel.is_loop:
                ret, idx = kernel.fn(self, idx, self.R, self.M)
                ub = int(s_insts.max())
                if ub > insts_ub:
                    insts_ub = ub
            else:
                s_insts[idx] += length
                kernel.execs[idx] += 1
                insts_ub += length
                ret, idx = kernel.fn(self, idx, self.R, self.M)
            if ret is None or idx.size == 0:
                continue
            cls = type(ret)
            if cls is tuple:
                taken, target, fall = ret
                self._enqueue(active, target, idx[taken])
                self._enqueue(active, fall, idx[~taken])
            elif cls is int:
                self._enqueue(active, ret, idx)
            else:  # int64 next-PC array (indirect jumps)
                for value in set(ret.tolist()):
                    self._enqueue(active, int(value), idx[ret == value])
        return self._collect()

    def _enqueue(self, active: Dict[int, Any], pc: int, lanes: Any) -> None:
        if lanes.size == 0:
            return
        if 0 <= pc < self.n_insts:
            current = active.get(pc)
            active[pc] = (lanes if current is None
                          else _np.concatenate((current, lanes)))
        else:
            # The scalar model decides what a PC outside the program
            # means (budget error first, then the bounds error).
            for lane in lanes.tolist():
                self._finish_scalar(lane, pc)

    def _collect(self) -> List[LaneOutcome]:
        np = _np
        d_loads = np.zeros(self.n_lanes, dtype=np.int64)
        d_stores = np.zeros(self.n_lanes, dtype=np.int64)
        d_branches = np.zeros(self.n_lanes, dtype=np.int64)
        d_jumps = np.zeros(self.n_lanes, dtype=np.int64)
        for kernel in self._kernels.values():
            if kernel.loads:
                d_loads += kernel.loads * kernel.execs
            if kernel.stores:
                d_stores += kernel.stores * kernel.execs
            if kernel.branches:
                d_branches += kernel.branches * kernel.execs
            if kernel.jumps:
                d_jumps += kernel.jumps * kernel.execs
        outcomes: List[LaneOutcome] = []
        for lane in range(self.n_lanes):
            outcome = self.done[lane]
            if outcome is None:
                if not self.halted[lane]:
                    raise EnsembleError(
                        f"lane {lane} neither halted nor faulted"
                    )  # pragma: no cover - scheduler invariant
                state = ArchState(
                    regs=[int(v) for v in self.R[lane]],
                    memory=self._lane_memory(lane),
                    pc=int(self.final_pc[lane]),
                )
                stats = InterpreterStats(
                    instructions=int(self.s_insts[lane]),
                    loads=int(d_loads[lane]),
                    stores=int(d_stores[lane]),
                    branches=int(d_branches[lane]),
                    branches_taken=int(self.s_taken[lane]),
                    jumps=int(d_jumps[lane]),
                )
                outcome = LaneOutcome(state=state, stats=stats, error=None)
            outcomes.append(outcome)
        return outcomes


# ---------------------------------------------------------------------------
# Task / cache / runner integration.
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class EnsembleConfig:
    """The cache-key stand-in for a machine config: ensemble results
    are functional (no timing), so the key only needs to say so."""

    kind: str = "functional"
    name: str = "ensemble"


@dataclasses.dataclass(frozen=True)
class EnsembleTask:
    """One batch of shape-compatible lane programs for
    :meth:`repro.sim.parallel.ParallelRunner.run_ensemble`."""

    programs: Tuple[Program, ...]
    max_steps: int = DEFAULT_MAX_STEPS
    tag: str = "ensemble"


def ensemble_key(program: Program, max_steps: int = DEFAULT_MAX_STEPS) -> str:
    """Content-addressed cache key of one lane: ensemble results are
    keyed per *lane program*, so a warm ensemble re-simulates nothing
    and a mixed batch only executes its cold lanes."""
    return result_key(EnsembleConfig(), program, max_steps)


def _lane_result(program: Program, outcome: LaneOutcome,
                 wall: float) -> CoreResult:
    return CoreResult(
        core_name="ensemble",
        program_name=program.name,
        cycles=0,
        instructions=outcome.stats.instructions,
        state=outcome.state,
        extra={"interp_stats": outcome.stats},
        wall_seconds=wall,
    )


def _execute_chunk(
    payload: Tuple[List[Program], int, str]
) -> Tuple[str, Any]:
    """Worker entry (module-level for pickling): run one lane chunk."""
    programs, max_steps, backend = payload
    started = time.perf_counter()
    try:
        outcomes = EnsembleInterpreter(
            programs, max_steps=max_steps, backend=backend
        ).run()
        return "ok", (outcomes, time.perf_counter() - started)
    except Exception as exc:  # noqa: BLE001 - crosses a process boundary
        return "error", f"{type(exc).__name__}: {exc}"


def run_ensemble(
    programs: Sequence[Program],
    *,
    max_steps: int = DEFAULT_MAX_STEPS,
    cache: Optional[ResultCache] = None,
    backend: Optional[str] = None,
    lanes: Optional[int] = None,
    jobs: Optional[int] = None,
    on_error: str = "raise",
) -> List[Optional[CoreResult]]:
    """Simulate an ensemble with caching, chunking and lane errors
    handled.

    Warm lanes (already in ``cache``) load instead of re-simulating;
    cold lanes are executed in chunks of ``lanes`` width (default
    ``REPRO_ENSEMBLE_LANES``), optionally across ``jobs`` worker
    processes when there is more than one chunk.  Returns one
    :class:`~repro.baselines.core_base.CoreResult` per lane, in order.
    ``on_error="raise"`` turns failed lanes into
    :class:`EnsembleTaskError`; ``"skip"`` leaves ``None`` at the
    failed positions.
    """
    if on_error not in ("raise", "skip"):
        raise EnsembleError(
            f"on_error must be 'raise' or 'skip', got {on_error!r}"
        )
    lane_programs = list(programs)
    _check_lane_contract(lane_programs)
    backend = resolve_backend(backend)
    width = ensemble_lanes() if lanes is None else lanes
    if width < 1:
        raise EnsembleError(f"lanes must be >= 1, got {lanes}")

    results: List[Optional[CoreResult]] = [None] * len(lane_programs)
    failures: List[Tuple[int, str]] = []
    cold: List[int] = []
    for lane, program in enumerate(lane_programs):
        if cache is not None:
            hit = cache.load(ensemble_key(program, max_steps))
            if hit is not None:
                results[lane] = hit
                continue
        cold.append(lane)

    chunks = [cold[i:i + width] for i in range(0, len(cold), width)]
    payloads = [
        ([lane_programs[lane] for lane in chunk], max_steps, backend)
        for chunk in chunks
    ]
    from repro.sim.parallel import resolve_jobs

    workers = resolve_jobs(jobs)
    if workers > 1 and len(chunks) > 1:
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        with context.Pool(processes=min(workers, len(chunks))) as pool:
            chunk_results = pool.map(_execute_chunk, payloads)
    else:
        chunk_results = [_execute_chunk(p) for p in payloads]

    for chunk, (status, value) in zip(chunks, chunk_results):
        if status != "ok":
            failures.extend((lane, value) for lane in chunk)
            continue
        outcomes, wall = value
        per_lane_wall = wall / max(1, len(chunk))
        for lane, outcome in zip(chunk, outcomes):
            program = lane_programs[lane]
            if not outcome.ok:
                failures.append((lane, outcome.error or "unknown error"))
                continue
            result = _lane_result(program, outcome, per_lane_wall)
            results[lane] = result
            if cache is not None:
                cache.store(ensemble_key(program, max_steps), result)

    if failures and on_error == "raise":
        preview = "; ".join(
            f"{lane_programs[lane].name}[lane {lane}]: {message}"
            for lane, message in failures[:4]
        )
        suffix = "" if len(failures) <= 4 else ", ..."
        raise EnsembleTaskError(
            f"{len(failures)}/{len(lane_programs)} ensemble lanes failed "
            f"({preview}{suffix})"
        )
    return results
