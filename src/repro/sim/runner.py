"""Run + verify: every timing run can be checked against the golden
functional interpreter, which is how the library guarantees that the
speculation machinery (defer, replay, rollback, forwarding, last-writer
merge) is architecturally correct and not just plausible."""

from __future__ import annotations

import os
from typing import Optional

from repro.baselines.core_base import CoreResult, DEFAULT_MAX_INSTRUCTIONS
from repro.config import MachineConfig
from repro.errors import SimulatorInvariantError
from repro.isa.interpreter import run_program
from repro.isa.program import Program
from repro.sim.machine import Machine


def verify_against_golden(result: CoreResult, program: Program) -> None:
    """Raise :class:`SimulatorInvariantError` if the timing run's final
    architectural state differs from the functional interpreter's."""
    golden = run_program(program)
    if result.state.regs != golden.regs:
        diffs = [
            f"r{index}: core={core_value:#x} golden={golden_value:#x}"
            for index, (core_value, golden_value)
            in enumerate(zip(result.state.regs, golden.regs))
            if core_value != golden_value
        ]
        raise SimulatorInvariantError(
            f"{result.core_name} register state diverged on "
            f"{program.name!r}: " + "; ".join(diffs[:8])
        )
    if result.state.memory != golden.memory:
        raise SimulatorInvariantError(
            f"{result.core_name} memory state diverged on {program.name!r}"
        )


def simulate(config: MachineConfig, program: Program, *,
             verify: bool = False, strict: bool = False,
             max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
             machine: Optional[Machine] = None) -> CoreResult:
    """Build the machine, run the program, optionally golden-check.

    ``strict=True`` runs the static verifier
    (:func:`repro.analysis.proglint.check_program`) over the program
    first and raises :class:`~repro.errors.ProgramLintError` before any
    cycle is simulated if it reports diagnostics.
    """
    if strict:
        from repro.analysis.proglint import check_program

        check_program(program)
    machine = machine or Machine(config)
    result = machine.run(program, max_instructions=max_instructions)
    if verify:
        verify_against_golden(result, program)
    if os.environ.get("REPRO_BASELINE", "").strip():
        # Behavioral baseline firewall (repro.regress): in verify mode
        # every run of a previously-captured input is auto-checked
        # against its stored baseline; in capture mode it is recorded.
        # Imported lazily so the plain simulate() path stays free of
        # the regress subsystem when the firewall is off.
        from repro.regress.firewall import observe_point_from_env

        observe_point_from_env(config, program, max_instructions, result)
    return result
