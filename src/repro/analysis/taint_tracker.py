"""Dynamic speculative-leak taint tracker (``REPRO_TAINT``).

The observational counterpart of the static pass in
:mod:`repro.analysis.taint`: it shadows one :class:`SSTCore` run with
per-register / per-address taint bits and records every cache-hierarchy
access (load fill, scout prefetch, explicit prefetch) whose *address*
was influenced by a declared secret while the issuing strand was later
squashed.  Those are the fills an attacker can observe after the
rollback — the simulator's architectural state is clean (the
store-buffer containment guard sees to that), but the cache index
channel is not.

Design rules, in priority order:

* **Strictly observational.**  Like the sanitizer, the tracker must not
  perturb the simulation: golden cycle counts are bit-identical with
  ``REPRO_TAINT`` on and off.  It reads core state through pure
  accessors only (:meth:`StoreBuffer.peek_forward`, never ``forward``),
  and the compiled speculative loop is disabled while it is attached,
  exactly as under ``REPRO_SANITIZE``.

* **Lazy architectural shadow.**  Committed-state taint comes from a
  shadow :class:`Interpreter` advanced to the core's committed
  instruction count only at episode boundaries and region commits —
  zero work on the normal-mode hot path.

* **Under-approximate.**  The static pass is a may-analysis; dynamic
  observations must be a subset of its gadget set.  Where the dynamic
  value is unknowable (an NA operand's placeholder in scout mode) the
  tracker assumes untainted.  A dynamic observation *outside* the
  static set therefore proves a bug in one of the two sides and raises
  :class:`~repro.errors.TaintError` at finalize; the reverse (static
  gadget never observed) is ordinary imprecision, reported not raised.

Speculative register taint needs no hook on producer completion: every
issued speculative instruction records a taint bit under its sequence
number, and :attr:`SpeculativeRegisters.last_writer` (which survives NA
resolution) maps a register to the youngest such bit.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Tuple

from repro.isa.interpreter import Interpreter
from repro.isa.opcodes import OpClass
from repro.isa.program import WORD_SIZE, Program
from repro.isa.registers import REG_COUNT, ZERO_REG

_TRUTHY = ("1", "on", "true", "yes")
_MASK64 = 2**64 - 1


def taint_enabled() -> bool:
    """Is the ``REPRO_TAINT`` dynamic taint tracker requested?"""
    return os.environ.get("REPRO_TAINT", "").lower() in _TRUTHY


def make_taint_tracker(core: Any,
                       program: Program) -> Optional["SSTTaintTracker"]:
    """Factory consulted by :class:`SSTCore`; None when disabled."""
    if not taint_enabled():
        return None
    return SSTTaintTracker(core, program)


class SSTTaintTracker:
    """Taint shadow of one SSTCore run (see module docstring)."""

    def __init__(self, core: Any, program: Program):
        self.core = core
        self.program = program
        self._shadow = Interpreter(program)
        # Architectural (committed) taint state.
        self._arch_reg: List[bool] = [False] * REG_COUNT
        self._arch_mem: Dict[int, bool] = {}
        # Per-episode speculative taint state.
        self._overlay: List[bool] = list(self._arch_reg)
        self._seq_taint: Dict[int, bool] = {}
        self._dq_taint: Dict[int, Tuple[bool, bool]] = {}
        self._store_taint: Dict[int, bool] = {}
        self._scout_store_taint: Dict[int, bool] = {}
        # Hierarchy accesses with tainted addresses, not yet known to
        # commit or squash; confirmed into _records on rollback.
        self._pending: List[Dict[str, Any]] = []
        self._records: List[Dict[str, Any]] = []

    # ------------------------------------------------------------------
    # Architectural shadow.
    # ------------------------------------------------------------------

    def _advance_to(self, executed: int) -> None:
        shadow = self._shadow
        instructions = self.program.instructions
        while shadow.stats.instructions < executed and not shadow.halted:
            self._arch_step(instructions[shadow.state.pc])
            shadow.step()

    def _arch_step(self, inst) -> None:
        """Taint transfer for one architecturally-executed instruction,
        using the shadow's pre-step state."""
        cls = inst.op_class
        state = self._shadow.state
        if cls is OpClass.LOAD:
            addr = (state.read_reg(inst.rs1) + inst.imm) & _MASK64
            if inst.rd != ZERO_REG:
                self._arch_reg[inst.rd] = (
                    self.program.is_secret_addr(addr)
                    or self._arch_mem.get(addr, False)
                )
        elif cls is OpClass.STORE:
            addr = (state.read_reg(inst.rs1) + inst.imm) & _MASK64
            # Exact address: a strong update, clearing stale taint when
            # an untainted value overwrites a tainted word.
            self._arch_mem[addr] = self._arch_reg[inst.rs2]
        elif cls in (OpClass.ALU, OpClass.MUL, OpClass.DIV):
            if inst.rd != ZERO_REG:
                self._arch_reg[inst.rd] = any(
                    self._arch_reg[src] for src in inst.sources
                    if src != ZERO_REG
                )
        elif cls in (OpClass.JUMP, OpClass.JUMP_INDIRECT):
            if inst.writes_reg and inst.rd != ZERO_REG:
                self._arch_reg[inst.rd] = False

    # ------------------------------------------------------------------
    # Speculative taint lookups.
    # ------------------------------------------------------------------

    def _reg_taint(self, reg: int) -> bool:
        """Taint of a register as the speculative strands see it."""
        if reg == ZERO_REG:
            return False
        spec = self.core.spec
        last = spec.last_writer[reg]
        if last in self._seq_taint:
            return self._seq_taint[last]
        producer = spec.producer_of(reg)
        if producer is not None:
            return self._seq_taint.get(producer, False)
        return self._overlay[reg]

    def _operand_taint(self, producer: Optional[int],
                       captured: bool) -> bool:
        if producer is not None:
            return self._seq_taint.get(producer, False)
        return captured

    def _mem_value_taint(self, addr: int, before_seq: int) -> bool:
        """Taint of the value a speculative load observes at ``addr``."""
        forwarded = self.core.sb.peek_forward(addr, before_seq)
        if forwarded is not None:
            return self._store_taint.get(forwarded[1], False)
        return (self.program.is_secret_addr(addr)
                or self._arch_mem.get(addr, False))

    def _record_access(self, pc: int, addr: int, seq: int, strand: str,
                       cycle: int) -> None:
        self._pending.append({
            "pc": pc, "addr": addr, "seq": seq,
            "strand": strand, "cycle": cycle,
        })

    # ------------------------------------------------------------------
    # Episode lifecycle hooks.
    # ------------------------------------------------------------------

    def on_episode_begin(self, trigger_pc: int, seq: int) -> None:
        self._advance_to(self.core._executed)
        self._overlay = list(self._arch_reg)
        self._seq_taint = {}
        self._dq_taint = {}
        self._store_taint = {}
        self._scout_store_taint = {}
        self._pending = []
        inst = self.program.instructions[trigger_pc]
        if inst.op_class is OpClass.LOAD:
            # The trigger access itself is architectural (it re-executes
            # after any rollback), so it is never recorded — only its
            # value's taint matters.
            regs = self.core.state.regs
            addr = (regs[inst.rs1] + inst.imm) & _MASK64
            taint = (self.program.is_secret_addr(addr)
                     or self._arch_mem.get(addr, False))
        else:  # deferred long op (DIV class)
            taint = any(self._arch_reg[src] for src in inst.sources
                        if src != ZERO_REG)
        self._seq_taint[seq] = taint

    def on_region_commit(self, executed: int, boundary_seq: int) -> None:
        self._advance_to(executed)
        # Everything older than the region boundary is architectural
        # now — those accesses were not transient after all.
        self._pending = [
            record for record in self._pending
            if record["seq"] >= boundary_seq
        ]

    def on_rollback(self) -> None:
        # Every still-pending tainted access belongs to a strand that is
        # being squashed: the fills are now observable-but-unaccounted
        # microarchitectural state — the leak.
        self._records.extend(self._pending)
        self._pending = []

    def on_episode_end(self) -> None:
        # Reached on full commit too, where pending accesses became
        # architectural: drop, don't record.
        self._overlay = list(self._arch_reg)
        self._seq_taint = {}
        self._dq_taint = {}
        self._store_taint = {}
        self._scout_store_taint = {}
        self._pending = []

    # ------------------------------------------------------------------
    # Issue hooks (all pre-dispatch, mirroring the core's early-return
    # guards so only accesses that really reach the hierarchy record).
    # ------------------------------------------------------------------

    def on_defer(self, entry: Any) -> None:
        inst = entry.inst
        taint1 = (self._reg_taint(inst.rs1)
                  if inst.reads_rs1 and entry.rs1_producer is None
                  else False)
        taint2 = (self._reg_taint(inst.rs2)
                  if inst.reads_rs2 and entry.rs2_producer is None
                  else False)
        self._dq_taint[entry.seq] = (taint1, taint2)
        # Placeholder until replay supplies the real result taint; JALR
        # link values written at defer time are genuinely untainted.
        self._seq_taint[entry.seq] = False

    def on_replay(self, entry: Any, cycle: int) -> None:
        inst = entry.inst
        cls = inst.op_class
        captured1, captured2 = self._dq_taint.get(entry.seq, (False, False))
        taint1 = self._operand_taint(entry.rs1_producer, captured1)
        taint2 = self._operand_taint(entry.rs2_producer, captured2)
        if cls in (OpClass.ALU, OpClass.MUL, OpClass.DIV):
            self._seq_taint[entry.seq] = (
                (taint1 if inst.reads_rs1 else False)
                or (taint2 if inst.reads_rs2 else False)
            )
            return
        value1, _ = self.core._replay_operands(entry)
        if cls is OpClass.LOAD:
            addr = (value1 + inst.imm) & _MASK64
            if addr % WORD_SIZE:
                return  # speculative fault: no access happens
            if self.core.sb.peek_forward(addr, entry.seq) is None and taint1:
                self._record_access(entry.pc, addr, entry.seq,
                                    "replay", cycle)
            self._seq_taint[entry.seq] = self._mem_value_taint(
                addr, entry.seq
            )
        elif cls is OpClass.STORE:
            # Resolves into the store buffer only — contained until a
            # commit drains it, discarded on rollback.  No fill, so a
            # tainted address here is static-only imprecision.
            self._store_taint[entry.seq] = taint2

    def on_ahead(self, inst: Any, pc: int, seq: int, cycle: int) -> None:
        cls = inst.op_class
        core = self.core
        if cls in (OpClass.ALU, OpClass.MUL, OpClass.DIV):
            self._seq_taint[seq] = any(
                self._reg_taint(src) for src in inst.sources
            )
            return
        if cls is OpClass.LOAD:
            addr = (core.spec.read(inst.rs1) + inst.imm) & _MASK64
            if addr % WORD_SIZE:
                return  # parks on a speculative fault
            conservative = not core.config.bypass_unresolved_stores
            if core.sb.unresolved.blocks_load(addr, seq, conservative):
                return  # order-deferred; the on_defer hook takes over
            if core.sb.peek_forward(addr, seq) is None:
                if self._reg_taint(inst.rs1):
                    self._record_access(pc, addr, seq, "ahead", cycle)
            self._seq_taint[seq] = self._mem_value_taint(addr, seq)
            return
        if cls is OpClass.STORE:
            addr = (core.spec.read(inst.rs1) + inst.imm) & _MASK64
            if addr % WORD_SIZE or core.sb.full:
                return
            self._store_taint[seq] = self._reg_taint(inst.rs2)
            return
        if cls is OpClass.PREFETCH:
            addr = (core.spec.read(inst.rs1) + inst.imm) & _MASK64
            if addr % WORD_SIZE == 0 and self._reg_taint(inst.rs1):
                self._record_access(pc, addr, seq, "ahead", cycle)
            return
        if inst.writes_reg:
            # JAL / JALR link writes.
            self._seq_taint[seq] = False

    def on_scout_na(self, inst: Any, seq: int) -> None:
        # An NA source's dynamic value is a placeholder in scout mode;
        # its taint is unknowable, so assume untainted (see module
        # docstring: the dynamic side under-approximates).
        if inst.writes_reg:
            spec = self.core.spec
            self._seq_taint[seq] = any(
                self._reg_taint(src) for src in inst.sources
                if not spec.is_na(src)
            )

    def on_scout(self, inst: Any, pc: int, seq: int, cycle: int) -> None:
        cls = inst.op_class
        core = self.core
        if cls in (OpClass.ALU, OpClass.MUL, OpClass.DIV):
            self._seq_taint[seq] = any(
                self._reg_taint(src) for src in inst.sources
            )
            return
        if cls is OpClass.LOAD:
            addr = (core.spec.read(inst.rs1) + inst.imm) & _MASK64
            if addr % WORD_SIZE:
                return
            if self._reg_taint(inst.rs1):
                self._record_access(pc, addr, seq, "scout", cycle)
            if addr in core._scout_stores:
                self._seq_taint[seq] = self._scout_store_taint.get(
                    addr, False
                )
            else:
                self._seq_taint[seq] = self._mem_value_taint(addr, seq)
            return
        if cls is OpClass.STORE:
            addr = (core.spec.read(inst.rs1) + inst.imm) & _MASK64
            if addr % WORD_SIZE:
                return
            if self._reg_taint(inst.rs1):
                self._record_access(pc, addr, seq, "scout", cycle)
            self._scout_store_taint[addr] = self._reg_taint(inst.rs2)
            return
        if cls is OpClass.PREFETCH:
            addr = (core.spec.read(inst.rs1) + inst.imm) & _MASK64
            if addr % WORD_SIZE == 0 and self._reg_taint(inst.rs1):
                self._record_access(pc, addr, seq, "scout", cycle)
            return
        if inst.writes_reg:
            self._seq_taint[seq] = False

    # ------------------------------------------------------------------
    # Finalize: cross-check dynamic observations against the static
    # verdict and emit a JSON-ready report.
    # ------------------------------------------------------------------

    def finalize_report(self) -> Dict[str, Any]:
        from repro.analysis.taint import analyze_taint
        from repro.errors import TaintError

        static = analyze_taint(self.program)
        observed = sorted({record["pc"] for record in self._records})
        static_pcs = sorted(static.gadget_pcs)
        unexplained = sorted(set(observed) - set(static_pcs))
        if unexplained:
            raise TaintError(
                f"dynamic tracker observed tainted transient fills at "
                f"pcs {unexplained} that the static taint pass did not "
                f"flag (static gadgets: {static_pcs})",
                core=getattr(self.core, "name", ""),
                program=self.program.name,
            )
        return {
            "enabled": True,
            "program": self.program.name,
            "has_secrets": static.has_secrets,
            "transient_tainted_fills": len(self._records),
            "records": [dict(record) for record in self._records],
            "observed_gadget_pcs": observed,
            "static_gadget_pcs": static_pcs,
            # Static-only gadgets are expected imprecision (e.g. a
            # tainted-address store contained by the store buffer).
            "static_only_pcs": sorted(set(static_pcs) - set(observed)),
            "agreement": True,
        }


__all__ = [
    "SSTTaintTracker",
    "make_taint_tracker",
    "taint_enabled",
]
