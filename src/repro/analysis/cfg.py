"""Control-flow graph over :class:`~repro.isa.program.Program`.

The lint passes in :mod:`repro.analysis.proglint` are classic forward
dataflow analyses, so they want the program partitioned into basic
blocks with explicit successor edges.  PCs in this ISA are instruction
indices, which makes leader detection exact: a leader is index 0, any
branch/jump target, and any instruction following a control transfer or
a HALT.

Indirect jumps (``JALR``) have no static target; their successor set is
conservatively *every* block leader, so reachability and dataflow
analyses never produce a false positive on code only reachable through
an indirect jump.  (Workload generators use JALR exclusively for
call/return idioms, so the imprecision is acceptable for linting.)
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.isa.opcodes import OpClass
from repro.isa.program import Program


@dataclasses.dataclass
class BasicBlock:
    """Half-open instruction range ``[start, end)`` with CFG edges."""

    index: int  # position in CFG.blocks (topological by start pc)
    start: int
    end: int
    successors: List[int] = dataclasses.field(default_factory=list)
    predecessors: List[int] = dataclasses.field(default_factory=list)

    def pcs(self) -> range:
        return range(self.start, self.end)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BasicBlock(#{self.index} [{self.start}:{self.end}) "
                f"-> {self.successors})")


class CFG:
    """Basic blocks + edges of one program.

    Out-of-range control targets get no edge (the range diagnostic is
    :mod:`proglint`'s job); the block simply loses that successor, which
    keeps downstream passes well-defined on malformed programs.
    """

    def __init__(self, program: Program):
        self.program = program
        self.blocks: List[BasicBlock] = []
        self.block_of_pc: Dict[int, int] = {}
        self._build()

    def _leaders(self) -> List[int]:
        instructions = self.program.instructions
        n = len(instructions)
        leaders = {0} if n else set()
        for pc, inst in enumerate(instructions):
            cls = inst.op_class
            if cls in (OpClass.BRANCH, OpClass.JUMP):
                if 0 <= inst.target < n:
                    leaders.add(inst.target)
                if pc + 1 < n:
                    leaders.add(pc + 1)
            elif cls in (OpClass.JUMP_INDIRECT, OpClass.HALT):
                if pc + 1 < n:
                    leaders.add(pc + 1)
        return sorted(leaders)

    def _build(self) -> None:
        instructions = self.program.instructions
        n = len(instructions)
        if n == 0:
            return
        leaders = self._leaders()
        bounds = leaders + [n]
        for index, start in enumerate(leaders):
            block = BasicBlock(index=index, start=start,
                               end=bounds[index + 1])
            self.blocks.append(block)
            for pc in block.pcs():
                self.block_of_pc[pc] = index

        all_blocks = list(range(len(self.blocks)))
        for block in self.blocks:
            last = instructions[block.end - 1]
            cls = last.op_class
            successors: List[int] = []
            if cls is OpClass.HALT:
                pass
            elif cls is OpClass.BRANCH:
                if 0 <= last.target < n:
                    successors.append(self.block_of_pc[last.target])
                if block.end < n:
                    successors.append(self.block_of_pc[block.end])
            elif cls is OpClass.JUMP:
                if 0 <= last.target < n:
                    successors.append(self.block_of_pc[last.target])
            elif cls is OpClass.JUMP_INDIRECT:
                successors.extend(all_blocks)
            else:
                # Fallthrough (block split by a following leader).
                if block.end < n:
                    successors.append(self.block_of_pc[block.end])
            # Deduplicate while preserving order (JALR may alias edges).
            seen = set()
            for succ in successors:
                if succ not in seen:
                    seen.add(succ)
                    block.successors.append(succ)
                    self.blocks[succ].predecessors.append(block.index)

    def reachable(self) -> List[bool]:
        """Blocks reachable from the entry block, by block index."""
        marks = [False] * len(self.blocks)
        if not self.blocks:
            return marks
        stack = [0]
        marks[0] = True
        while stack:
            block = self.blocks[stack.pop()]
            for succ in block.successors:
                if not marks[succ]:
                    marks[succ] = True
                    stack.append(succ)
        return marks
