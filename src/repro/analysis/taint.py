"""Static speculative-leak taint analysis.

ROCK's execute-ahead and scout strands run instructions whose effects on
the *architectural* state are squashed on rollback — but their cache
fills survive.  That is exactly the transmission channel of
Spectre-class attacks: a bounds check is deferred (its operands are not
available, NA), the predictor speculates past it, and a dependent load
chain reads a secret and encodes it into the address of a second access
that fills a cache line before the squash.

This pass answers, per instruction, "can a secret influence the address
of a memory access that may execute transiently?" over three layers:

* **Secret annotation** — :attr:`Program.secret_ranges` declares which
  byte ranges of the data image hold secrets (see
  ``ProgramBuilder.secret_words``).  No secrets, no taint: the analysis
  reports nothing on ordinary programs.

* **Transient reachability** — an instruction is transiently executable
  if it can sit between a speculation trigger and that trigger's
  resolution.  Triggers are conservatively every load (a miss starts an
  execute-ahead/scout episode) and every long-latency DIV-class op
  (``defer_long_ops``).  Since resolution points are timing-dependent,
  every pc reachable *after* a trigger — through **both** edges of every
  conditional branch, because the predictor may follow either — counts.

* **Taint lattice** — per-pc forward may-analysis with state
  ``(tainted? per register, any-tainted-value-in-memory?)``, join =
  pointwise OR, seeded by loads that can read a declared secret range
  (address resolution reuses proglint's constant propagation; an
  unresolvable load address taints conservatively whenever the program
  has secrets).  ALU ops propagate the OR of their sources; a store of
  a tainted value taints memory; link writes are untainted.

A **gadget** is a transiently-executable load/store/prefetch whose
*address* operand is tainted: its execution fills (or prefetches) a
cache line whose index depends on a secret, observable after the squash
through timing — even an L1 hit perturbs LRU/MSHR state.  Each gadget
is reported as a :class:`Diagnostic` of kind ``SPEC_LEAK_GADGET``.

This is a *may*-analysis: the dynamic tracker
(:mod:`repro.analysis.taint_tracker`) must observe a subset of these
gadgets, and a dynamic observation outside the static set is a hard
:class:`~repro.errors.TaintError`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.analysis.cfg import CFG
from repro.analysis.proglint import (
    _NAC,
    DiagKind,
    Diagnostic,
    constant_states,
    transfer_const,
)
from repro.isa.opcodes import OpClass
from repro.isa.program import Program
from repro.isa.registers import REG_COUNT, ZERO_REG

_MEM_CLASSES = (OpClass.LOAD, OpClass.STORE, OpClass.PREFETCH)


@dataclasses.dataclass(frozen=True)
class TaintReport:
    """The static verdict for one program."""

    program: str
    has_secrets: bool
    transient_pcs: FrozenSet[int]
    gadgets: Tuple[Diagnostic, ...]

    @property
    def gadget_pcs(self) -> FrozenSet[int]:
        return frozenset(
            diag.pc for diag in self.gadgets if diag.pc is not None
        )


# Memoized like proglint results: the verdict is a pure function of
# program content (secret ranges are part of the fingerprint).
_TAINT_CACHE: Dict[str, TaintReport] = {}
_TAINT_CACHE_MAX = 1024


def clear_taint_cache() -> None:
    """Drop all memoized taint reports (test hygiene)."""
    _TAINT_CACHE.clear()


def transient_pcs(program: Program, cfg: Optional[CFG] = None) -> FrozenSet[int]:
    """Every pc that can execute under a deferred/scout strand.

    A pc qualifies if it follows a speculation trigger (any load, any
    DIV-class op) within the trigger's block, or sits in any block
    reachable from that block's successors — following both branch
    edges, since a cold or mistrained predictor may take either.
    """
    cfg = cfg or CFG(program)
    instructions = program.instructions
    transient: set = set()
    seed_blocks: set = set()
    for block in cfg.blocks:
        pcs = list(block.pcs())
        for at, pc in enumerate(pcs):
            cls = instructions[pc].op_class
            if cls is OpClass.LOAD or cls is OpClass.DIV:
                # Rest of the trigger's own block is transient...
                transient.update(pcs[at + 1:])
                # ...and so is everything the strand can reach from it.
                seed_blocks.update(block.successors)
                break
    worklist = list(seed_blocks)
    seen = set(seed_blocks)
    while worklist:
        index = worklist.pop()
        block = cfg.blocks[index]
        transient.update(block.pcs())
        for succ in block.successors:
            if succ not in seen:
                seen.add(succ)
                worklist.append(succ)
    return frozenset(transient)


def analyze_taint(program: Program) -> TaintReport:
    """Run the full static pass; memoized by program fingerprint."""
    key = program.fingerprint()
    cached = _TAINT_CACHE.get(key)
    if cached is None:
        if len(_TAINT_CACHE) >= _TAINT_CACHE_MAX:
            _TAINT_CACHE.clear()
        cached = _analyze(program)
        _TAINT_CACHE[key] = cached
    return cached


def _analyze(program: Program) -> TaintReport:
    if not program.instructions:
        return TaintReport(program=program.name, has_secrets=False,
                           transient_pcs=frozenset(), gadgets=())
    cfg = CFG(program)
    transient = transient_pcs(program, cfg)
    if not program.has_secrets:
        return TaintReport(program=program.name, has_secrets=False,
                           transient_pcs=transient, gadgets=())

    instructions = program.instructions
    reachable = cfg.reachable()
    const_in = constant_states(program, cfg)

    # Forward may-analysis: reg taints + one memory bit, join = OR.
    # None = block not yet visited (bottom).
    taint_in: List[Optional[Tuple[List[bool], bool]]] = [
        None for _ in cfg.blocks
    ]
    if cfg.blocks:
        taint_in[0] = ([False] * REG_COUNT, False)

    def transfer(index: int, regs: List[bool],
                 mem: bool) -> Tuple[List[bool], bool]:
        const = list(const_in[index])
        for pc in cfg.blocks[index].pcs():
            inst = instructions[pc]
            regs, mem = _transfer_taint(program, inst, const, regs, mem)
            transfer_const(inst, pc, const)
        return regs, mem

    worklist = [0] if cfg.blocks else []
    while worklist:
        index = worklist.pop()
        state = taint_in[index]
        if state is None:  # pragma: no cover - worklist discipline
            continue
        out_regs, out_mem = transfer(index, list(state[0]), state[1])
        for succ in cfg.blocks[index].successors:
            current = taint_in[succ]
            if current is None:
                taint_in[succ] = (list(out_regs), out_mem)
                worklist.append(succ)
                continue
            changed = False
            merged_regs, merged_mem = current
            for reg in range(REG_COUNT):
                if out_regs[reg] and not merged_regs[reg]:
                    merged_regs[reg] = True
                    changed = True
            if out_mem and not merged_mem:
                taint_in[succ] = (merged_regs, True)
                changed = True
            if changed:
                worklist.append(succ)

    # Final sweep: flag transient memory accesses with tainted address.
    gadgets: List[Diagnostic] = []
    for block in cfg.blocks:
        if not reachable[block.index] or taint_in[block.index] is None:
            continue
        regs, mem = taint_in[block.index]
        regs = list(regs)
        const = list(const_in[block.index])
        for pc in block.pcs():
            inst = instructions[pc]
            if (pc in transient and inst.op_class in _MEM_CLASSES
                    and inst.rs1 != ZERO_REG and regs[inst.rs1]):
                gadgets.append(Diagnostic(
                    kind=DiagKind.SPEC_LEAK_GADGET,
                    message=(
                        f"{inst.op.value} address depends on r{inst.rs1}, "
                        f"which may carry a secret-tainted value while "
                        f"executing transiently — the access can fill a "
                        f"cache line before the squash"
                    ),
                    pc=pc,
                    program=program.name,
                ))
            regs, mem = _transfer_taint(program, inst, const, regs, mem)
            transfer_const(inst, pc, const)
    gadgets.sort(key=lambda d: d.pc if d.pc is not None else -1)
    return TaintReport(program=program.name, has_secrets=True,
                       transient_pcs=transient, gadgets=tuple(gadgets))


def _transfer_taint(program: Program, inst, const: List[Optional[int]],
                    regs: List[bool], mem: bool) -> Tuple[List[bool], bool]:
    """One instruction's taint transfer.  ``const`` is the constant
    state *before* the instruction (callers advance it separately)."""
    cls = inst.op_class
    if cls is OpClass.STORE:
        # Storing a tainted value puts a secret-derived word in memory;
        # any later load that may read it must inherit the taint.
        if inst.rs2 != ZERO_REG and regs[inst.rs2]:
            mem = True
        return regs, mem
    if not inst.writes_reg or inst.rd == ZERO_REG:
        return regs, mem
    if cls is OpClass.LOAD:
        base = const[inst.rs1] if inst.rs1 != ZERO_REG else 0
        if base is _NAC:
            # Unknown address: with secrets anywhere in the image, the
            # load may read one (may-analysis).
            value_taint = program.has_secrets or mem
        else:
            addr = (base + inst.imm) & (2 ** 64 - 1)
            value_taint = program.is_secret_addr(addr) or mem
        regs[inst.rd] = value_taint
        return regs, mem
    if cls in (OpClass.ALU, OpClass.MUL, OpClass.DIV):
        tainted = False
        for src in inst.sources:
            if src != ZERO_REG and regs[src]:
                tainted = True
                break
        regs[inst.rd] = tainted
        return regs, mem
    # JUMP / JUMP_INDIRECT link writes carry a pc, never a secret.
    regs[inst.rd] = False
    return regs, mem


__all__ = [
    "TaintReport",
    "analyze_taint",
    "clear_taint_cache",
    "transient_pcs",
]
