"""Static program verifier (``proglint``).

Workload generators compute loop bounds, data layouts and register
assignments; a one-off-by-one in any of them produces a program that
*runs* (registers reset to zero, memory reads of uninitialised words
return zero) but silently measures the wrong thing.  This module checks
the properties the abstract machine states informally, over a CFG
(:mod:`repro.analysis.cfg`) with two forward dataflow passes:

* **use-before-def** — a register read on some path before any
  instruction wrote it (definitely-assigned analysis; the architectural
  zero register is always defined),
* **unreachable code** — blocks no path from entry reaches,
* **branch/jump targets out of range** — structural, per instruction,
* **writes to the hardwired zero register** — an ALU/load result into
  ``r0`` is silently discarded (``JAL``/``JALR`` with ``rd=r0`` is the
  conventional link-discard idiom and is exempt),
* **memory accesses outside the declared data image** — constant
  propagation from the (architecturally all-zero) entry state finds
  statically-known effective addresses; a load from an address that is
  neither an initialised data word nor any statically-known store
  target reads a constant zero, and any statically-known misaligned
  access faults the cores at runtime.

Everything is reported as a structured :class:`Diagnostic`; nothing here
raises on a bad program — strict-mode callers (``sim.runner``,
``workloads.base``) convert a non-empty report into
:class:`~repro.errors.ProgramLintError`.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.cfg import CFG
from repro.errors import ProgramLintError
from repro.isa.opcodes import OpClass
from repro.isa.program import WORD_SIZE, Program
from repro.isa.registers import REG_COUNT, ZERO_REG

# Constant-propagation lattice: an int is a known constant, NAC ("not a
# constant") is the bottom element.  The entry state is all-zeros — the
# architectural register file's reset state.
_NAC = None


class DiagKind(enum.Enum):
    """Every class of problem ``proglint`` can report."""

    EMPTY_PROGRAM = "empty_program"
    NO_HALT = "no_halt"
    TARGET_OUT_OF_RANGE = "target_out_of_range"
    UNREACHABLE_CODE = "unreachable_code"
    USE_BEFORE_DEF = "use_before_def"
    ZERO_REG_WRITE = "zero_reg_write"
    LOAD_OUT_OF_IMAGE = "load_out_of_image"
    MISALIGNED_ACCESS = "misaligned_access"
    # Opt-in hygiene pass (lint_program(dead_stores=True)): a value
    # written to a register or a statically-known address and provably
    # never read before it is overwritten.
    DEAD_STORE = "dead_store"
    # Emitted by the speculative-leak taint pass (repro.analysis.taint),
    # not by the default proglint pass set: a tainted value reaches the
    # address operand of a transiently-executable memory access.
    SPEC_LEAK_GADGET = "spec_leak_gadget"


@dataclasses.dataclass(frozen=True)
class Diagnostic:
    """One finding, anchored to an instruction where that makes sense."""

    kind: DiagKind
    message: str
    pc: Optional[int] = None
    program: str = ""

    def __str__(self) -> str:
        where = f" at pc {self.pc}" if self.pc is not None else ""
        name = f"{self.program}: " if self.program else ""
        return f"{name}{self.kind.value}{where}: {self.message}"


# Lint results are a pure function of program content, and the strict
# entry points re-lint structurally identical programs on every suite
# run (each Machine.run builds its workload afresh).  Results are
# memoized by ``Program.fingerprint()`` — which covers the instruction
# stream, the data image, *and* the name the diagnostics embed — as an
# immutable tuple, with a fresh list handed to each caller.  The cache
# is bounded; on overflow it is simply dropped (lints are cheap to
# recompute, the bound only guards fuzzing loops that generate
# unbounded distinct programs).  The key includes the pass selection,
# since opt-in passes change the result for the same program.
_LINT_CACHE: Dict[Tuple[str, bool], Tuple[Diagnostic, ...]] = {}
_LINT_CACHE_MAX = 1024


def clear_lint_cache() -> None:
    """Drop all memoized lint results (test hygiene)."""
    _LINT_CACHE.clear()


def lint_program(program: Program, *,
                 dead_stores: bool = False) -> List[Diagnostic]:
    """Run every pass; returns all diagnostics, program order.

    ``dead_stores=True`` additionally runs the opt-in dead-store pass;
    it is excluded from the default set because generated programs
    (fuzzer output, partial kernels) legitimately compute values they
    never read.
    """
    key = (program.fingerprint(), dead_stores)
    cached = _LINT_CACHE.get(key)
    if cached is None:
        if len(_LINT_CACHE) >= _LINT_CACHE_MAX:
            _LINT_CACHE.clear()
        cached = tuple(ProgramLinter(program, dead_stores=dead_stores).run())
        _LINT_CACHE[key] = cached
    return list(cached)


def check_program(program: Program) -> None:
    """Strict entry point: raise :class:`ProgramLintError` on findings."""
    diagnostics = lint_program(program)
    if diagnostics:
        raise ProgramLintError(diagnostics, program.name)


class ProgramLinter:
    """One linting run over one program (build once, ``run()`` once)."""

    def __init__(self, program: Program, *, dead_stores: bool = False):
        self.program = program
        self.dead_stores = dead_stores
        self.diagnostics: List[Diagnostic] = []

    def _report(self, kind: DiagKind, message: str,
                pc: Optional[int] = None) -> None:
        self.diagnostics.append(
            Diagnostic(kind=kind, message=message, pc=pc,
                       program=self.program.name)
        )

    def run(self) -> List[Diagnostic]:
        if not self.program.instructions:
            self._report(DiagKind.EMPTY_PROGRAM, "program has no instructions")
            return self.diagnostics
        self._check_structure()
        cfg = CFG(self.program)
        reachable = cfg.reachable()
        self._check_unreachable(cfg, reachable)
        self._check_use_before_def(cfg, reachable)
        self._check_memory(cfg, reachable)
        if self.dead_stores:
            self._check_dead_registers(cfg, reachable)
            self._check_dead_memory_stores(cfg, reachable)
        self.diagnostics.sort(key=lambda d: (d.pc if d.pc is not None else -1))
        return self.diagnostics

    # ------------------------------------------------------------------
    # Structural checks (per instruction, no dataflow needed).
    # ------------------------------------------------------------------

    def _check_structure(self) -> None:
        n = len(self.program.instructions)
        saw_halt = False
        for pc, inst in enumerate(self.program.instructions):
            cls = inst.op_class
            if cls is OpClass.HALT:
                saw_halt = True
            if cls in (OpClass.BRANCH, OpClass.JUMP):
                if not 0 <= inst.target < n:
                    self._report(
                        DiagKind.TARGET_OUT_OF_RANGE,
                        f"{inst.op.value} targets {inst.target}, outside "
                        f"program of length {n}", pc,
                    )
            if (inst.writes_reg and inst.rd == ZERO_REG
                    and cls not in (OpClass.JUMP, OpClass.JUMP_INDIRECT)):
                self._report(
                    DiagKind.ZERO_REG_WRITE,
                    f"{inst.op.value} writes r0; the result is discarded",
                    pc,
                )
        if not saw_halt:
            self._report(DiagKind.NO_HALT, "program has no HALT instruction")

    # ------------------------------------------------------------------
    # Unreachable code.
    # ------------------------------------------------------------------

    def _check_unreachable(self, cfg: CFG, reachable: List[bool]) -> None:
        for block in cfg.blocks:
            if not reachable[block.index]:
                self._report(
                    DiagKind.UNREACHABLE_CODE,
                    f"instructions {block.start}..{block.end - 1} are "
                    f"unreachable from entry", block.start,
                )

    # ------------------------------------------------------------------
    # Use-before-def (definitely-assigned forward dataflow).
    # ------------------------------------------------------------------

    def _check_use_before_def(self, cfg: CFG,
                              reachable: List[bool]) -> None:
        instructions = self.program.instructions
        all_regs = frozenset(range(REG_COUNT))
        entry = frozenset({ZERO_REG})
        # in_defined[b]: registers written on *every* path reaching b.
        in_defined: List[Set[int]] = [set(all_regs) for _ in cfg.blocks]
        if cfg.blocks:
            in_defined[0] = set(entry)

        def transfer(block_index: int) -> Set[int]:
            defined = set(in_defined[block_index])
            for pc in cfg.blocks[block_index].pcs():
                inst = instructions[pc]
                if inst.writes_reg:
                    defined.add(inst.rd)
            return defined

        worklist = [b.index for b in cfg.blocks if reachable[b.index]]
        while worklist:
            index = worklist.pop()
            out = transfer(index)
            for succ in cfg.blocks[index].successors:
                merged = in_defined[succ] & out
                if merged != in_defined[succ]:
                    in_defined[succ] = merged
                    worklist.append(succ)

        flagged: Set[Tuple[int, int]] = set()
        for block in cfg.blocks:
            if not reachable[block.index]:
                continue
            defined = set(in_defined[block.index])
            for pc in block.pcs():
                inst = instructions[pc]
                for src in inst.sources:
                    if src not in defined and (pc, src) not in flagged:
                        flagged.add((pc, src))
                        self._report(
                            DiagKind.USE_BEFORE_DEF,
                            f"{inst.op.value} reads r{src} before any "
                            f"instruction writes it", pc,
                        )
                if inst.writes_reg:
                    defined.add(inst.rd)

    # ------------------------------------------------------------------
    # Memory-image checks (constant propagation).
    # ------------------------------------------------------------------

    def _constant_states(self, cfg: CFG,
                         reachable: List[bool]) -> List[List[Optional[int]]]:
        """Per-block entry register states under constant propagation."""
        return constant_states(self.program, cfg)

    def _transfer_const(self, inst, pc: int,
                        state: List[Optional[int]]) -> None:
        transfer_const(inst, pc, state)

    def _check_memory(self, cfg: CFG, reachable: List[bool]) -> None:
        instructions = self.program.instructions
        states = self._constant_states(cfg, reachable)
        image: Set[int] = {word.addr for word in self.program.data}
        resolved, store_targets = resolved_addresses(
            self.program, cfg, reachable, states
        )

        for pc, addr in sorted(resolved.items()):
            inst = instructions[pc]
            if addr % WORD_SIZE != 0:
                self._report(
                    DiagKind.MISALIGNED_ACCESS,
                    f"{inst.op.value} effective address {addr:#x} is not "
                    f"{WORD_SIZE}-byte aligned", pc,
                )
                continue
            if inst.is_load and addr not in image and \
                    addr not in store_targets:
                self._report(
                    DiagKind.LOAD_OUT_OF_IMAGE,
                    f"load from {addr:#x}, which is neither in the "
                    f"declared data image nor any static store target "
                    f"(reads constant zero)", pc,
                )

    # ------------------------------------------------------------------
    # Dead stores (opt-in backward liveness / must-overwrite).
    # ------------------------------------------------------------------

    def _check_dead_registers(self, cfg: CFG,
                              reachable: List[bool]) -> None:
        """A register written and provably never read before overwrite.

        Backward liveness fixpoint.  Blocks without successors keep
        every register live: the architectural register file is part of
        the program's observable final state, so only values that are
        *overwritten* unread are dead.  Link writes of ``JAL``/``JALR``
        are exempt (discarding the link is the call idiom).
        """
        instructions = self.program.instructions
        all_regs = frozenset(range(REG_COUNT))
        live_in: List[Set[int]] = [set() for _ in cfg.blocks]

        def block_live_out(block) -> Set[int]:
            if not block.successors:
                return set(all_regs)
            out: Set[int] = set()
            for succ in block.successors:
                out |= live_in[succ]
            return out

        def transfer(block, live: Set[int]) -> Set[int]:
            for pc in reversed(list(block.pcs())):
                inst = instructions[pc]
                if inst.writes_reg and inst.rd != ZERO_REG:
                    live.discard(inst.rd)
                live.update(inst.sources)
            return live

        worklist = [b.index for b in cfg.blocks if reachable[b.index]]
        while worklist:
            index = worklist.pop()
            block = cfg.blocks[index]
            new_in = transfer(block, block_live_out(block))
            if new_in != live_in[index]:
                live_in[index] = new_in
                worklist.extend(
                    p for p in block.predecessors if reachable[p]
                )

        for block in cfg.blocks:
            if not reachable[block.index]:
                continue
            live = block_live_out(block)
            for pc in reversed(list(block.pcs())):
                inst = instructions[pc]
                if (inst.writes_reg and inst.rd != ZERO_REG
                        and inst.rd not in live
                        and inst.op_class not in (OpClass.JUMP,
                                                  OpClass.JUMP_INDIRECT)):
                    self._report(
                        DiagKind.DEAD_STORE,
                        f"{inst.op.value} writes r{inst.rd}, which is "
                        f"overwritten before any read", pc,
                    )
                if inst.writes_reg and inst.rd != ZERO_REG:
                    live.discard(inst.rd)
                live.update(inst.sources)

    def _check_dead_memory_stores(self, cfg: CFG,
                                  reachable: List[bool]) -> None:
        """A store to a statically-known address that is provably
        overwritten before any load can read it.

        Backward *must*-overwrite analysis over the constant-resolved
        addresses.  Initialised at bottom (nothing proven) and iterated
        upward, so the result under-approximates "overwritten" — fewer
        flags, never a false one.  Memory surviving to HALT is part of
        the final state and therefore live (exit state is empty).
        """
        instructions = self.program.instructions
        states = self._constant_states(cfg, reachable)
        resolved, _ = resolved_addresses(self.program, cfg, reachable, states)
        over_in: List[Set[int]] = [set() for _ in cfg.blocks]

        def block_over_out(block) -> Set[int]:
            out: Optional[Set[int]] = None
            for succ in block.successors:
                out = (set(over_in[succ]) if out is None
                       else out & over_in[succ])
            return out if out is not None else set()

        def transfer(block, over: Set[int],
                     report: bool = False) -> Set[int]:
            for pc in reversed(list(block.pcs())):
                inst = instructions[pc]
                if inst.is_store:
                    addr = resolved.get(pc)
                    if addr is not None and addr % WORD_SIZE == 0:
                        if report and addr in over:
                            self._report(
                                DiagKind.DEAD_STORE,
                                f"store to {addr:#x} is overwritten "
                                f"before any load reads it", pc,
                            )
                        over.add(addr)
                elif inst.is_load:
                    addr = resolved.get(pc)
                    if addr is None:
                        over.clear()
                    else:
                        over.discard(addr)
            return over

        worklist = [b.index for b in cfg.blocks if reachable[b.index]]
        while worklist:
            index = worklist.pop()
            block = cfg.blocks[index]
            new_in = transfer(block, block_over_out(block))
            if new_in != over_in[index]:
                over_in[index] = new_in
                worklist.extend(
                    p for p in block.predecessors if reachable[p]
                )

        for block in cfg.blocks:
            if reachable[block.index]:
                transfer(block, block_over_out(block), report=True)


# ---------------------------------------------------------------------------
# Shared dataflow helpers (also used by repro.analysis.taint).
# ---------------------------------------------------------------------------


def transfer_const(inst, pc: int, state: List[Optional[int]]) -> None:
    """One instruction's constant-propagation transfer, in place."""
    cls = inst.op_class
    if not inst.writes_reg:
        return
    if inst.rd == ZERO_REG:
        return
    if cls in (OpClass.ALU, OpClass.MUL, OpClass.DIV):
        a = state[inst.rs1] if inst.reads_rs1 else 0
        if inst.alu_uses_imm:
            # MOVI reads no register, so ``a`` is the constant 0.
            value = (inst.alu_fn(a, inst.imm) if a is not _NAC
                     else _NAC)
        else:
            b = state[inst.rs2]
            value = (inst.alu_fn(a, b)
                     if a is not _NAC and b is not _NAC else _NAC)
        state[inst.rd] = value
    elif cls is OpClass.LOAD:
        state[inst.rd] = _NAC
    elif cls in (OpClass.JUMP, OpClass.JUMP_INDIRECT):
        state[inst.rd] = pc + 1
    else:  # pragma: no cover - WRITES_RD covers exactly the above
        state[inst.rd] = _NAC


def constant_states(program: Program,
                    cfg: CFG) -> List[List[Optional[int]]]:
    """Per-block entry register states under constant propagation from
    the architectural reset state (all registers zero)."""
    instructions = program.instructions
    in_state: List[Optional[List[Optional[int]]]] = [
        None for _ in cfg.blocks
    ]
    if cfg.blocks:
        in_state[0] = [0] * REG_COUNT

    def transfer_block(index: int,
                       state: List[Optional[int]]) -> List[Optional[int]]:
        out = list(state)
        for pc in cfg.blocks[index].pcs():
            transfer_const(instructions[pc], pc, out)
        return out

    worklist = [0] if cfg.blocks else []
    while worklist:
        index = worklist.pop()
        state = in_state[index]
        if state is None:  # pragma: no cover - worklist discipline
            continue
        out = transfer_block(index, state)
        for succ in cfg.blocks[index].successors:
            current = in_state[succ]
            if current is None:
                in_state[succ] = list(out)
                worklist.append(succ)
                continue
            changed = False
            for reg in range(REG_COUNT):
                if current[reg] is not _NAC and current[reg] != out[reg]:
                    current[reg] = _NAC
                    changed = True
            if changed:
                worklist.append(succ)

    # Unvisited-but-reachable blocks (only via malformed edges) get
    # the all-unknown state so downstream checks stay conservative.
    return [
        state if state is not None else [_NAC] * REG_COUNT
        for state in in_state
    ]


def resolved_addresses(
        program: Program, cfg: CFG, reachable: List[bool],
        states: Optional[List[List[Optional[int]]]] = None,
) -> Tuple[Dict[int, int], Set[int]]:
    """Statically-known effective addresses of memory/prefetch pcs.

    Returns ``(pc -> address, store-target address set)``; the store
    targets extend the program's own data segment (results, logs,
    scratch regions) for the load-out-of-image check.
    """
    instructions = program.instructions
    if states is None:
        states = constant_states(program, cfg)
    store_targets: Set[int] = set()
    resolved: Dict[int, int] = {}
    for block in cfg.blocks:
        if not reachable[block.index]:
            continue
        state = list(states[block.index])
        for pc in block.pcs():
            inst = instructions[pc]
            if inst.is_mem or inst.op_class is OpClass.PREFETCH:
                base = state[inst.rs1]
                if base is not _NAC:
                    addr = (base + inst.imm) & (2 ** 64 - 1)
                    resolved[pc] = addr
                    if inst.is_store:
                        store_targets.add(addr)
            transfer_const(inst, pc, state)
    return resolved, store_targets


__all__ = [
    "DiagKind",
    "Diagnostic",
    "ProgramLinter",
    "ProgramLintError",
    "check_program",
    "constant_states",
    "lint_program",
    "resolved_addresses",
    "transfer_const",
]
