"""Microarchitectural sanitizer: per-event invariant checking.

The cores enforce a handful of invariants with scattered ad-hoc raises;
this module makes the full set explicit, checks them *continuously* at
the events where they can break, and attributes any violation to a
cycle and strand.  It is strictly observational: with the sanitizer on,
every cycle count is bit-identical to a run with it off (the golden
cycle tests assert exactly that), so it can ride along under any
experiment without invalidating its numbers.

Enabled per-process by the ``REPRO_SANITIZE`` environment flag (off by
default) or per-core by passing a sanitizer instance to the core
constructor.  Violations raise :class:`~repro.errors.SanitizerError`
(a :class:`~repro.errors.SimulatorInvariantError`).

Checked invariants (see DESIGN.md for the paper mapping):

* **dq-live-checkpoint** — every deferred-queue entry belongs to an
  epoch covered by a live checkpoint (its seq is at or above the oldest
  checkpoint's start seq).
* **sb-fifo-drain** — store-buffer commits drain resolved entries in
  strictly ascending seq (FIFO) order.
* **spec-store-containment** — no architectural memory write happens
  during a speculative episode except through a commit drain.
* **occupancy** — DQ/SB/checkpoint (SST) and ROB/IQ/LSQ (OoO)
  occupancies never exceed their configured capacities.
* **replay-reconvergence** — at every full commit (and at HALT) the
  committed architectural state equals the golden interpreter's state
  after the same number of retired instructions.
* **zero-register** — ``r0`` still reads 0 at every commit boundary.
"""

from __future__ import annotations

import os
from typing import List, Optional

from repro.errors import SanitizerError
from repro.isa.interpreter import Interpreter
from repro.isa.program import Program
from repro.isa.registers import ZERO_REG

_TRUTHY = ("1", "on", "true", "yes")


def sanitize_enabled() -> bool:
    """The ``REPRO_SANITIZE`` process-wide gate (off by default)."""
    return os.environ.get("REPRO_SANITIZE", "").lower() in _TRUTHY


class Sanitizer:
    """Base checker: event sink + shared reconvergence machinery.

    A core holds at most one sanitizer; every hook site is guarded by
    ``if self.sanitizer is not None`` so the disabled path costs one
    attribute test and the enabled path never feeds back into timing.
    """

    def __init__(self, core_name: str, program: Program):
        self.core_name = core_name
        self.program = program
        self.violations = 0  # incremented before each raise
        self._shadow: Optional[Interpreter] = None

    # ------------------------------------------------------------------
    # Violation plumbing.
    # ------------------------------------------------------------------

    def _fail(self, invariant: str, detail: str, *,
              cycle: Optional[int] = None, strand: str = "") -> None:
        self.violations += 1
        raise SanitizerError(invariant, detail, core=self.core_name,
                             cycle=cycle, strand=strand)

    # ------------------------------------------------------------------
    # Golden-stream reconvergence (shared by every core).
    # ------------------------------------------------------------------

    def _shadow_interpreter(self) -> Interpreter:
        if self._shadow is None:
            self._shadow = Interpreter(self.program)
        return self._shadow

    def check_reconvergence(self, executed: int, regs: List[int],
                            memory, *, cycle: Optional[int] = None,
                            pc: Optional[int] = None) -> None:
        """Committed state must match the interpreter after ``executed``
        retired instructions (the architectural stream is unique)."""
        shadow = self._shadow_interpreter()
        while shadow.stats.instructions < executed and not shadow.halted:
            shadow.step()
        if shadow.stats.instructions != executed:
            self._fail(
                "replay-reconvergence",
                f"core retired {executed} instructions but the golden "
                f"stream halts after {shadow.stats.instructions}",
                cycle=cycle, strand="commit",
            )
        state = shadow.state
        if regs != state.regs:
            diffs = [
                f"r{i}: core={core_value:#x} golden={golden_value:#x}"
                for i, (core_value, golden_value)
                in enumerate(zip(regs, state.regs))
                if core_value != golden_value
            ]
            self._fail(
                "replay-reconvergence",
                f"register state diverged after {executed} retired "
                f"instructions: " + "; ".join(diffs[:4]),
                cycle=cycle, strand="commit",
            )
        if memory is not None and memory != state.memory:
            self._fail(
                "replay-reconvergence",
                f"memory state diverged after {executed} retired "
                f"instructions", cycle=cycle, strand="commit",
            )
        if pc is not None and not shadow.halted and pc != state.pc:
            self._fail(
                "replay-reconvergence",
                f"PC diverged after {executed} retired instructions: "
                f"core={pc} golden={state.pc}", cycle=cycle,
                strand="commit",
            )

    def check_zero_register(self, regs: List[int], *,
                            cycle: Optional[int] = None) -> None:
        if regs[ZERO_REG] != 0:
            self._fail(
                "zero-register",
                f"r0 reads {regs[ZERO_REG]:#x}, not 0", cycle=cycle,
            )


class SSTSanitizer(Sanitizer):
    """Event checks for :class:`~repro.core.sst_core.SSTCore`."""

    def __init__(self, core_name: str, program: Program):
        super().__init__(core_name, program)
        self._in_episode = False
        self._in_drain = False

    # ---- speculative-store containment -------------------------------

    def attach_memory_guard(self, state) -> None:
        """Wrap the architectural memory's write entry point so any
        speculative write outside a commit drain is caught at the exact
        instruction that issued it (not at the next commit)."""
        real_write = state.memory.write

        def guarded_write(addr: int, value: int) -> None:
            if self._in_episode and not self._in_drain:
                self._fail(
                    "spec-store-containment",
                    f"architectural memory write to {addr:#x} during a "
                    f"speculative episode outside a commit drain",
                    strand="ahead",
                )
            real_write(addr, value)

        state.memory.write = guarded_write

    @staticmethod
    def detach_memory_guard(state) -> None:
        """Remove the wrapper (restoring the bound method) once the run
        is over — the guard is a closure, and leaving it attached would
        make the final state unpicklable for the parallel runner."""
        state.memory.__dict__.pop("write", None)

    def on_episode_begin(self, cycle: int) -> None:
        self._in_episode = True

    def on_episode_end(self, cycle: int) -> None:
        self._in_episode = False

    # ---- deferred queue ----------------------------------------------

    def on_defer(self, entry, checkpoints, dq, cycle: int) -> None:
        if not checkpoints:
            self._fail(
                "dq-live-checkpoint",
                f"deferred seq {entry.seq} (pc {entry.pc}) with no live "
                f"checkpoint", cycle=cycle, strand="ahead",
            )
        oldest = checkpoints.oldest()
        if entry.seq < oldest.start_seq:
            self._fail(
                "dq-live-checkpoint",
                f"deferred seq {entry.seq} predates the oldest live "
                f"checkpoint (start_seq {oldest.start_seq})",
                cycle=cycle, strand="ahead",
            )
        if len(dq) > dq.capacity:
            self._fail(
                "occupancy",
                f"DQ holds {len(dq)} entries, capacity {dq.capacity}",
                cycle=cycle, strand="ahead",
            )

    def on_replay(self, entry, checkpoints, cycle: int) -> None:
        if not checkpoints or entry.seq < checkpoints.oldest().start_seq:
            self._fail(
                "dq-live-checkpoint",
                f"replaying seq {entry.seq} outside every live "
                f"checkpoint's epoch", cycle=cycle, strand="replay",
            )

    # ---- store buffer ------------------------------------------------

    def on_spec_store(self, sb, cycle: int) -> None:
        if len(sb) > sb.capacity:
            self._fail(
                "occupancy",
                f"SB holds {len(sb)} entries, capacity {sb.capacity}",
                cycle=cycle, strand="ahead",
            )

    def on_drain_begin(self, entries, cycle: int) -> None:
        """Validate a commit drain *before* any entry reaches memory, so
        a corrupt buffer cannot pollute architectural state first."""
        self._check_drain(entries, cycle)
        self._in_drain = True

    def on_drain_end(self) -> None:
        self._in_drain = False

    def _check_drain(self, entries, cycle: int) -> None:
        previous = None
        for entry in entries:
            if not entry.resolved:
                self._fail(
                    "sb-fifo-drain",
                    f"drained store seq {entry.seq} is unresolved",
                    cycle=cycle, strand="commit",
                )
            if entry.addr is None or entry.value is None:
                self._fail(
                    "sb-fifo-drain",
                    f"drained store seq {entry.seq} has no "
                    f"address/data", cycle=cycle, strand="commit",
                )
            if previous is not None and entry.seq <= previous:
                self._fail(
                    "sb-fifo-drain",
                    f"drain order inverted: seq {entry.seq} after "
                    f"{previous}", cycle=cycle, strand="commit",
                )
            previous = entry.seq

    # ---- checkpoints / commit ----------------------------------------

    def on_checkpoint(self, checkpoints, cycle: int) -> None:
        if len(checkpoints) > checkpoints.capacity:
            self._fail(
                "occupancy",
                f"{len(checkpoints)} live checkpoints, capacity "
                f"{checkpoints.capacity}", cycle=cycle,
            )

    def on_commit(self, executed: int, regs: List[int], memory,
                  pc: Optional[int], cycle: int) -> None:
        """Full commit (or HALT): the committed stream reconverges."""
        self.check_zero_register(regs, cycle=cycle)
        self.check_reconvergence(executed, regs, memory,
                                 cycle=cycle, pc=pc)


class OoOSanitizer(Sanitizer):
    """Event checks for the out-of-order comparator core."""

    def on_dispatch(self, rob_len: int, iq_len: int, lsq_len: int,
                    config, cycle: int) -> None:
        if rob_len > config.rob_size:
            self._fail("occupancy",
                       f"ROB holds {rob_len}, capacity {config.rob_size}",
                       cycle=cycle)
        if iq_len > config.iq_size:
            self._fail("occupancy",
                       f"IQ holds {iq_len}, capacity {config.iq_size}",
                       cycle=cycle)
        if lsq_len > config.lsq_size:
            self._fail("occupancy",
                       f"LSQ holds {lsq_len}, capacity {config.lsq_size}",
                       cycle=cycle)

    def on_commit(self, commit_time: int, last_commit: int,
                  cycle: int) -> None:
        if commit_time < last_commit:
            self._fail(
                "commit-order",
                f"commit at cycle {commit_time} precedes older commit "
                f"at {last_commit}", cycle=cycle,
            )

    def on_halt(self, executed: int, regs: List[int], memory,
                cycle: int) -> None:
        self.check_zero_register(regs, cycle=cycle)
        self.check_reconvergence(executed, regs, memory, cycle=cycle)


class InOrderSanitizer(Sanitizer):
    """Event checks for the in-order baseline core."""

    def __init__(self, core_name: str, program: Program):
        super().__init__(core_name, program)
        self._last_slot = 0

    def on_issue(self, slot: int, cycle: int) -> None:
        if slot < self._last_slot:
            self._fail(
                "issue-order",
                f"issue slot {slot} precedes older issue at "
                f"{self._last_slot}", cycle=cycle,
            )
        self._last_slot = slot

    def on_halt(self, executed: int, regs: List[int], memory,
                cycle: int) -> None:
        self.check_zero_register(regs, cycle=cycle)
        self.check_reconvergence(executed, regs, memory, cycle=cycle)


def make_sanitizer(kind: str, core_name: str,
                   program: Program) -> Optional[Sanitizer]:
    """The per-core factory the cores call at construction.

    Returns None unless ``REPRO_SANITIZE`` is set, so the default path
    stays hook-free.  ``kind`` is ``"sst"`` / ``"ooo"`` / ``"inorder"``.
    """
    if not sanitize_enabled():
        return None
    factory = {
        "sst": SSTSanitizer,
        "ooo": OoOSanitizer,
        "inorder": InOrderSanitizer,
    }[kind]
    return factory(core_name, program)


__all__ = [
    "InOrderSanitizer",
    "OoOSanitizer",
    "Sanitizer",
    "SSTSanitizer",
    "make_sanitizer",
    "sanitize_enabled",
]
