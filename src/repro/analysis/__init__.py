"""Correctness tooling: static program verification + runtime sanitizing.

Two complementary passes keep the simulator honest as the hot paths get
rewritten for speed:

* :mod:`repro.analysis.proglint` — a static verifier over
  :class:`~repro.isa.program.Program` (CFG + dataflow) that catches
  generator bugs before a single cycle is simulated,
* :mod:`repro.analysis.sanitizer` — a per-event microarchitectural
  invariant checker the cores consult when ``REPRO_SANITIZE`` is set.
"""

from repro.analysis.cfg import CFG, BasicBlock
from repro.analysis.proglint import (
    DiagKind,
    Diagnostic,
    ProgramLinter,
    check_program,
    lint_program,
)
from repro.analysis.sanitizer import (
    InOrderSanitizer,
    OoOSanitizer,
    Sanitizer,
    SSTSanitizer,
    make_sanitizer,
    sanitize_enabled,
)

__all__ = [
    "BasicBlock",
    "CFG",
    "DiagKind",
    "Diagnostic",
    "InOrderSanitizer",
    "OoOSanitizer",
    "ProgramLinter",
    "Sanitizer",
    "SSTSanitizer",
    "check_program",
    "lint_program",
    "make_sanitizer",
    "sanitize_enabled",
]
