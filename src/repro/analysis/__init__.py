"""Correctness tooling: static program verification + runtime sanitizing.

Two complementary passes keep the simulator honest as the hot paths get
rewritten for speed:

* :mod:`repro.analysis.proglint` — a static verifier over
  :class:`~repro.isa.program.Program` (CFG + dataflow) that catches
  generator bugs before a single cycle is simulated,
* :mod:`repro.analysis.sanitizer` — a per-event microarchitectural
  invariant checker the cores consult when ``REPRO_SANITIZE`` is set,
* :mod:`repro.analysis.taint` / :mod:`repro.analysis.taint_tracker` —
  a static speculative-leak taint pass over annotated secret data
  regions, cross-checked at runtime by a dynamic taint tracker
  (``REPRO_TAINT``) that records cache fills influenced by squashed
  strands' tainted addresses.
"""

from repro.analysis.cfg import CFG, BasicBlock
from repro.analysis.proglint import (
    DiagKind,
    Diagnostic,
    ProgramLinter,
    check_program,
    lint_program,
)
from repro.analysis.sanitizer import (
    InOrderSanitizer,
    OoOSanitizer,
    Sanitizer,
    SSTSanitizer,
    make_sanitizer,
    sanitize_enabled,
)
from repro.analysis.taint import (
    TaintReport,
    analyze_taint,
    clear_taint_cache,
    transient_pcs,
)
from repro.analysis.taint_tracker import (
    SSTTaintTracker,
    make_taint_tracker,
    taint_enabled,
)

__all__ = [
    "BasicBlock",
    "CFG",
    "DiagKind",
    "Diagnostic",
    "InOrderSanitizer",
    "OoOSanitizer",
    "ProgramLinter",
    "SSTTaintTracker",
    "Sanitizer",
    "SSTSanitizer",
    "TaintReport",
    "analyze_taint",
    "check_program",
    "clear_taint_cache",
    "lint_program",
    "make_sanitizer",
    "make_taint_tracker",
    "sanitize_enabled",
    "taint_enabled",
    "transient_pcs",
]
