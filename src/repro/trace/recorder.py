"""Trace capture from the functional interpreter.

A :class:`Trace` carries the dynamic memory-reference and branch
streams plus summary counts.  The text format is one event per line::

    # trace <program> insts=<n>
    L <pc> <addr>        load
    S <pc> <addr>        store
    B <pc> <0|1>         conditional branch, not-taken/taken

PCs are instruction indices (this ISA has no encoding); addresses are
hex.  Only the streams analyses need are recorded — a full
architectural replay is the interpreter's job, not the trace's.
"""

from __future__ import annotations

import dataclasses
import io
from typing import Iterable, List, Union

from repro.errors import ReproError
from repro.isa.interpreter import Interpreter, DEFAULT_MAX_STEPS
from repro.isa.opcodes import OpClass
from repro.isa.program import Program
from repro.isa.semantics import branch_taken, effective_address


@dataclasses.dataclass(frozen=True)
class MemEvent:
    pc: int
    addr: int
    is_store: bool


@dataclasses.dataclass(frozen=True)
class BranchEvent:
    pc: int
    taken: bool


Event = Union[MemEvent, BranchEvent]


@dataclasses.dataclass
class Trace:
    """One program's dynamic event streams."""

    program_name: str
    instructions: int
    events: List[Event]

    @property
    def mem_events(self) -> List[MemEvent]:
        return [e for e in self.events if isinstance(e, MemEvent)]

    @property
    def branch_events(self) -> List[BranchEvent]:
        return [e for e in self.events if isinstance(e, BranchEvent)]

    # ------------------------------------------------------------------
    # Serialisation.
    # ------------------------------------------------------------------

    def dump(self, stream: io.TextIOBase) -> None:
        stream.write(
            f"# trace {self.program_name} insts={self.instructions}\n"
        )
        for event in self.events:
            if isinstance(event, MemEvent):
                kind = "S" if event.is_store else "L"
                stream.write(f"{kind} {event.pc} {event.addr:#x}\n")
            else:
                stream.write(f"B {event.pc} {int(event.taken)}\n")

    def dumps(self) -> str:
        buffer = io.StringIO()
        self.dump(buffer)
        return buffer.getvalue()

    @classmethod
    def load(cls, stream: Iterable[str]) -> "Trace":
        name = "trace"
        instructions = 0
        events: List[Event] = []
        for line_number, raw in enumerate(stream, start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line.split()
                if len(parts) >= 3 and parts[1] == "trace":
                    name = parts[2]
                    for part in parts[3:]:
                        if part.startswith("insts="):
                            instructions = int(part[len("insts="):])
                continue
            parts = line.split()
            if len(parts) != 3 or parts[0] not in ("L", "S", "B"):
                raise ReproError(
                    f"trace line {line_number}: malformed event {line!r}"
                )
            if parts[0] == "B":
                events.append(BranchEvent(int(parts[1]),
                                          bool(int(parts[2]))))
            else:
                events.append(MemEvent(int(parts[1]), int(parts[2], 16),
                                       parts[0] == "S"))
        return cls(program_name=name, instructions=instructions,
                   events=events)

    @classmethod
    def loads(cls, text: str) -> "Trace":
        return cls.load(io.StringIO(text))


class _TracingInterpreter(Interpreter):
    """Interpreter that snoops memory and branch events as it runs."""

    def __init__(self, program: Program, max_steps: int):
        super().__init__(program, max_steps=max_steps)
        # Tracing observes every dynamic instruction through step();
        # force per-instruction dispatch so block execution cannot
        # route around the snoop.
        self._block_fns = None
        self.events: List[Event] = []

    def step(self) -> None:
        if self.halted:
            return
        state = self.state
        if 0 <= state.pc < len(self.program):
            inst = self.program[state.pc]
            cls = inst.op_class
            if cls is OpClass.LOAD or cls is OpClass.STORE:
                addr = effective_address(
                    state.read_reg(inst.rs1), inst.imm
                )
                self.events.append(
                    MemEvent(state.pc, addr, cls is OpClass.STORE)
                )
            elif cls is OpClass.BRANCH:
                taken = branch_taken(
                    inst.op,
                    state.read_reg(inst.rs1),
                    state.read_reg(inst.rs2),
                )
                self.events.append(BranchEvent(state.pc, taken))
        super().step()


def record_trace(program: Program,
                 max_steps: int = DEFAULT_MAX_STEPS) -> Trace:
    """Functionally execute ``program`` and capture its trace."""
    interpreter = _TracingInterpreter(program, max_steps=max_steps)
    interpreter.run()
    return Trace(
        program_name=program.name,
        instructions=interpreter.stats.instructions,
        events=interpreter.events,
    )
