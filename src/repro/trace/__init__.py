"""Dynamic-trace tooling.

The authors evaluated SST with trace-driven simulation of commercial
workloads; this package provides the equivalent plumbing for this
library's programs:

* :mod:`repro.trace.recorder` — run a program functionally and record
  its dynamic event stream (instructions, memory references, branch
  outcomes), with a compact text serialisation.
* :mod:`repro.trace.analysis` — trace-driven analyses that need no core
  model: cache-geometry sweeps, working-set and reuse-distance
  measurement, and branch-predictability scoring.

Traces make memory-system questions ("would a 4-way 64 KiB L1 have
helped?") answerable in milliseconds without re-running a core.
"""

from repro.trace.recorder import (
    MemEvent,
    BranchEvent,
    Trace,
    record_trace,
)
from repro.trace.analysis import (
    cache_sweep,
    predictability,
    reuse_distances,
    working_set,
)

__all__ = [
    "MemEvent",
    "BranchEvent",
    "Trace",
    "record_trace",
    "cache_sweep",
    "predictability",
    "reuse_distances",
    "working_set",
]
