"""Trace-driven analyses.

These answer memory-system questions directly from a recorded trace,
with no core model in the loop:

* :func:`cache_sweep` — miss rate of the data stream across a list of
  cache geometries (drives "would a bigger/more associative L1 help?").
* :func:`working_set` — unique lines/pages touched (TLB/cache reach).
* :func:`reuse_distances` — LRU stack distances of line references;
  the classic single-pass characterisation from which the miss rate of
  *any* fully-associative LRU size can be read off.
* :func:`predictability` — accuracy of a direction predictor replayed
  over the branch stream (scores workload branch difficulty without a
  pipeline).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Sequence, Tuple

from repro.config import BranchPredictorConfig, CacheConfig
from repro.branch.predictors import make_direction_predictor
from repro.memory.cache import Cache
from repro.stats.histogram import Histogram
from repro.trace.recorder import Trace


def cache_sweep(trace: Trace,
                configs: Sequence[CacheConfig]) -> List[Tuple[CacheConfig, float]]:
    """Miss rate of the trace's data stream on each geometry."""
    results = []
    for config in configs:
        cache = Cache(config, name="sweep")
        for event in trace.mem_events:
            if not cache.lookup(event.addr):
                cache.fill(event.addr)
        results.append((config, cache.stats.miss_rate))
    return results


def working_set(trace: Trace, line_bytes: int = 64,
                page_bytes: int = 8192) -> Dict[str, int]:
    """Footprint of the data stream: references, lines, pages, bytes."""
    lines = set()
    pages = set()
    for event in trace.mem_events:
        lines.add(event.addr // line_bytes)
        pages.add(event.addr // page_bytes)
    return {
        "references": len(trace.mem_events),
        "lines": len(lines),
        "pages": len(pages),
        "bytes": len(lines) * line_bytes,
    }


def reuse_distances(trace: Trace, line_bytes: int = 64) -> Histogram:
    """LRU stack distance per line reference (-1 = cold miss).

    The histogram's CDF at depth d is the hit rate of a d-line
    fully-associative LRU cache on this trace.
    """
    histogram = Histogram("reuse_distance")
    stack: OrderedDict = OrderedDict()
    for event in trace.mem_events:
        line = event.addr // line_bytes
        if line in stack:
            # Depth from the MRU end.
            depth = 0
            for candidate in reversed(stack):
                if candidate == line:
                    break
                depth += 1
            stack.move_to_end(line)
            histogram.add(depth)
        else:
            stack[line] = True
            histogram.add(-1)
    return histogram


def predictability(trace: Trace,
                   config: BranchPredictorConfig = BranchPredictorConfig(),
                   ) -> float:
    """Accuracy of ``config``'s direction predictor on the trace."""
    events = trace.branch_events
    if not events:
        return 1.0
    predictor = make_direction_predictor(config)
    correct = 0
    for event in events:
        if predictor.predict(event.pc) == event.taken:
            correct += 1
        predictor.update(event.pc, event.taken)
    return correct / len(events)
