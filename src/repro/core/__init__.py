"""The paper's contribution: the SST core and its mechanisms.

Subcomponents map one-to-one onto the hardware structures the paper
describes:

* :mod:`repro.core.modes` — execution modes and speculation outcomes.
* :mod:`repro.core.checkpoint` — register checkpoints (the structure
  that replaces the ROB).
* :mod:`repro.core.deferred_queue` — the DQ holding the miss-dependent
  strand with captured operands (replaces a big issue window).
* :mod:`repro.core.store_buffer` — the speculative store buffer with
  seq-ordered forwarding (replaces a memory-disambiguation buffer).
* :mod:`repro.core.regstate` — NA bits and last-writer tags (replace
  register renaming).
* :mod:`repro.core.sst_core` — the two-strand pipeline itself.
"""

from repro.core.modes import ExecMode, FailCause, ScoutCause
from repro.core.checkpoint import Checkpoint, CheckpointFile
from repro.core.deferred_queue import DeferredQueue, DQEntry
from repro.core.store_buffer import StoreBuffer, SBEntry, UnresolvedStores
from repro.core.regstate import SpeculativeRegisters
from repro.core.sst_core import SSTCore, SSTStats

__all__ = [
    "ExecMode",
    "FailCause",
    "ScoutCause",
    "Checkpoint",
    "CheckpointFile",
    "DeferredQueue",
    "DQEntry",
    "StoreBuffer",
    "SBEntry",
    "UnresolvedStores",
    "SpeculativeRegisters",
    "SSTCore",
    "SSTStats",
]
