"""Register checkpoints — SST's replacement for a reorder buffer.

A checkpoint is a flash copy of the register state (values + NA bits)
plus the PC at the take-point and the sequence number it opens.  Active
checkpoints partition the speculative instruction stream into *epochs*:
epoch ``i`` covers sequence numbers ``[ckpt[i].start_seq,
ckpt[i+1].start_seq)``.  The oldest checkpoint is always the recovery
point (committed-state consistent); a *boundary* checkpoint taken when
replay begins is what allows the ahead strand to keep running while the
deferred strand replays — the simultaneity the paper is named after.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.core.regstate import RegSnapshot
from repro.errors import SimulatorInvariantError


@dataclasses.dataclass
class Checkpoint:
    start_seq: int
    pc: int
    regs: RegSnapshot
    taken_cycle: int
    # The sequence number of the load (or long op) whose deferral caused
    # this checkpoint; boundary checkpoints have None.
    cause_seq: Optional[int] = None


@dataclasses.dataclass
class CheckpointStats:
    taken: int = 0
    boundary_taken: int = 0
    denied_full: int = 0
    peak_live: int = 0


class CheckpointFile:
    """At most ``capacity`` live checkpoints, ordered oldest-first."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.stats = CheckpointStats()
        self._live: List[Checkpoint] = []

    def __len__(self) -> int:
        return len(self._live)

    def __bool__(self) -> bool:
        return bool(self._live)

    @property
    def has_free(self) -> bool:
        return len(self._live) < self.capacity

    def take(self, checkpoint: Checkpoint, *, boundary: bool = False) -> None:
        if not self.has_free:
            self.stats.denied_full += 1
            raise SimulatorInvariantError("checkpoint take with no free entry")
        if self._live and checkpoint.start_seq < self._live[-1].start_seq:
            raise SimulatorInvariantError("checkpoints must be taken in order")
        self._live.append(checkpoint)
        self.stats.taken += 1
        if boundary:
            self.stats.boundary_taken += 1
        self.stats.peak_live = max(self.stats.peak_live, len(self._live))

    def oldest(self) -> Checkpoint:
        if not self._live:
            raise SimulatorInvariantError("no live checkpoint")
        return self._live[0]

    def boundary_above(self, seq: int) -> Optional[Checkpoint]:
        """The next checkpoint that closes the epoch containing ``seq``."""
        for checkpoint in self._live[1:]:
            if checkpoint.start_seq > seq:
                return checkpoint
        return None

    def release_oldest(self) -> Checkpoint:
        if not self._live:
            raise SimulatorInvariantError("release with no live checkpoint")
        return self._live.pop(0)

    def clear(self) -> None:
        self._live.clear()

    def live(self) -> List[Checkpoint]:
        return list(self._live)
