"""The Deferred Queue (DQ) — SST's replacement for a large issue window.

Instructions whose operands are not available (NA) park here *with the
operand values that were available at defer time*; unavailable operands
record the sequence number of their deferred producer instead.  That
captured dataflow is exactly what lets the replay strand re-execute the
slice without renaming: values flow seq→seq through the queue.

The queue is strictly program-ordered and replayed in order, which also
keeps memory operations inside the deferred strand correctly ordered.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Deque, Iterator, Optional

from repro.isa.instruction import Instruction
from repro.stats.histogram import Histogram


@dataclasses.dataclass
class DQEntry:
    """One deferred instruction with its captured operands."""

    seq: int
    pc: int
    inst: Instruction
    # rs1/rs2 at defer time: a value if available, else the producer seq.
    rs1_value: Optional[int] = None
    rs1_producer: Optional[int] = None
    rs2_value: Optional[int] = None
    rs2_producer: Optional[int] = None
    # Deferred conditional branch: the direction the front end guessed.
    predicted_taken: Optional[bool] = None
    # Deferred indirect jump: the target the front end guessed (None =
    # no prediction was available and the ahead strand stalled).
    predicted_target: Optional[int] = None
    # True when the instruction was deferred only to preserve memory
    # order behind an unresolved store (its operands are available).
    order_defer: bool = False

    def producers(self) -> Iterator[int]:
        if self.rs1_producer is not None:
            yield self.rs1_producer
        if self.rs2_producer is not None:
            yield self.rs2_producer


@dataclasses.dataclass
class DQStats:
    deferred: int = 0
    replayed: int = 0
    replayed_out_of_order: int = 0
    rejected_full: int = 0


class DeferredQueue:
    """Bounded FIFO of :class:`DQEntry`, replayed from the head."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.stats = DQStats()
        self.occupancy = Histogram("dq_occupancy")
        self._entries: Deque[DQEntry] = deque()

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def append(self, entry: DQEntry) -> bool:
        """Defer ``entry``; False (and no change) when the queue is full."""
        if self.full:
            self.stats.rejected_full += 1
            return False
        if self._entries and entry.seq <= self._entries[-1].seq:
            raise ValueError("DQ entries must be appended in seq order")
        self._entries.append(entry)
        self.stats.deferred += 1
        self.occupancy.add(len(self._entries))
        return True

    def head(self) -> Optional[DQEntry]:
        return self._entries[0] if self._entries else None

    def pop_head(self) -> DQEntry:
        self.stats.replayed += 1
        return self._entries.popleft()

    def remove(self, entry: DQEntry) -> None:
        """Replay an entry out of FIFO position (ROCK's re-deferral:
        not-ready entries are skipped and retried on a later pass)."""
        self.stats.replayed += 1
        if self._entries and self._entries[0] is entry:
            self._entries.popleft()
        else:
            self.stats.replayed_out_of_order += 1
            self._entries.remove(entry)

    def clear(self) -> None:
        self._entries.clear()

    def all_below(self, seq: int) -> bool:
        """True when every queued entry has ``entry.seq < seq``."""
        return not self._entries or self._entries[-1].seq < seq

    def __iter__(self) -> Iterator[DQEntry]:
        return iter(self._entries)
