"""The speculative store buffer — SST's replacement for a memory
disambiguation unit.

Speculative stores are buffered here (seq-ordered) until the covering
checkpoint commits, at which point entries drain to the cache.  Loads
forward from the youngest same-address entry older than themselves.

*Unresolved* entries are placeholders for deferred stores (address
and/or data NA); they are what makes memory speculation interesting:

* conservative policy: a load behind an unknown-address store defers;
* bypass policy: the load speculates and the store's replay checks for
  a conflict (the :class:`UnresolvedStores` index answers both).
"""

from __future__ import annotations

import bisect
import dataclasses
from typing import List, Optional, Tuple

from repro.errors import SimulatorInvariantError
from repro.stats.histogram import Histogram


@dataclasses.dataclass
class SBEntry:
    seq: int
    addr: Optional[int]  # None until the address is known
    value: Optional[int]  # None until the data is known
    resolved: bool

    @property
    def addr_known(self) -> bool:
        return self.addr is not None


@dataclasses.dataclass
class SBStats:
    appends: int = 0
    forwards: int = 0
    rejected_full: int = 0
    drained: int = 0


class UnresolvedStores:
    """Index over the unresolved entries, answering load-blocking and
    conflict queries without scanning the whole buffer."""

    def __init__(self, entries: List[SBEntry]):
        self._entries = entries  # shared list, owned by StoreBuffer

    def any_below(self, seq: int) -> bool:
        return any(
            not e.resolved and e.seq < seq for e in self._entries
        )

    def blocks_load(self, addr: int, load_seq: int,
                    conservative: bool) -> bool:
        """Must a load of ``addr`` at ``load_seq`` defer?

        A same-address unresolved store always blocks (its data cannot
        be forwarded).  An unknown-address unresolved store blocks only
        under the conservative policy; the bypass policy speculates past
        it and validates at the store's replay.
        """
        for entry in self._entries:
            if entry.resolved or entry.seq >= load_seq:
                continue
            if entry.addr is None:
                if conservative:
                    return True
            elif entry.addr == addr:
                return True
        return False


class StoreBuffer:
    """Bounded, seq-ordered speculative store buffer."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.stats = SBStats()
        self.occupancy = Histogram("sb_occupancy")
        self._entries: List[SBEntry] = []
        self._seqs: List[int] = []  # parallel key list for bisect
        self.unresolved = UnresolvedStores(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    # ------------------------------------------------------------------
    # Appends and resolution.
    # ------------------------------------------------------------------

    def _insert(self, entry: SBEntry) -> bool:
        if self.full:
            self.stats.rejected_full += 1
            return False
        at = bisect.bisect_left(self._seqs, entry.seq)
        if at < len(self._seqs) and self._seqs[at] == entry.seq:
            raise SimulatorInvariantError(f"duplicate SB seq {entry.seq}")
        self._seqs.insert(at, entry.seq)
        self._entries.insert(at, entry)
        self.stats.appends += 1
        self.occupancy.add(len(self._entries))
        return True

    def append_resolved(self, seq: int, addr: int, value: int) -> bool:
        return self._insert(SBEntry(seq, addr, value, resolved=True))

    def append_unresolved(self, seq: int, addr: Optional[int]) -> bool:
        return self._insert(SBEntry(seq, addr, None, resolved=False))

    def resolve(self, seq: int, addr: int, value: int) -> None:
        """A deferred store's replay supplies its address and data."""
        at = bisect.bisect_left(self._seqs, seq)
        if at >= len(self._seqs) or self._seqs[at] != seq:
            raise SimulatorInvariantError(f"resolve of unknown SB seq {seq}")
        entry = self._entries[at]
        if entry.resolved:
            raise SimulatorInvariantError(f"double resolve of SB seq {seq}")
        entry.addr = addr
        entry.value = value
        entry.resolved = True

    # ------------------------------------------------------------------
    # Forwarding.
    # ------------------------------------------------------------------

    def forward(self, addr: int, before_seq: int) -> Optional[Tuple[int, int]]:
        """Youngest resolved same-address entry older than ``before_seq``.

        Returns ``(value, entry_seq)`` or None.  The caller is expected
        to have checked :meth:`UnresolvedStores.blocks_load` first, so a
        same-address unresolved entry cannot sit between the match and
        the load.
        """
        limit = bisect.bisect_left(self._seqs, before_seq)
        for at in range(limit - 1, -1, -1):
            entry = self._entries[at]
            if entry.resolved and entry.addr == addr:
                self.stats.forwards += 1
                return entry.value, entry.seq  # type: ignore[return-value]
        return None

    def peek_forward(self, addr: int,
                     before_seq: int) -> Optional[Tuple[int, int]]:
        """:meth:`forward` without the stats side effect, for
        observational instrumentation (the taint tracker) that must not
        perturb simulation statistics."""
        limit = bisect.bisect_left(self._seqs, before_seq)
        for at in range(limit - 1, -1, -1):
            entry = self._entries[at]
            if entry.resolved and entry.addr == addr:
                return entry.value, entry.seq  # type: ignore[return-value]
        return None

    # ------------------------------------------------------------------
    # Commit / rollback.
    # ------------------------------------------------------------------

    def drain_below(self, seq: int) -> List[SBEntry]:
        """Remove and return all entries older than ``seq`` (commit).

        Every drained entry must be resolved — the commit condition
        guarantees it; an unresolved one is a simulator bug.
        """
        limit = bisect.bisect_left(self._seqs, seq)
        drained = self._entries[:limit]
        for entry in drained:
            if not entry.resolved:
                raise SimulatorInvariantError(
                    f"committing unresolved store seq {entry.seq}"
                )
        del self._entries[:limit]
        del self._seqs[:limit]
        self.stats.drained += len(drained)
        return drained

    def drain_all(self) -> List[SBEntry]:
        return self.drain_below(self._seqs[-1] + 1 if self._seqs else 0)

    def clear(self) -> None:
        self._entries.clear()
        self._seqs.clear()

    def entries(self) -> List[SBEntry]:
        return list(self._entries)
