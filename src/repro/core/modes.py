"""Execution modes and speculation outcomes of the SST core.

The mode names follow the paper's narrative: a core is *normal* until a
deferrable event checkpoints it into *execute-ahead*; when deferred data
returns it either replays *simultaneously* with continued ahead
execution (SST, needs a second checkpoint) or pauses the ahead strand to
replay (plain EA); resource exhaustion degrades speculation to *scout*
(prefetch only, always rolls back).
"""

from __future__ import annotations

import enum


class ExecMode(enum.Enum):
    """What the pipeline is doing right now."""

    NORMAL = "normal"  # non-speculative in-order execution
    EXECUTE_AHEAD = "execute_ahead"  # speculating past a miss, no replay yet
    SST = "sst"  # replay strand and ahead strand running simultaneously
    REPLAY_ONLY = "replay_only"  # ahead paused (no free checkpoint); replaying
    SCOUT = "scout"  # prefetch-only run-ahead; will roll back

    @property
    def speculative(self) -> bool:
        return self is not ExecMode.NORMAL


class FailCause(enum.Enum):
    """Why a speculative episode was thrown away (rollback + re-execute)."""

    DEFERRED_BRANCH_MISPREDICT = "deferred_branch_mispredict"
    DEFERRED_JUMP_MISPREDICT = "deferred_jump_mispredict"
    MEMORY_ORDER_VIOLATION = "memory_order_violation"
    SPECULATIVE_FAULT = "speculative_fault"


class ScoutCause(enum.Enum):
    """Why the core degraded from EA/SST to scout mode."""

    DQ_FULL = "dq_full"
    SB_FULL = "sb_full"
    SCOUT_ONLY = "scout_only"  # the configuration never retires speculation
