"""Shared event-driven timing layer.

Every core in the library advances its clock by *jumping to the next
wake event* (operand ready, structural hazard release, memory fill)
instead of ticking ``cycle += 1`` through stalls.  This module holds the
pieces of that discipline that used to be re-implemented per core:

* :class:`IssueClock` — the width-slotted, program-order issue cursor
  used by the in-order pipeline and by the SST core's normal mode.  A
  claim at a future cycle is a *fast-forward*: the clock lands directly
  on the wake event and the skipped span is recorded, never simulated.
* :func:`earliest_pending` — the allocation-free wake-minimum scan the
  SST speculative loop uses to find the next event among outstanding
  deferred producers.
* :class:`PerfCounters` — lightweight host-observability counters
  (cycles actually stepped vs. fast-forwarded, stall attribution)
  surfaced on every :class:`~repro.baselines.core_base.CoreResult`
  under ``extra["perf"]`` and aggregated by ``benchmarks/perf_report``.

The counters are pure observability: they never feed back into timing,
so enabling them cannot perturb simulated cycle counts.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Optional


@dataclasses.dataclass
class PerfCounters:
    """Host-side observability for one core run.

    ``cycles_stepped`` counts simulated cycles the model actually did
    work on; ``cycles_skipped`` counts idle cycles the event-driven
    clock jumped over (each jump is one ``fast_forwards`` event).  The
    two should roughly partition the run's total cycle count — a high
    skip fraction is the whole point of event-driven fast-forwarding.
    ``stall_cycles`` attributes the skipped spans to their cause
    (operand wait, memory, structural hazard, ...), per core model.
    """

    cycles_stepped: int = 0
    cycles_skipped: int = 0
    fast_forwards: int = 0
    stall_cycles: Dict[str, int] = dataclasses.field(default_factory=dict)

    @property
    def cycles_seen(self) -> int:
        return self.cycles_stepped + self.cycles_skipped

    @property
    def skip_fraction(self) -> float:
        """Fraction of observed cycles that were never simulated."""
        seen = self.cycles_seen
        return self.cycles_skipped / seen if seen else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "cycles_stepped": self.cycles_stepped,
            "cycles_skipped": self.cycles_skipped,
            "fast_forwards": self.fast_forwards,
            "skip_fraction": round(self.skip_fraction, 6),
            "stall_cycles": dict(self.stall_cycles),
        }


class IssueClock:
    """Width-slotted program-order issue cursor.

    ``issue_at(earliest)`` claims the next issue slot at or after
    ``earliest`` and returns the cycle it landed on; when ``earliest``
    is in the future the clock jumps there directly (no idle cycles are
    simulated).  ``advance_to`` models a full pipeline restart (branch
    redirect, drain): the clock moves forward and the current cycle's
    remaining slots are discarded.

    The instance is deliberately tiny and slot-addressed: the cores
    bind its methods into locals, so every operation is a handful of
    attribute reads on ``__slots__``.
    """

    __slots__ = ("cycle", "slots", "width", "perf", "_stepped_cycle")

    def __init__(self, width: int, perf: Optional[PerfCounters] = None,
                 cycle: int = 0):
        self.width = width
        self.cycle = cycle
        self.slots = 0
        self.perf = perf if perf is not None else PerfCounters()
        self._stepped_cycle = -1

    def issue_at(self, earliest: int) -> int:
        """Claim the next issue slot at or after ``earliest``."""
        cycle = self.cycle
        if earliest > cycle:
            perf = self.perf
            perf.cycles_skipped += earliest - cycle
            perf.fast_forwards += 1
            self.cycle = cycle = earliest
            self.slots = 0
        if cycle != self._stepped_cycle:
            self._stepped_cycle = cycle
            self.perf.cycles_stepped += 1
        self.slots += 1
        if self.slots >= self.width:
            self.cycle = cycle + 1
            self.slots = 0
        return cycle

    def advance_to(self, cycle: int, cause: Optional[str] = None) -> None:
        """Jump the clock forward (redirect/drain); no-op if in the past."""
        if cycle > self.cycle:
            perf = self.perf
            perf.cycles_skipped += cycle - self.cycle
            perf.fast_forwards += 1
            if cause is not None:
                stalls = perf.stall_cycles
                stalls[cause] = stalls.get(cause, 0) + (cycle - self.cycle)
            self.cycle = cycle
            self.slots = 0


def earliest_pending(ready_cycles: Iterable[int],
                     cycle: int) -> Optional[int]:
    """Earliest completion strictly after ``cycle``, or None.

    The SST core's wake-minimum scan: runs allocation-free over the
    outstanding producers' ready times on every idle speculative cycle,
    so the speculative loop can jump straight to the next event.
    """
    earliest: Optional[int] = None
    for ready in ready_cycles:
        if ready > cycle and (earliest is None or ready < earliest):
            earliest = ready
    return earliest


def fold_wake(wake_min: Optional[int], candidate: Optional[int],
              cycle: int) -> Optional[int]:
    """Fold one wake candidate into the running next-event minimum."""
    if candidate is None or candidate <= cycle:
        return wake_min
    if wake_min is None or candidate < wake_min:
        return candidate
    return wake_min
