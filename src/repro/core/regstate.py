"""Speculative register state: NA bits and last-writer tags.

This is the structure that lets SST drop register renaming.  Each
architectural register carries:

* a value (meaningful only when the register is *available*),
* an **NA bit**, here stored as the sequence number of the deferred
  producer that will eventually supply the value (``None`` = available),
* a **last-writer tag** — the sequence number of the youngest
  program-order writer, which is what merges replayed results correctly
  (a replayed write only lands architecturally if it is still the
  youngest writer: the paper's NT/W bits), and
* a readiness cycle for ordinary stall-on-use timing of available
  values.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.isa.registers import REG_COUNT, ZERO_REG


@dataclasses.dataclass
class RegSnapshot:
    """Frozen copy used by checkpoints and commit materialisation."""

    values: List[int]
    na_producer: Dict[int, int]  # reg -> producer seq for NA regs


class SpeculativeRegisters:
    """The working (ahead-strand) register file during speculation."""

    def __init__(self, committed_values: List[int]):
        self.values: List[int] = list(committed_values)
        # reg index -> seq of the deferred producer; absent = available.
        self.na_producer: Dict[int, int] = {}
        self.ready: List[int] = [0] * REG_COUNT
        self.last_writer: List[int] = [0] * REG_COUNT

    # ------------------------------------------------------------------
    # Reads.
    # ------------------------------------------------------------------

    def is_na(self, reg: int) -> bool:
        return reg in self.na_producer

    def producer_of(self, reg: int) -> Optional[int]:
        return self.na_producer.get(reg)

    def read(self, reg: int) -> int:
        """Value of an *available* register (caller checks NA first)."""
        return 0 if reg == ZERO_REG else self.values[reg]

    # ------------------------------------------------------------------
    # Writes.
    # ------------------------------------------------------------------

    def write_available(self, reg: int, value: int, seq: int,
                        ready_cycle: int) -> None:
        """An ahead-strand instruction produced ``value`` for ``reg``."""
        if reg == ZERO_REG:
            return
        self.values[reg] = value
        self.na_producer.pop(reg, None)
        self.last_writer[reg] = seq
        self.ready[reg] = ready_cycle

    def write_na(self, reg: int, producer_seq: int) -> None:
        """A deferred instruction will produce ``reg`` later."""
        if reg == ZERO_REG:
            return
        self.na_producer[reg] = producer_seq
        self.last_writer[reg] = producer_seq

    def apply_replayed(self, reg: int, value: int, seq: int,
                       ready_cycle: int) -> bool:
        """A replayed deferred write; lands only if still youngest.

        Returns True if it updated the architecturally visible value.
        """
        if reg == ZERO_REG:
            return False
        if self.last_writer[reg] != seq:
            return False
        self.values[reg] = value
        self.na_producer.pop(reg, None)
        self.ready[reg] = max(self.ready[reg], ready_cycle)
        return True

    # ------------------------------------------------------------------
    # Snapshots (checkpoints / commit).
    # ------------------------------------------------------------------

    def snapshot(self) -> RegSnapshot:
        return RegSnapshot(values=list(self.values),
                           na_producer=dict(self.na_producer))

    def na_regs(self):
        return self.na_producer.keys()
