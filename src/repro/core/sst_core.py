"""The SST core: a two-strand checkpoint/replay pipeline.

Execution alternates between two regimes:

* **Normal mode** — plain scoreboarded in-order execution updating
  committed state directly, identical to the in-order baseline, until a
  deferrable event (a triggering load miss, optionally a long integer
  op) occurs and a checkpoint is free.
* **Speculative episode** — a cycle-stepped loop running up to two
  strands that share the pipeline's issue width:

  - the *ahead strand* keeps executing the program; instructions with
    NA operands park in the deferred queue (DQ) with their available
    operands captured, stores buffer speculatively, NA-operand branches
    follow the predictor;
  - the *replay strand* walks the DQ head once deferred data returns.
    With a free checkpoint it first takes a *boundary* checkpoint so
    the ahead strand can keep running — that concurrency is
    Simultaneous Speculative Threading.  With no free checkpoint the
    ahead strand pauses (plain execute-ahead).

  Epochs between checkpoints commit oldest-first once everything below
  the boundary is resolved; a failed validation (deferred branch or
  jump mispredict, memory-order violation) rolls back to the oldest
  checkpoint; resource exhaustion (DQ or store buffer full) degrades
  the episode to **scout** (prefetch-only run-ahead, always rolled
  back, leaving warm caches behind).

The core executes functionally — including down predicted wrong paths
of deferred branches — so rollback/replay correctness is real and is
validated against the golden interpreter by the test suite.
"""

from __future__ import annotations

import dataclasses
import time
from heapq import heappop, heappush
from typing import Dict, List, Optional, Tuple

from repro.analysis.sanitizer import SSTSanitizer, make_sanitizer
from repro.analysis.taint_tracker import make_taint_tracker
from repro.baselines.core_base import (
    Core,
    CoreResult,
    DEFAULT_MAX_INSTRUCTIONS,
)
from repro.branch import BranchUnit
from repro.config import DeferTrigger, SSTConfig
from repro.core.checkpoint import Checkpoint, CheckpointFile
from repro.core.deferred_queue import DeferredQueue, DQEntry
from repro.core.modes import ExecMode, FailCause, ScoutCause
from repro.core.regstate import SpeculativeRegisters
from repro.core.store_buffer import StoreBuffer
from repro.core.timing import PerfCounters
from repro.errors import SimulatorInvariantError
from repro.isa import blockcache
from repro.isa.opcodes import Op, OpClass
from repro.isa.program import Program
from repro.isa.registers import REG_COUNT, ZERO_REG
from repro.isa.semantics import MASK64, effective_address
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.request import AccessResult, AccessType, HitLevel

FORWARD_LATENCY = 1

# Ahead-strand issue attempt outcomes.
_ISSUED = "issued"
_BLOCKED = "blocked"
_RETRY = "retry"  # mode changed (e.g. entered scout); try again

# Sentinel wake for "blocked until a state change, not by time" in the
# replay/commit stall caches (far beyond any simulated cycle).
_NO_WAKE = 1 << 62

# ExecMode -> mode_cycles key, resolved once: Enum ``.value`` is a
# DynamicClassAttribute lookup and _account_mode_cycles is called on
# every clock movement.
_MODE_KEY = {mode: mode.value for mode in ExecMode}


@dataclasses.dataclass
class SSTStats:
    """Everything the paper's evaluation tables need from one run."""

    normal_insts: int = 0
    ahead_insts: int = 0
    replay_insts: int = 0
    committed_spec_insts: int = 0
    discarded_insts: int = 0
    deferred: int = 0
    order_deferred: int = 0
    deferred_branches: int = 0
    deferred_jumps: int = 0
    deferred_loads_missed_again: int = 0
    episodes: int = 0
    full_commits: int = 0
    region_commits: int = 0
    fails: Dict[FailCause, int] = dataclasses.field(
        default_factory=lambda: {cause: 0 for cause in FailCause}
    )
    scout_sessions: Dict[ScoutCause, int] = dataclasses.field(
        default_factory=lambda: {cause: 0 for cause in ScoutCause}
    )
    scout_prefetches: int = 0
    mode_cycles: Dict[str, int] = dataclasses.field(
        default_factory=lambda: {mode.value: 0 for mode in ExecMode}
    )
    peak_outstanding_misses: int = 0

    @property
    def total_fails(self) -> int:
        return sum(self.fails.values())

    @property
    def total_scout_sessions(self) -> int:
        return sum(self.scout_sessions.values())


class SSTCore(Core):
    name = "sst"

    def __init__(self, program: Program, hierarchy: MemoryHierarchy,
                 config: SSTConfig = SSTConfig()):
        super().__init__(program, hierarchy)
        self.config = config
        self.branch_unit = BranchUnit(config.predictor)
        self.stats = SSTStats()
        self.checkpoints = CheckpointFile(max(config.checkpoints, 1))
        self.dq = DeferredQueue(config.dq_size)
        self.sb = StoreBuffer(config.sb_size)

        # ---- normal-mode pipeline state -------------------------------
        self._cycle = 0
        self._slots = 0
        self._reg_ready: List[int] = [0] * REG_COUNT
        self._pc = 0
        self._drain_busy = 0  # store-buffer commit drain / store traffic
        self._executed = 0
        self._halted = False

        # ---- speculation context (live only during an episode) --------
        self.mode = ExecMode.NORMAL
        self.spec: Optional[SpeculativeRegisters] = None
        self._seq = 1  # 0 tags committed-state writers
        self._slice_values: Dict[int, int] = {}
        self._producer_ready: Dict[int, int] = {}
        self._spec_loads: List[Tuple[int, int, int]] = []  # (seq, addr, src)
        self._ahead_pc = 0
        self._ahead_block: Optional[str] = None
        self._ahead_barrier = 0  # redirect penalty barrier
        self._replay_no_boundary = False
        self._scout_stores: Dict[int, int] = {}
        self._scout_end = 0
        self._mode_account_cycle = 0
        # One-shot livelock guard: after a rollback, the trigger at this
        # (pc, seq) executes non-speculatively once.  Without it a scout
        # session whose prefetches evict their own trigger line repeats
        # identically forever (deterministic timing has no jitter to
        # break the cycle the way real hardware does).
        self._suppress_pc = -1
        self._suppress_seq = -1

        # ---- host-side observability + event-driven bookkeeping -------
        self.perf = PerfCounters()
        self._perf_stepped_cycle = -1
        self._wall_accum = 0.0
        # Earliest cycle at which this core can next do work; a
        # multicore scheduler may skip whole quanta up to (not past) it.
        self._next_event = 0
        # Memoized "replay strand has nothing issuable before cycle X"
        # / "no commit possible before cycle X" results (None = unknown,
        # _NO_WAKE = blocked until a state change).  Invalidated by any
        # mutation that can change eligibility; purely a recomputation
        # cache, so timing is bit-identical with or without it.
        self._replay_stall: Optional[int] = None
        self._commit_stall: Optional[int] = None
        # Lazy min-heap over (ready, seq) of pending deferred producers;
        # stale entries (overwritten or completed) are dropped on pop.
        self._pending_heap: List[Tuple[int, int]] = []

        # ---- optional microarchitectural sanitizer ---------------------
        # None unless REPRO_SANITIZE is set; every hook site is guarded,
        # and the sanitizer itself is observational (it never touches
        # timing state), so cycle counts are identical either way.
        self.sanitizer: Optional[SSTSanitizer] = make_sanitizer(
            "sst", self.name, program)  # type: ignore[assignment]
        if self.sanitizer is not None:
            self.sanitizer.attach_memory_guard(self.state)

        # ---- optional dynamic taint tracker ----------------------------
        # None unless REPRO_TAINT is set; observational like the
        # sanitizer (pure accessors only), so cycle counts are identical
        # either way.  See repro.analysis.taint_tracker.
        self.taint = make_taint_tracker(self, program)

        # ---- block-dispatch fast paths ---------------------------------
        # Flat decoded rows, shared via the fingerprint-keyed block
        # cache; the reference decode (program.instructions) stays the
        # source of truth and the rows are derived from it.
        self._rows = blockcache.rows_for(program)
        # mode_cycles key of the current mode, maintained at every mode
        # transition so accounting skips the per-call dict lookup.
        self._mode_key = _MODE_KEY[self.mode]
        # Specialized speculative loop (repro.core.sst_dispatch),
        # generated per config signature.  The reference loop keeps all
        # sanitizer hook sites, so sanitized runs always take it.
        self._spec_loop_fn = None
        if blockcache.enabled() and self.sanitizer is None \
                and self.taint is None:
            from repro.core.sst_dispatch import compile_spec_loop
            self._spec_loop_fn = compile_spec_loop(
                config, self.branch_unit.mispredict_penalty
            )

    # ==================================================================
    # Top level.
    # ==================================================================

    def run(self, max_instructions: int = DEFAULT_MAX_INSTRUCTIONS) -> CoreResult:
        self.advance(None, max_instructions)
        return self._finalize()

    def advance(self, until_cycle: Optional[int],
                max_instructions: int = DEFAULT_MAX_INSTRUCTIONS) -> bool:
        """Resumable execution: run until HALT or the local clock
        reaches ``until_cycle`` (None = run to completion).

        Returns True once the program has halted.  This is what lets a
        multicore scheduler interleave several cores over a shared
        memory system in bounded-skew time quanta
        (:mod:`repro.cmp.multicore`): no instruction is issued at or
        beyond ``until_cycle``, so cross-core access ordering skew is
        bounded by the quantum.
        """
        if self._halted:
            return True
        started = time.perf_counter()
        try:
            while until_cycle is None or self._cycle < until_cycle:
                if self.mode is ExecMode.NORMAL:
                    outcome = self._normal_step(max_instructions, until_cycle)
                    if outcome == "halt":
                        self._halted = True
                        return True
                    if outcome == "yield":
                        return False
                    # outcome == "spec": fall through to the episode
                    # loop; a pending HALT/MEMBAR re-executes in normal
                    # mode after the episode resolves.
                loop = self._spec_loop_fn
                if loop is not None:
                    loop(self, max_instructions, until_cycle)
                else:
                    self._speculative_loop(max_instructions, until_cycle)
            return False
        finally:
            self._wall_accum += time.perf_counter() - started

    @property
    def next_event_hint(self) -> int:
        """Earliest cycle at which this core can next issue, commit, or
        otherwise touch shared state.  Calls to :meth:`advance` with
        ``until_cycle`` at or before this hint are pure clock jumps (no
        hierarchy accesses), which is what lets the multicore scheduler
        fast-forward idle quanta without perturbing access order."""
        hint = self._next_event
        return hint if hint > self._cycle else self._cycle

    @property
    def halted(self) -> bool:
        return self._halted

    @property
    def cycle(self) -> int:
        """The core's local clock (multicore scheduling key)."""
        return self._cycle

    def finalize(self) -> CoreResult:
        """The run's result; valid once :meth:`advance` reported halt."""
        if not self._halted:
            raise SimulatorInvariantError("finalize() before HALT")
        return self._finalize()

    def _finalize(self) -> CoreResult:
        final_cycle = max(
            self._cycle, max(self._reg_ready), self._drain_busy, 1
        )
        self._account_mode_cycles(final_cycle)
        if self.sanitizer is not None:
            if self._halted:
                self.sanitizer.on_commit(self._executed, self.state.regs,
                                         self.state.memory, None,
                                         final_cycle)
            self.sanitizer.detach_memory_guard(self.state)
        return CoreResult(
            core_name=self.name,
            program_name=self.program.name,
            cycles=final_cycle,
            instructions=self._executed,
            state=self.state,
            extra={
                "sst": self.stats,
                "branch": self.branch_unit.stats,
                "hierarchy": self.hierarchy.stats,
                "l1d": self.hierarchy.l1d.stats,
                "l2": self.hierarchy.l2.stats,
                "dq": self.dq.stats,
                "dq_occupancy": self.dq.occupancy,
                "sb": self.sb.stats,
                "sb_occupancy": self.sb.occupancy,
                "checkpoints": self.checkpoints.stats,
                "perf": self.perf,
                **({"taint": self.taint.finalize_report()}
                   if self.taint is not None else {}),
            },
            wall_seconds=self._wall_accum,
        )

    # ==================================================================
    # Normal (non-speculative) mode — the in-order substrate.
    # ==================================================================

    def _normal_issue_at(self, earliest: int) -> int:
        if earliest > self._cycle:
            perf = self.perf
            perf.cycles_skipped += earliest - self._cycle
            perf.fast_forwards += 1
            self._account_mode_cycles(earliest)
            self._cycle = earliest
            self._slots = 0
        slot = self._cycle
        if slot != self._perf_stepped_cycle:
            self._perf_stepped_cycle = slot
            self.perf.cycles_stepped += 1
        self._slots += 1
        if self._slots >= self.config.width:
            self._account_mode_cycles(self._cycle + 1)
            self._cycle += 1
            self._slots = 0
        return slot

    def _account_mode_cycles(self, new_cycle: int) -> None:
        delta = new_cycle - self._mode_account_cycle
        if delta > 0:
            self.stats.mode_cycles[self._mode_key] += delta
            self._mode_account_cycle = new_cycle

    def _defer_triggering(self, result: AccessResult) -> bool:
        if result.tlb_miss and self.config.defer_on_tlb_miss:
            return True
        if self.config.defer_trigger is DeferTrigger.L1_MISS:
            return not result.l1_hit
        return result.went_to_dram

    def _episode_allowed(self, pc: int) -> bool:
        """One-shot post-rollback suppression (see ``_suppress_pc``)."""
        if pc == self._suppress_pc and self._seq == self._suppress_seq:
            self._suppress_pc = -1
            self._suppress_seq = -1
            return False
        return True

    def _normal_step(self, budget: int,
                     until: Optional[int] = None) -> Optional[str]:
        """Run normal mode until HALT or a speculative episode starts.

        With ``until`` set, returns "yield" before issuing anything at
        or beyond that cycle (resumable for multicore interleaving).
        """
        state = self.state
        config = self.config
        latencies = config.latencies
        hierarchy = self.hierarchy
        model_ifetch = hierarchy.config.model_ifetch
        reg_ready = self._reg_ready
        can_speculate = config.checkpoints >= 1

        # Hot-loop locals (see inorder.py): direct register-file
        # indexing is safe because every write below guards the zero
        # register, so ``regs[0]`` stays 0.  Decode comes from the
        # block cache's flat rows.
        rows = self._rows
        n_insts = len(rows)
        regs = state.regs
        mem_read = state.memory.read
        mem_write = state.memory.write
        ifetch = hierarchy.ifetch
        data_access = hierarchy.data_access
        lat_alu = latencies.alu
        lat_mul = latencies.mul
        lat_div = latencies.div
        defer_long_ops = config.defer_long_ops
        defer_on_tlb_miss = config.defer_on_tlb_miss
        defer_on_l1_miss = config.defer_trigger is DeferTrigger.L1_MISS
        L1 = HitLevel.L1
        DRAM = HitLevel.DRAM
        MERGE_L2 = HitLevel.MERGE_L2
        ACC_LOAD = AccessType.LOAD
        ACC_STORE = AccessType.STORE
        K_MUL = blockcache.K_MUL
        K_DIV = blockcache.K_DIV
        K_LOAD = blockcache.K_LOAD
        K_STORE = blockcache.K_STORE
        K_PREFETCH = blockcache.K_PREFETCH
        K_BRANCH = blockcache.K_BRANCH
        K_JUMP = blockcache.K_JUMP
        K_JUMP_INDIRECT = blockcache.K_JUMP_INDIRECT
        K_BARRIER = blockcache.K_BARRIER
        K_HALT = blockcache.K_HALT
        # For the inlined issue-slot bookkeeping (_normal_issue_at and
        # its accounting, one call pair per instruction otherwise).
        # ``self._mode_key`` is constant here: _normal_step only runs
        # in normal mode and returns on any transition.
        stats = self.stats
        perf = self.perf
        width = config.width
        mode_cycles = stats.mode_cycles
        mkey = self._mode_key
        branch_unit = self.branch_unit
        resolve_cond = branch_unit.resolve_cond
        resolve_indirect = branch_unit.resolve_indirect
        push_return = branch_unit.push_return
        redirect_lat = latencies.alu + branch_unit.mispredict_penalty
        is_call = self.is_call
        is_return = self.is_return
        do_prefetch = hierarchy.prefetch

        # Core-owned scalars mirrored into locals for the loop; written
        # back at every exit and before any callee that reads them
        # (_begin_episode, _check_budget/_check_pc raises).
        cycle = self._cycle
        slots = self._slots
        executed = self._executed
        mode_account = self._mode_account_cycle
        perf_stepped = self._perf_stepped_cycle
        drain_busy = self._drain_busy
        pc = self._pc

        while True:
            if until is not None and cycle >= until:
                self._next_event = cycle
                self._cycle = cycle
                self._slots = slots
                self._executed = executed
                self._mode_account_cycle = mode_account
                self._perf_stepped_cycle = perf_stepped
                self._drain_busy = drain_busy
                self._pc = pc
                return "yield"
            if executed >= budget:
                self._cycle = cycle
                self._slots = slots
                self._executed = executed
                self._mode_account_cycle = mode_account
                self._perf_stepped_cycle = perf_stepped
                self._drain_busy = drain_busy
                self._pc = pc
                self._check_budget(executed, budget)
            if pc < 0 or pc >= n_insts:
                self._cycle = cycle
                self._slots = slots
                self._executed = executed
                self._mode_account_cycle = mode_account
                self._perf_stepped_cycle = perf_stepped
                self._drain_busy = drain_busy
                self._pc = pc
                self._check_pc(pc)
            (kind, rd, rs1, rs2, imm, target, fn, sources,
             _writes, uses_imm, inst) = rows[pc]

            earliest = cycle
            for src in sources:
                if reg_ready[src] > earliest:
                    earliest = reg_ready[src]
            if until is not None and earliest >= until:
                # The next instruction would issue beyond the quantum;
                # hand control back without touching shared state.  Any
                # re-entry with a quantum at or before ``earliest`` is a
                # pure clock jump (operand readiness cannot regress), so
                # advertise it as the fast-forward hint.
                self._next_event = earliest
                delta = until - mode_account
                if delta > 0:
                    mode_cycles[mkey] += delta
                    mode_account = until
                self._cycle = until
                self._slots = 0
                self._executed = executed
                self._mode_account_cycle = mode_account
                self._perf_stepped_cycle = perf_stepped
                self._drain_busy = drain_busy
                self._pc = pc
                return "yield"
            if model_ifetch:
                fetch_ready = ifetch(pc, cycle).ready_cycle
                if fetch_ready > earliest:
                    earliest = fetch_ready

            if kind == K_HALT:
                executed += 1
                stats.normal_insts += 1
                if earliest > cycle:
                    delta = earliest - mode_account
                    if delta > 0:
                        mode_cycles[mkey] += delta
                        mode_account = earliest
                    cycle = earliest
                self._cycle = cycle
                self._slots = slots
                self._executed = executed
                self._mode_account_cycle = mode_account
                self._perf_stepped_cycle = perf_stepped
                self._drain_busy = drain_busy
                self._pc = pc
                return "halt"

            # Inlined _normal_issue_at(earliest) + its accounting.
            slot = cycle
            if earliest > slot:
                perf.cycles_skipped += earliest - slot
                perf.fast_forwards += 1
                delta = earliest - mode_account
                if delta > 0:
                    mode_cycles[mkey] += delta
                    mode_account = earliest
                cycle = earliest
                slots = 0
                slot = earliest
            if slot != perf_stepped:
                perf_stepped = slot
                perf.cycles_stepped += 1
            slots += 1
            if slots >= width:
                nxt = slot + 1
                delta = nxt - mode_account
                if delta > 0:
                    mode_cycles[mkey] += delta
                    mode_account = nxt
                cycle = nxt
                slots = 0
            executed += 1
            stats.normal_insts += 1
            next_pc = pc + 1

            if kind <= K_DIV:  # ALU / MUL / DIV
                a = regs[rs1]
                value = fn(a, imm) if uses_imm else fn(a, regs[rs2])
                if kind == K_MUL:
                    latency = lat_mul
                elif kind == K_DIV:
                    latency = lat_div
                    if (defer_long_ops and can_speculate
                            and self._episode_allowed(pc)):
                        # The committed write is withheld: the
                        # checkpoint must capture pre-trigger state so a
                        # rollback can re-execute the trigger itself.
                        self._cycle = cycle
                        self._slots = slots
                        self._executed = executed
                        self._mode_account_cycle = mode_account
                        self._perf_stepped_cycle = perf_stepped
                        self._drain_busy = drain_busy
                        self._pc = next_pc
                        self._begin_episode(
                            pc, slot, rd, slot + latency, value
                        )
                        return "spec"
                else:
                    latency = lat_alu
                if rd:
                    regs[rd] = value
                    reg_ready[rd] = slot + latency
            elif kind == K_LOAD:
                addr = (regs[rs1] + imm) & MASK64
                value = mem_read(addr)
                result = data_access(addr, slot, ACC_LOAD, pc=pc)
                if can_speculate:
                    level = result.level
                    if result.tlb_miss and defer_on_tlb_miss:
                        triggering = True
                    elif defer_on_l1_miss:
                        triggering = level is not L1
                    else:
                        triggering = level is DRAM or level is MERGE_L2
                    if triggering and self._episode_allowed(pc):
                        self._cycle = cycle
                        self._slots = slots
                        self._executed = executed
                        self._mode_account_cycle = mode_account
                        self._perf_stepped_cycle = perf_stepped
                        self._drain_busy = drain_busy
                        self._pc = next_pc
                        self._begin_episode(
                            pc, slot, rd, result.ready_cycle, value
                        )
                        return "spec"
                if rd:
                    regs[rd] = value
                    reg_ready[rd] = result.ready_cycle
            elif kind == K_STORE:
                addr = (regs[rs1] + imm) & MASK64
                mem_write(addr, regs[rs2])
                result = data_access(addr, slot, ACC_STORE, pc=pc)
                if result.ready_cycle > drain_busy:
                    drain_busy = result.ready_cycle
            elif kind == K_PREFETCH:
                addr = (regs[rs1] + imm) & MASK64
                do_prefetch(addr, slot)
            elif kind == K_BRANCH:
                taken = fn(regs[rs1], regs[rs2])
                mispredicted = resolve_cond(pc, taken)
                if taken:
                    next_pc = target
                if mispredicted:
                    redirect = slot + redirect_lat
                    if redirect > cycle:
                        delta = redirect - mode_account
                        if delta > 0:
                            mode_cycles[mkey] += delta
                            mode_account = redirect
                        cycle = redirect
                        slots = 0
            elif kind == K_JUMP:
                if rd:
                    regs[rd] = pc + 1
                    reg_ready[rd] = slot + 1
                if is_call(inst):
                    push_return(pc + 1)
                next_pc = target
            elif kind == K_JUMP_INDIRECT:
                target = (regs[rs1] + imm) & MASK64
                if target < 0 or target >= n_insts:
                    self._cycle = cycle
                    self._slots = slots
                    self._executed = executed
                    self._mode_account_cycle = mode_account
                    self._perf_stepped_cycle = perf_stepped
                    self._drain_busy = drain_busy
                    self._pc = pc
                    self._check_pc(target)
                mispredicted = resolve_indirect(
                    pc, target, is_return=is_return(inst)
                )
                if rd:
                    regs[rd] = pc + 1
                    reg_ready[rd] = slot + 1
                if is_call(inst):
                    push_return(pc + 1)
                next_pc = target
                if mispredicted:
                    redirect = slot + redirect_lat
                    if redirect > cycle:
                        delta = redirect - mode_account
                        if delta > 0:
                            mode_cycles[mkey] += delta
                            mode_account = redirect
                        cycle = redirect
                        slots = 0
            elif kind == K_BARRIER:
                drain = max(max(reg_ready), drain_busy)
                if drain > cycle:
                    delta = drain - mode_account
                    if delta > 0:
                        mode_cycles[mkey] += delta
                        mode_account = drain
                    cycle = drain
                    slots = 0
            # NOP: nothing.

            pc = next_pc

    # ==================================================================
    # Episode lifecycle.
    # ==================================================================

    def _begin_episode(self, trigger_pc: int, trigger_slot: int,
                       trigger_rd: int, data_ready: int,
                       value: int) -> None:
        """Checkpoint at the triggering instruction and go speculative.

        The triggering load/long-op has already issued (its value is
        functionally known, its timing pending); its destination becomes
        NA and its result is the episode's first pending producer.
        """
        self.stats.episodes += 1
        # The trigger was provisionally counted by normal mode, but it
        # now belongs to the episode: it holds the epoch's first seq,
        # so it is an ahead-strand issue that commits with the episode
        # (or is re-executed after a rollback).
        self._executed -= 1
        self.stats.normal_insts -= 1
        self.stats.ahead_insts += 1
        spec = SpeculativeRegisters(self.state.regs)
        spec.ready[:] = self._reg_ready
        # The checkpoint snapshot excludes the trigger's own result.
        snapshot = spec.snapshot()
        self.spec = spec
        seq = self._seq
        self._seq += 1
        self.checkpoints.take(Checkpoint(
            start_seq=seq, pc=trigger_pc, regs=snapshot,
            taken_cycle=trigger_slot, cause_seq=seq,
        ))
        if self.sanitizer is not None:
            self.sanitizer.on_episode_begin(trigger_slot)
            self.sanitizer.on_checkpoint(self.checkpoints, trigger_slot)
        if self.taint is not None:
            self.taint.on_episode_begin(trigger_pc, seq)
        self._slice_values = {seq: value}
        self._producer_ready = {seq: data_ready}
        self._pending_heap = [(data_ready, seq)]
        self._replay_stall = None
        self._commit_stall = None
        self._spec_loads = []
        self._scout_stores = {}
        self._ahead_pc = self._pc
        self._ahead_block = None
        self._ahead_barrier = trigger_slot + self.config.checkpoint_latency
        self._replay_no_boundary = False
        if trigger_rd != ZERO_REG:
            spec.write_na(trigger_rd, seq)
        self._account_mode_cycles(self._cycle)
        # Episode work happens every cycle until proven otherwise.
        self._next_event = self._cycle
        if self.config.scout_only:
            self._enter_scout(ScoutCause.SCOUT_ONLY)
        else:
            self.mode = ExecMode.EXECUTE_AHEAD
            self._mode_key = _MODE_KEY[ExecMode.EXECUTE_AHEAD]

    def _min_outstanding(self, cycle: int) -> Optional[int]:
        """Earliest completion among still-pending producers.

        Served from the lazy pending-heap: completed and stale entries
        (the clock is monotonic within an episode, and a producer's
        ready time is only ever re-pushed, never silently changed) are
        popped on sight, so the amortized cost is O(log n) per producer
        instead of a full dict scan per idle cycle."""
        heap = self._pending_heap
        producer_ready = self._producer_ready
        while heap:
            ready, seq = heap[0]
            if ready > cycle and producer_ready.get(seq) == ready:
                return ready
            heappop(heap)
        return None

    def _count_outstanding(self, cycle: int) -> int:
        count = 0
        for ready in self._producer_ready.values():
            if ready > cycle:
                count += 1
        return count

    def _enter_scout(self, cause: ScoutCause) -> None:
        self.stats.scout_sessions[cause] += 1
        self._account_mode_cycles(self._cycle)
        self.mode = ExecMode.SCOUT
        self._mode_key = _MODE_KEY[ExecMode.SCOUT]
        self._replay_stall = None
        self._commit_stall = None
        earliest = self._min_outstanding(self._cycle)
        self._scout_end = earliest if earliest is not None else self._cycle
        if self._ahead_block in ("dq_full", "sb_full"):
            self._ahead_block = None

    def _teardown_episode(self) -> None:
        if self.sanitizer is not None:
            self.sanitizer.on_episode_end(self._cycle)
        if self.taint is not None:
            self.taint.on_episode_end()
        self.spec = None
        self.dq.clear()
        self.sb.clear()
        self.checkpoints.clear()
        self._slice_values = {}
        self._producer_ready = {}
        # Rollback reuses sequence numbers, so stale heap entries could
        # alias future producers — drop them with the episode.
        self._pending_heap = []
        self._replay_stall = None
        self._commit_stall = None
        self._spec_loads = []
        self._scout_stores = {}
        self._ahead_block = None
        self._replay_no_boundary = False
        self._account_mode_cycles(self._cycle)
        self.mode = ExecMode.NORMAL
        self._mode_key = _MODE_KEY[ExecMode.NORMAL]
        # Back in normal mode: any stale speculative wake hint would
        # overstate how long this core can be fast-forwarded.
        self._next_event = self._cycle

    def _rollback(self, cycle: int, cause: Optional[FailCause]) -> None:
        """Restore the oldest checkpoint; cause None = scout ending."""
        if self.taint is not None:
            # Everything younger than the restored checkpoint is being
            # squashed: pending tainted fills are confirmed leaks.
            self.taint.on_rollback()
        target = self.checkpoints.oldest()
        if cause is not None:
            self.stats.fails[cause] += 1
        self.stats.discarded_insts += self._seq - target.start_seq
        self._seq = target.start_seq
        self._pc = target.pc
        self._suppress_pc = target.pc
        self._suppress_seq = target.start_seq
        restart = cycle + self.config.rollback_penalty
        self._cycle = max(self._cycle, cycle)
        self._account_mode_cycles(restart)
        self._cycle = restart
        self._slots = 0
        self._reg_ready = [restart] * REG_COUNT
        self._teardown_episode()

    def _materialize(self, snapshot) -> List[int]:
        values = list(snapshot.values)
        for reg, producer in snapshot.na_producer.items():
            values[reg] = self._slice_values[producer]
        return values

    def _drain_stores(self, entries, cycle: int) -> None:
        """Commit stores to memory and the cache, with drain bandwidth."""
        sanitizer = self.sanitizer
        if sanitizer is not None:
            sanitizer.on_drain_begin(entries, cycle)
        drained_this_cycle = 0
        at = max(cycle, self._drain_busy)
        for entry in entries:
            self.state.memory.write(entry.addr, entry.value)
            self.hierarchy.data_access(entry.addr, at, AccessType.STORE)
            drained_this_cycle += 1
            if drained_this_cycle >= self.config.commit_drain_per_cycle:
                at += 1
                drained_this_cycle = 0
        self._drain_busy = max(self._drain_busy, at)
        if sanitizer is not None:
            sanitizer.on_drain_end()

    def _try_commits(self, cycle: int) -> None:
        """Region commits oldest-first, then a full commit if possible."""
        if self.mode is ExecMode.SCOUT or self.spec is None:
            return
        # Memoized outcome: nothing can commit before ``_commit_stall``
        # (replay progress and teardown invalidate; ahead-strand issue
        # only *adds* blockers, which cannot move a commit earlier).
        stall = self._commit_stall
        if stall is not None and cycle < stall:
            return
        self._commit_stall = None
        did_commit = False
        time_blocked = False  # blocked by a pending producer (not state)

        # Region commits: is the oldest epoch [ckpt0, ckpt1) fully
        # resolved?  (DQ drained below the boundary, all its pending
        # producers back.)
        while len(self.checkpoints) >= 2:
            live = self.checkpoints.live()
            boundary = live[1]
            head = self.dq.head()
            if head is not None and head.seq < boundary.start_seq:
                break
            pending_below = False
            for seq, ready in self._producer_ready.items():
                if ready > cycle and seq < boundary.start_seq:
                    pending_below = True
                    break
            if pending_below:
                time_blocked = True
                break
            self.state.regs = self._materialize(boundary.regs)
            self._drain_stores(self.sb.drain_below(boundary.start_seq), cycle)
            self._spec_loads = [
                record for record in self._spec_loads
                if record[0] >= boundary.start_seq
            ]
            self.checkpoints.release_oldest()
            committed = boundary.start_seq - live[0].start_seq
            self.stats.region_commits += 1
            self.stats.committed_spec_insts += committed
            self._executed += committed
            did_commit = True
            if self.taint is not None:
                self.taint.on_region_commit(self._executed,
                                            boundary.start_seq)
            # A freed checkpoint lets a paused ahead strand resume (the
            # next replay region will re-evaluate its protection).
            if self._replay_no_boundary:
                self._replay_no_boundary = False
                if self._ahead_block == "replay":
                    self._ahead_block = None
        if did_commit:
            # Committing drained state the replay memo may have seen.
            self._replay_stall = None

        # Full commit: everything resolved.
        if self.dq:
            if time_blocked:
                # A region commit is still waiting on producer
                # completions — recheck at the earliest one.
                pending = self._min_outstanding(cycle)
                self._commit_stall = (pending if pending is not None
                                      else _NO_WAKE)
            else:
                # Blocked on unreplayed entries: only replay-strand
                # progress (which invalidates the memo) can change
                # that, never time alone.
                self._commit_stall = _NO_WAKE
            return
        pending = self._min_outstanding(cycle)
        if pending is not None:
            # Recheck no earlier than the first producer completion.
            self._commit_stall = pending
            return
        spec = self.spec
        if spec is None:
            return
        for reg, producer in list(spec.na_producer.items()):
            ready = self._producer_ready.get(producer)
            if ready is None:
                raise SimulatorInvariantError(
                    f"NA register r{reg} with unknown producer {producer}"
                )
            spec.values[reg] = self._slice_values[producer]
            spec.ready[reg] = max(spec.ready[reg], ready)
            del spec.na_producer[reg]
        self.state.regs = list(spec.values)
        self._drain_stores(self.sb.drain_all(), cycle)
        oldest = self.checkpoints.oldest()
        committed = self._seq - oldest.start_seq
        self.stats.committed_spec_insts += committed
        self._executed += committed
        self.stats.full_commits += 1
        self._pc = self._ahead_pc
        if self.sanitizer is not None:
            self.sanitizer.on_commit(self._executed, self.state.regs,
                                     self.state.memory, self._pc, cycle)
        self._reg_ready = list(spec.ready)
        self._cycle = max(self._cycle, cycle)
        self._slots = 0
        self._teardown_episode()

    # ==================================================================
    # The speculative cycle loop.
    # ==================================================================

    def _speculative_loop(self, budget: int,
                          until: Optional[int] = None) -> None:
        """The episode cycle loop.

        This is the simulator's hottest code: it runs once per
        speculative cycle for the whole episode.  Wake-up candidates are
        folded into a single scalar as they appear (instead of building
        a per-cycle list) and hot attributes are hoisted into locals.
        """
        width = self.config.width
        stats = self.stats
        try_commits = self._try_commits
        try_replay_issue = self._try_replay_issue
        try_ahead_issue = self._try_ahead_issue
        while self.mode is not ExecMode.NORMAL:
            if until is not None and self._cycle >= until:
                return
            cycle = self._cycle
            # Earliest future event that could unblock issue this
            # episode; None until one is seen.
            wake_min: Optional[int] = None

            if self.mode is ExecMode.SCOUT:
                if cycle >= self._scout_end:
                    self._rollback(cycle, cause=None)
                    return
                wake_min = self._scout_end

            try_commits(cycle)
            if self.mode is ExecMode.NORMAL:
                return

            budget_left = width
            issued_replay = 0
            issued_ahead = 0

            # ---- replay strand (priority) ----------------------------
            if self.mode is not ExecMode.SCOUT:
                while budget_left > 0:
                    status, wake = try_replay_issue(cycle)
                    if status is _ISSUED:
                        issued_replay += 1
                        budget_left -= 1
                        if self.mode is ExecMode.NORMAL:
                            return  # rollback mid-replay
                        continue
                    if wake is not None and wake > cycle and (
                            wake_min is None or wake < wake_min):
                        wake_min = wake
                    break
                try_commits(cycle)
                if self.mode is ExecMode.NORMAL:
                    return

            # ---- ahead strand ----------------------------------------
            while budget_left > 0:
                self._check_budget(
                    stats.normal_insts + stats.ahead_insts, budget
                )
                status, wake = try_ahead_issue(cycle)
                if status is _ISSUED:
                    issued_ahead += 1
                    budget_left -= 1
                    continue
                if status is _RETRY:
                    continue
                if wake is not None and wake > cycle and (
                        wake_min is None or wake < wake_min):
                    wake_min = wake
                break

            try_commits(cycle)
            if self.mode is ExecMode.NORMAL:
                return

            # ---- classify this cycle for the mode breakdown ----------
            self._classify_mode(issued_replay, issued_ahead)

            # ---- advance time ----------------------------------------
            if issued_replay or issued_ahead:
                next_cycle = cycle + 1
            else:
                outstanding = self._min_outstanding(cycle)
                if outstanding is not None and (
                        wake_min is None or outstanding < wake_min):
                    wake_min = outstanding
                if wake_min is None:
                    raise SimulatorInvariantError(
                        f"speculative deadlock at cycle {cycle} "
                        f"(mode={self.mode}, block={self._ahead_block})"
                    )
                next_cycle = wake_min
            # The uncapped wake target is the multicore fast-forward
            # hint: nothing on this core can happen before it.
            self._next_event = next_cycle
            if until is not None:
                # Bounded-skew interleaving: never run past the quantum.
                next_cycle = min(next_cycle, until)
            perf = self.perf
            if cycle != self._perf_stepped_cycle:
                self._perf_stepped_cycle = cycle
                perf.cycles_stepped += 1
            if next_cycle > cycle + 1:
                skipped = next_cycle - cycle - 1
                perf.cycles_skipped += skipped
                perf.fast_forwards += 1
                stalls = perf.stall_cycles
                stalls["spec_wait"] = stalls.get("spec_wait", 0) + skipped
            self._account_mode_cycles(next_cycle)
            self._cycle = next_cycle

    def _classify_mode(self, issued_replay: int, issued_ahead: int) -> None:
        if self.mode is ExecMode.SCOUT:
            return
        if issued_replay and issued_ahead:
            mode = ExecMode.SST
        elif issued_replay:
            mode = (ExecMode.REPLAY_ONLY if self._replay_no_boundary
                    else ExecMode.SST)
        elif self._replay_no_boundary:
            mode = ExecMode.REPLAY_ONLY
        else:
            mode = ExecMode.EXECUTE_AHEAD
        if mode is not self.mode:
            self.mode = mode
            self._mode_key = _MODE_KEY[mode]

    # ==================================================================
    # Replay strand.
    # ==================================================================

    def _try_replay_issue(self, cycle: int) -> Tuple[str, Optional[int]]:
        """Pick the oldest *ready* DQ entry and replay it.

        ROCK re-defers not-ready entries rather than stalling the
        replay strand behind them, so a dependent miss inside the
        deferred slice does not serialise the replay of unrelated
        entries.  Memory order is preserved by construction: a load is
        only eligible when no older unresolved store could alias it,
        and an entry's producers are always older and therefore
        eligible before it.

        A fruitless scan is memoized (``_replay_stall``): an entry's
        eligibility changes only with time (producer ready times, which
        the scan's wake minimum captures exactly) or with a DQ / slice
        / store-buffer mutation, all of which clear the memo.  The
        repeated full-queue scans this avoids were the single hottest
        path in the simulator.
        """
        dq = self.dq
        if not dq:
            return _BLOCKED, None
        stall = self._replay_stall
        if stall is not None:
            if stall > cycle:
                return _BLOCKED, (stall if stall != _NO_WAKE else None)
            self._replay_stall = None

        slice_values = self._slice_values
        producer_ready = self._producer_ready
        blocks_load = self.sb.unresolved.blocks_load
        selected: Optional[DQEntry] = None
        wake: Optional[int] = None
        for entry in dq:
            # Cycle at which the entry's captured producers are all
            # done (inlined: this loop dominates episode time).
            ready = cycle
            producer = entry.rs1_producer
            if producer is not None:
                if producer not in slice_values:
                    continue  # producer itself still queued
                r = producer_ready[producer]
                if r > ready:
                    ready = r
            producer = entry.rs2_producer
            if producer is not None:
                if producer not in slice_values:
                    continue
                r = producer_ready[producer]
                if r > ready:
                    ready = r
            if ready > cycle:
                if wake is None or ready < wake:
                    wake = ready
                continue
            if entry.inst.is_load:
                base = (entry.rs1_value if entry.rs1_producer is None
                        else slice_values[entry.rs1_producer])
                addr = effective_address(base or 0, entry.inst.imm)
                if blocks_load(addr, entry.seq, conservative=True):
                    continue  # the blocking store replays first
            selected = entry
            break
        if selected is None:
            self._replay_stall = wake if wake is not None else _NO_WAKE
            return _BLOCKED, wake

        # Permission: a boundary checkpoint must protect the ahead
        # strand, or the ahead strand must pause (execute-ahead).
        protected = self.checkpoints.boundary_above(selected.seq) is not None
        if not protected:
            if self.checkpoints.has_free:
                spec = self.spec
                assert spec is not None
                self.checkpoints.take(
                    Checkpoint(start_seq=self._seq, pc=self._ahead_pc,
                               regs=spec.snapshot(), taken_cycle=cycle),
                    boundary=True,
                )
                if self.sanitizer is not None:
                    self.sanitizer.on_checkpoint(self.checkpoints, cycle)
            else:
                self._replay_no_boundary = True
                if self._ahead_block is None:
                    self._ahead_block = "replay"

        if self.sanitizer is not None:
            self.sanitizer.on_replay(selected, self.checkpoints, cycle)
        if self.taint is not None:
            self.taint.on_replay(selected, cycle)
        self.dq.remove(selected)
        self._execute_replay(selected, cycle)
        self.stats.replay_insts += 1
        return _ISSUED, None

    def _replay_operands(self, entry: DQEntry) -> Tuple[int, int]:
        if entry.rs1_producer is not None:
            a = self._slice_values[entry.rs1_producer]
        else:
            a = entry.rs1_value if entry.rs1_value is not None else 0
        if entry.rs2_producer is not None:
            b = self._slice_values[entry.rs2_producer]
        else:
            b = entry.rs2_value if entry.rs2_value is not None else 0
        return a, b

    def _execute_replay(self, entry: DQEntry, cycle: int) -> None:
        spec = self.spec
        assert spec is not None
        inst = entry.inst
        cls = inst.op_class
        a, b = self._replay_operands(entry)
        latencies = self.config.latencies
        # Replay progress changes DQ/slice/SB state: drop the memos.
        self._replay_stall = None
        self._commit_stall = None

        if cls in (OpClass.ALU, OpClass.MUL, OpClass.DIV):
            fn = inst.alu_fn
            value = fn(a, inst.imm) if inst.alu_uses_imm else fn(a, b)
            complete = cycle + self.op_latency(cls, latencies)
            self._slice_values[entry.seq] = value
            self._producer_ready[entry.seq] = complete
            heappush(self._pending_heap, (complete, entry.seq))
            spec.apply_replayed(inst.rd, value, entry.seq, complete)
        elif cls is OpClass.LOAD:
            addr = effective_address(a, inst.imm)
            forwarded = self.sb.forward(addr, entry.seq)
            if forwarded is not None:
                value = forwarded[0]
                complete = cycle + FORWARD_LATENCY
            else:
                value = self.state.memory.read(addr)
                result = self.hierarchy.data_access(
                    addr, cycle, AccessType.LOAD, pc=entry.pc
                )
                complete = result.ready_cycle
                if self._defer_triggering(result):
                    self.stats.deferred_loads_missed_again += 1
            self._slice_values[entry.seq] = value
            self._producer_ready[entry.seq] = complete
            heappush(self._pending_heap, (complete, entry.seq))
            spec.apply_replayed(inst.rd, value, entry.seq, complete)
        elif cls is OpClass.STORE:
            addr = effective_address(a, inst.imm)
            if entry.order_defer:
                # Deferred only for ordering; it already has a resolved
                # SB entry?  No — order-deferred *stores* do not exist;
                # stores always resolve through the SB placeholder.
                raise SimulatorInvariantError("order-deferred store")
            self.sb.resolve(entry.seq, addr, b)
            if self._check_order_violation(entry.seq, addr):
                self._rollback(cycle, FailCause.MEMORY_ORDER_VIOLATION)
                return
        elif cls is OpClass.BRANCH:
            actual = inst.branch_fn(a, b)
            assert entry.predicted_taken is not None
            mispredicted = self.branch_unit.resolve_deferred_cond(
                entry.pc, entry.predicted_taken, actual
            )
            if mispredicted:
                self._rollback(cycle, FailCause.DEFERRED_BRANCH_MISPREDICT)
                return
        elif cls is OpClass.JUMP_INDIRECT:
            target = effective_address(a, inst.imm)
            self._check_pc(target)
            if entry.predicted_target is None:
                # The ahead strand stalled at this jump; resume it.
                self._ahead_pc = target
                if self._ahead_block == "jump_na":
                    self._ahead_block = None
                self._ahead_barrier = max(
                    self._ahead_barrier,
                    cycle + self.branch_unit.mispredict_penalty,
                )
                self.branch_unit.resolve_deferred_indirect(
                    entry.pc, None, target, is_return=self.is_return(inst)
                )
            else:
                mispredicted = self.branch_unit.resolve_deferred_indirect(
                    entry.pc, entry.predicted_target, target,
                    is_return=self.is_return(inst),
                )
                if mispredicted:
                    self._rollback(cycle, FailCause.DEFERRED_JUMP_MISPREDICT)
                    return
        else:  # pragma: no cover - nothing else is deferrable
            raise SimulatorInvariantError(f"undeferred class {cls} in DQ")

    def _check_order_violation(self, store_seq: int, store_addr: int) -> bool:
        """Did a younger speculative load miss this store's data?"""
        for load_seq, load_addr, src_seq in self._spec_loads:
            if (load_seq > store_seq and load_addr == store_addr
                    and src_seq < store_seq):
                return True
        return False

    # ==================================================================
    # Ahead strand.
    # ==================================================================

    def _try_ahead_issue(self, cycle: int) -> Tuple[str, Optional[int]]:
        if self._ahead_block is not None:
            return self._handle_block(cycle)
        if cycle < self._ahead_barrier:
            return _BLOCKED, self._ahead_barrier
        spec = self.spec
        assert spec is not None
        pc = self._ahead_pc
        if not 0 <= pc < len(self.program.instructions):
            # Only reachable down a predicted wrong path: park until the
            # mispredicted deferred branch rolls the episode back.
            self._ahead_block = "fault"
            return _BLOCKED, None
        inst = self.program.instructions[pc]
        cls = inst.op_class

        if cls is OpClass.HALT:
            if self.mode is ExecMode.SCOUT:
                self._ahead_block = "fault"  # park until scout ends
                return _BLOCKED, None
            self._ahead_block = "halt"
            return _BLOCKED, None
        if cls is OpClass.BARRIER:
            if self.mode is ExecMode.SCOUT:
                self._ahead_pc += 1  # scout discards ordering anyway
                return self._consume_slot(cycle)
            self._ahead_block = "membar"
            return _BLOCKED, None

        sources = inst.sources
        # Common case: nothing is NA at all, so no source can be —
        # skip the per-source membership scan entirely.
        na_producer = spec.na_producer
        if na_producer:
            na_sources = [src for src in sources if src in na_producer]
        else:
            na_sources = []

        if self.mode is ExecMode.SCOUT:
            return self._scout_issue(inst, pc, cycle, na_sources)

        if na_sources:
            return self._defer_issue(inst, pc, cycle)

        # All operands available: classic stall-on-use timing.
        wake = cycle
        ready = spec.ready
        for src in sources:
            if ready[src] > wake:
                wake = ready[src]
        if wake > cycle:
            return _BLOCKED, wake
        return self._ahead_execute(inst, pc, cycle)

    def _handle_block(self, cycle: int) -> Tuple[str, Optional[int]]:
        block = self._ahead_block
        if block == "dq_full" and not self.dq.full and not self._replay_no_boundary:
            self._ahead_block = None
            return _RETRY, None
        if block == "sb_full" and not self.sb.full and not self._replay_no_boundary:
            self._ahead_block = None
            return _RETRY, None
        return _BLOCKED, None

    def _consume_slot(self, cycle: int) -> Tuple[str, Optional[int]]:
        self._seq += 1
        self.stats.ahead_insts += 1
        return _ISSUED, None

    def _capture(self, inst, spec) -> Tuple[Optional[int], Optional[int],
                                            Optional[int], Optional[int]]:
        """Capture rs1/rs2 as values or producer seqs for a DQ entry.

        Returns ``(rs1_value, rs1_producer, rs2_value, rs2_producer)``
        directly (no per-defer dict allocation on the hot path).
        """
        rs1_value = rs1_producer = rs2_value = rs2_producer = None
        if inst.reads_rs1:
            rs1_producer = spec.producer_of(inst.rs1)
            if rs1_producer is None:
                rs1_value = spec.read(inst.rs1)
        if inst.reads_rs2:
            rs2_producer = spec.producer_of(inst.rs2)
            if rs2_producer is None:
                rs2_value = spec.read(inst.rs2)
        return rs1_value, rs1_producer, rs2_value, rs2_producer

    def _defer_issue(self, inst, pc: int, cycle: int,
                     order_defer: bool = False) -> Tuple[str, Optional[int]]:
        """Park the instruction in the DQ (NA operand or memory order)."""
        spec = self.spec
        assert spec is not None
        cls = inst.op_class
        seq = self._seq

        if cls is OpClass.PREFETCH:
            # A prefetch with an NA address is useless; drop it.
            self._ahead_pc = pc + 1
            return self._consume_slot(cycle)

        rs1_value, rs1_producer, rs2_value, rs2_producer = \
            self._capture(inst, spec)
        entry = DQEntry(seq=seq, pc=pc, inst=inst,
                        rs1_value=rs1_value, rs1_producer=rs1_producer,
                        rs2_value=rs2_value, rs2_producer=rs2_producer,
                        order_defer=order_defer)
        next_pc = pc + 1

        if cls is OpClass.BRANCH:
            entry.predicted_taken = self.branch_unit.predict_cond(pc)
            next_pc = inst.target if entry.predicted_taken else pc + 1
            self.stats.deferred_branches += 1
        elif cls is OpClass.JUMP_INDIRECT:
            entry.predicted_target = self.branch_unit.predict_indirect(
                pc, is_return=self.is_return(inst)
            )
            if entry.predicted_target is not None and not (
                    0 <= entry.predicted_target < len(self.program)):
                entry.predicted_target = None
            self.stats.deferred_jumps += 1

        if cls is OpClass.STORE:
            spec_addr = None
            if entry.rs1_producer is None and entry.rs1_value is not None:
                spec_addr = effective_address(entry.rs1_value, inst.imm)
            if self.sb.full:
                return self._exhausted("sb_full", ScoutCause.SB_FULL)
            if self.dq.full:
                return self._exhausted("dq_full", ScoutCause.DQ_FULL)
            self.sb.append_unresolved(seq, spec_addr)
            self.dq.append(entry)
        else:
            if not self.dq.append(entry):
                return self._exhausted("dq_full", ScoutCause.DQ_FULL)
        sanitizer = self.sanitizer
        if sanitizer is not None:
            sanitizer.on_defer(entry, self.checkpoints, self.dq, cycle)
            if cls is OpClass.STORE:
                sanitizer.on_spec_store(self.sb, cycle)
        if self.taint is not None:
            # Before write_na below, so captured-operand taints read the
            # pre-issue register state.
            self.taint.on_defer(entry)
        # A new DQ entry (and possibly a new unresolved store) changes
        # what the replay strand can issue.
        self._replay_stall = None

        self.stats.deferred += 1
        if order_defer:
            self.stats.order_deferred += 1
        if inst.writes_reg:
            if cls is OpClass.JUMP_INDIRECT:
                # The link value is known even when the target is not.
                spec.write_available(inst.rd, pc + 1, seq, cycle + 1)
            else:
                spec.write_na(inst.rd, seq)
                # Placeholder: replay fills the real completion time.
                # In-order replay guarantees nothing reads it earlier.
                self._producer_ready[seq] = 0

        if cls is OpClass.JUMP_INDIRECT and entry.predicted_target is None:
            self._ahead_block = "jump_na"
            self._seq += 1
            self.stats.ahead_insts += 1
            return _ISSUED, None

        if cls is OpClass.JUMP_INDIRECT:
            next_pc = entry.predicted_target

        self._ahead_pc = next_pc
        return self._consume_slot(cycle)

    def _exhausted(self, block: str,
                   cause: ScoutCause) -> Tuple[str, Optional[int]]:
        if self.config.scout_enabled:
            self._enter_scout(cause)
            return _RETRY, None
        self._ahead_block = block
        return _BLOCKED, None

    def _ahead_execute(self, inst, pc: int,
                       cycle: int) -> Tuple[str, Optional[int]]:
        """Speculatively execute an available-operand instruction."""
        spec = self.spec
        assert spec is not None
        cls = inst.op_class
        op = inst.op
        latencies = self.config.latencies
        seq = self._seq
        next_pc = pc + 1

        if self.taint is not None:
            # Pre-dispatch (rd may alias a source register); the tracker
            # mirrors every early-return guard below so it only records
            # accesses that really reach the hierarchy.
            self.taint.on_ahead(inst, pc, seq, cycle)

        if cls in (OpClass.ALU, OpClass.MUL, OpClass.DIV):
            a = spec.read(inst.rs1)
            fn = inst.alu_fn
            value = (fn(a, inst.imm) if inst.alu_uses_imm
                     else fn(a, spec.read(inst.rs2)))
            latency = self.op_latency(cls, latencies)
            if cls is OpClass.DIV and self.config.defer_long_ops:
                spec.write_na(inst.rd, seq)
                self._slice_values[seq] = value
                self._producer_ready[seq] = cycle + latency
                heappush(self._pending_heap, (cycle + latency, seq))
            else:
                spec.write_available(inst.rd, value, seq, cycle + latency)
        elif cls is OpClass.LOAD:
            base = spec.read(inst.rs1)
            addr = effective_address(base, inst.imm)
            if addr % 8 != 0:
                self._ahead_block = "fault"
                return _BLOCKED, None
            conservative = not self.config.bypass_unresolved_stores
            if self.sb.unresolved.blocks_load(addr, seq, conservative):
                return self._defer_issue(inst, pc, cycle, order_defer=True)
            forwarded = self.sb.forward(addr, seq)
            if self.config.bypass_unresolved_stores and (
                    self.sb.unresolved.any_below(seq)):
                src = forwarded[1] if forwarded is not None else -1
                self._spec_loads.append((seq, addr, src))
            if forwarded is not None:
                spec.write_available(
                    inst.rd, forwarded[0], seq, cycle + FORWARD_LATENCY
                )
            else:
                value = self.state.memory.read(addr)
                result = self.hierarchy.data_access(
                    addr, cycle, AccessType.LOAD, pc=pc
                )
                if self._defer_triggering(result):
                    spec.write_na(inst.rd, seq)
                    self._slice_values[seq] = value
                    self._producer_ready[seq] = result.ready_cycle
                    heappush(self._pending_heap, (result.ready_cycle, seq))
                    outstanding = self._count_outstanding(cycle)
                    if outstanding > self.stats.peak_outstanding_misses:
                        self.stats.peak_outstanding_misses = outstanding
                else:
                    spec.write_available(
                        inst.rd, value, seq, result.ready_cycle
                    )
        elif cls is OpClass.STORE:
            base = spec.read(inst.rs1)
            addr = effective_address(base, inst.imm)
            if addr % 8 != 0:
                self._ahead_block = "fault"
                return _BLOCKED, None
            if not self.sb.append_resolved(seq, addr, spec.read(inst.rs2)):
                return self._exhausted("sb_full", ScoutCause.SB_FULL)
        elif cls is OpClass.PREFETCH:
            addr = effective_address(spec.read(inst.rs1), inst.imm)
            if addr % 8 == 0:
                self.hierarchy.prefetch(addr, cycle)
        elif cls is OpClass.BRANCH:
            taken = inst.branch_fn(spec.read(inst.rs1), spec.read(inst.rs2))
            mispredicted = self.branch_unit.resolve_cond(pc, taken)
            if taken:
                next_pc = inst.target
            if mispredicted:
                self._ahead_barrier = max(
                    self._ahead_barrier,
                    cycle + latencies.alu + self.branch_unit.mispredict_penalty,
                )
        elif op is Op.JAL:
            spec.write_available(inst.rd, pc + 1, seq, cycle + 1)
            if self.is_call(inst):
                self.branch_unit.push_return(pc + 1)
            next_pc = inst.target
        elif op is Op.JALR:
            target = effective_address(spec.read(inst.rs1), inst.imm)
            if not 0 <= target < len(self.program):
                self._ahead_block = "fault"
                return _BLOCKED, None
            mispredicted = self.branch_unit.resolve_indirect(
                pc, target, is_return=self.is_return(inst)
            )
            spec.write_available(inst.rd, pc + 1, seq, cycle + 1)
            if self.is_call(inst):
                self.branch_unit.push_return(pc + 1)
            next_pc = target
            if mispredicted:
                self._ahead_barrier = max(
                    self._ahead_barrier,
                    cycle + latencies.alu + self.branch_unit.mispredict_penalty,
                )
        # NOP: nothing.

        self._ahead_pc = next_pc
        return self._consume_slot(cycle)

    # ==================================================================
    # Scout mode (prefetch-only run-ahead).
    # ==================================================================

    def _scout_issue(self, inst, pc: int, cycle: int,
                     na_sources) -> Tuple[str, Optional[int]]:
        spec = self.spec
        assert spec is not None
        cls = inst.op_class
        op = inst.op
        seq = self._seq
        next_pc = pc + 1

        if na_sources:
            if self.taint is not None:
                # Pre-write: result taint from the available sources
                # only (an NA placeholder's taint is unknowable).
                self.taint.on_scout_na(inst, seq)
            if cls is OpClass.BRANCH:
                predicted = self.branch_unit.predict_cond(pc)
                next_pc = inst.target if predicted else pc + 1
            elif op is Op.JALR:
                predicted = self.branch_unit.predict_indirect(
                    pc, is_return=self.is_return(inst)
                )
                if predicted is None or not 0 <= predicted < len(self.program):
                    self._ahead_block = "fault"  # park until scout ends
                    return _BLOCKED, None
                spec.write_available(inst.rd, pc + 1, seq, cycle + 1)
                next_pc = predicted
            elif inst.writes_reg:
                spec.write_na(inst.rd, seq)
                if seq not in self._producer_ready:
                    self._producer_ready[seq] = self._scout_end
                    heappush(self._pending_heap, (self._scout_end, seq))
                self._slice_values.setdefault(seq, 0)
            self._ahead_pc = next_pc
            return self._consume_slot(cycle)

        # Operands available: stall-on-use still applies in scout.
        wake = cycle
        for src in inst.sources:
            if spec.ready[src] > wake:
                wake = spec.ready[src]
        if wake > cycle:
            return _BLOCKED, wake

        if self.taint is not None:
            # Pre-dispatch, mirroring the fault guards below; scout
            # accesses always squash, so tainted ones record directly.
            self.taint.on_scout(inst, pc, seq, cycle)

        if cls in (OpClass.ALU, OpClass.MUL, OpClass.DIV):
            a = spec.read(inst.rs1)
            fn = inst.alu_fn
            value = (fn(a, inst.imm) if inst.alu_uses_imm
                     else fn(a, spec.read(inst.rs2)))
            latency = self.op_latency(cls, self.config.latencies)
            spec.write_available(inst.rd, value, seq, cycle + latency)
        elif cls is OpClass.LOAD:
            addr = effective_address(spec.read(inst.rs1), inst.imm)
            if addr % 8 != 0:
                self._ahead_block = "fault"
                return _BLOCKED, None
            result = self.hierarchy.prefetch(addr, cycle)
            self.stats.scout_prefetches += 1
            if addr in self._scout_stores:
                value = self._scout_stores[addr]
            else:
                forwarded = self.sb.forward(addr, seq)
                value = (forwarded[0] if forwarded is not None
                         else self.state.memory.read(addr))
            if self._defer_triggering(result):
                spec.write_na(inst.rd, seq)
                if seq not in self._producer_ready:
                    self._producer_ready[seq] = result.ready_cycle
                    heappush(self._pending_heap, (result.ready_cycle, seq))
                self._slice_values.setdefault(seq, value)
            else:
                spec.write_available(inst.rd, value, seq, result.ready_cycle)
        elif cls is OpClass.STORE:
            addr = effective_address(spec.read(inst.rs1), inst.imm)
            if addr % 8 != 0:
                self._ahead_block = "fault"
                return _BLOCKED, None
            # Prefetch the line for ownership; the value is discarded at
            # rollback but kept locally so later scout loads see it.
            self.hierarchy.prefetch(addr, cycle)
            self.stats.scout_prefetches += 1
            self._scout_stores[addr] = spec.read(inst.rs2)
        elif cls is OpClass.PREFETCH:
            addr = effective_address(spec.read(inst.rs1), inst.imm)
            if addr % 8 == 0:
                self.hierarchy.prefetch(addr, cycle)
        elif cls is OpClass.BRANCH:
            taken = inst.branch_fn(spec.read(inst.rs1), spec.read(inst.rs2))
            self.branch_unit.resolve_cond(pc, taken)
            if taken:
                next_pc = inst.target
        elif op is Op.JAL:
            spec.write_available(inst.rd, pc + 1, seq, cycle + 1)
            if self.is_call(inst):
                self.branch_unit.push_return(pc + 1)
            next_pc = inst.target
        elif op is Op.JALR:
            target = effective_address(spec.read(inst.rs1), inst.imm)
            if not 0 <= target < len(self.program):
                self._ahead_block = "fault"
                return _BLOCKED, None
            self.branch_unit.resolve_indirect(
                pc, target, is_return=self.is_return(inst)
            )
            spec.write_available(inst.rd, pc + 1, seq, cycle + 1)
            if self.is_call(inst):
                self.branch_unit.push_return(pc + 1)
            next_pc = target

        self._ahead_pc = next_pc
        return self._consume_slot(cycle)
