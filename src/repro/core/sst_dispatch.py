"""Generated-Python specializer for the SST speculative cycle loop.

:meth:`SSTCore._speculative_loop` is the simulator's hottest code: one
iteration per stepped speculative cycle, several helper calls per
issued instruction (`_try_ahead_issue`, `_consume_slot`,
`_account_mode_cycles`, `_classify_mode`, the `_try_commits` /
`_try_replay_issue` memo probes).  At ~8 Python calls per instruction
the call overhead, not the modelling, bounds throughput.

This module emits a specialized copy of that loop as Python source and
``exec``-compiles it once per configuration signature:

* configuration-invariant branches (scout enabled?  long-op deferral?
  store bypass?  defer trigger level?) are pruned at generation time;
* width, latencies and the mispredict penalty are baked in as integer
  literals;
* the ahead-strand fast paths (ALU, load, store, branch, jumps, and
  the scout equivalents), slot consumption, mode classification and
  mode-cycle accounting are inlined — instruction decode reads the
  block cache's flat rows (:mod:`repro.isa.blockcache`);
* the memo fast-paths of the replay scan and commit check are inlined
  so blocked strands cost two attribute reads per cycle, while the
  *slow* paths stay ordinary method calls on the core — rollback,
  region/full commit, deferral and replay semantics live in exactly
  one place (:mod:`repro.core.sst_core`).

The reference loop is kept, bit-identical, and is what runs when
``REPRO_BLOCK_DISPATCH=0`` or when the sanitizer is attached; the
differential tests drive both paths over every machine and workload.

Mutable scalar state (``_seq``, ``_ahead_pc``, ``_cycle``, the memo
words...) stays on the core object so the inlined fast paths and the
cold methods can never diverge; only objects that are stable for the
lifetime of one loop invocation (stats, the speculative register file
arrays, the episode dicts, bound methods) are hoisted into locals.
An episode's containers are replaced only by ``_begin_episode`` /
``_teardown_episode``, and every teardown path returns from the loop
before the locals could go stale.
"""

from __future__ import annotations

from heapq import heappush
from typing import Callable, Dict, Tuple

from repro.config import DeferTrigger, SSTConfig
from repro.core.modes import ExecMode, ScoutCause
from repro.errors import SimulatorInvariantError
from repro.memory.request import AccessType, HitLevel

_M = "0xFFFFFFFFFFFFFFFF"


def _triggering(flag_tlb: bool, flag_l1: bool, result: str) -> str:
    """The `_defer_triggering` predicate as a pruned expression."""
    if flag_l1:
        level = f"{result}.level is not L1"
    else:
        level = (f"({result}.level is DRAM or "
                 f"{result}.level is MERGE_L2)")
    if flag_tlb:
        return f"({result}.tlb_miss or {level})"
    return f"({level})"


def _write_available(pad: str, value: str, ready: str,
                     reg: str = "rd", seq: str = "seq") -> str:
    """Inlined SpeculativeRegisters.write_available (zero-reg guarded)."""
    return (
        f"{pad}if {reg}:\n"
        f"{pad}    spec_values[{reg}] = {value}\n"
        f"{pad}    na_producer.pop({reg}, None)\n"
        f"{pad}    spec_last_writer[{reg}] = {seq}\n"
        f"{pad}    spec_ready[{reg}] = {ready}\n"
    )


def _write_na(pad: str, reg: str = "rd", seq: str = "seq") -> str:
    """Inlined SpeculativeRegisters.write_na (zero-reg guarded)."""
    return (
        f"{pad}if {reg}:\n"
        f"{pad}    na_producer[{reg}] = {seq}\n"
        f"{pad}    spec_last_writer[{reg}] = {seq}\n"
    )


_CONSUME = """\
{pad}ahead_pc = next_pc
{pad}seq += 1
{pad}stats.ahead_insts += 1
{pad}issued_ahead += 1
{pad}budget_left -= 1
{pad}continue
"""

# Shared handling of a _defer_issue / _exhausted style (status, wake)
# result inside the ahead-issue loop.  The method may have moved the
# ahead point (e.g. a deferred indirect jump parks as "jump_na"), so
# the strand-local mirrors are refreshed from the core first.
_DEFER_STATUS = """\
{pad}ahead_pc = core._ahead_pc
{pad}seq = core._seq
{pad}if status is ISSUED:
{pad}    issued_ahead += 1
{pad}    budget_left -= 1
{pad}    continue
{pad}if status is RETRY:
{pad}    continue
{pad}if wake is not None and wake > cycle and (
{pad}        wake_min is None or wake < wake_min):
{pad}    wake_min = wake
{pad}break
"""


def _fast_defer(pad: str, order: bool) -> str:
    """Inlined _defer_issue for plain ALU/long-op/load defers.

    Exactly the method's path for kinds <= K_LOAD when the DQ has
    room: operand capture, DQ append (with its stats/occupancy),
    replay-memo clear, NA destination, slot consumption.  The caller
    guards on DQ room and kind, and no state is mutated before the
    guard, so the fallback to the method is always clean.
    """
    order_stat = f"{pad}stats.order_deferred += 1\n" if order else ""
    return (
        f"{pad}rs1_value = rs1_producer = rs2_value = rs2_producer = None\n"
        f"{pad}if inst.reads_rs1:\n"
        f"{pad}    rs1_producer = na_producer.get(rs1)\n"
        f"{pad}    if rs1_producer is None:\n"
        f"{pad}        rs1_value = spec_values[rs1]\n"
        f"{pad}if inst.reads_rs2:\n"
        f"{pad}    rs2_producer = na_producer.get(rs2)\n"
        f"{pad}    if rs2_producer is None:\n"
        f"{pad}        rs2_value = spec_values[rs2]\n"
        f"{pad}dq_entries.append(DQEntry(\n"
        f"{pad}    seq=seq, pc=pc, inst=inst,\n"
        f"{pad}    rs1_value=rs1_value, rs1_producer=rs1_producer,\n"
        f"{pad}    rs2_value=rs2_value, rs2_producer=rs2_producer,\n"
        f"{pad}    order_defer={order}))\n"
        f"{pad}dq_stats.deferred += 1\n"
        f"{pad}dq_occ_add(len(dq_entries))\n"
        f"{pad}core._replay_stall = None\n"
        f"{pad}stats.deferred += 1\n"
        f"{order_stat}"
        f"{pad}if writes_reg:\n"
        f"{pad}    if rd:\n"
        f"{pad}        na_producer[rd] = seq\n"
        f"{pad}        spec_last_writer[rd] = seq\n"
        f"{pad}    producer_ready[seq] = 0\n"
        f"{pad}ahead_pc = pc + 1\n"
        f"{pad}seq += 1\n"
        f"{pad}stats.ahead_insts += 1\n"
        f"{pad}issued_ahead += 1\n"
        f"{pad}budget_left -= 1\n"
        f"{pad}continue\n"
    )


def _build_source(width: int, scout_possible: bool, scout_enabled: bool,
                  defer_long_ops: bool, bypass: bool, defer_tlb: bool,
                  defer_l1: bool, lat_alu: int, lat_mul: int, lat_div: int,
                  penalty: int) -> str:
    trig = _triggering(defer_tlb, defer_l1, "result")
    conservative = "False" if bypass else "True"
    out = []
    emit = out.append

    emit(f"""\
def _sst_spec_loop(core, budget, until):
    stats = core.stats
    mode_cycles = stats.mode_cycles
    perf = core.perf
    spec = core.spec
    if spec is None:
        return
    spec_values = spec.values
    spec_ready = spec.ready
    spec_last_writer = spec.last_writer
    na_producer = spec.na_producer
    slice_values = core._slice_values
    producer_ready = core._producer_ready
    pending_heap = core._pending_heap
    scout_stores = core._scout_stores
    dq = core.dq
    sb = core.sb
    blocks_load = sb.unresolved.blocks_load
    any_below = sb.unresolved.any_below
    sb_forward = sb.forward
    sb_append_resolved = sb.append_resolved
    mem_read = core.state.memory.read
    data_access = core.hierarchy.data_access
    do_prefetch = core.hierarchy.prefetch
    branch_unit = core.branch_unit
    resolve_cond = branch_unit.resolve_cond
    resolve_indirect = branch_unit.resolve_indirect
    predict_cond = branch_unit.predict_cond
    predict_indirect = branch_unit.predict_indirect
    push_return = branch_unit.push_return
    is_call = core.is_call
    is_return = core.is_return
    try_commits = core._try_commits
    try_replay_issue = core._try_replay_issue
    check_budget = core._check_budget
    min_outstanding = core._min_outstanding
    defer_issue = core._defer_issue
    dq_capacity = dq.capacity
    dq_stats = dq.stats
    dq_occ_add = dq.occupancy.add
    rows = core._rows
    n_insts = len(rows)
    # In-place containers (cleared, never rebound): safe to localize.
    dq_entries = dq._entries
    ckpt_live = core.checkpoints._live
    # normal_insts cannot change while an episode is live, so the
    # ahead-strand budget check reduces to one counter read.
    ahead_limit = budget - stats.normal_insts
    while True:
        mode = core.mode
        if mode is NORMAL:
            return
        if until is not None and core._cycle >= until:
            return
        cycle = core._cycle
        wake_min = None
""")
    if scout_possible:
        emit("""\
        if mode is SCOUT:
            if cycle >= core._scout_end:
                core._rollback(cycle, None)
                return
            wake_min = core._scout_end
""")
    # The commit-guard precheck is exact: with fewer than two live
    # checkpoints and a non-empty DQ, _try_commits provably does
    # nothing but set the memo to _NO_WAKE (no region candidate, full
    # commit blocked on unreplayed entries).
    emit("""\
        stall = core._commit_stall
        if stall is None or cycle >= stall:
            if len(ckpt_live) >= 2 or not dq_entries:
                try_commits(cycle)
                if core.mode is NORMAL:
                    return
            else:
                core._commit_stall = NO_WAKE
""")
    emit(f"""\
        budget_left = {width}
        issued_replay = 0
        issued_ahead = 0
""")
    # ---- replay strand --------------------------------------------------
    guard = "if mode is not SCOUT:" if scout_possible else "if True:"
    emit(f"""\
        {guard}
            while budget_left > 0:
                if not dq_entries:
                    break
                stall = core._replay_stall
                if stall is not None and stall > cycle:
                    if stall != NO_WAKE and (
                            wake_min is None or stall < wake_min):
                        wake_min = stall
                    break
                status, wake = try_replay_issue(cycle)
                if status is ISSUED:
                    issued_replay += 1
                    budget_left -= 1
                    if core.mode is NORMAL:
                        return
                    continue
                if wake is not None and wake > cycle and (
                        wake_min is None or wake < wake_min):
                    wake_min = wake
                break
            stall = core._commit_stall
            if stall is None or cycle >= stall:
                if len(ckpt_live) >= 2 or not dq_entries:
                    try_commits(cycle)
                    if core.mode is NORMAL:
                        return
                else:
                    core._commit_stall = NO_WAKE
""")
    # ---- ahead strand ---------------------------------------------------
    # The strand's cursor state (ahead PC, sequence counter, redirect
    # barrier) lives in locals for the duration of the inner loop: the
    # replay strand and commits above are the only other writers, and
    # the one method call inside (the defer_issue fallback) syncs both
    # ways around the call.  Written back after the loop, before the
    # commit guard, so every out-of-line reader sees fresh state.
    emit("""\
        barrier = core._ahead_barrier
        ahead_pc = core._ahead_pc
        seq = core._seq
        while budget_left > 0:
            if stats.ahead_insts >= ahead_limit:
                core._ahead_pc = ahead_pc
                core._seq = seq
                check_budget(stats.normal_insts + stats.ahead_insts, budget)
            block = core._ahead_block
            if block is not None:
                if block == "dq_full":
                    if not dq.full and not core._replay_no_boundary:
                        core._ahead_block = None
                        continue
                elif block == "sb_full":
                    if not sb.full and not core._replay_no_boundary:
                        core._ahead_block = None
                        continue
                break
            if cycle < barrier:
                if wake_min is None or barrier < wake_min:
                    wake_min = barrier
                break
            pc = ahead_pc
            if pc < 0 or pc >= n_insts:
                core._ahead_block = "fault"
                break
            (kind, rd, rs1, rs2, imm, target, fn, sources,
             writes_reg, uses_imm, inst) = rows[pc]
""")
    if scout_possible:
        emit("""\
            m = core.mode
            if kind == K_HALT:
                core._ahead_block = "fault" if m is SCOUT else "halt"
                break
            if kind == K_BARRIER:
                if m is SCOUT:
                    ahead_pc = pc + 1
                    seq += 1
                    stats.ahead_insts += 1
                    issued_ahead += 1
                    budget_left -= 1
                    continue
                core._ahead_block = "membar"
                break
""")
    else:
        emit("""\
            if kind == K_HALT:
                core._ahead_block = "halt"
                break
            if kind == K_BARRIER:
                core._ahead_block = "membar"
                break
""")
    emit("""\
            na = False
            if na_producer:
                for src in sources:
                    if src in na_producer:
                        na = True
                        break
""")
    # ---- scout issue (inlined _scout_issue) -----------------------------
    if scout_possible:
        p = " " * 16
        emit(f"""\
            if m is SCOUT:
                next_pc = pc + 1
                if na:
                    if kind == K_BRANCH:
                        if predict_cond(pc):
                            next_pc = target
                    elif kind == K_JUMP_INDIRECT:
                        predicted = predict_indirect(
                            pc, is_return=is_return(inst))
                        if predicted is None or not (
                                0 <= predicted < n_insts):
                            core._ahead_block = "fault"
                            break
{_write_available(p + '        ', 'pc + 1', 'cycle + 1')}\
                        next_pc = predicted
                    elif writes_reg:
{_write_na(p + '        ')}\
                        if seq not in producer_ready:
                            producer_ready[seq] = core._scout_end
                            heappush(pending_heap, (core._scout_end, seq))
                        slice_values.setdefault(seq, 0)
{_CONSUME.format(pad=p + '    ')}\
                wake = cycle
                for src in sources:
                    r = spec_ready[src]
                    if r > wake:
                        wake = r
                if wake > cycle:
                    if wake_min is None or wake < wake_min:
                        wake_min = wake
                    break
                if kind <= K_DIV:
                    a = spec_values[rs1]
                    value = fn(a, imm) if uses_imm else fn(a, spec_values[rs2])
                    latency = ({lat_mul} if kind == K_MUL else
                               {lat_div} if kind == K_DIV else {lat_alu})
{_write_available(p + '    ', 'value', 'cycle + latency')}\
                elif kind == K_LOAD:
                    addr = (spec_values[rs1] + imm) & {_M}
                    if addr % 8 != 0:
                        core._ahead_block = "fault"
                        break
                    result = do_prefetch(addr, cycle)
                    stats.scout_prefetches += 1
                    if addr in scout_stores:
                        value = scout_stores[addr]
                    else:
                        forwarded = sb_forward(addr, seq)
                        value = (forwarded[0] if forwarded is not None
                                 else mem_read(addr))
                    if {trig}:
{_write_na(p + '        ')}\
                        if seq not in producer_ready:
                            producer_ready[seq] = result.ready_cycle
                            heappush(pending_heap,
                                     (result.ready_cycle, seq))
                        slice_values.setdefault(seq, value)
                    else:
{_write_available(p + '        ', 'value', 'result.ready_cycle')}\
                elif kind == K_STORE:
                    addr = (spec_values[rs1] + imm) & {_M}
                    if addr % 8 != 0:
                        core._ahead_block = "fault"
                        break
                    do_prefetch(addr, cycle)
                    stats.scout_prefetches += 1
                    scout_stores[addr] = spec_values[rs2]
                elif kind == K_PREFETCH:
                    addr = (spec_values[rs1] + imm) & {_M}
                    if addr % 8 == 0:
                        do_prefetch(addr, cycle)
                elif kind == K_BRANCH:
                    if fn(spec_values[rs1], spec_values[rs2]):
                        resolve_cond(pc, True)
                        next_pc = target
                    else:
                        resolve_cond(pc, False)
                elif kind == K_JUMP:
{_write_available(p + '    ', 'pc + 1', 'cycle + 1')}\
                    if is_call(inst):
                        push_return(pc + 1)
                    next_pc = target
                elif kind == K_JUMP_INDIRECT:
                    tgt = (spec_values[rs1] + imm) & {_M}
                    if tgt >= n_insts:
                        core._ahead_block = "fault"
                        break
                    resolve_indirect(pc, tgt, is_return=is_return(inst))
{_write_available(p + '    ', 'pc + 1', 'cycle + 1')}\
                    if is_call(inst):
                        push_return(pc + 1)
                    next_pc = tgt
{_CONSUME.format(pad=p)}\
""")
    # ---- NA-operand deferral -------------------------------------------
    # Fast path: plain ALU/long-op/load defers with DQ room are by far
    # the common case and carry no branch/jump/store bookkeeping —
    # inline them; everything else falls through to the method.
    emit(f"""\
            if na:
                if kind <= K_LOAD and len(dq_entries) < dq_capacity:
{_fast_defer(' ' * 20, False)}\
                core._ahead_pc = ahead_pc
                core._seq = seq
                status, wake = defer_issue(inst, pc, cycle)
{_DEFER_STATUS.format(pad=' ' * 16)}\
            wake = cycle
            for src in sources:
                r = spec_ready[src]
                if r > wake:
                    wake = r
            if wake > cycle:
                if wake_min is None or wake < wake_min:
                    wake_min = wake
                break
""")
    # ---- ahead execute (inlined _ahead_execute) -------------------------
    p = " " * 12
    emit("""\
            next_pc = pc + 1
""")
    # ALU/MUL/DIV
    if defer_long_ops:
        emit(f"""\
            if kind <= K_DIV:
                a = spec_values[rs1]
                value = fn(a, imm) if uses_imm else fn(a, spec_values[rs2])
                if kind == K_DIV:
{_write_na(p + '        ')}\
                    slice_values[seq] = value
                    producer_ready[seq] = cycle + {lat_div}
                    heappush(pending_heap, (cycle + {lat_div}, seq))
                else:
                    latency = {lat_mul} if kind == K_MUL else {lat_alu}
{_write_available(p + '        ', 'value', 'cycle + latency')}\
""")
    else:
        emit(f"""\
            if kind <= K_DIV:
                a = spec_values[rs1]
                value = fn(a, imm) if uses_imm else fn(a, spec_values[rs2])
                latency = ({lat_mul} if kind == K_MUL else
                           {lat_div} if kind == K_DIV else {lat_alu})
{_write_available(p + '    ', 'value', 'cycle + latency')}\
""")
    # LOAD
    spec_loads = ""
    if bypass:
        spec_loads = (
            "                if any_below(seq):\n"
            "                    core._spec_loads.append(\n"
            "                        (seq, addr,\n"
            "                         forwarded[1] if forwarded is not None"
            " else -1))\n"
        )
    emit(f"""\
            elif kind == K_LOAD:
                addr = (spec_values[rs1] + imm) & {_M}
                if addr % 8 != 0:
                    core._ahead_block = "fault"
                    break
                if blocks_load(addr, seq, {conservative}):
                    if len(dq_entries) < dq_capacity:
{_fast_defer(' ' * 24, True)}\
                    core._ahead_pc = ahead_pc
                    core._seq = seq
                    status, wake = defer_issue(inst, pc, cycle, True)
{_DEFER_STATUS.format(pad=' ' * 20)}\
                forwarded = sb_forward(addr, seq)
{spec_loads}\
                if forwarded is not None:
{_write_available(p + '        ', 'forwarded[0]', 'cycle + 1')}\
                else:
                    value = mem_read(addr)
                    result = data_access(addr, cycle, ACC_LOAD, pc=pc)
                    if {trig}:
{_write_na(p + '            ')}\
                        slice_values[seq] = value
                        producer_ready[seq] = result.ready_cycle
                        heappush(pending_heap, (result.ready_cycle, seq))
                        outstanding = core._count_outstanding(cycle)
                        if outstanding > stats.peak_outstanding_misses:
                            stats.peak_outstanding_misses = outstanding
                    else:
{_write_available(p + '            ', 'value', 'result.ready_cycle')}\
""")
    # STORE
    if scout_enabled:
        store_full = (
            "                    core._enter_scout(SB_FULL)\n"
            "                    continue\n"
        )
    else:
        store_full = (
            "                    core._ahead_block = \"sb_full\"\n"
            "                    break\n"
        )
    emit(f"""\
            elif kind == K_STORE:
                addr = (spec_values[rs1] + imm) & {_M}
                if addr % 8 != 0:
                    core._ahead_block = "fault"
                    break
                if not sb_append_resolved(seq, addr, spec_values[rs2]):
{store_full}\
            elif kind == K_PREFETCH:
                addr = (spec_values[rs1] + imm) & {_M}
                if addr % 8 == 0:
                    do_prefetch(addr, cycle)
            elif kind == K_BRANCH:
                taken = fn(spec_values[rs1], spec_values[rs2])
                mispredicted = resolve_cond(pc, taken)
                if taken:
                    next_pc = target
                if mispredicted:
                    b = cycle + {lat_alu + penalty}
                    if b > barrier:
                        barrier = b
                        core._ahead_barrier = b
            elif kind == K_JUMP:
{_write_available(p + '    ', 'pc + 1', 'cycle + 1')}\
                if is_call(inst):
                    push_return(pc + 1)
                next_pc = target
            elif kind == K_JUMP_INDIRECT:
                tgt = (spec_values[rs1] + imm) & {_M}
                if tgt >= n_insts:
                    core._ahead_block = "fault"
                    break
                mispredicted = resolve_indirect(
                    pc, tgt, is_return=is_return(inst))
{_write_available(p + '    ', 'pc + 1', 'cycle + 1')}\
                if is_call(inst):
                    push_return(pc + 1)
                next_pc = tgt
                if mispredicted:
                    b = cycle + {lat_alu + penalty}
                    if b > barrier:
                        barrier = b
                        core._ahead_barrier = b
{_CONSUME.format(pad=p)}\
""")
    # ---- post-issue commits, classification, time advance ---------------
    classify_guard = ("if core.mode is not SCOUT:" if scout_possible
                      else "if True:")
    emit(f"""\
        core._ahead_pc = ahead_pc
        core._seq = seq
        stall = core._commit_stall
        if stall is None or cycle >= stall:
            if len(ckpt_live) >= 2 or not dq_entries:
                try_commits(cycle)
                if core.mode is NORMAL:
                    return
            else:
                core._commit_stall = NO_WAKE
        {classify_guard}
            if issued_replay:
                if issued_ahead:
                    new_mode = SST_MODE
                else:
                    new_mode = (REPLAY_ONLY if core._replay_no_boundary
                                else SST_MODE)
            elif core._replay_no_boundary:
                new_mode = REPLAY_ONLY
            else:
                new_mode = EXECUTE_AHEAD
            if new_mode is not core.mode:
                core.mode = new_mode
                core._mode_key = MODE_KEY[new_mode]
        if issued_replay or issued_ahead:
            next_cycle = cycle + 1
        else:
            outstanding = min_outstanding(cycle)
            if outstanding is not None and (
                    wake_min is None or outstanding < wake_min):
                wake_min = outstanding
            if wake_min is None:
                raise SIE(
                    f"speculative deadlock at cycle {{cycle}} "
                    f"(mode={{core.mode}}, block={{core._ahead_block}})"
                )
            next_cycle = wake_min
        core._next_event = next_cycle
        if until is not None and next_cycle > until:
            next_cycle = until
        if cycle != core._perf_stepped_cycle:
            core._perf_stepped_cycle = cycle
            perf.cycles_stepped += 1
        if next_cycle > cycle + 1:
            skipped = next_cycle - cycle - 1
            perf.cycles_skipped += skipped
            perf.fast_forwards += 1
            stalls = perf.stall_cycles
            stalls["spec_wait"] = stalls.get("spec_wait", 0) + skipped
        delta = next_cycle - core._mode_account_cycle
        if delta > 0:
            mode_cycles[core._mode_key] += delta
            core._mode_account_cycle = next_cycle
        core._cycle = next_cycle
""")
    return "".join(out)


_LOOP_CACHE: Dict[Tuple, Callable] = {}


def compile_spec_loop(config: SSTConfig, mispredict_penalty: int) -> Callable:
    """The specialized loop for one configuration signature (cached)."""
    latencies = config.latencies
    key = (config.width, config.scout_enabled, config.scout_only,
           config.defer_long_ops, config.bypass_unresolved_stores,
           config.defer_on_tlb_miss, config.defer_trigger,
           latencies.alu, latencies.mul, latencies.div,
           mispredict_penalty)
    loop = _LOOP_CACHE.get(key)
    if loop is not None:
        return loop

    # Imported here: sst_core imports this module lazily from __init__,
    # so by the time we run, sst_core is fully initialized.
    from repro.core import sst_core
    from repro.isa import blockcache

    source = _build_source(
        width=config.width,
        scout_possible=config.scout_enabled or config.scout_only,
        scout_enabled=config.scout_enabled,
        defer_long_ops=config.defer_long_ops,
        bypass=config.bypass_unresolved_stores,
        defer_tlb=config.defer_on_tlb_miss,
        defer_l1=config.defer_trigger is DeferTrigger.L1_MISS,
        lat_alu=latencies.alu,
        lat_mul=latencies.mul,
        lat_div=latencies.div,
        penalty=mispredict_penalty,
    )
    namespace = {
        "NORMAL": ExecMode.NORMAL,
        "SCOUT": ExecMode.SCOUT,
        "SST_MODE": ExecMode.SST,
        "REPLAY_ONLY": ExecMode.REPLAY_ONLY,
        "EXECUTE_AHEAD": ExecMode.EXECUTE_AHEAD,
        "MODE_KEY": sst_core._MODE_KEY,
        "ISSUED": sst_core._ISSUED,
        "RETRY": sst_core._RETRY,
        "NO_WAKE": sst_core._NO_WAKE,
        "SB_FULL": ScoutCause.SB_FULL,
        "ACC_LOAD": AccessType.LOAD,
        "L1": HitLevel.L1,
        "DRAM": HitLevel.DRAM,
        "MERGE_L2": HitLevel.MERGE_L2,
        "SIE": SimulatorInvariantError,
        "DQEntry": sst_core.DQEntry,
        "heappush": heappush,
        "K_MUL": blockcache.K_MUL,
        "K_DIV": blockcache.K_DIV,
        "K_LOAD": blockcache.K_LOAD,
        "K_STORE": blockcache.K_STORE,
        "K_PREFETCH": blockcache.K_PREFETCH,
        "K_BRANCH": blockcache.K_BRANCH,
        "K_JUMP": blockcache.K_JUMP,
        "K_JUMP_INDIRECT": blockcache.K_JUMP_INDIRECT,
        "K_BARRIER": blockcache.K_BARRIER,
        "K_HALT": blockcache.K_HALT,
    }
    code = compile(source, "<sst_dispatch>", "exec")
    exec(code, namespace)  # noqa: S102 - trusted, generated above
    loop = namespace["_sst_spec_loop"]
    _LOOP_CACHE[key] = loop
    return loop
