"""The ``repro`` command-line interface.

Installed as a console script (``pyproject.toml [project.scripts]``)
and equally runnable as ``python -m repro``.  Subcommands:

``repro experiments list [--tag TAG] [--json]``
    Show every registered experiment (id, tags, title).

``repro experiments run [IDS...] [--all] [--smoke] [--jobs N] ...``
    Run experiments through the
    :class:`~repro.experiments.engine.ExperimentEngine`.  Each one
    writes its text table and schema-versioned JSON result document
    under ``benchmarks/results/`` (cwd-independent — the directory is
    resolved through :mod:`repro.experiments.results`).  ``--jobs N``
    overlaps N whole experiments in worker processes; workers run
    their own simulations single-threaded to avoid nested pools.

``repro experiments report [IDS...] [--json]``
    Summarize stored result documents: mode, wall time, point count,
    and which expectation predicates held.

``repro perf report [--tag TAG] [--out PATH] [--smoke] [--json]
[--compare-baseline] [--tolerance FRAC]``
    Take a simulator-throughput snapshot (``BENCH_<tag>.json``) via
    :mod:`repro.experiments.perf`.  When a committed baseline
    (``benchmarks/BENCH_smoke.json``) exists, the snapshot embeds a
    ``speedup_vs_baseline`` section; ``--compare-baseline`` turns that
    comparison into a regression gate (exit 1 when aggregate
    insts/host-second drops by more than ``--tolerance``).

``repro ensemble bench [--lanes N] [--scale S] [--workloads ...]
[--backend numpy|python] [--json]``
    Measure the vectorized lockstep-ensemble backend
    (:mod:`repro.sim.ensemble`) against the scalar golden interpreter
    over seed-varied lane batches of the workload suite, reporting
    per-workload and aggregate insts/host-second and speedup.

``repro baseline capture|verify|promote|retire|diff|list``
    Drive the behavioral baseline firewall (:mod:`repro.regress`).
    ``capture`` runs the experiment corpus (documents are *not*
    written) and records every simulation's behavior into the governed
    store at ``benchmarks/baselines/``; ``verify`` re-runs the corpus
    and exits 1 on any divergence from a stored baseline — after an
    intentional behavior change, ``capture`` followed by an explicit
    ``promote`` is the only green path.  ``diff`` shows pending
    (captured-but-unpromoted) behavior changes; ``list`` shows the
    store's governance state.

``repro cache stats|fsck|clear [--cache-dir DIR]``
    Maintain the content-addressed simulation result cache
    (``benchmarks/.simcache/`` / ``REPRO_CACHE_DIR``): show on-disk
    usage, scan-and-repair integrity problems (key-vs-content
    mismatches, schema-stale entries, corrupt payloads, orphan
    ``.tmp-*`` files from interrupted stores), or wipe it.  ``stats``
    also summarizes the baseline store; ``fsck`` additionally scans
    baseline records and cross-checks them against live cache entries
    (baseline problems are reported, never auto-repaired).

``repro lint [NAMES...] [--all] [--pickle PATH] [--dead-stores]
[--json]``
    Run the static verifier (:mod:`repro.analysis.proglint`) and the
    speculative-leak taint pass (:mod:`repro.analysis.taint`) over
    registered workloads (suite + analysis gadgets) or a pickled
    :class:`~repro.isa.program.Program`.  Exit 1 when any diagnostic
    is reported.

``repro fuzz [--max-examples N] [--out PATH]``
    Drive the differential program fuzzer
    (:mod:`repro.workloads.fuzz`): random proglint-clean programs
    through every core variant, block-dispatch off, and the ensemble
    backend, checked against the golden interpreter.  A divergence is
    shrunk to a minimal program, printed, optionally written as a JSON
    artifact, and exits 1.

Expectation failures are *reported* but do not fail a run by default:
at smoke scale the qualitative shapes are indicative only.  Pass
``--strict-expectations`` (sensible at full scale) to turn them into
a non-zero exit.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import pathlib
import sys
import time
import traceback
from typing import Any, Dict, List, Optional, Tuple

from repro.config import ConfigError, env_int
from repro.errors import ReproError
from repro.experiments import (
    ExperimentEngine,
    ResultSchemaError,
    default_results_dir,
    get,
    list_specs,
    load_result_doc,
    perf_baseline_path,
)
from repro.experiments.spec import ExperimentLookupError
from repro.sim.cache import ResultCache


def _select_specs(ids: List[str], run_all: bool, tag: Optional[str] = None):
    """Resolve id arguments (``e3``, ``e8,e9``, ``e4_dq_size``) to specs."""
    specs = list_specs()
    if tag:
        specs = [spec for spec in specs if tag in spec.tags]
    if run_all or not ids:
        return specs
    tokens: List[str] = []
    for argument in ids:
        tokens.extend(token.strip() for token in argument.split(",")
                      if token.strip())
    chosen = []
    seen = set()
    for token in tokens:
        spec = get(token)
        if spec.eid not in seen:
            seen.add(spec.eid)
            chosen.append(spec)
    return chosen


# ---------------------------------------------------------------------------
# experiments run
# ---------------------------------------------------------------------------


def _run_one_worker(payload: Tuple[str, Dict[str, Any]]):
    """Pool worker: run one experiment, never raise."""
    eid, engine_kwargs = payload
    # No nested pools inside a worker: the experiment's own simulation
    # batches run inline.
    os.environ["REPRO_JOBS"] = "1"
    started = time.perf_counter()
    try:
        doc = ExperimentEngine(**engine_kwargs).run(eid)
        failed = [outcome["name"] for outcome in doc["expectations"]
                  if not outcome["passed"]]
        return eid, time.perf_counter() - started, None, failed
    except Exception:  # noqa: BLE001 — one experiment must not kill the run
        return eid, time.perf_counter() - started, \
            traceback.format_exc(), []


def _cmd_run(args: argparse.Namespace) -> int:
    if args.sanitize:
        os.environ["REPRO_SANITIZE"] = "1"
        args.smoke = True
        args.no_cache = True
    # Workers inherit the smoke flag through the environment too, so
    # anything that consults REPRO_BENCH_SMOKE (e.g. workload suites
    # invoked out-of-engine) agrees with the engine setting.
    if args.smoke:
        os.environ["REPRO_BENCH_SMOKE"] = "1"
    if args.no_cache:
        os.environ["REPRO_CACHE"] = "0"
    if args.max_instructions is not None:
        os.environ["REPRO_BENCH_MAX_INSTRUCTIONS"] = \
            str(args.max_instructions)

    try:
        specs = _select_specs(args.ids, args.all, args.tag)
    except ExperimentLookupError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not specs:
        print("error: no experiments selected", file=sys.stderr)
        return 2

    engine_kwargs: Dict[str, Any] = {
        "smoke": bool(args.smoke) or None,
        "max_instructions": args.max_instructions,
        "jobs": None,
        "results_dir": args.results_dir,
        "echo": bool(args.echo),
    }
    if args.no_cache:
        engine_kwargs["cache"] = None

    jobs = args.jobs
    if jobs is None:
        try:
            jobs = env_int("REPRO_JOBS", 1)
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if jobs <= 0:
        jobs = multiprocessing.cpu_count()
    jobs = min(jobs, len(specs))

    mode = "smoke" if args.smoke else "full"
    sanitize_note = ", sanitize=on" if args.sanitize else ""
    print(f"running {len(specs)} experiments ({mode} scale, "
          f"jobs={jobs}, cache={'off' if args.no_cache else 'on'}"
          f"{sanitize_note})")

    payloads = [(spec.eid, engine_kwargs) for spec in specs]
    started = time.perf_counter()
    if jobs > 1:
        context = multiprocessing.get_context("fork")
        with context.Pool(processes=jobs) as pool:
            reports = pool.map(_run_one_worker, payloads)
    else:
        reports = [_run_one_worker(payload) for payload in payloads]
    total = time.perf_counter() - started

    errors = []
    expectation_misses = []
    for (eid, seconds, error, failed), spec in zip(reports, specs):
        if error:
            status = "FAIL"
            errors.append((spec.name, error))
        elif failed:
            status = "SHAPE"
            expectation_misses.append((spec.name, failed))
        else:
            status = "ok"
        note = f"  ({', '.join(failed)})" if failed else ""
        print(f"  {status:5s} {spec.name:26s} {seconds:7.2f}s{note}")
    print(f"total: {total:.2f}s wall for {len(specs)} experiments")

    for name, error in errors:
        print(f"\n--- {name} failed ---\n{error}", file=sys.stderr)
    if expectation_misses:
        print(f"{len(expectation_misses)} experiment(s) missed "
              f"expectations ({mode} scale"
              f"{'; indicative only' if args.smoke else ''})")
    if args.sanitize and not errors:
        print("sanitize: zero invariant violations across "
              f"{len(specs)} experiments")
    if errors:
        return 1
    if args.strict_expectations and expectation_misses:
        return 1
    return 0


# ---------------------------------------------------------------------------
# experiments list / report
# ---------------------------------------------------------------------------


def _cmd_list(args: argparse.Namespace) -> int:
    specs = _select_specs([], True, args.tag)
    if args.json:
        print(json.dumps([
            {"id": spec.eid, "name": spec.name, "title": spec.title,
             "tags": list(spec.tags),
             "expectations": [e.name for e in spec.expectations]}
            for spec in specs
        ], indent=2))
        return 0
    for spec in specs:
        tags = ",".join(spec.tags)
        print(f"{spec.eid:>4s}  {spec.name:26s} [{tags}]  {spec.title}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    try:
        specs = _select_specs(args.ids, not args.ids, None)
    except ExperimentLookupError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    results_dir = args.results_dir or default_results_dir()
    missing = 0
    for spec in specs:
        try:
            doc = load_result_doc(spec.name, results_dir)
        except ResultSchemaError as exc:
            print(f"{spec.eid:>4s}  {spec.name:26s} -- {exc}")
            missing += 1
            continue
        failed = [outcome["name"] for outcome in doc["expectations"]
                  if not outcome["passed"]]
        status = "ok" if doc["ok"] else "SHAPE"
        note = f"  failed: {', '.join(failed)}" if failed else ""
        print(f"{spec.eid:>4s}  {spec.name:26s} {status:5s} "
              f"{doc['mode']:5s} {doc['wall_seconds']:8.2f}s "
              f"{len(doc['points']):3d} points{note}")
        if args.tables:
            print()
            print(doc["table"]["rendered"])
            print()
    return 1 if missing else 0


# ---------------------------------------------------------------------------
# perf report
# ---------------------------------------------------------------------------


def _cmd_perf_report(args: argparse.Namespace) -> int:
    # Imported here, not at module top: a snapshot pulls in the whole
    # workload/machine stack, which `repro experiments list` etc. never
    # need.
    from repro.experiments import perf

    tolerance = (args.tolerance if args.tolerance is not None
                 else perf.DEFAULT_PERF_TOLERANCE)
    if args.smoke:
        os.environ["REPRO_BENCH_SMOKE"] = "1"
    baseline = perf.load_baseline()
    payload = perf.measure(tag=args.tag)
    speedup = perf.speedup_vs_baseline(payload, baseline)
    if speedup is not None:
        payload["speedup_vs_baseline"] = speedup
    path = perf.write_report(
        payload, pathlib.Path(args.out) if args.out else None
    )
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(perf.render(payload))
        print(f"wrote {path}")
    if args.compare_baseline:
        ratio = speedup["aggregate"] if speedup else None
        if ratio is None:
            print("error: no committed baseline to compare against "
                  f"({perf_baseline_path()})", file=sys.stderr)
            return 2
        if not args.json:
            print(f"throughput vs committed baseline "
                  f"[{speedup['baseline_tag']}]: {ratio:.2f}x")
        if ratio < 1.0 - tolerance:
            print(f"FAIL: simulator throughput regressed more than "
                  f"{tolerance:.0%} vs the committed baseline",
                  file=sys.stderr)
            return 1
    return 0


# ---------------------------------------------------------------------------
# ensemble bench
# ---------------------------------------------------------------------------


def _cmd_ensemble_bench(args: argparse.Namespace) -> int:
    # Deferred import: pulls in the workload suite + (optionally) numpy.
    from repro.experiments import perf
    from repro.sim import ensemble

    if args.backend == ensemble.BACKEND_NUMPY and not (
            ensemble.numpy_available()):
        print("error: the numpy ensemble backend requires numpy "
              "(install the 'ensemble' extra: pip install "
              "'repro[ensemble]')", file=sys.stderr)
        return 2
    try:
        # args.workloads is None when the flag is absent (all
        # workloads) and [] when given empty — the latter is a
        # selection error the measurement layer diagnoses.
        if args.timing:
            section = perf.measure_timing_ensemble(
                lanes=args.lanes, scale=args.scale,
                workloads=args.workloads,
            )
        else:
            section = perf.measure_ensemble(
                lanes=args.lanes, scale=args.scale,
                workloads=args.workloads, backend=args.backend,
            )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(section, indent=2, sort_keys=True))
        return 0 if section.get("available") else 2
    if not section.get("available"):
        print(f"ensemble bench unavailable: "
              f"{section.get('reason', 'unknown')}", file=sys.stderr)
        return 2
    mode = "timing (in-order)" if args.timing else "functional"
    print(f"ensemble bench: N={section['lanes']} lanes, "
          f"{section['scale']} scale, {section['backend']} backend, "
          f"{mode}")
    print(f"{'workload':<18s} {'insts':>10s} {'scalar s':>9s} "
          f"{'ensemble s':>11s} {'speedup':>8s}")
    for name, row in section["workloads"].items():
        speedup = row["speedup"]
        print(f"{name:<18s} {row['instructions']:>10d} "
              f"{row['scalar_wall_seconds']:>9.3f} "
              f"{row['ensemble_wall_seconds']:>11.3f} "
              f"{speedup if speedup is None else format(speedup, '.2f'):>8}")
    agg = section["aggregate"]
    print(f"{'AGGREGATE':<18s} {agg['instructions']:>10d} "
          f"{'':>9s} {'':>11s} {agg['speedup']:>8.2f}")
    print(f"scalar   {agg['scalar_insts_per_host_second']} insts/host-sec")
    print(f"ensemble {agg['ensemble_insts_per_host_second']} insts/host-sec")
    return 0


# ---------------------------------------------------------------------------
# baseline capture / verify / promote / retire / diff / list
# ---------------------------------------------------------------------------


def _open_store(args: argparse.Namespace):
    from repro.regress.store import BaselineStore

    return BaselineStore(getattr(args, "baseline_dir", None))


def _baseline_corpus_run(args: argparse.Namespace, mode: str) -> int:
    """Shared engine for ``baseline capture`` and ``baseline verify``:
    run the experiment corpus (no documents written) with one shared
    firewall collecting every observation, then report."""
    from repro.regress.firewall import BaselineFirewall
    from repro.regress.semid import dump_stable, short_id

    if args.smoke:
        os.environ["REPRO_BENCH_SMOKE"] = "1"
    try:
        specs = _select_specs(args.ids, args.all, None)
    except ExperimentLookupError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not specs:
        print("error: no experiments selected", file=sys.stderr)
        return 2

    firewall = BaselineFirewall(
        _open_store(args), mode=mode, strict=False,
        note=getattr(args, "note", "") or "",
    )
    engine = ExperimentEngine(
        smoke=bool(args.smoke) or None, jobs=args.jobs,
        write=False, firewall=firewall,
    )
    errors = 0
    for spec in specs:
        started = time.perf_counter()
        try:
            engine.run(spec)
        except Exception:  # noqa: BLE001 — finish the corpus, then fail
            errors += 1
            print(f"  FAIL  {spec.name}", file=sys.stderr)
            traceback.print_exc()
            continue
        print(f"  {mode:7s} {spec.name:26s} "
              f"{time.perf_counter() - started:6.2f}s")

    stats = firewall.stats
    report = firewall.report()
    if args.report is not None:
        out = pathlib.Path(args.report)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(dump_stable(report))
        print(f"diff report written to {out}")
    if args.json:
        print(dump_stable(report), end="")
    else:
        counts = ", ".join(f"{name}={value}"
                           for name, value in stats.as_dict().items()
                           if value)
        print(f"baseline {mode}: {stats.observed} observations "
              f"({counts or 'none'}) in {firewall.store.root}")
        for divergence in firewall.divergences:
            print(f"  DIVERGED {divergence.summary()}")

    if errors:
        return 1
    if mode == "capture":
        pending = stats.recaptured + stats.pending
        if pending and not args.json:
            print(f"{pending} behavior change(s) parked as candidates — "
                  f"review with `repro baseline diff`, then "
                  f"`repro baseline promote` to approve")
        return 0
    # verify: red on any divergence, and on an empty run (a corpus that
    # verified nothing protects nothing).
    if stats.divergent:
        if not args.json:
            print(f"FAIL: {stats.divergent} divergence(s) from stored "
                  f"baselines — if intentional, `repro baseline "
                  f"capture` then `repro baseline promote "
                  + " ".join(sorted({short_id(d.semid)
                                     for d in firewall.divergences})),
                  file=sys.stderr)
        return 1
    if not (stats.verified or stats.unseen):
        print("FAIL: no baseline observations at all", file=sys.stderr)
        return 1
    if stats.verified == 0:
        print("FAIL: no stored baseline matched any observation "
              "(empty or mislocated store? run `repro baseline "
              "capture` first)", file=sys.stderr)
        return 1
    return 0


def _cmd_baseline_capture(args: argparse.Namespace) -> int:
    return _baseline_corpus_run(args, "capture")


def _cmd_baseline_verify(args: argparse.Namespace) -> int:
    return _baseline_corpus_run(args, "verify")


def _cmd_baseline_promote(args: argparse.Namespace) -> int:
    from repro.regress.records import BaselineTransitionError
    from repro.regress.semid import short_id
    from repro.regress.store import BaselineLookupError

    store = _open_store(args)
    targets: List[str] = []
    if args.all:
        targets = [record.semid for record in store.records()
                   if record.status == "candidate"
                   or record.candidate_behavior is not None]
        if not targets:
            print("nothing to promote")
            return 0
    else:
        if not args.semids:
            print("error: pass baseline ids (prefixes ok) or --all",
                  file=sys.stderr)
            return 2
        try:
            targets = [store.resolve(prefix) for prefix in args.semids]
        except BaselineLookupError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    failed = 0
    for semid in targets:
        try:
            action = store.promote(semid, note=args.note or "")
        except BaselineTransitionError as exc:
            failed += 1
            print(f"error: {exc}", file=sys.stderr)
            continue
        print(f"{short_id(semid)} {action}")
    return 1 if failed else 0


def _cmd_baseline_retire(args: argparse.Namespace) -> int:
    from repro.regress.records import BaselineTransitionError
    from repro.regress.semid import short_id
    from repro.regress.store import BaselineLookupError

    store = _open_store(args)
    failed = 0
    for prefix in args.semids:
        try:
            semid = store.resolve(prefix)
            store.retire(semid, note=args.note or "")
        except (BaselineLookupError, BaselineTransitionError) as exc:
            failed += 1
            print(f"error: {exc}", file=sys.stderr)
            continue
        print(f"{short_id(semid)} retired")
    return 1 if failed else 0


def _cmd_baseline_diff(args: argparse.Namespace) -> int:
    from repro.regress.semid import dump_stable, short_id

    store = _open_store(args)
    pending = [record for record in store.records()
               if record.candidate_behavior is not None]
    if args.json:
        print(dump_stable([
            {
                "semid": record.semid,
                "kind": record.kind,
                "scenario": record.scenario,
                "fields": {
                    field: {"approved": approved, "candidate": candidate}
                    for field, (approved, candidate)
                    in record.diff_behavior(
                        record.candidate_behavior).items()
                },
            }
            for record in pending
        ]), end="")
        return 1 if pending else 0
    if not pending:
        print(f"no pending behavior changes in {store.root}")
        return 0
    for record in pending:
        where = "/".join(
            str(value) for key, value in sorted(record.scenario.items())
            if key in ("machine", "program", "experiment"))
        print(f"{short_id(record.semid)} {record.kind} {where}")
        for field, (approved, candidate) in sorted(
                record.diff_behavior(record.candidate_behavior).items()):
            print(f"  {field}: {approved!r} -> {candidate!r}")
    print(f"{len(pending)} pending change(s); `repro baseline promote` "
          f"to approve")
    return 1


def _cmd_baseline_list(args: argparse.Namespace) -> int:
    from repro.regress.semid import dump_stable, short_id

    store = _open_store(args)
    records = store.records(args.status or None)
    if args.json:
        print(dump_stable([record.to_doc() for record in records]),
              end="")
        return 0
    if not records:
        print(f"no baseline records in {store.root}")
        return 0
    for record in records:
        where = "/".join(
            str(value) for key, value in sorted(record.scenario.items())
            if key in ("machine", "program", "experiment"))
        pending = "  [pending change]" \
            if record.candidate_behavior is not None else ""
        print(f"{short_id(record.semid)}  {record.status:9s} "
              f"{record.kind:10s} {where}{pending}")
    counts = ", ".join(f"{status}={count}" for status, count
                       in sorted(store.status_counts().items()))
    print(f"{len(records)} record(s) ({counts}) in {store.root}")
    return 0


# ---------------------------------------------------------------------------
# cache stats / fsck / clear
# ---------------------------------------------------------------------------


def _open_cache(args: argparse.Namespace) -> ResultCache:
    return ResultCache(args.cache_dir)


def _cmd_cache_stats(args: argparse.Namespace) -> int:
    info = _open_cache(args).disk_stats()
    store = _open_store(args)
    info["baselines"] = {
        "dir": str(store.root),
        "records": len(store),
        "status": store.status_counts(),
    }
    if args.json:
        print(json.dumps(info, indent=2))
        return 0
    cap = (f"{info['max_bytes']} bytes" if info["max_bytes"] is not None
           else "unbounded")
    statuses = ", ".join(
        f"{status}={count}" for status, count
        in sorted(info["baselines"]["status"].items())) or "none"
    print(f"cache dir:   {info['dir']}")
    print(f"schema:      {info['schema']}")
    print(f"entries:     {info['entries']}")
    print(f"total size:  {info['total_bytes']} bytes")
    print(f"orphan tmp:  {info['orphan_tmp']}")
    print(f"size cap:    {cap}")
    print(f"baselines:   {info['baselines']['records']} record(s) "
          f"({statuses}) in {info['baselines']['dir']}")
    return 0


def _cmd_cache_fsck(args: argparse.Namespace) -> int:
    cache = _open_cache(args)
    report = cache.fsck(repair=not args.dry_run)
    print(f"fsck: {report.summary()}")
    for name in report.removed:
        print(f"  removed {name}")
    # Baseline records are governed state: scan and cross-check against
    # the cache, but never auto-remove — repairs go through explicit
    # `repro baseline retire` or review.
    store = _open_store(args)
    baseline_report = store.fsck()
    print(f"fsck: {baseline_report.summary()}")
    for name in baseline_report.bad_files:
        print(f"  bad baseline record {name}")
    cross = store.cross_check(cache)
    print(f"fsck: {cross.summary()}")
    for mismatch in cross.mismatches:
        print(f"  baseline/cache MISMATCH {mismatch['semid'][:12]} "
              f"{sorted(mismatch['fields'])}")
    if baseline_report.problems or cross.problems:
        return 1
    # fsck convention: non-zero when problems were found but left in
    # place (--dry-run); a repairing run that fixed everything exits 0.
    if args.dry_run and report.problems:
        return 1
    return 0


def _cmd_cache_clear(args: argparse.Namespace) -> int:
    cache = _open_cache(args)
    removed = cache.clear()
    print(f"removed {removed} cached result(s) from {cache.root}")
    return 0


# ---------------------------------------------------------------------------
# lint / fuzz
# ---------------------------------------------------------------------------


def _lintable_programs(args: argparse.Namespace):
    """Resolve lint targets: registered workload names and/or a pickled
    Program file."""
    from repro.workloads import ANALYSIS_WORKLOADS, WORKLOAD_FACTORIES

    registry = {**WORKLOAD_FACTORIES, **ANALYSIS_WORKLOADS}
    programs = []
    if args.pickle is not None:
        import pickle

        with open(args.pickle, "rb") as handle:
            programs.append(pickle.load(handle))
    names = list(args.names)
    if args.all:
        names = sorted(registry)
    for name in names:
        factory = registry.get(name)
        if factory is None:
            known = ", ".join(sorted(registry))
            raise SystemExit(
                f"repro lint: unknown workload {name!r} (known: {known})"
            )
        programs.append(factory())
    if not programs:
        raise SystemExit(
            "repro lint: nothing to lint — pass workload names, --all, "
            "or --pickle PATH"
        )
    return programs


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import analyze_taint
    from repro.analysis.proglint import lint_program

    findings = 0
    documents = []
    for program in _lintable_programs(args):
        diagnostics = list(lint_program(program,
                                        dead_stores=args.dead_stores))
        report = analyze_taint(program)
        diagnostics.extend(report.gadgets)
        findings += len(diagnostics)
        documents.append({
            "program": program.name,
            "instructions": len(program.instructions),
            "has_secrets": report.has_secrets,
            "transient_pcs": len(report.transient_pcs),
            "diagnostics": [
                {"kind": diag.kind.value, "pc": diag.pc,
                 "message": diag.message}
                for diag in diagnostics
            ],
        })
        if not args.json:
            verdict = ("clean" if not diagnostics
                       else f"{len(diagnostics)} finding(s)")
            print(f"{program.name}: {verdict}")
            for diag in diagnostics:
                print(f"  {diag}")
    if args.json:
        print(json.dumps({"programs": documents,
                          "findings": findings}, indent=2))
    return 1 if findings else 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.workloads.fuzz import HAVE_HYPOTHESIS, fuzz

    if not HAVE_HYPOTHESIS:
        print("repro fuzz: hypothesis is not installed", file=sys.stderr)
        return 2
    failure = fuzz(max_examples=args.max_examples)
    if failure is None:
        print(f"fuzz: no divergence in {args.max_examples} examples")
        return 0
    summary = failure.summary()
    print("fuzz: DIVERGENCE (shrunk to minimal program)")
    print(f"  {summary['detail']}")
    print(f"  {summary['instructions']} instructions, "
          f"loop x{summary['loop_count']}, "
          f"{summary['body_atoms']} body atom(s)")
    for line in summary["listing"]:
        print(f"    {line}")
    if args.out is not None:
        out = pathlib.Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(summary, indent=2) + "\n")
        print(f"  counterexample written to {out}")
    return 1


# ---------------------------------------------------------------------------
# Argument parsing.
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SST/ROCK reproduction command-line interface.",
    )
    top = parser.add_subparsers(dest="command", required=True)

    experiments = top.add_parser(
        "experiments", help="the reconstructed 18-experiment evaluation")
    sub = experiments.add_subparsers(dest="subcommand", required=True)

    cmd_list = sub.add_parser("list", help="show registered experiments")
    cmd_list.add_argument("--tag", default=None,
                          help="only experiments carrying this tag")
    cmd_list.add_argument("--json", action="store_true",
                          help="machine-readable listing")
    cmd_list.set_defaults(func=_cmd_list)

    cmd_run = sub.add_parser(
        "run", help="run experiments (tables + JSON documents land in "
                    "benchmarks/results/)")
    cmd_run.add_argument("ids", nargs="*", metavar="ID",
                         help="experiment ids (e3 e8, or e3,e8; "
                              "default: all)")
    cmd_run.add_argument("--all", action="store_true",
                         help="run every registered experiment")
    cmd_run.add_argument("--tag", default=None,
                         help="restrict to experiments carrying this tag")
    cmd_run.add_argument("--smoke", action="store_true",
                         help="shrink every workload so the suite runs "
                              "in seconds (sets REPRO_BENCH_SMOKE=1)")
    cmd_run.add_argument("--jobs", type=int, default=None,
                         help="experiments to run concurrently "
                              "(default: REPRO_JOBS or 1; 0 = all cores)")
    cmd_run.add_argument("--no-cache", action="store_true",
                         help="disable the result cache (REPRO_CACHE=0)")
    cmd_run.add_argument("--max-instructions", type=int, default=None,
                         help="override the per-run instruction budget")
    cmd_run.add_argument("--results-dir", type=pathlib.Path, default=None,
                         help="where tables and JSON documents land "
                              "(default: the checkout's "
                              "benchmarks/results/)")
    cmd_run.add_argument("--sanitize", action="store_true",
                         help="run with REPRO_SANITIZE=1 (per-event "
                              "invariant checking; implies --smoke "
                              "--no-cache, since cached results would "
                              "skip the checked simulations)")
    cmd_run.add_argument("--strict-expectations", action="store_true",
                         help="exit non-zero when an expectation "
                              "predicate fails (use at full scale)")
    cmd_run.add_argument("--echo", action="store_true",
                         help="print each experiment's table")
    cmd_run.set_defaults(func=_cmd_run)

    cmd_report = sub.add_parser(
        "report", help="summarize stored JSON result documents")
    cmd_report.add_argument("ids", nargs="*", metavar="ID",
                            help="experiment ids (default: all)")
    cmd_report.add_argument("--results-dir", type=pathlib.Path,
                            default=None,
                            help="where to read documents from")
    cmd_report.add_argument("--tables", action="store_true",
                            help="also print each stored table")
    cmd_report.set_defaults(func=_cmd_report)

    perf = top.add_parser(
        "perf", help="simulator-throughput snapshots and regression "
                     "comparisons")
    perf_sub = perf.add_subparsers(dest="subcommand", required=True)

    cmd_perf_report = perf_sub.add_parser(
        "report", help="take a BENCH_<tag>.json throughput snapshot; "
                       "optionally gate it against the committed "
                       "baseline")
    cmd_perf_report.add_argument("--tag", default="report",
                                 help="snapshot tag (file name suffix)")
    cmd_perf_report.add_argument("--out", default=None,
                                 help="output path override (default: "
                                      "benchmarks/results/"
                                      "BENCH_<tag>.json)")
    cmd_perf_report.add_argument("--smoke", action="store_true",
                                 help="tiny workloads (sets "
                                      "REPRO_BENCH_SMOKE=1), matching "
                                      "the committed baseline's scale")
    cmd_perf_report.add_argument("--json", action="store_true",
                                 help="print the snapshot payload as "
                                      "JSON instead of the table")
    cmd_perf_report.add_argument("--compare-baseline",
                                 action="store_true",
                                 help="exit non-zero when aggregate "
                                      "insts/host-second regressed more "
                                      "than --tolerance vs the "
                                      "committed baseline")
    cmd_perf_report.add_argument("--tolerance", type=float, default=None,
                                 help="regression tolerance fraction "
                                      "for --compare-baseline "
                                      "(default: 0.30)")
    cmd_perf_report.set_defaults(func=_cmd_perf_report)

    ensemble = top.add_parser(
        "ensemble", help="vectorized lockstep-ensemble tools")
    ensemble_sub = ensemble.add_subparsers(dest="subcommand",
                                           required=True)

    cmd_ens_bench = ensemble_sub.add_parser(
        "bench", help="measure ensemble-vs-scalar throughput over "
                      "seed-varied lane batches of the workload suite")
    cmd_ens_bench.add_argument("--lanes", type=int, default=64,
                               help="ensemble width N (default: 64)")
    cmd_ens_bench.add_argument("--scale", default="tiny",
                               choices=("tiny", "small", "bench"),
                               help="workload suite scale "
                                    "(default: tiny)")
    cmd_ens_bench.add_argument("--workloads", nargs="*", default=None,
                               metavar="NAME",
                               help="subset of suite workload names "
                                    "(default: all seven)")
    cmd_ens_bench.add_argument("--backend", default=None,
                               choices=("numpy", "python"),
                               help="force a backend (default: "
                                    "auto-select)")
    cmd_ens_bench.add_argument("--timing", action="store_true",
                               help="bench the lane-batched *timing* "
                                    "ensemble (in-order core) instead "
                                    "of the functional interpreter")
    cmd_ens_bench.add_argument("--json", action="store_true",
                               help="machine-readable output")
    cmd_ens_bench.set_defaults(func=_cmd_ensemble_bench)

    baseline = top.add_parser(
        "baseline", help="behavioral baseline firewall: governed "
                         "capture/verify of simulation behavior")
    baseline_sub = baseline.add_subparsers(dest="subcommand",
                                           required=True)

    def _add_baseline_dir(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--baseline-dir", type=pathlib.Path,
                         default=None,
                         help="baseline store (default: "
                              "REPRO_BASELINE_DIR or "
                              "benchmarks/baselines/)")

    def _add_corpus_args(sub: argparse.ArgumentParser) -> None:
        _add_baseline_dir(sub)
        sub.add_argument("ids", nargs="*", metavar="ID",
                         help="experiment ids (default: all)")
        sub.add_argument("--all", action="store_true",
                         help="run every registered experiment")
        sub.add_argument("--smoke", action="store_true",
                         help="tiny workloads (sets "
                              "REPRO_BENCH_SMOKE=1) — the committed "
                              "corpus scale")
        sub.add_argument("--jobs", type=int, default=None,
                         help="simulation worker processes per "
                              "experiment (default: REPRO_JOBS or 1)")
        sub.add_argument("--report", default=None, metavar="PATH",
                         help="write the JSON diff report to PATH "
                              "(the CI artifact)")
        sub.add_argument("--json", action="store_true",
                         help="print the diff report as JSON")

    cmd_bl_capture = baseline_sub.add_parser(
        "capture", help="run the corpus and record observed behavior "
                        "(new records land as candidates; changed "
                        "behavior parks pending an explicit promote)")
    _add_corpus_args(cmd_bl_capture)
    cmd_bl_capture.add_argument("--note", default="",
                                help="audit note recorded with every "
                                     "capture")
    cmd_bl_capture.set_defaults(func=_cmd_baseline_capture)

    cmd_bl_verify = baseline_sub.add_parser(
        "verify", help="run the corpus and check behavior against "
                       "stored baselines (exit 1 on any divergence)")
    _add_corpus_args(cmd_bl_verify)
    cmd_bl_verify.set_defaults(func=_cmd_baseline_verify)

    cmd_bl_promote = baseline_sub.add_parser(
        "promote", help="approve candidate records / pending behavior "
                        "changes (the only green path after an "
                        "intentional change)")
    _add_baseline_dir(cmd_bl_promote)
    cmd_bl_promote.add_argument("semids", nargs="*", metavar="SEMID",
                                help="baseline ids (unambiguous "
                                     "prefixes ok)")
    cmd_bl_promote.add_argument("--all", action="store_true",
                                help="promote every candidate record "
                                     "and pending change")
    cmd_bl_promote.add_argument("--note", default="",
                                help="audit note for the approval")
    cmd_bl_promote.set_defaults(func=_cmd_baseline_promote)

    cmd_bl_retire = baseline_sub.add_parser(
        "retire", help="retire records for scenarios that no longer "
                       "exist (terminal; retired records are skipped)")
    _add_baseline_dir(cmd_bl_retire)
    cmd_bl_retire.add_argument("semids", nargs="+", metavar="SEMID",
                               help="baseline ids (prefixes ok)")
    cmd_bl_retire.add_argument("--note", default="",
                               help="audit note for the retirement")
    cmd_bl_retire.set_defaults(func=_cmd_baseline_retire)

    cmd_bl_diff = baseline_sub.add_parser(
        "diff", help="show captured-but-unpromoted behavior changes "
                     "(exit 1 when any are pending)")
    _add_baseline_dir(cmd_bl_diff)
    cmd_bl_diff.add_argument("--json", action="store_true",
                             help="machine-readable diff")
    cmd_bl_diff.set_defaults(func=_cmd_baseline_diff)

    cmd_bl_list = baseline_sub.add_parser(
        "list", help="show the store's records and governance state")
    _add_baseline_dir(cmd_bl_list)
    cmd_bl_list.add_argument("--status", default=None,
                             choices=("candidate", "approved",
                                      "retired"),
                             help="only records in this status")
    cmd_bl_list.add_argument("--json", action="store_true",
                             help="full record documents as JSON")
    cmd_bl_list.set_defaults(func=_cmd_baseline_list)

    cache = top.add_parser(
        "cache", help="simulation result-cache maintenance")
    cache_sub = cache.add_subparsers(dest="subcommand", required=True)

    def _add_cache_dir(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--cache-dir", type=pathlib.Path, default=None,
                         help="cache directory (default: REPRO_CACHE_DIR "
                              "or benchmarks/.simcache/)")

    cmd_stats = cache_sub.add_parser(
        "stats", help="show on-disk cache usage")
    _add_cache_dir(cmd_stats)
    cmd_stats.add_argument("--json", action="store_true",
                           help="machine-readable output")
    cmd_stats.set_defaults(func=_cmd_cache_stats)

    cmd_fsck = cache_sub.add_parser(
        "fsck", help="scan entries for corruption, key mismatches, "
                     "stale schemas, and orphan tmp files; repairs by "
                     "removing offenders")
    _add_cache_dir(cmd_fsck)
    cmd_fsck.add_argument("--dry-run", action="store_true",
                          help="report problems without removing "
                               "anything (exit 1 if any found)")
    cmd_fsck.set_defaults(func=_cmd_cache_fsck)

    cmd_clear = cache_sub.add_parser(
        "clear", help="delete every cached result")
    _add_cache_dir(cmd_clear)
    cmd_clear.set_defaults(func=_cmd_cache_clear)

    cmd_lint = top.add_parser(
        "lint", help="static verifier + speculative-leak taint pass "
                     "over workloads or a pickled Program")
    cmd_lint.add_argument("names", nargs="*", metavar="NAME",
                          help="registered workload names (suite + "
                               "spec-leak gadgets)")
    cmd_lint.add_argument("--all", action="store_true",
                          help="lint every registered workload")
    cmd_lint.add_argument("--pickle", type=pathlib.Path, default=None,
                          help="also lint a pickled Program from PATH")
    cmd_lint.add_argument("--dead-stores", action="store_true",
                          help="enable the opt-in dead-store pass")
    cmd_lint.add_argument("--json", action="store_true",
                          help="machine-readable report")
    cmd_lint.set_defaults(func=_cmd_lint)

    cmd_fuzz = top.add_parser(
        "fuzz", help="differential program fuzzer: every core variant "
                     "vs. the golden interpreter, shrunk on failure")
    cmd_fuzz.add_argument("--max-examples", type=int, default=100,
                          help="random program shapes to try "
                               "(default: 100)")
    cmd_fuzz.add_argument("--out", default=None, metavar="PATH",
                          help="write a shrunk counterexample as JSON "
                               "to PATH")
    cmd_fuzz.set_defaults(func=_cmd_fuzz)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
