"""Scoreboarded in-order core — the pipeline SST is built on.

Timing model: issue-when-ready with program-order issue.  Up to
``width`` instructions issue per cycle; an instruction issues at the
first cycle at which (a) an issue slot is free, (b) all its register
operands are ready (stall-on-use), and (c) — when I-fetch modelling is
on — its fetch has completed.  Loads get their latency from the memory
hierarchy; stores retire into a store buffer and do not stall the
pipeline (their cache fill happens in the background), which is the
standard in-order design and also what ROCK's non-speculative pipeline
does.  A mispredicted branch redirects the front end after the
configured penalty.

This core *is* the degenerate SST configuration with zero checkpoints;
`tests/integration` asserts the two agree.
"""

from __future__ import annotations

from repro.baselines.core_base import (
    Core,
    CoreResult,
    DEFAULT_MAX_INSTRUCTIONS,
)
from repro.branch import BranchUnit
from repro.config import InOrderConfig
from repro.isa.opcodes import OpClass
from repro.isa.program import Program
from repro.isa.registers import REG_COUNT, ZERO_REG
from repro.isa.semantics import branch_taken, compute_value, effective_address
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.request import AccessType


class InOrderCore(Core):
    name = "inorder"

    def __init__(self, program: Program, hierarchy: MemoryHierarchy,
                 config: InOrderConfig = InOrderConfig()):
        super().__init__(program, hierarchy)
        self.config = config
        self.branch_unit = BranchUnit(config.predictor)

    def run(self, max_instructions: int = DEFAULT_MAX_INSTRUCTIONS) -> CoreResult:
        state = self.state
        program = self.program
        width = self.config.width
        latencies = self.config.latencies
        model_ifetch = self.hierarchy.config.model_ifetch

        reg_ready = [0] * REG_COUNT
        # What produced each register's pending value — the CPI stack
        # attributes stall-on-use cycles to it.
        reg_producer = ["compute"] * REG_COUNT
        stalls = {"memory": 0, "long_op": 0, "compute": 0, "fetch": 0,
                  "branch": 0, "drain": 0}
        cycle = 0  # cycle currently accepting issue
        slots_used = 0
        executed = 0
        last_store_done = 0  # for MEMBAR draining

        def issue_at(earliest: int) -> int:
            """Claim the next issue slot at or after ``earliest``."""
            nonlocal cycle, slots_used
            if earliest > cycle:
                cycle = earliest
                slots_used = 0
            slot_cycle = cycle
            slots_used += 1
            if slots_used >= width:
                cycle += 1
                slots_used = 0
            return slot_cycle

        pc = 0
        while True:
            self._check_budget(executed, max_instructions)
            self._check_pc(pc)
            inst = program[pc]
            op = inst.op
            cls = inst.op_class

            earliest = cycle
            stall_reason = None
            if model_ifetch:
                fetch = self.hierarchy.ifetch(pc, cycle)
                if fetch.ready_cycle > earliest:
                    earliest = fetch.ready_cycle
                    stall_reason = "fetch"
            for src in inst.sources:
                if reg_ready[src] > earliest:
                    earliest = reg_ready[src]
                    stall_reason = reg_producer[src]
            if stall_reason is not None and earliest > cycle:
                stalls[stall_reason] += earliest - cycle

            if cls is OpClass.HALT:
                executed += 1
                final_cycle = max(earliest, max(reg_ready), last_store_done)
                total = max(final_cycle, 1)
                cpi_stack = dict(stalls)
                cpi_stack["busy"] = max(total - sum(stalls.values()), 0)
                return CoreResult(
                    core_name=self.name,
                    program_name=program.name,
                    cycles=total,
                    instructions=executed,
                    state=state,
                    extra={
                        "branch": self.branch_unit.stats,
                        "hierarchy": self.hierarchy.stats,
                        "l1d": self.hierarchy.l1d.stats,
                        "l2": self.hierarchy.l2.stats,
                        "cpi_stack": cpi_stack,
                    },
                )

            slot = issue_at(earliest)
            executed += 1
            next_pc = pc + 1

            if cls in (OpClass.ALU, OpClass.MUL, OpClass.DIV):
                a = state.read_reg(inst.rs1)
                b = state.read_reg(inst.rs2)
                state.write_reg(inst.rd, compute_value(inst, a, b))
                if inst.rd != ZERO_REG:
                    reg_ready[inst.rd] = slot + self.op_latency(cls, latencies)
                    reg_producer[inst.rd] = (
                        "compute" if cls is OpClass.ALU else "long_op"
                    )
            elif cls is OpClass.LOAD:
                addr = effective_address(state.read_reg(inst.rs1), inst.imm)
                state.write_reg(inst.rd, state.memory.read(addr))
                result = self.hierarchy.data_access(
                    addr, slot, AccessType.LOAD, pc=pc
                )
                if inst.rd != ZERO_REG:
                    reg_ready[inst.rd] = result.ready_cycle
                    reg_producer[inst.rd] = "memory"
            elif cls is OpClass.STORE:
                addr = effective_address(state.read_reg(inst.rs1), inst.imm)
                state.memory.write(addr, state.read_reg(inst.rs2))
                result = self.hierarchy.data_access(
                    addr, slot, AccessType.STORE, pc=pc
                )
                last_store_done = max(last_store_done, result.ready_cycle)
            elif cls is OpClass.PREFETCH:
                addr = effective_address(state.read_reg(inst.rs1), inst.imm)
                self.hierarchy.prefetch(addr, slot)
            elif cls is OpClass.BRANCH:
                taken = branch_taken(
                    op, state.read_reg(inst.rs1), state.read_reg(inst.rs2)
                )
                mispredicted = self.branch_unit.resolve_cond(pc, taken)
                if taken:
                    next_pc = inst.target
                if mispredicted:
                    resolve = slot + latencies.alu
                    redirect = resolve + self.branch_unit.mispredict_penalty
                    if redirect > cycle:
                        stalls["branch"] += redirect - cycle
                        cycle = redirect
                        slots_used = 0
            elif cls is OpClass.JUMP:
                state.write_reg(inst.rd, pc + 1)
                if inst.rd != ZERO_REG:
                    reg_ready[inst.rd] = slot + 1
                    reg_producer[inst.rd] = "compute"
                if self.is_call(inst):
                    self.branch_unit.push_return(pc + 1)
                next_pc = inst.target
            elif cls is OpClass.JUMP_INDIRECT:
                target = effective_address(state.read_reg(inst.rs1), inst.imm)
                self._check_pc(target)
                mispredicted = self.branch_unit.resolve_indirect(
                    pc, target, is_return=self.is_return(inst)
                )
                state.write_reg(inst.rd, pc + 1)
                if inst.rd != ZERO_REG:
                    reg_ready[inst.rd] = slot + 1
                    reg_producer[inst.rd] = "compute"
                if self.is_call(inst):
                    self.branch_unit.push_return(pc + 1)
                next_pc = target
                if mispredicted:
                    resolve = slot + latencies.alu
                    redirect = resolve + self.branch_unit.mispredict_penalty
                    if redirect > cycle:
                        stalls["branch"] += redirect - cycle
                        cycle = redirect
                        slots_used = 0
            elif cls is OpClass.BARRIER:
                drain = max(max(reg_ready), last_store_done)
                if drain > cycle:
                    stalls["drain"] += drain - cycle
                    cycle = drain
                    slots_used = 0
            elif cls is OpClass.NOP:
                pass
            else:  # pragma: no cover - exhaustiveness guard
                raise AssertionError(f"unhandled opcode {op}")

            pc = next_pc
