"""Scoreboarded in-order core — the pipeline SST is built on.

Timing model: issue-when-ready with program-order issue.  Up to
``width`` instructions issue per cycle; an instruction issues at the
first cycle at which (a) an issue slot is free, (b) all its register
operands are ready (stall-on-use), and (c) — when I-fetch modelling is
on — its fetch has completed.  Loads get their latency from the memory
hierarchy; stores retire into a store buffer and do not stall the
pipeline (their cache fill happens in the background), which is the
standard in-order design and also what ROCK's non-speculative pipeline
does.  A mispredicted branch redirects the front end after the
configured penalty.

The clock is a :class:`repro.core.timing.IssueClock`: stalls are never
ticked through cycle by cycle — the clock jumps straight to the wake
event (operand ready, fetch completion, redirect target) and the
skipped span is recorded in the run's :class:`PerfCounters`, which ride
out on ``CoreResult.extra["perf"]``.

This core *is* the degenerate SST configuration with zero checkpoints;
`tests/integration` asserts the two agree.
"""

from __future__ import annotations

import time

from repro.analysis.sanitizer import make_sanitizer
from repro.baselines.core_base import (
    Core,
    CoreResult,
    DEFAULT_MAX_INSTRUCTIONS,
)
from repro.branch import BranchUnit
from repro.config import InOrderConfig
from repro.core.timing import IssueClock, PerfCounters
from repro.isa import blockcache
from repro.isa.program import Program
from repro.isa.registers import REG_COUNT, ZERO_REG
from repro.isa.semantics import MASK64
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.request import AccessType


class InOrderCore(Core):
    name = "inorder"

    def __init__(self, program: Program, hierarchy: MemoryHierarchy,
                 config: InOrderConfig = InOrderConfig()):
        super().__init__(program, hierarchy)
        self.config = config
        self.branch_unit = BranchUnit(config.predictor)
        # Observational invariant checker; None unless REPRO_SANITIZE.
        self.sanitizer = make_sanitizer("inorder", self.name, program)

    def run(self, max_instructions: int = DEFAULT_MAX_INSTRUCTIONS) -> CoreResult:
        started = time.perf_counter()
        state = self.state
        program = self.program
        latencies = self.config.latencies
        hierarchy = self.hierarchy
        branch_unit = self.branch_unit
        model_ifetch = hierarchy.config.model_ifetch

        # Everything touched per instruction is bound into locals: the
        # issue loop below runs tens of millions of times per benchmark
        # point and attribute hops dominate otherwise.  Decode comes
        # from the block cache's flat rows — one tuple unpack per
        # instruction instead of a dataclass attribute walk.
        rows = blockcache.rows_for(program)
        n_insts = len(rows)
        # Direct register-file indexing: writes below guard the zero
        # register, so ``regs[0]`` is invariantly 0 and reads need no
        # special case (ArchState.read_reg's contract, without the call).
        regs = state.regs
        mem_read = state.memory.read
        mem_write = state.memory.write
        ifetch = hierarchy.ifetch
        data_access = hierarchy.data_access
        do_prefetch = hierarchy.prefetch
        resolve_cond = branch_unit.resolve_cond
        resolve_indirect = branch_unit.resolve_indirect
        push_return = branch_unit.push_return
        mispredict_penalty = branch_unit.mispredict_penalty
        is_call = self.is_call
        is_return = self.is_return
        lat_alu = latencies.alu
        lat_mul = latencies.mul
        lat_div = latencies.div
        K_MUL = blockcache.K_MUL
        K_DIV = blockcache.K_DIV
        K_LOAD = blockcache.K_LOAD
        K_STORE = blockcache.K_STORE
        K_PREFETCH = blockcache.K_PREFETCH
        K_BRANCH = blockcache.K_BRANCH
        K_JUMP = blockcache.K_JUMP
        K_JUMP_INDIRECT = blockcache.K_JUMP_INDIRECT
        K_BARRIER = blockcache.K_BARRIER
        K_NOP = blockcache.K_NOP
        K_HALT = blockcache.K_HALT
        ACC_LOAD = AccessType.LOAD
        ACC_STORE = AccessType.STORE

        reg_ready = [0] * REG_COUNT
        # What produced each register's pending value — the CPI stack
        # attributes stall-on-use cycles to it.
        reg_producer = ["compute"] * REG_COUNT
        stalls = {"memory": 0, "long_op": 0, "compute": 0, "fetch": 0,
                  "branch": 0, "drain": 0}
        # The CPI stack *is* the perf-counter stall attribution: one
        # dict, shared, so the two views cannot drift apart.
        perf = PerfCounters(stall_cycles=stalls)
        clock = IssueClock(self.config.width, perf)
        issue_at = clock.issue_at
        advance_to = clock.advance_to
        executed = 0
        last_store_done = 0  # for MEMBAR draining
        sanitizer = self.sanitizer

        pc = 0
        while True:
            if executed >= max_instructions:
                self._check_budget(executed, max_instructions)
            if pc < 0 or pc >= n_insts:
                self._check_pc(pc)
            (kind, rd, rs1, rs2, imm, target, fn, sources,
             _writes, uses_imm, inst) = rows[pc]

            cycle = clock.cycle
            earliest = cycle
            stall_reason = None
            if model_ifetch:
                fetch_ready = ifetch(pc, cycle).ready_cycle
                if fetch_ready > earliest:
                    earliest = fetch_ready
                    stall_reason = "fetch"
            for src in sources:
                if reg_ready[src] > earliest:
                    earliest = reg_ready[src]
                    stall_reason = reg_producer[src]
            if stall_reason is not None and earliest > cycle:
                stalls[stall_reason] += earliest - cycle

            if kind == K_HALT:
                executed += 1
                final_cycle = max(earliest, max(reg_ready), last_store_done)
                total = max(final_cycle, 1)
                if sanitizer is not None:
                    sanitizer.on_halt(executed, regs, state.memory, total)
                cpi_stack = dict(stalls)
                cpi_stack["busy"] = max(total - sum(stalls.values()), 0)
                return CoreResult(
                    core_name=self.name,
                    program_name=program.name,
                    cycles=total,
                    instructions=executed,
                    state=state,
                    extra={
                        "branch": branch_unit.stats,
                        "hierarchy": hierarchy.stats,
                        "l1d": hierarchy.l1d.stats,
                        "l2": hierarchy.l2.stats,
                        "cpi_stack": cpi_stack,
                        "perf": perf,
                    },
                    wall_seconds=time.perf_counter() - started,
                )

            slot = issue_at(earliest)
            if sanitizer is not None:
                sanitizer.on_issue(slot, cycle)
            executed += 1
            next_pc = pc + 1

            if kind <= K_DIV:  # ALU / MUL / DIV
                a = regs[rs1]
                value = fn(a, imm) if uses_imm else fn(a, regs[rs2])
                if rd != ZERO_REG:
                    regs[rd] = value
                    if kind == K_MUL or kind == K_DIV:
                        reg_ready[rd] = slot + (
                            lat_mul if kind == K_MUL else lat_div
                        )
                        reg_producer[rd] = "long_op"
                    else:
                        reg_ready[rd] = slot + lat_alu
                        reg_producer[rd] = "compute"
            elif kind == K_LOAD:
                addr = (regs[rs1] + imm) & MASK64
                value = mem_read(addr)
                result = data_access(addr, slot, ACC_LOAD, pc=pc)
                if rd != ZERO_REG:
                    regs[rd] = value
                    reg_ready[rd] = result.ready_cycle
                    reg_producer[rd] = "memory"
            elif kind == K_STORE:
                addr = (regs[rs1] + imm) & MASK64
                mem_write(addr, regs[rs2])
                result = data_access(addr, slot, ACC_STORE, pc=pc)
                if result.ready_cycle > last_store_done:
                    last_store_done = result.ready_cycle
            elif kind == K_PREFETCH:
                addr = (regs[rs1] + imm) & MASK64
                do_prefetch(addr, slot)
            elif kind == K_BRANCH:
                taken = fn(regs[rs1], regs[rs2])
                mispredicted = resolve_cond(pc, taken)
                if taken:
                    next_pc = target
                if mispredicted:
                    advance_to(slot + lat_alu + mispredict_penalty, "branch")
            elif kind == K_JUMP:
                if rd != ZERO_REG:
                    regs[rd] = pc + 1
                    reg_ready[rd] = slot + 1
                    reg_producer[rd] = "compute"
                if is_call(inst):
                    push_return(pc + 1)
                next_pc = target
            elif kind == K_JUMP_INDIRECT:
                target = (regs[rs1] + imm) & MASK64
                self._check_pc(target)
                mispredicted = resolve_indirect(
                    pc, target, is_return=is_return(inst)
                )
                if rd != ZERO_REG:
                    regs[rd] = pc + 1
                    reg_ready[rd] = slot + 1
                    reg_producer[rd] = "compute"
                if is_call(inst):
                    push_return(pc + 1)
                next_pc = target
                if mispredicted:
                    advance_to(slot + lat_alu + mispredict_penalty, "branch")
            elif kind == K_BARRIER:
                drain = max(max(reg_ready), last_store_done)
                advance_to(drain, "drain")
            elif kind == K_NOP:
                pass
            else:  # pragma: no cover - exhaustiveness guard
                raise AssertionError(f"unhandled opcode {inst.op}")

            pc = next_pc
