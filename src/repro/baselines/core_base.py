"""Shared core interface and run-result record.

Every core in the library is *execution driven*: it functionally
executes the program while accounting cycles, so its final
architectural state can be checked against the golden interpreter.
``run()`` returns a :class:`CoreResult` carrying both the timing and the
final state.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Any, Dict

from repro.config import LatencyConfig
from repro.errors import ExecutionError
from repro.isa.interpreter import ArchState
from repro.isa.opcodes import Op, OpClass
from repro.isa.program import Program
from repro.memory.hierarchy import MemoryHierarchy

DEFAULT_MAX_INSTRUCTIONS = 20_000_000


@dataclasses.dataclass
class CoreResult:
    """Outcome of one core run."""

    core_name: str
    program_name: str
    cycles: int
    instructions: int
    state: ArchState
    # Core-specific statistics objects (branch stats, mode breakdown...).
    extra: Dict[str, Any] = dataclasses.field(default_factory=dict)
    # Host wall-clock seconds the simulation took (set by the harness).
    # Excluded from equality: two runs of the same point are the same
    # result even though the host timed them differently.
    wall_seconds: float = dataclasses.field(default=0.0, compare=False)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def sim_insts_per_second(self) -> float:
        """Simulated instructions retired per host wall-clock second."""
        return self.instructions / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def sim_cycles_per_second(self) -> float:
        """Simulated cycles advanced per host wall-clock second."""
        return self.cycles / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    def speedup_over(self, other: "CoreResult") -> float:
        """How much faster this run is than ``other`` (same program)."""
        if self.program_name != other.program_name:
            raise ValueError(
                "speedup comparison across different programs: "
                f"{self.program_name} vs {other.program_name}"
            )
        if self.cycles == 0:
            raise ValueError("zero-cycle run")
        return other.cycles / self.cycles


class Core(abc.ABC):
    """A timing core bound to one program and one memory hierarchy."""

    name = "core"

    def __init__(self, program: Program, hierarchy: MemoryHierarchy):
        program.validate()
        self.program = program
        self.hierarchy = hierarchy
        self.state = ArchState.fresh(program)

    @abc.abstractmethod
    def run(self, max_instructions: int = DEFAULT_MAX_INSTRUCTIONS) -> CoreResult:
        """Execute the program to HALT, returning timing + final state."""

    # ------------------------------------------------------------------
    # Helpers shared by the concrete cores.
    # ------------------------------------------------------------------

    def op_latency(self, op_class: OpClass, latencies: LatencyConfig) -> int:
        if op_class is OpClass.MUL:
            return latencies.mul
        if op_class is OpClass.DIV:
            return latencies.div
        return latencies.alu

    def _check_pc(self, pc: int) -> None:
        if not 0 <= pc < len(self.program):
            raise ExecutionError(f"PC {pc} outside program")

    def _check_budget(self, executed: int, budget: int) -> None:
        if executed >= budget:
            raise ExecutionError(
                f"{self.name}: exceeded {budget} instructions without HALT "
                f"(program {self.program.name!r})"
            )

    @staticmethod
    def is_call(inst) -> bool:
        """Convention: JAL/JALR that links through ``ra`` is a call."""
        from repro.isa.registers import RA_REG

        return inst.op in (Op.JAL, Op.JALR) and inst.rd == RA_REG

    @staticmethod
    def is_return(inst) -> bool:
        """Convention: JALR through ``ra`` that does not link is a return."""
        from repro.isa.registers import RA_REG, ZERO_REG

        return (
            inst.op is Op.JALR
            and inst.rs1 == RA_REG
            and inst.rd == ZERO_REG
        )
