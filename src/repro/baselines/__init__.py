"""Baseline cores the paper compares SST against: a scoreboarded
in-order pipeline (the substrate SST extends) and a classical
out-of-order core (the "larger and higher-powered" comparator)."""

from repro.baselines.core_base import Core, CoreResult
from repro.baselines.inorder import InOrderCore
from repro.baselines.ooo import OoOCore

__all__ = ["Core", "CoreResult", "InOrderCore", "OoOCore"]
