"""Baseline cores the paper compares SST against: a scoreboarded
in-order pipeline (the substrate SST extends) and a classical
out-of-order core (the "larger and higher-powered" comparator).

Naming note — two unrelated kinds of "baseline" live in this repo:

* ``repro.baselines`` (this package): the paper's *reference core
  models*, the architectural comparison points of the evaluation;
* ``repro.regress``: the *behavioral baseline firewall* — governed
  capture/verify records of what the simulator computed (cycle
  counts, final state hashes), stored under ``benchmarks/baselines/``
  and managed by the ``repro baseline`` CLI.

A "baseline machine" is a processor; a "baseline record" is a pinned
expected behavior.  See :mod:`repro.regress` for the latter.
"""

from repro.baselines.core_base import Core, CoreResult
from repro.baselines.inorder import InOrderCore
from repro.baselines.ooo import OoOCore

__all__ = ["Core", "CoreResult", "InOrderCore", "OoOCore"]
