"""Out-of-order core timing model.

A window-constrained dataflow model, the standard fast abstraction of a
rename + ROB + issue-queue + LSQ machine:

* **Rename** is implicit: operands link to their *producing dynamic
  instruction's* completion time, so false dependences never stall —
  exactly what a physical rename stage buys.
* **ROB**: instruction ``i`` cannot dispatch until ``i - rob_size`` has
  committed; commit is in order and ``commit_width`` per cycle.
* **Issue queue**: entry held from dispatch to issue; ``issue_width``
  instructions start execution per cycle.
* **LSQ**: memory ops hold an entry to commit; loads either wait for
  all older store addresses (conservative) or, with
  ``perfect_disambiguation``, only for a same-address store's data
  (oracle forwarding — an upper bound that makes the SST comparison
  conservative).
* **Branches** resolve at execute; a mispredict stalls fetch until
  resolution plus the redirect penalty.

Like every core here it executes functionally, so final architectural
state is checked against the golden interpreter.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from repro.baselines.core_base import (
    Core,
    CoreResult,
    DEFAULT_MAX_INSTRUCTIONS,
)
from repro.baselines.ooo.structures import (
    BandwidthAllocator,
    IssuePortAllocator,
    OccupancyWindow,
)
from repro.branch import BranchUnit
from repro.config import OoOConfig
from repro.isa.opcodes import OpClass
from repro.isa.program import Program
from repro.isa.registers import REG_COUNT, ZERO_REG
from repro.isa.semantics import branch_taken, compute_value, effective_address
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.request import AccessType

# Store-to-load forwarding latency inside the LSQ.
FORWARD_LATENCY = 1


@dataclasses.dataclass
class OoOStats:
    dispatched: int = 0
    branch_redirect_cycles: int = 0
    load_forwards: int = 0


class OoOCore(Core):
    name = "ooo"

    def __init__(self, program: Program, hierarchy: MemoryHierarchy,
                 config: OoOConfig = OoOConfig()):
        super().__init__(program, hierarchy)
        self.config = config
        self.branch_unit = BranchUnit(config.predictor)
        self.stats = OoOStats()

    def run(self, max_instructions: int = DEFAULT_MAX_INSTRUCTIONS) -> CoreResult:
        config = self.config
        state = self.state
        program = self.program
        latencies = config.latencies
        model_ifetch = self.hierarchy.config.model_ifetch

        fetch = BandwidthAllocator(config.fetch_width)
        issue = IssuePortAllocator(config.issue_width)
        commit = BandwidthAllocator(config.commit_width)
        rob = OccupancyWindow(config.rob_size, "rob")
        iq = OccupancyWindow(config.iq_size, "iq")
        lsq = OccupancyWindow(config.lsq_size, "lsq")

        # Completion time of the last writer of each architectural reg.
        reg_complete = [0] * REG_COUNT
        # addr -> (data_complete, commit_time) of the youngest store.
        store_inflight: Dict[int, tuple] = {}
        latest_store_ready = 0  # conservative disambiguation barrier
        mem_order_barrier = 0  # MEMBAR
        last_mem_complete = 0
        fetch_barrier = 0  # branch redirects
        last_commit = 0
        executed = 0
        pc = 0

        while True:
            self._check_budget(executed, max_instructions)
            self._check_pc(pc)
            inst = program[pc]
            cls = inst.op_class
            executed += 1

            # ---- front end -------------------------------------------
            earliest_fetch = fetch_barrier
            if model_ifetch:
                probe = fetch.peek(earliest_fetch)
                earliest_fetch = max(
                    earliest_fetch, self.hierarchy.ifetch(pc, probe).ready_cycle
                )
            fetch_slot = fetch.claim(earliest_fetch)

            if cls is OpClass.HALT:
                cycles = max(last_commit, fetch_slot, 1)
                return CoreResult(
                    core_name=self.name,
                    program_name=program.name,
                    cycles=cycles,
                    instructions=executed,
                    state=state,
                    extra={
                        "ooo": self.stats,
                        "branch": self.branch_unit.stats,
                        "hierarchy": self.hierarchy.stats,
                        "l1d": self.hierarchy.l1d.stats,
                        "l2": self.hierarchy.l2.stats,
                        "rob": rob.occupancy_stats(),
                        "iq": iq.occupancy_stats(),
                        "lsq": lsq.occupancy_stats(),
                    },
                )

            # ---- dispatch (ROB/IQ/LSQ occupancy) ---------------------
            dispatch = rob.allocate(fetch_slot)
            dispatch = iq.allocate(dispatch)
            if cls in (OpClass.LOAD, OpClass.STORE):
                dispatch = lsq.allocate(dispatch)
            self.stats.dispatched += 1

            # ---- operand readiness -----------------------------------
            ready = dispatch
            for src in inst.sources:
                if reg_complete[src] > ready:
                    ready = reg_complete[src]

            next_pc = pc + 1
            addr = None
            if cls is OpClass.LOAD:
                if mem_order_barrier > ready:
                    ready = mem_order_barrier
                if not config.perfect_disambiguation:
                    if latest_store_ready > ready:
                        ready = latest_store_ready
            elif cls is OpClass.STORE:
                if mem_order_barrier > ready:
                    ready = mem_order_barrier

            slot = issue.claim(ready)

            # ---- execute (functional + completion time) --------------
            if cls in (OpClass.ALU, OpClass.MUL, OpClass.DIV):
                a = state.read_reg(inst.rs1)
                b = state.read_reg(inst.rs2)
                state.write_reg(inst.rd, compute_value(inst, a, b))
                complete = slot + self.op_latency(cls, latencies)
            elif cls is OpClass.LOAD:
                addr = effective_address(state.read_reg(inst.rs1), inst.imm)
                state.write_reg(inst.rd, state.memory.read(addr))
                inflight = store_inflight.get(addr)
                result = self.hierarchy.data_access(
                    addr, slot, AccessType.LOAD, pc=pc
                )
                complete = result.ready_cycle
                if inflight is not None and inflight[1] > slot:
                    # Youngest same-address store not yet committed:
                    # forward from the LSQ instead of the cache.
                    self.stats.load_forwards += 1
                    complete = max(slot + FORWARD_LATENCY, inflight[0])
                last_mem_complete = max(last_mem_complete, complete)
            elif cls is OpClass.STORE:
                addr = effective_address(state.read_reg(inst.rs1), inst.imm)
                state.memory.write(addr, state.read_reg(inst.rs2))
                complete = slot + 1  # address+data staged in the LSQ
                latest_store_ready = max(latest_store_ready, slot)
                last_mem_complete = max(last_mem_complete, complete)
            elif cls is OpClass.PREFETCH:
                target = effective_address(state.read_reg(inst.rs1), inst.imm)
                self.hierarchy.prefetch(target, slot)
                complete = slot + 1
            elif cls is OpClass.BRANCH:
                taken = branch_taken(
                    inst.op, state.read_reg(inst.rs1), state.read_reg(inst.rs2)
                )
                mispredicted = self.branch_unit.resolve_cond(pc, taken)
                complete = slot + latencies.alu
                if taken:
                    next_pc = inst.target
                if mispredicted:
                    redirect = complete + self.branch_unit.mispredict_penalty
                    self.stats.branch_redirect_cycles += max(
                        0, redirect - fetch.peek(fetch_barrier)
                    )
                    fetch_barrier = max(fetch_barrier, redirect)
            elif cls is OpClass.JUMP:
                state.write_reg(inst.rd, pc + 1)
                if self.is_call(inst):
                    self.branch_unit.push_return(pc + 1)
                next_pc = inst.target
                complete = slot + 1
            elif cls is OpClass.JUMP_INDIRECT:
                target = effective_address(state.read_reg(inst.rs1), inst.imm)
                self._check_pc(target)
                mispredicted = self.branch_unit.resolve_indirect(
                    pc, target, is_return=self.is_return(inst)
                )
                state.write_reg(inst.rd, pc + 1)
                if self.is_call(inst):
                    self.branch_unit.push_return(pc + 1)
                next_pc = target
                complete = slot + latencies.alu
                if mispredicted:
                    redirect = complete + self.branch_unit.mispredict_penalty
                    fetch_barrier = max(fetch_barrier, redirect)
            elif cls is OpClass.BARRIER:
                complete = max(slot, last_mem_complete)
                mem_order_barrier = max(mem_order_barrier, complete)
            else:  # NOP
                complete = slot + 1

            if inst.writes_reg and inst.rd != ZERO_REG:
                reg_complete[inst.rd] = complete

            # ---- commit (in order) -----------------------------------
            commit_time = commit.claim(max(complete + 1, last_commit))
            last_commit = max(last_commit, commit_time)
            rob.retire(commit_time)
            iq.retire(slot)
            if cls in (OpClass.LOAD, OpClass.STORE):
                lsq.retire(commit_time)
                if cls is OpClass.STORE and addr is not None:
                    store_inflight[addr] = (complete, commit_time)
                    # Store drains to the cache after commit.
                    self.hierarchy.data_access(
                        addr, commit_time, AccessType.STORE, pc=pc
                    )

            pc = next_pc
