"""Out-of-order core timing model.

A window-constrained dataflow model, the standard fast abstraction of a
rename + ROB + issue-queue + LSQ machine:

* **Rename** is implicit: operands link to their *producing dynamic
  instruction's* completion time, so false dependences never stall —
  exactly what a physical rename stage buys.
* **ROB**: instruction ``i`` cannot dispatch until ``i - rob_size`` has
  committed; commit is in order and ``commit_width`` per cycle.
* **Issue queue**: entry held from dispatch to issue; ``issue_width``
  instructions start execution per cycle.
* **LSQ**: memory ops hold an entry to commit; loads either wait for
  all older store addresses (conservative) or, with
  ``perfect_disambiguation``, only for a same-address store's data
  (oracle forwarding — an upper bound that makes the SST comparison
  conservative).
* **Branches** resolve at execute; a mispredict stalls fetch until
  resolution plus the redirect penalty.

The model is event-driven by construction — every structure hands back
the *cycle* a resource frees rather than being polled — so the clock
only ever lands on cycles where something happens.  A run's
:class:`~repro.core.timing.PerfCounters` (``extra["perf"]``) report the
distinct commit cycles actually visited vs. the span jumped over, plus
per-cause wait attribution (operand, issue port, window occupancy,
memory ordering).

Like every core here it executes functionally, so final architectural
state is checked against the golden interpreter.
"""

from __future__ import annotations

import dataclasses
import time
from collections import defaultdict, deque
from typing import Dict

from repro.analysis.sanitizer import make_sanitizer
from repro.baselines.core_base import (
    Core,
    CoreResult,
    DEFAULT_MAX_INSTRUCTIONS,
)
from repro.branch import BranchUnit
from repro.config import OoOConfig
from repro.core.timing import PerfCounters
from repro.isa import blockcache
from repro.isa.program import Program
from repro.isa.registers import REG_COUNT
from repro.isa.semantics import MASK64
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.request import AccessType

# Store-to-load forwarding latency inside the LSQ.
FORWARD_LATENCY = 1


@dataclasses.dataclass
class OoOStats:
    dispatched: int = 0
    branch_redirect_cycles: int = 0
    load_forwards: int = 0


class OoOCore(Core):
    name = "ooo"

    def __init__(self, program: Program, hierarchy: MemoryHierarchy,
                 config: OoOConfig = OoOConfig()):
        super().__init__(program, hierarchy)
        self.config = config
        self.branch_unit = BranchUnit(config.predictor)
        self.stats = OoOStats()
        # Observational invariant checker; None unless REPRO_SANITIZE.
        self.sanitizer = make_sanitizer("ooo", self.name, program)

    def run(self, max_instructions: int = DEFAULT_MAX_INSTRUCTIONS) -> CoreResult:
        started = time.perf_counter()
        config = self.config
        state = self.state
        program = self.program
        latencies = config.latencies
        hierarchy = self.hierarchy
        branch_unit = self.branch_unit
        model_ifetch = hierarchy.config.model_ifetch

        # Structural-hazard state, inlined from
        # :mod:`repro.baselines.ooo.structures` (BandwidthAllocator,
        # IssuePortAllocator, OccupancyWindow): each primitive is a
        # handful of integer operations, so at one call per structure
        # per dynamic instruction the call overhead dominated the work.
        # The semantics here must stay in lockstep with that module —
        # the structures tests are the executable spec.
        fetch_width = config.fetch_width
        fetch_cursor = 0  # forward-moving bandwidth cursor
        fetch_used = 0
        commit_width = config.commit_width
        commit_cursor = 0
        commit_used = 0
        issue_width = config.issue_width
        issue_used = defaultdict(int)  # cycle -> issue ports claimed
        rob_size = config.rob_size
        iq_size = config.iq_size
        lsq_size = config.lsq_size
        rob_releases: deque = deque()
        iq_releases: deque = deque()
        lsq_releases: deque = deque()
        rob_full_stalls = rob_stall_cycles = 0
        iq_full_stalls = iq_stall_cycles = 0
        lsq_full_stalls = lsq_stall_cycles = 0

        # Hot-loop locals (see inorder.py): one dynamic instruction per
        # iteration, tens of millions of iterations per point.  Decode
        # comes from the block cache's flat rows.
        rows = blockcache.rows_for(program)
        n_insts = len(rows)
        # Direct register-file indexing: writes below guard the zero
        # register, so ``regs[0]`` is invariantly 0 and reads need no
        # special case (ArchState.read_reg's contract, without the call).
        regs = state.regs
        mem_read = state.memory.read
        mem_write = state.memory.write
        ifetch = hierarchy.ifetch
        data_access = hierarchy.data_access
        do_prefetch = hierarchy.prefetch
        resolve_cond = branch_unit.resolve_cond
        resolve_indirect = branch_unit.resolve_indirect
        push_return = branch_unit.push_return
        mispredict_penalty = branch_unit.mispredict_penalty
        is_call = self.is_call
        is_return = self.is_return
        rob_pop = rob_releases.popleft
        rob_append = rob_releases.append
        iq_pop = iq_releases.popleft
        iq_append = iq_releases.append
        lsq_pop = lsq_releases.popleft
        lsq_append = lsq_releases.append
        lat_alu = latencies.alu
        lat_mul = latencies.mul
        lat_div = latencies.div
        perfect_disambiguation = config.perfect_disambiguation
        K_MUL = blockcache.K_MUL
        K_DIV = blockcache.K_DIV
        K_LOAD = blockcache.K_LOAD
        K_STORE = blockcache.K_STORE
        K_PREFETCH = blockcache.K_PREFETCH
        K_BRANCH = blockcache.K_BRANCH
        K_JUMP = blockcache.K_JUMP
        K_JUMP_INDIRECT = blockcache.K_JUMP_INDIRECT
        K_BARRIER = blockcache.K_BARRIER
        K_HALT = blockcache.K_HALT
        ACC_LOAD = AccessType.LOAD
        ACC_STORE = AccessType.STORE

        # Completion time of the last writer of each architectural reg.
        reg_complete = [0] * REG_COUNT
        # addr -> (data_complete, commit_time) of the youngest store.
        store_inflight: Dict[int, tuple] = {}
        latest_store_ready = 0  # conservative disambiguation barrier
        mem_order_barrier = 0  # MEMBAR
        last_mem_complete = 0
        fetch_barrier = 0  # branch redirects
        last_commit = 0
        executed = 0
        pc = 0

        # Observability (never feeds back into timing).  Window-full
        # attribution comes for free from the OccupancyWindows at HALT;
        # the waits measured here are per-instruction and may overlap in
        # time, so they are a *attribution* of waiting, not a partition
        # of the cycle count.
        stalls = {"operand": 0, "issue_port": 0, "mem_order": 0}
        perf = PerfCounters(stall_cycles=stalls)
        dispatched = 0
        load_forwards = 0
        branch_redirect_cycles = 0
        commit_cycles_stepped = 0
        last_commit_cycle_seen = -1
        sanitizer = self.sanitizer

        while True:
            if executed >= max_instructions:
                self._check_budget(executed, max_instructions)
            if pc < 0 or pc >= n_insts:
                self._check_pc(pc)
            (kind, rd, rs1, rs2, imm, target, fn, sources,
             writes_reg, uses_imm, inst) = rows[pc]
            executed += 1

            # ---- front end -------------------------------------------
            earliest_fetch = fetch_barrier
            if model_ifetch:
                probe = (earliest_fetch if earliest_fetch > fetch_cursor
                         else fetch_cursor)
                fetch_ready = ifetch(pc, probe).ready_cycle
                if fetch_ready > earliest_fetch:
                    earliest_fetch = fetch_ready
            if earliest_fetch > fetch_cursor:
                fetch_cursor = earliest_fetch
                fetch_used = 0
            fetch_slot = fetch_cursor
            fetch_used += 1
            if fetch_used >= fetch_width:
                fetch_cursor += 1
                fetch_used = 0

            if kind == K_HALT:
                cycles = max(last_commit, fetch_slot, 1)
                if sanitizer is not None:
                    sanitizer.on_halt(executed, regs, state.memory, cycles)
                stats = self.stats
                stats.dispatched = dispatched
                stats.load_forwards = load_forwards
                stats.branch_redirect_cycles = branch_redirect_cycles
                stalls["rob"] = rob_stall_cycles
                stalls["iq"] = iq_stall_cycles
                stalls["lsq"] = lsq_stall_cycles
                stalls["branch"] = branch_redirect_cycles
                perf.cycles_stepped = commit_cycles_stepped
                perf.cycles_skipped = max(cycles - commit_cycles_stepped, 0)
                return CoreResult(
                    core_name=self.name,
                    program_name=program.name,
                    cycles=cycles,
                    instructions=executed,
                    state=state,
                    extra={
                        "ooo": stats,
                        "branch": branch_unit.stats,
                        "hierarchy": hierarchy.stats,
                        "l1d": hierarchy.l1d.stats,
                        "l2": hierarchy.l2.stats,
                        "rob": {"full_stalls": rob_full_stalls,
                                "stall_cycles": rob_stall_cycles},
                        "iq": {"full_stalls": iq_full_stalls,
                               "stall_cycles": iq_stall_cycles},
                        "lsq": {"full_stalls": lsq_full_stalls,
                                "stall_cycles": lsq_stall_cycles},
                        "perf": perf,
                    },
                    wall_seconds=time.perf_counter() - started,
                )

            # ---- dispatch (ROB/IQ/LSQ occupancy) ---------------------
            dispatch = fetch_slot
            if len(rob_releases) >= rob_size:
                blocking = rob_releases[0]
                if blocking > dispatch:
                    rob_full_stalls += 1
                    rob_stall_cycles += blocking - dispatch
                    dispatch = blocking
                rob_pop()
            if len(iq_releases) >= iq_size:
                blocking = iq_releases[0]
                if blocking > dispatch:
                    iq_full_stalls += 1
                    iq_stall_cycles += blocking - dispatch
                    dispatch = blocking
                iq_pop()
            if kind == K_LOAD or kind == K_STORE:
                if len(lsq_releases) >= lsq_size:
                    blocking = lsq_releases[0]
                    if blocking > dispatch:
                        lsq_full_stalls += 1
                        lsq_stall_cycles += blocking - dispatch
                        dispatch = blocking
                    lsq_pop()
            dispatched += 1
            if sanitizer is not None:
                sanitizer.on_dispatch(
                    len(rob_releases), len(iq_releases),
                    len(lsq_releases), config, dispatch,
                )

            # ---- operand readiness -----------------------------------
            ready = dispatch
            for src in sources:
                if reg_complete[src] > ready:
                    ready = reg_complete[src]
            if ready > dispatch:
                stalls["operand"] += ready - dispatch

            next_pc = pc + 1
            addr = None
            if kind == K_LOAD:
                ordered = ready
                if mem_order_barrier > ordered:
                    ordered = mem_order_barrier
                if not perfect_disambiguation:
                    if latest_store_ready > ordered:
                        ordered = latest_store_ready
                if ordered > ready:
                    stalls["mem_order"] += ordered - ready
                    ready = ordered
            elif kind == K_STORE:
                if mem_order_barrier > ready:
                    stalls["mem_order"] += mem_order_barrier - ready
                    ready = mem_order_barrier

            slot = ready
            while issue_used[slot] >= issue_width:
                slot += 1
            issue_used[slot] += 1
            if slot > ready:
                stalls["issue_port"] += slot - ready

            # ---- execute (functional + completion time) --------------
            if kind <= K_DIV:  # ALU / MUL / DIV
                a = regs[rs1]
                value = fn(a, imm) if uses_imm else fn(a, regs[rs2])
                if rd:
                    regs[rd] = value
                if kind == K_MUL or kind == K_DIV:
                    complete = slot + (lat_mul if kind == K_MUL else lat_div)
                else:
                    complete = slot + lat_alu
            elif kind == K_LOAD:
                addr = (regs[rs1] + imm) & MASK64
                value = mem_read(addr)
                if rd:
                    regs[rd] = value
                inflight = store_inflight.get(addr)
                result = data_access(addr, slot, ACC_LOAD, pc=pc)
                complete = result.ready_cycle
                if inflight is not None and inflight[1] > slot:
                    # Youngest same-address store not yet committed:
                    # forward from the LSQ instead of the cache.
                    load_forwards += 1
                    forward = slot + FORWARD_LATENCY
                    complete = forward if forward > inflight[0] else inflight[0]
                if complete > last_mem_complete:
                    last_mem_complete = complete
            elif kind == K_STORE:
                addr = (regs[rs1] + imm) & MASK64
                mem_write(addr, regs[rs2])
                complete = slot + 1  # address+data staged in the LSQ
                if slot > latest_store_ready:
                    latest_store_ready = slot
                if complete > last_mem_complete:
                    last_mem_complete = complete
            elif kind == K_PREFETCH:
                do_prefetch((regs[rs1] + imm) & MASK64, slot)
                complete = slot + 1
            elif kind == K_BRANCH:
                taken = fn(regs[rs1], regs[rs2])
                mispredicted = resolve_cond(pc, taken)
                complete = slot + lat_alu
                if taken:
                    next_pc = target
                if mispredicted:
                    redirect = complete + mispredict_penalty
                    peek = (fetch_barrier if fetch_barrier > fetch_cursor
                            else fetch_cursor)
                    lost = redirect - peek
                    if lost > 0:
                        branch_redirect_cycles += lost
                    if redirect > fetch_barrier:
                        fetch_barrier = redirect
            elif kind == K_JUMP:
                if rd:
                    regs[rd] = pc + 1
                if is_call(inst):
                    push_return(pc + 1)
                next_pc = target
                complete = slot + 1
            elif kind == K_JUMP_INDIRECT:
                target = (regs[rs1] + imm) & MASK64
                self._check_pc(target)
                mispredicted = resolve_indirect(
                    pc, target, is_return=is_return(inst)
                )
                if rd:
                    regs[rd] = pc + 1
                if is_call(inst):
                    push_return(pc + 1)
                next_pc = target
                complete = slot + lat_alu
                if mispredicted:
                    redirect = complete + mispredict_penalty
                    if redirect > fetch_barrier:
                        fetch_barrier = redirect
            elif kind == K_BARRIER:
                complete = slot if slot > last_mem_complete else last_mem_complete
                if complete > mem_order_barrier:
                    mem_order_barrier = complete
            else:  # NOP
                complete = slot + 1

            if writes_reg and rd:
                reg_complete[rd] = complete

            # ---- commit (in order) -----------------------------------
            commit_floor = complete + 1
            if last_commit > commit_floor:
                commit_floor = last_commit
            if commit_floor > commit_cursor:
                commit_cursor = commit_floor
                commit_used = 0
            commit_time = commit_cursor
            commit_used += 1
            if commit_used >= commit_width:
                commit_cursor += 1
                commit_used = 0
            if sanitizer is not None:
                sanitizer.on_commit(commit_time, last_commit, commit_time)
            if commit_time > last_commit:
                last_commit = commit_time
            if commit_time != last_commit_cycle_seen:
                last_commit_cycle_seen = commit_time
                commit_cycles_stepped += 1
            rob_append(commit_time)
            iq_append(slot)
            if kind == K_LOAD:
                lsq_append(commit_time)
            elif kind == K_STORE:
                lsq_append(commit_time)
                if addr is not None:
                    store_inflight[addr] = (complete, commit_time)
                    # Store drains to the cache after commit.
                    data_access(addr, commit_time, ACC_STORE, pc=pc)

            pc = next_pc
