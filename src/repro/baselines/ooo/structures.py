"""Structural-hazard primitives for the OoO timing model.

* :class:`BandwidthAllocator` — at most N events per cycle (fetch,
  issue, commit ports).
* :class:`OccupancyWindow` — a structure with K entries where an entry
  is held from allocation until a release event whose time is known
  when the entry retires (ROB: dispatch→commit; IQ: dispatch→issue;
  LSQ: dispatch→commit of memory ops).
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Deque, Dict


class IssuePortAllocator:
    """At most ``per_cycle`` issue slots per cycle, claimable in *any*
    time order.

    Out-of-order issue requests slots non-monotonically (a younger
    independent instruction is often ready before an older dependent
    one), so this allocator keeps per-cycle occupancy in a map instead
    of a moving cursor.  Total scan work is amortised by total slots
    granted.
    """

    def __init__(self, per_cycle: int):
        if per_cycle < 1:
            raise ValueError("per_cycle must be >= 1")
        self.per_cycle = per_cycle
        self._used: Dict[int, int] = defaultdict(int)

    def claim(self, earliest: int) -> int:
        cycle = earliest
        while self._used[cycle] >= self.per_cycle:
            cycle += 1
        self._used[cycle] += 1
        return cycle


class BandwidthAllocator:
    """Claims slots of ``per_cycle`` bandwidth, never before ``earliest``.

    The cursor only moves forward, so allocation is amortised O(1) for
    monotonically non-decreasing request times — which program-order
    processing guarantees.
    """

    def __init__(self, per_cycle: int):
        if per_cycle < 1:
            raise ValueError("per_cycle must be >= 1")
        self.per_cycle = per_cycle
        self._cycle = 0
        self._used = 0

    def claim(self, earliest: int) -> int:
        """Reserve one slot at the first cycle >= ``earliest``."""
        if earliest > self._cycle:
            self._cycle = earliest
            self._used = 0
        slot = self._cycle
        self._used += 1
        if self._used >= self.per_cycle:
            self._cycle += 1
            self._used = 0
        return slot

    def peek(self, earliest: int) -> int:
        """The cycle :meth:`claim` would return, without reserving."""
        return max(earliest, self._cycle)


class OccupancyWindow:
    """A K-entry structure: entry i blocks allocation i+K until released.

    ``allocate(when)`` returns the earliest cycle an entry is free
    (>= ``when``); the caller then records the entry's release time with
    ``retire(release_cycle)``.
    """

    def __init__(self, entries: int, name: str = "window"):
        if entries < 1:
            raise ValueError("entries must be >= 1")
        self.entries = entries
        self.name = name
        self._releases: Deque[int] = deque()
        self.full_stalls = 0
        self.stall_cycles = 0

    def allocate(self, when: int) -> int:
        if len(self._releases) < self.entries:
            return when
        blocking = self._releases[0]
        if blocking > when:
            self.full_stalls += 1
            self.stall_cycles += blocking - when
            when = blocking
        self._releases.popleft()
        return when

    def retire(self, release_cycle: int) -> None:
        self._releases.append(release_cycle)

    def occupancy_stats(self) -> Dict[str, int]:
        return {
            "full_stalls": self.full_stalls,
            "stall_cycles": self.stall_cycles,
        }
