"""Classical out-of-order core — the paper's "larger and higher-powered"
comparator.  The timing model is window-constrained dataflow: rename
removes false dependences by construction, and ROB/IQ/LSQ occupancy,
fetch/issue/commit bandwidth, branch redirects and memory
disambiguation bound how much of the true dataflow parallelism is
reachable."""

from repro.baselines.ooo.ooo_core import OoOCore
from repro.baselines.ooo.structures import (
    BandwidthAllocator,
    IssuePortAllocator,
    OccupancyWindow,
)

__all__ = [
    "OoOCore",
    "BandwidthAllocator",
    "IssuePortAllocator",
    "OccupancyWindow",
]
