"""repro — a reproduction of *Simultaneous Speculative Threading*
(Chaudhry et al., ISCA 2009): the SST/ROCK checkpoint-based two-strand
pipeline, its in-order and out-of-order comparators, the memory system
they run against, and the workloads + harness that regenerate the
paper's evaluation.

Quickstart::

    from repro import assemble, sst_machine, inorder_machine, simulate

    program = assemble('''
        movi r1, 0x100000
        ld   r2, 0(r1)       ; this will miss
        addi r3, r2, 1       ; dependent -> deferred
        halt
    ''')
    base = simulate(inorder_machine(), program)
    fast = simulate(sst_machine(), program)
    print(fast.speedup_over(base))
"""

from repro.config import (
    BranchPredictorConfig,
    CacheConfig,
    CoreKind,
    DeferTrigger,
    DRAMConfig,
    HierarchyConfig,
    InOrderConfig,
    LatencyConfig,
    MachineConfig,
    OoOConfig,
    PredictorKind,
    PrefetcherConfig,
    PrefetcherKind,
    SSTConfig,
    TLBConfig,
    ea_machine,
    inorder_machine,
    ooo_machine,
    scout_machine,
    sst_machine,
)
from repro.errors import (
    AssemblyError,
    ConfigError,
    ExecutionError,
    ReproError,
    SimulatorInvariantError,
)
from repro.isa import Instruction, Op, Program, assemble, run_program
from repro.isa.builder import ProgramBuilder
from repro.baselines import CoreResult, InOrderCore, OoOCore
from repro.core import ExecMode, FailCause, ScoutCause, SSTCore
from repro.memory import MemoryHierarchy
from repro.cmp import Multicore, MulticoreResult, build_shared_hierarchies
from repro.power import (
    AreaWeights,
    EnergyBreakdown,
    EnergyWeights,
    chip_throughput,
    core_area,
    cores_per_die,
    estimate_energy,
)
from repro.sim import (
    Machine,
    ParallelRunner,
    ResultCache,
    SIM_SCHEMA_VERSION,
    SimTask,
    compare_machines,
    run_simulations,
    simulate,
    speedup_table,
    sweep,
    sweep_many,
    verify_against_golden,
)
from repro.stats import Table, geomean
from repro.workloads import (
    array_stream,
    branchy_reduce,
    btree_lookup,
    commercial_suite,
    compute_suite,
    full_suite,
    graph_bfs,
    hash_join,
    matrix_multiply,
    pointer_chase,
    scatter_update,
    store_stream,
)
from repro.trace import Trace, record_trace

__version__ = "1.0.0"

__all__ = [
    # configuration
    "BranchPredictorConfig", "CacheConfig", "CoreKind", "DeferTrigger",
    "DRAMConfig", "HierarchyConfig", "InOrderConfig", "LatencyConfig",
    "MachineConfig", "OoOConfig", "PredictorKind", "PrefetcherConfig",
    "PrefetcherKind", "SSTConfig", "TLBConfig",
    # machine presets
    "ea_machine", "inorder_machine", "ooo_machine", "scout_machine",
    "sst_machine",
    # errors
    "AssemblyError", "ConfigError", "ExecutionError", "ReproError",
    "SimulatorInvariantError",
    # ISA
    "Instruction", "Op", "Program", "ProgramBuilder", "assemble",
    "run_program",
    # cores
    "CoreResult", "InOrderCore", "OoOCore", "SSTCore", "ExecMode",
    "FailCause", "ScoutCause",
    # memory
    "MemoryHierarchy",
    # power / area / CMP
    "AreaWeights", "EnergyBreakdown", "EnergyWeights", "chip_throughput",
    "core_area", "cores_per_die", "estimate_energy",
    "Multicore", "MulticoreResult", "build_shared_hierarchies",
    # traces
    "Trace", "record_trace",
    # simulation
    "Machine", "ParallelRunner", "ResultCache", "SIM_SCHEMA_VERSION",
    "SimTask", "compare_machines", "run_simulations", "simulate",
    "speedup_table", "sweep", "sweep_many", "verify_against_golden",
    # stats
    "Table", "geomean",
    # workloads
    "array_stream", "branchy_reduce", "btree_lookup", "commercial_suite",
    "compute_suite", "full_suite", "graph_bfs", "hash_join",
    "matrix_multiply", "pointer_chase", "scatter_update", "store_stream",
    "__version__",
]
