"""Scatter-update — miss-dependent store addresses.

The update-heavy database pattern: look up a record pointer (a miss),
store through it (so the store's *address* is NA during speculation),
then read a hot shared region that the pointer occasionally aliases.

This is the workload that separates the two memory-speculation
policies (experiment E10):

* conservative — every hot-region load younger than the unknown-address
  store defers, serialising the loop on the pointer miss;
* bypass-and-check — the loads speculate past the store and the rare
  alias (controlled by ``alias_per_1024``) costs a memory-order
  rollback.
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.workloads.base import (
    memoize_workload,
    HEAP_BASE,
    LCG_ADD,
    LCG_MUL,
    RESULT_ADDR,
    check_pow2,
    rng,
)

HOT_WORDS = 64  # the shared region updates occasionally alias


@memoize_workload
def scatter_update(table_words: int = 1 << 14, updates: int = 1024,
                   alias_per_1024: int = 8, seed: int = 9,
                   name: str = "db-scatter") -> Program:
    """Build the update loop.

    ``alias_per_1024``: roughly how many pointers per 1024 land inside
    the hot region (0 = never alias; bypass then never fails).
    """
    check_pow2(table_words, "table_words")
    if not 0 <= alias_per_1024 <= 1024:
        raise ValueError("alias_per_1024 must be in 0..1024")
    random_state = rng(seed)
    builder = ProgramBuilder(name)

    hot_base = HEAP_BASE
    table_base = HEAP_BASE + 8 * HOT_WORDS + (1 << 20)
    target_base = table_base + 8 * table_words + (1 << 20)
    for index in range(HOT_WORDS):
        builder.data_word(hot_base + 8 * index,
                          random_state.randrange(1, 1 << 16))
    for index in range(table_words):
        if random_state.randrange(1024) < alias_per_1024:
            target = hot_base + 8 * random_state.randrange(HOT_WORDS)
        else:
            target = target_base + 8 * random_state.randrange(table_words)
        builder.data_word(table_base + 8 * index, target)

    builder.movi(1, updates)
    builder.movi(2, table_base)
    builder.movi(3, seed | 1)  # LCG state
    builder.movi(4, LCG_MUL)
    builder.movi(5, LCG_ADD)
    builder.movi(6, table_words - 1)
    builder.movi(7, 0)  # accumulator
    builder.movi(14, hot_base)
    builder.label("update")
    builder.mul(3, 3, 4)
    builder.add(3, 3, 5)
    builder.srli(8, 3, 15)
    builder.and_(8, 8, 6)
    builder.slli(8, 8, 3)
    builder.add(8, 8, 2)
    builder.ld(9, 8, 0)  # record pointer (the triggering miss)
    builder.st(3, 9, 0)  # store through it: NA address while missing
    # Hot-region reads that may or may not sit behind that store.
    builder.andi(10, 3, 8 * (HOT_WORDS - 2))
    builder.add(10, 10, 14)
    builder.ld(11, 10, 0)
    builder.add(7, 7, 11)
    builder.ld(12, 10, 8)
    builder.add(7, 7, 12)
    builder.addi(1, 1, -1)
    builder.bne(1, 0, "update")
    builder.movi(13, RESULT_ADDR)
    builder.st(7, 13, 0)
    builder.halt()
    return builder.build()
