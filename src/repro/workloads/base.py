"""Shared helpers for workload generators: heap layout and seeded
pseudo-randomness (generation-time only — the generated programs are
fully deterministic)."""

from __future__ import annotations

import functools
import random

# Data heaps start here; instruction indices live in a separate address
# space inside the hierarchy, so any 8-aligned region works.
HEAP_BASE = 0x0010_0000
# Where workloads store their final result so tests can assert on it.
RESULT_ADDR = 0x0000_8000

# LCG constants the generated code itself uses to produce pseudo-random
# indices with plain MUL/ADD/AND instructions.
LCG_MUL = 6364136223846793005
LCG_ADD = 1442695040888963407


def rng(seed: int) -> random.Random:
    return random.Random(seed)


def memoize_workload(fn):
    """Cache a workload generator's Programs by argument tuple.

    Every generator is a pure function of its arguments (seeded
    randomness only) and a built :class:`~repro.isa.program.Program` is
    immutable, so configuration sweeps that run the same workload on
    many machine variants can share one instance instead of re-laying
    tables of tens of thousands of data words per run.

    Every freshly built program is also run through the static verifier
    (:func:`repro.analysis.proglint.check_program`) before it enters the
    cache — memoization makes this a one-time cost per parameter tuple,
    and a generator bug surfaces as a :class:`~repro.errors.\
ProgramLintError` at build time instead of a silently wrong benchmark.
    """
    cache = {}

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        key = (args, tuple(sorted(kwargs.items())))
        program = cache.get(key)
        if program is None:
            from repro.analysis.proglint import check_program

            program = fn(*args, **kwargs)
            check_program(program)
            cache[key] = program
        return program

    wrapper.cache = cache
    return wrapper


def check_pow2(value: int, what: str) -> None:
    if value <= 0 or value & (value - 1):
        raise ValueError(f"{what} must be a power of two, got {value}")
