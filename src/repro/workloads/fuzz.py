"""Differential program fuzzer: random programs vs. the golden model.

The library's strongest correctness property is that *every* timing
core ends a program in the same architectural state as the functional
interpreter.  This module turns the property-test generator into a
reusable discovery engine:

* :func:`program_shapes` — a hypothesis strategy over program *shapes*
  (register/heap init, a counted loop, a body of safe atoms: masked
  aligned memory ops, data-dependent forward branches, leaf calls,
  long-latency ops, barriers),
* :func:`build_program` — deterministic shape → :class:`Program`
  (proglint-clean by construction),
* :func:`differential_check` — one program through every core factory
  (in-order, two OoO variants, four SST variants, scout-only), a
  block-dispatch-off SST leg, and the vectorized ensemble backend; any
  architectural divergence from the golden interpreter comes back as a
  string verdict,
* :func:`fuzz` — drives hypothesis' ``find`` so a failing shape is
  *shrunk* to a minimal reproducer before being reported.

hypothesis is an optional dependency: the module imports without it,
and :func:`fuzz` raises :class:`~repro.errors.ReproError` if it is
missing.  Runs are derandomized (no database, fixed seed derivation)
so CI failures reproduce locally.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Tuple

try:  # optional dependency — everything but fuzz() works without it
    from hypothesis import HealthCheck, find, settings
    from hypothesis import strategies as st
    from hypothesis.errors import NoSuchExample

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only without hypothesis
    HAVE_HYPOTHESIS = False

from repro.baselines.inorder import InOrderCore
from repro.baselines.ooo import OoOCore
from repro.config import (
    CacheConfig,
    DRAMConfig,
    HierarchyConfig,
    InOrderConfig,
    OoOConfig,
    SSTConfig,
)
from repro.core import SSTCore
from repro.errors import ReproError
from repro.isa.builder import ProgramBuilder
from repro.isa.opcodes import Op
from repro.isa.program import Program
from repro.isa.registers import RA_REG
from repro.memory.hierarchy import MemoryHierarchy
from repro.sim.runner import verify_against_golden

HEAP = 0x100000
HEAP_WORDS = 64
POOL = list(range(1, 9))  # general registers used by generated code
ALU_REG_OPS = [Op.ADD, Op.SUB, Op.MUL, Op.AND, Op.OR, Op.XOR, Op.SLT,
               Op.SLTU, Op.DIV, Op.REM]
ALU_IMM_OPS = [Op.ADDI, Op.ANDI, Op.ORI, Op.XORI, Op.SLTI]
SHIFT_OPS = [Op.SLLI, Op.SRLI, Op.SRAI]
BRANCH_OPS = [Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLTU, Op.BGEU]

MAX_INSTRUCTIONS = 2_000_000


def small_hierarchy(latency: int = 60) -> HierarchyConfig:
    """Caches small enough that tiny fuzzed programs actually miss."""
    return HierarchyConfig(
        l1d=CacheConfig(size_bytes=4 * 1024, assoc=2, hit_latency=2,
                        mshr_entries=16),
        l1i=CacheConfig(size_bytes=4 * 1024, assoc=2, hit_latency=1,
                        mshr_entries=4),
        l2=CacheConfig(size_bytes=32 * 1024, assoc=4, hit_latency=12,
                       mshr_entries=16),
        dram=DRAMConfig(latency=latency, min_interval=2),
    )


# Every machine variant worth differential coverage: any bug in
# deferral, replay ordering, store forwarding, last-writer merge,
# rollback, or scout re-execution diverges one of these from golden.
CORE_FACTORIES: List[Tuple[str, Callable]] = [
    ("inorder", lambda p, h: InOrderCore(p, h, InOrderConfig())),
    ("ooo", lambda p, h: OoOCore(p, h, OoOConfig(
        rob_size=32, iq_size=16, lsq_size=16))),
    ("ooo-oracle", lambda p, h: OoOCore(p, h, OoOConfig(
        rob_size=64, iq_size=21, lsq_size=21,
        perfect_disambiguation=True))),
    ("sst", lambda p, h: SSTCore(p, h, SSTConfig())),
    ("ea-conservative", lambda p, h: SSTCore(p, h, SSTConfig(
        checkpoints=1, bypass_unresolved_stores=False))),
    ("sst-stressed", lambda p, h: SSTCore(p, h, SSTConfig(
        checkpoints=3, dq_size=3, sb_size=2))),
    ("sst-stall", lambda p, h: SSTCore(p, h, SSTConfig(
        dq_size=4, sb_size=4, scout_enabled=False))),
    ("scout-only", lambda p, h: SSTCore(p, h, SSTConfig(
        checkpoints=1, scout_only=True))),
]


def program_shapes():
    """The hypothesis strategy over program shapes."""
    if not HAVE_HYPOTHESIS:
        raise ReproError(
            "the fuzzer needs hypothesis, which is not installed"
        )
    reg = st.sampled_from(POOL)
    reg_or_zero = st.sampled_from([0] + POOL)
    atom = st.one_of(
        st.tuples(st.just("alu"), st.sampled_from(ALU_REG_OPS), reg,
                  reg_or_zero, reg_or_zero),
        st.tuples(st.just("alui"), st.sampled_from(ALU_IMM_OPS), reg, reg,
                  st.integers(-128, 127)),
        st.tuples(st.just("shift"), st.sampled_from(SHIFT_OPS), reg, reg,
                  st.integers(0, 63)),
        st.tuples(st.just("movi"), reg, st.integers(-(2**40), 2**40)),
        st.tuples(st.just("load"), reg, reg),
        st.tuples(st.just("store"), reg, reg),
        st.tuples(st.just("branch"), st.sampled_from(BRANCH_OPS), reg,
                  reg_or_zero, st.integers(1, 3)),
        st.tuples(st.just("call"),),
        st.tuples(st.just("membar"),),
        st.tuples(st.just("prefetch"), reg),
        st.tuples(st.just("nop"),),
    )
    return st.tuples(
        st.lists(st.integers(0, 2**32), min_size=8, max_size=8),
        st.lists(st.integers(0, 2**20), min_size=HEAP_WORDS,
                 max_size=HEAP_WORDS),
        st.integers(1, 5),
        st.lists(atom, min_size=4, max_size=28),
    )


def build_program(shape, name: str = "fuzzed") -> Program:
    """Deterministic shape → Program.  Memory atoms mask and align
    their addresses into a small shared heap, so every generated
    program is proglint-clean and halts."""
    reg_init, heap_init, loop_count, body = shape
    builder = ProgramBuilder(name)
    builder.data_words(HEAP, heap_init)
    for index, value in enumerate(reg_init):
        builder.movi(POOL[index], value)
    builder.movi(10, HEAP)
    builder.movi(11, loop_count)
    builder.label("top")
    label_id = [0]

    def emit(item):
        kind = item[0]
        if kind == "alu":
            _, op, rd, rs1, rs2 = item
            builder.alu(op, rd, rs1, rs2)
        elif kind == "alui":
            _, op, rd, rs1, imm = item
            builder.alui(op, rd, rs1, imm)
        elif kind == "shift":
            _, op, rd, rs1, amount = item
            builder.alui(op, rd, rs1, amount)
        elif kind == "movi":
            _, rd, value = item
            builder.movi(rd, value)
        elif kind == "load":
            _, rd, base = item
            builder.andi(12, base, 8 * (HEAP_WORDS - 1))
            builder.add(12, 12, 10)
            builder.ld(rd, 12, 0)
        elif kind == "store":
            _, src, base = item
            builder.andi(12, base, 8 * (HEAP_WORDS - 1))
            builder.add(12, 12, 10)
            builder.st(src, 12, 0)
        elif kind == "prefetch":
            (_, base) = item
            builder.andi(12, base, 8 * (HEAP_WORDS - 1))
            builder.add(12, 12, 10)
            builder.prefetch(12, 0)
        elif kind == "membar":
            builder.membar()
        elif kind == "nop":
            builder.nop()
        elif kind == "call":
            builder.jal(RA_REG, "leaf")
        else:  # pragma: no cover
            raise AssertionError(kind)

    index = 0
    while index < len(body):
        item = body[index]
        if item[0] == "branch":
            _, op, rs1, rs2, skip = item
            label = f"skip{label_id[0]}"
            label_id[0] += 1
            builder.branch(op, rs1, rs2, label)
            for skipped in body[index + 1:index + 1 + skip]:
                if skipped[0] != "branch":  # keep nesting simple
                    emit(skipped)
            builder.label(label)
            index += 1 + skip
        else:
            emit(item)
            index += 1

    builder.addi(11, 11, -1)
    builder.bne(11, 0, "top")
    builder.halt()
    builder.label("leaf")
    builder.xor(1, 1, 2)
    builder.addi(2, 2, 3)
    builder.jalr(0, RA_REG, 0)
    return builder.build()


def differential_check(program: Program) -> Optional[str]:
    """Run ``program`` through every machine variant; return a verdict
    string on the first architectural divergence, ``None`` if all
    agree with the golden interpreter."""
    import os

    for name, factory in CORE_FACTORIES:
        hierarchy = MemoryHierarchy(small_hierarchy())
        core = factory(program, hierarchy)
        try:
            result = core.run(max_instructions=MAX_INSTRUCTIONS)
            result.core_name = name
            verify_against_golden(result, program)
        except ReproError as error:
            return f"{name}: {error}"

    # Block dispatch off: the interpreted SST path must agree with the
    # compiled one bit-for-bit.
    saved = os.environ.get("REPRO_BLOCK_DISPATCH")
    os.environ["REPRO_BLOCK_DISPATCH"] = "0"
    try:
        hierarchy = MemoryHierarchy(small_hierarchy())
        core = SSTCore(program, hierarchy, SSTConfig())
        try:
            result = core.run(max_instructions=MAX_INSTRUCTIONS)
            result.core_name = "sst-nodispatch"
            verify_against_golden(result, program)
        except ReproError as error:
            return f"sst-nodispatch: {error}"
    finally:
        if saved is None:
            os.environ.pop("REPRO_BLOCK_DISPATCH", None)
        else:
            os.environ["REPRO_BLOCK_DISPATCH"] = saved

    # Vectorized ensemble backend vs. the scalar interpreter.
    from repro.isa.interpreter import run_program
    from repro.sim.ensemble import numpy_available, run_ensemble

    if numpy_available():
        try:
            [lane] = run_ensemble([program], backend="numpy")
        except ReproError as error:
            return f"ensemble: {error}"
        if lane is None:
            return "ensemble: lane produced no result"
        golden = run_program(program)
        if lane.state.regs != golden.regs:
            return "ensemble: register state diverged from golden"
        if lane.state.memory != golden.memory:
            return "ensemble: memory state diverged from golden"
    return None


@dataclasses.dataclass
class FuzzFailure:
    """A shrunk counterexample: the minimal shape hypothesis found,
    the program it builds, and the first core's verdict."""

    shape: tuple
    program: Program
    detail: str

    def summary(self) -> dict:
        return {
            "detail": self.detail,
            "instructions": len(self.program.instructions),
            "loop_count": self.shape[2],
            "body_atoms": len(self.shape[3]),
            "listing": [str(inst) for inst in self.program.instructions],
        }


def corrupt(program: Program) -> Program:
    """Flip the program's first SUB to ADD — a seeded wrong-core stand-
    in the tests use to demonstrate end-to-end shrinking."""
    instructions = list(program.instructions)
    for index, inst in enumerate(instructions):
        if inst.op is Op.SUB:
            instructions[index] = dataclasses.replace(inst, op=Op.ADD)
            break
    else:
        return program
    return Program(instructions, data=program.data,
                   name=program.name + "-corrupt",
                   secret_ranges=program.secret_ranges)


def fuzz(max_examples: int = 50,
         check: Callable[[Program], Optional[str]] = differential_check,
         ) -> Optional[FuzzFailure]:
    """Search ``max_examples`` random shapes for one whose program
    fails ``check``; shrink it and return a :class:`FuzzFailure`, or
    ``None`` when no counterexample is found.

    Derandomized: the same ``max_examples`` explores the same shapes on
    every run, so a CI failure reproduces locally with no seed to copy.
    """
    if not HAVE_HYPOTHESIS:
        raise ReproError(
            "the fuzzer needs hypothesis, which is not installed"
        )

    def is_failing(shape) -> bool:
        return check(build_program(shape)) is not None

    try:
        shape = find(
            program_shapes(), is_failing,
            settings=settings(
                max_examples=max_examples, deadline=None,
                database=None, derandomize=True,
                suppress_health_check=list(HealthCheck),
            ),
        )
    except NoSuchExample:
        return None
    program = build_program(shape)
    detail = check(program)
    return FuzzFailure(shape=shape, program=program,
                       detail=detail or "unreproducible after shrink")


__all__ = [
    "CORE_FACTORIES",
    "FuzzFailure",
    "HAVE_HYPOTHESIS",
    "build_program",
    "corrupt",
    "differential_check",
    "fuzz",
    "program_shapes",
    "small_hierarchy",
]
