"""Synthetic workload generators.

The paper evaluates SST on commercial benchmarks (OLTP, enterprise/web,
database) plus SPEC-like codes.  Those traces are proprietary, so this
package generates parameterised programs that reproduce the *regimes*
the mechanisms respond to:

==================  =============================  =======================
generator           stands in for                  regime it creates
==================  =============================  =======================
pointer_chase       OLTP index/row chasing         dependent-miss chains,
                                                   K independent chains =
                                                   controllable MLP
hash_join           DB hash join probe             independent random
                                                   misses, high MLP
btree_lookup        index/tree search              dependent loads + data-
                                                   dependent branches
store_stream        logging / web session state    store-buffer pressure
array_stream        SPEC-fp streaming              sequential misses,
                                                   prefetch-friendly
branchy_reduce      SPEC-int control flow          unpredictable branches
                                                   fed by missing loads
matrix_multiply     dense compute kernel           cache-resident, ILP-
                                                   bound (OoO-friendly)
==================  =============================  =======================

All generators are deterministic given ``seed``.
"""

from repro.workloads.pointer_chase import pointer_chase
from repro.workloads.hash_join import hash_join
from repro.workloads.btree import btree_lookup
from repro.workloads.streaming import array_stream, store_stream
from repro.workloads.branchy import branchy_reduce
from repro.workloads.matrix import matrix_multiply
from repro.workloads.scatter import scatter_update
from repro.workloads.graph_bfs import graph_bfs
from repro.workloads.spec_leak import (
    ANALYSIS_WORKLOADS,
    spec_leak_gadget,
    spec_leak_safe,
    spec_leak_store,
)
from repro.workloads.suite import (
    commercial_suite,
    compute_suite,
    full_suite,
    WORKLOAD_FACTORIES,
)

__all__ = [
    "pointer_chase",
    "hash_join",
    "btree_lookup",
    "array_stream",
    "store_stream",
    "branchy_reduce",
    "matrix_multiply",
    "scatter_update",
    "graph_bfs",
    "spec_leak_gadget",
    "spec_leak_safe",
    "spec_leak_store",
    "commercial_suite",
    "compute_suite",
    "full_suite",
    "ANALYSIS_WORKLOADS",
    "WORKLOAD_FACTORIES",
]
