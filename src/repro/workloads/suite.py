"""Workload suites at standard scales.

Three scales trade fidelity for runtime:

* ``tiny``  — unit/integration tests (a few thousand dynamic instrs),
* ``small`` — examples and quick looks,
* ``bench`` — the benchmark harness behind every EXPERIMENTS.md row.

The *commercial suite* is the miss-dominated mix standing in for the
paper's OLTP/DB/app-server workloads; the *compute suite* is the
SPEC-like contrast.  Working-set sizes are chosen against the reduced
bench hierarchy (see ``repro.experiments.bench_env``) so the
commercial mix
actually misses in the L2, like the paper's workloads did on ROCK-era
caches.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import ConfigError
from repro.isa.program import Program
from repro.workloads.branchy import branchy_reduce
from repro.workloads.btree import btree_lookup
from repro.workloads.hash_join import hash_join
from repro.workloads.matrix import matrix_multiply
from repro.workloads.pointer_chase import pointer_chase
from repro.workloads.streaming import array_stream, store_stream

_SCALES = ("tiny", "small", "bench")


def _scaled(tiny, small, bench):
    return {"tiny": tiny, "small": small, "bench": bench}


# name -> scale -> kwargs
_COMMERCIAL_PARAMS: Dict[str, Dict[str, dict]] = {
    "oltp-chase": _scaled(
        dict(chains=4, nodes_per_chain=64, hops=96),
        dict(chains=4, nodes_per_chain=512, hops=1024),
        dict(chains=4, nodes_per_chain=2048, hops=4096),
    ),
    "db-hashjoin": _scaled(
        dict(table_words=1 << 10, probes=192),
        dict(table_words=1 << 14, probes=1536),
        dict(table_words=1 << 16, probes=5000),
    ),
    "index-btree": _scaled(
        dict(array_words=1 << 9, lookups=48),
        dict(array_words=1 << 13, lookups=320),
        dict(array_words=1 << 15, lookups=512),
    ),
    "web-storelog": _scaled(
        dict(records=96, payload_words=6, table_words=1 << 10),
        dict(records=768, payload_words=8, table_words=1 << 14),
        dict(records=2500, payload_words=8, table_words=1 << 16),
    ),
}

_COMPUTE_PARAMS: Dict[str, Dict[str, dict]] = {
    "fp-stream": _scaled(
        dict(words=1 << 9),
        dict(words=1 << 13),
        dict(words=1 << 15),
    ),
    "int-branchy": _scaled(
        dict(iterations=192, data_words=1 << 9),
        dict(iterations=1536, data_words=1 << 13),
        dict(iterations=5000, data_words=1 << 15),
    ),
    "compute-matmul": _scaled(
        dict(n=6),
        dict(n=12),
        dict(n=20),
    ),
}

WORKLOAD_FACTORIES: Dict[str, Callable[..., Program]] = {
    "oltp-chase": pointer_chase,
    "db-hashjoin": hash_join,
    "index-btree": btree_lookup,
    "web-storelog": store_stream,
    "fp-stream": array_stream,
    "int-branchy": branchy_reduce,
    "compute-matmul": matrix_multiply,
}


def _build(params: Dict[str, Dict[str, dict]], scale: str) -> List[Program]:
    if scale not in _SCALES:
        raise ConfigError(f"unknown scale {scale!r}; pick one of {_SCALES}")
    return [
        WORKLOAD_FACTORIES[name](**kwargs_by_scale[scale])
        for name, kwargs_by_scale in params.items()
    ]


def commercial_suite(scale: str = "small") -> List[Program]:
    """The miss-dominated mix (the paper's headline workloads)."""
    return _build(_COMMERCIAL_PARAMS, scale)


def compute_suite(scale: str = "small") -> List[Program]:
    """The SPEC-like contrast workloads."""
    return _build(_COMPUTE_PARAMS, scale)


def full_suite(scale: str = "small") -> List[Program]:
    return commercial_suite(scale) + compute_suite(scale)


def suite_params(scale: str = "small") -> Dict[str, dict]:
    """Generator kwargs per workload at ``scale`` (without ``seed`` /
    ``name``), for callers that build their own parameter-varied
    instances — e.g. the ensemble backend's seed-varied lanes."""
    if scale not in _SCALES:
        raise ConfigError(f"unknown scale {scale!r}; pick one of {_SCALES}")
    merged = {**_COMMERCIAL_PARAMS, **_COMPUTE_PARAMS}
    return {name: dict(by_scale[scale]) for name, by_scale in merged.items()}
