"""Spectre-style bounds-check-bypass gadgets for the taint analysis.

ROCK's execute-ahead strand runs past a deferred branch on predicted
control flow; its stores are contained in the store buffer and squashed
on rollback, but its *cache fills* survive.  These workloads seed that
exact leak shape so the static pass (:mod:`repro.analysis.taint`) and
the dynamic tracker (:mod:`repro.analysis.taint_tracker`) have a known
positive, a known negative, and a known imprecision case:

``spec_leak_gadget``
    The classic transmit: an out-of-bounds index reads a declared
    secret under a deferred bounds check, then uses it as the *address*
    of a second load.  The line it fills indexes the secret — flagged
    statically, observed dynamically on both SST and scout machines.

``spec_leak_safe``
    Same transient window, but the secret only ever flows into register
    values and store *data* — never an address.  Zero gadgets, zero
    dynamic records: the store buffer contains the leak entirely.

``spec_leak_store``
    The transmit is a tainted-address *store*.  Statically a gadget
    (the address encodes the secret), but on the SST machine the ahead
    strand parks stores in the store buffer, so no fill ever happens —
    a static-only verdict the report records as imprecision, not error.
    A scout machine *does* observe it: scout stores prefetch their line
    for ownership.

The choreography that makes the transient window real on a cold
machine (no predictor training needed — the seed bimodal counters
predict TAKEN):

1. ``prefetch A[idx]`` warms the secret element so the transient load
   is an L1 hit and resolves inside the window.
2. ``ld idx`` misses (episode A); the ``membar`` right behind it stalls
   the ahead strand, so episode A commits ``idx`` cleanly instead of
   deferring the whole dependent chain into the replay strand (where
   the older bounds check would replay first and squash the body
   before it runs).
3. The bound's address is computed *from* ``idx`` (``idx << 4``), so a
   scout pass over episode A cannot prefetch it — the bound load is
   guaranteed to miss and open episode B with ``idx`` available.
4. In episode B the bounds check ``blt idx, bound`` has an NA operand,
   defers, and the ahead strand follows the predicted-taken edge into
   the body.  Architecturally ``idx >= bound``, so replay detects the
   mispredict and rolls the episode back — after the transmit access
   already touched the hierarchy.
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.workloads.base import HEAP_BASE, memoize_workload

# Data image layout (byte offsets from HEAP_BASE).
OFF_IDX = 0        # the attacker-controlled index (16: out of bounds)
OFF_RES = 24       # architectural result slot (asserted 0 by tests)
OFF_LEAK = 32      # transient store target (squashed, never visible)
OFF_BOUND = 256    # the bounds-check limit (8), reached data-dependently
OFF_A = 512        # 8-word public table A
OFF_SECRET = 576   # 16 secret words right past A — A[16] lands here
OFF_B = 1024       # probe table B, indexed by (secret & 63) << 6

SECRET_VALUE = 42
# A has 8 entries; A[16] = OFF_A + 128 = OFF_SECRET + 64 lands squarely
# inside the secret region.
IDX_VALUE = 16
BOUND_VALUE = 8

_R_DATA, _R_A, _R_B = 10, 20, 21
_R_IDX, _R_BOUND, _R_BADDR = 2, 3, 4
_R_SECRET, _R_PROBE_ADDR, _R_PROBE, _R_ACC = 5, 6, 7, 8


def _prologue(name: str) -> ProgramBuilder:
    builder = ProgramBuilder(name)
    builder.data_word(HEAP_BASE + OFF_IDX, IDX_VALUE)
    builder.data_word(HEAP_BASE + OFF_BOUND, BOUND_VALUE)
    builder.data_words(
        HEAP_BASE + OFF_A, [100 + n for n in range(BOUND_VALUE)]
    )
    builder.secret_words(
        HEAP_BASE + OFF_SECRET, [SECRET_VALUE] * 16
    )

    builder.movi(_R_DATA, HEAP_BASE)
    builder.movi(_R_A, HEAP_BASE + OFF_A)
    builder.movi(_R_B, HEAP_BASE + OFF_B)
    builder.movi(_R_ACC, 0)
    # Warm the secret element so the transient load hits L1.
    builder.prefetch(_R_A, IDX_VALUE * 8)
    builder.ld(_R_IDX, _R_DATA, OFF_IDX)   # cold miss: episode A
    builder.membar()                       # commit idx before episode B
    builder.slli(_R_BADDR, _R_IDX, 4)      # bound addr depends on idx,
    builder.add(_R_BADDR, _R_BADDR, _R_DATA)  # so scout can't prewarm it
    builder.ld(_R_BOUND, _R_BADDR, 0)      # cold miss: episode B
    builder.blt(_R_IDX, _R_BOUND, "body")  # NA bound: predicted TAKEN
    builder.jal(0, "done")
    builder.label("body")
    builder.slli(_R_SECRET, _R_IDX, 3)
    builder.add(_R_SECRET, _R_SECRET, _R_A)
    builder.ld(_R_SECRET, _R_SECRET, 0)    # A[idx] — reads the secret
    builder.st(_R_SECRET, _R_DATA, OFF_LEAK)  # store-buffer contained
    return builder


def _probe_address(builder: ProgramBuilder) -> None:
    builder.andi(_R_PROBE_ADDR, _R_SECRET, 63)
    builder.slli(_R_PROBE_ADDR, _R_PROBE_ADDR, 6)
    builder.add(_R_PROBE_ADDR, _R_PROBE_ADDR, _R_B)


def _epilogue(builder: ProgramBuilder) -> Program:
    builder.label("done")
    builder.st(_R_ACC, _R_DATA, OFF_RES)
    builder.halt()
    return builder.build()


@memoize_workload
def spec_leak_gadget(name: str = "spec-leak-gadget") -> Program:
    """The positive case: tainted-address load fills a secret-indexed
    line before the squash."""
    builder = _prologue(name)
    _probe_address(builder)
    builder.ld(_R_PROBE, _R_PROBE_ADDR, 0)  # the gadget access
    builder.add(_R_ACC, _R_ACC, _R_PROBE)
    return _epilogue(builder)


@memoize_workload
def spec_leak_safe(name: str = "spec-leak-safe") -> Program:
    """The negative case: the secret flows through registers and store
    *data* only — containment holds, nothing to flag."""
    builder = _prologue(name)
    builder.add(_R_ACC, _R_ACC, _R_SECRET)
    return _epilogue(builder)


@memoize_workload
def spec_leak_store(name: str = "spec-leak-store") -> Program:
    """The imprecision case: a tainted-address *store*.  Static flags
    it; the SST ahead strand contains it in the store buffer (no fill),
    while scout mode prefetches the line for ownership and leaks."""
    builder = _prologue(name)
    _probe_address(builder)
    builder.st(_R_ACC, _R_PROBE_ADDR, 0)
    return _epilogue(builder)


# Deliberately NOT part of WORKLOAD_FACTORIES: these are analysis
# subjects, not benchmark members — the suite registry is asserted to
# match the performance suite exactly, and ensemble tests parametrize
# over it.  The CLI's ``lint`` subcommand and the e19 experiment merge
# this registry in.
ANALYSIS_WORKLOADS = {
    "spec-leak-gadget": spec_leak_gadget,
    "spec-leak-safe": spec_leak_safe,
    "spec-leak-store": spec_leak_store,
}

__all__ = [
    "ANALYSIS_WORKLOADS",
    "spec_leak_gadget",
    "spec_leak_safe",
    "spec_leak_store",
]
