"""Sorted-index lookups (binary search) — the tree-walk pattern.

Each lookup binary-searches a sorted array: ~log2(N) *dependent* loads
whose comparison outcome steers a hard-to-predict branch.  Lookups are
independent of each other, so an SST core can overlap the tail of one
walk with the head of the next — but deferred-branch mispredicts inside
a walk cap how far speculation survives.  This is the workload that
exercises speculation *failure* paths hardest.
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.workloads.base import (
    memoize_workload,
    HEAP_BASE,
    LCG_ADD,
    LCG_MUL,
    RESULT_ADDR,
    check_pow2,
)


@memoize_workload
def btree_lookup(array_words: int = 1 << 14, lookups: int = 256,
                 seed: int = 3, name: str = "index-btree") -> Program:
    """Binary-search ``lookups`` pseudo-random keys in a sorted array."""
    check_pow2(array_words, "array_words")
    builder = ProgramBuilder(name)

    # Sorted array: value at index i is 2*i, so half the probed keys
    # (odd ones) are absent — both branch directions get exercised.
    for index in range(array_words):
        builder.data_word(HEAP_BASE + 8 * index, 2 * index)

    builder.movi(1, lookups)
    builder.movi(2, HEAP_BASE)
    builder.movi(3, seed * 2 + 1)  # LCG state
    builder.movi(4, LCG_MUL)
    builder.movi(5, LCG_ADD)
    builder.movi(6, 2 * array_words - 1)  # key mask
    builder.movi(7, 0)  # accumulator

    builder.label("lookup")
    builder.mul(3, 3, 4)
    builder.add(3, 3, 5)
    builder.srli(9, 3, 13)
    builder.and_(9, 9, 6)  # r9 = key
    builder.movi(10, 0)  # lo
    builder.movi(11, array_words)  # hi
    builder.label("search")
    builder.bge(10, 11, "found")
    builder.add(12, 10, 11)
    builder.srli(12, 12, 1)  # mid
    builder.slli(13, 12, 3)
    builder.add(13, 13, 2)
    builder.ld(14, 13, 0)  # dependent probe
    builder.blt(14, 9, "go_right")
    builder.add(11, 12, 0)  # hi = mid  (add rX, rY, r0 = move)
    builder.jal(0, "search")
    builder.label("go_right")
    builder.addi(10, 12, 1)  # lo = mid + 1
    builder.jal(0, "search")
    builder.label("found")
    builder.add(7, 7, 10)
    builder.addi(1, 1, -1)
    builder.bne(1, 0, "lookup")
    builder.movi(15, RESULT_ADDR)
    builder.st(7, 15, 0)
    builder.halt()
    return builder.build()
