"""Branchy integer reduction — the SPEC-int-like control-flow pattern.

Each iteration loads a pseudo-random word and branches on its low bits
through a small tree of data-dependent branches.  When the load misses,
those branches have NA operands, so the SST core *predicts* them and
must validate at replay — with ~50/50 data the prediction often fails,
bounding speculation depth.  This workload drives the failure-rate rows
of the outcome table (E7) and the predictor-sensitivity experiment
(E12).
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.workloads.base import (
    memoize_workload,
    HEAP_BASE,
    LCG_ADD,
    LCG_MUL,
    RESULT_ADDR,
    check_pow2,
    rng,
)


@memoize_workload
def branchy_reduce(iterations: int = 1024, data_words: int = 1 << 13,
                   biased: bool = False, seed: int = 6,
                   name: str = "int-branchy") -> Program:
    """Reduce ``iterations`` random words through data-dependent branches.

    ``biased=True`` makes the branch data ~94% zero so predictors do
    well — the contrast point for the predictor-sensitivity experiment.
    """
    check_pow2(data_words, "data_words")
    random_state = rng(seed)
    builder = ProgramBuilder(name)
    for index in range(data_words):
        if biased:
            value = 0 if random_state.random() < 0.94 else 1
            value |= random_state.randrange(1 << 10) << 4
        else:
            value = random_state.randrange(1 << 12)
        builder.data_word(HEAP_BASE + 8 * index, value)

    builder.movi(1, iterations)
    builder.movi(2, HEAP_BASE)
    builder.movi(3, seed | 1)  # LCG state
    builder.movi(4, LCG_MUL)
    builder.movi(5, LCG_ADD)
    builder.movi(6, data_words - 1)
    builder.movi(7, 0)  # accumulator
    builder.label("iter")
    builder.mul(3, 3, 4)
    builder.add(3, 3, 5)
    builder.srli(8, 3, 9)
    builder.and_(8, 8, 6)
    builder.slli(8, 8, 3)
    builder.add(8, 8, 2)
    builder.ld(9, 8, 0)  # the data the branches depend on
    builder.andi(10, 9, 1)
    builder.beq(10, 0, "even_path")
    # odd path: a short multiply chain.
    builder.mul(11, 9, 4)
    builder.add(7, 7, 11)
    builder.andi(12, 9, 2)
    builder.beq(12, 0, "join")
    builder.addi(7, 7, 5)
    builder.jal(0, "join")
    builder.label("even_path")
    builder.sub(7, 7, 9)
    builder.label("join")
    builder.addi(1, 1, -1)
    builder.bne(1, 0, "iter")
    builder.movi(13, RESULT_ADDR)
    builder.st(7, 13, 0)
    builder.halt()
    return builder.build()
