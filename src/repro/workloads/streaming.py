"""Streaming kernels.

``array_stream`` — the SPEC-fp-like sweep: sequential loads with a
multiply-accumulate, optionally writing a result stream.  Misses are
regular (one per line), so execute-ahead, scout and a hardware stride
prefetcher all capture them; this is the workload where the *cheap*
techniques close most of the gap.

``store_stream`` — the logging/session-state pattern: each record does
one missing table load then bursts ``payload_words`` stores.  During a
speculative episode the burst fills the speculative store buffer, which
is what drives the SB-size experiment (E8).
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.workloads.base import (
    memoize_workload,
    HEAP_BASE,
    LCG_ADD,
    LCG_MUL,
    RESULT_ADDR,
    check_pow2,
    rng,
)


@memoize_workload
def array_stream(words: int = 1 << 14, scale: int = 3,
                 write_back: bool = False, seed: int = 4,
                 name: str = "fp-stream") -> Program:
    """Sweep ``words`` sequential words with a multiply-accumulate."""
    if words < 1:
        raise ValueError("words must be >= 1")
    random_state = rng(seed)
    builder = ProgramBuilder(name)
    for index in range(words):
        builder.data_word(HEAP_BASE + 8 * index, random_state.randrange(1 << 20))
    out_base = HEAP_BASE + 8 * words + (1 << 20)

    builder.movi(1, words)
    builder.movi(2, HEAP_BASE)
    builder.movi(3, 0)  # accumulator
    builder.movi(4, scale)
    if write_back:
        builder.movi(5, out_base)
    builder.label("sweep")
    builder.ld(6, 2, 0)
    builder.mul(6, 6, 4)
    builder.add(3, 3, 6)
    if write_back:
        builder.st(6, 5, 0)
        builder.addi(5, 5, 8)
    builder.addi(2, 2, 8)
    builder.addi(1, 1, -1)
    builder.bne(1, 0, "sweep")
    builder.movi(7, RESULT_ADDR)
    builder.st(3, 7, 0)
    builder.halt()
    return builder.build()


@memoize_workload
def store_stream(records: int = 512, payload_words: int = 8,
                 table_words: int = 1 << 14, seed: int = 5,
                 name: str = "web-storelog") -> Program:
    """Per record: one random table load, then a burst of stores."""
    check_pow2(table_words, "table_words")
    if payload_words < 1:
        raise ValueError("payload_words must be >= 1")
    random_state = rng(seed)
    builder = ProgramBuilder(name)
    for index in range(table_words):
        builder.data_word(HEAP_BASE + 8 * index, random_state.randrange(1 << 16))
    log_base = HEAP_BASE + 8 * table_words + (1 << 20)

    builder.movi(1, records)
    builder.movi(2, HEAP_BASE)
    builder.movi(3, seed | 1)  # LCG state
    builder.movi(4, LCG_MUL)
    builder.movi(5, LCG_ADD)
    builder.movi(6, table_words - 1)
    builder.movi(7, log_base)  # log cursor
    builder.movi(12, 0)  # dependent-use accumulator
    builder.label("record")
    builder.mul(3, 3, 4)
    builder.add(3, 3, 5)
    builder.srli(8, 3, 11)
    builder.and_(8, 8, 6)
    builder.slli(8, 8, 3)
    builder.add(8, 8, 2)
    builder.ld(9, 8, 0)  # session lookup (the triggering miss)
    builder.add(12, 12, 9)  # one dependent use (deferred under the miss)
    for word in range(payload_words):
        # Payload derives from the record counter, not the lookup, so
        # the store burst is *independent* of the miss: the stores
        # execute speculatively and fill the store buffer — the SB is
        # the resource this workload pressures.
        builder.addi(10, 1, word)
        builder.st(10, 7, 8 * word)
    builder.addi(7, 7, 8 * payload_words)
    builder.addi(1, 1, -1)
    builder.bne(1, 0, "record")
    builder.movi(11, RESULT_ADDR)
    builder.st(7, 11, 0)
    builder.halt()
    return builder.build()
