"""Pointer chasing — the OLTP-style miss pattern.

``chains`` independent linked lists are traversed round-robin in one
loop.  Within a chain every load's *address* depends on the previous
load (a dependent-miss chain no runahead technique can parallelise);
across chains the loads are independent, so the achievable MLP equals
``chains``.  Sweeping ``chains`` from 1 upward is the cleanest way to
show where SST's benefit comes from.

Node layout: 16 bytes — ``[next_ptr, payload]``.  Nodes are placed in a
random permutation of their region so successive hops land on different
cache lines/pages.
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.workloads.base import HEAP_BASE, RESULT_ADDR, rng, memoize_workload

_NODE_BYTES = 16
_MAX_CHAINS = 8


@memoize_workload
def pointer_chase(chains: int = 4, nodes_per_chain: int = 256,
                  hops: int = 512, seed: int = 1,
                  name: str = "oltp-chase") -> Program:
    """Build the multi-chain pointer-chase program.

    ``hops`` counts loop iterations; each iteration advances every
    chain by one node (wrapping around its cycle).
    """
    if not 1 <= chains <= _MAX_CHAINS:
        raise ValueError(f"chains must be in 1..{_MAX_CHAINS}")
    if nodes_per_chain < 2:
        raise ValueError("nodes_per_chain must be >= 2")
    random_state = rng(seed)
    builder = ProgramBuilder(name)

    heads = []
    for chain in range(chains):
        base = HEAP_BASE + chain * nodes_per_chain * _NODE_BYTES * 2
        order = list(range(nodes_per_chain))
        random_state.shuffle(order)
        # node order[i] -> node order[i+1]; last wraps to first.
        for position, node in enumerate(order):
            nxt = order[(position + 1) % nodes_per_chain]
            addr = base + node * _NODE_BYTES
            builder.data_word(addr, base + nxt * _NODE_BYTES)
            builder.data_word(addr + 8, random_state.randrange(1, 1000))
        heads.append(base + order[0] * _NODE_BYTES)

    # r1 = hop counter, r2 = accumulator, r10.. = chain cursors.
    builder.movi(1, hops)
    builder.movi(2, 0)
    for chain, head in enumerate(heads):
        builder.movi(10 + chain, head)
    builder.label("loop")
    for chain in range(chains):
        cursor = 10 + chain
        builder.ld(cursor, cursor, 0)  # cursor = cursor->next
        builder.ld(20 + chain, cursor, 8)  # payload of the new node
        builder.add(2, 2, 20 + chain)
    builder.addi(1, 1, -1)
    builder.bne(1, 0, "loop")
    builder.movi(3, RESULT_ADDR)
    builder.st(2, 3, 0)
    builder.halt()
    return builder.build()
