"""Dense matrix multiply — the compute-bound contrast point.

Cache-resident, multiply-heavy, perfectly predictable branches: the
regime where a big out-of-order window wins on raw ILP extraction and
SST's speculation machinery mostly idles.  Keeping this workload in the
suite is what makes the E2 comparison honest — the paper's claim is
about *commercial* (miss-bound) codes, not a uniform win.
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.workloads.base import HEAP_BASE, RESULT_ADDR, rng, memoize_workload


@memoize_workload
def matrix_multiply(n: int = 12, seed: int = 7,
                    name: str = "compute-matmul") -> Program:
    """C = A @ B for dense n×n 64-bit matrices (ijk order)."""
    if n < 2:
        raise ValueError("n must be >= 2")
    random_state = rng(seed)
    builder = ProgramBuilder(name)
    a_base = HEAP_BASE
    b_base = a_base + 8 * n * n
    c_base = b_base + 8 * n * n
    for index in range(n * n):
        builder.data_word(a_base + 8 * index, random_state.randrange(1 << 8))
        builder.data_word(b_base + 8 * index, random_state.randrange(1 << 8))

    row_bytes = 8 * n
    builder.movi(1, 0)  # i (as byte offset of row: i*row_bytes)
    builder.movi(15, n * row_bytes)  # i limit
    builder.movi(16, row_bytes)
    builder.movi(20, a_base)
    builder.movi(21, b_base)
    builder.movi(22, c_base)
    builder.label("i_loop")
    builder.movi(2, 0)  # j byte offset within a row
    builder.label("j_loop")
    builder.movi(4, 0)  # acc
    builder.movi(3, 0)  # k byte offset within a row
    builder.add(10, 20, 1)  # &A[i][0]
    builder.add(11, 21, 2)  # &B[0][j]
    builder.label("k_loop")
    builder.add(12, 10, 3)
    builder.ld(5, 12, 0)  # A[i][k]
    builder.ld(6, 11, 0)  # B[k][j]
    builder.mul(5, 5, 6)
    builder.add(4, 4, 5)
    builder.add(11, 11, 16)  # next row of B
    builder.addi(3, 3, 8)
    builder.blt(3, 16, "k_loop")
    builder.add(13, 22, 1)
    builder.add(13, 13, 2)
    builder.st(4, 13, 0)  # C[i][j]
    builder.addi(2, 2, 8)
    builder.blt(2, 16, "j_loop")
    builder.add(1, 1, 16)
    builder.blt(1, 15, "i_loop")
    # Checksum C into the result slot.
    total = n * n
    builder.movi(1, total)
    builder.movi(2, c_base)
    builder.movi(4, 0)
    builder.label("sum")
    builder.ld(5, 2, 0)
    builder.add(4, 4, 5)
    builder.addi(2, 2, 8)
    builder.addi(1, 1, -1)
    builder.bne(1, 0, "sum")
    builder.movi(6, RESULT_ADDR)
    builder.st(4, 6, 0)
    builder.halt()
    return builder.build()
