"""Hash-join probe — the database miss pattern.

Each probe computes a pseudo-random bucket index with a register-only
LCG, then loads the bucket.  Consecutive probes are data-independent,
so an SST/EA core keeps issuing probe misses while the first is
outstanding — the high-MLP commercial pattern where the paper's
mechanism shines.  A fraction of probes take a second dependent hop
(``chased_fraction`` over 8), modelling bucket chains.
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.workloads.base import (
    memoize_workload,
    HEAP_BASE,
    LCG_ADD,
    LCG_MUL,
    RESULT_ADDR,
    check_pow2,
    rng,
)


@memoize_workload
def hash_join(table_words: int = 1 << 15, probes: int = 2048,
              chased_fraction: int = 0, seed: int = 2,
              name: str = "db-hashjoin") -> Program:
    """Build the probe loop over a ``table_words``-word bucket table.

    ``chased_fraction``: 0 disables bucket chains; k in 1..8 makes
    roughly k/8 of the probes take one extra dependent load through the
    bucket's stored pointer.
    """
    check_pow2(table_words, "table_words")
    if not 0 <= chased_fraction <= 8:
        raise ValueError("chased_fraction must be in 0..8")
    random_state = rng(seed)
    builder = ProgramBuilder(name)

    # Bucket contents: a payload in the low word; bucket i also embeds a
    # pointer to a random other bucket for the chained case.
    for index in range(table_words):
        target = random_state.randrange(table_words)
        # Pointer stored pre-scaled so the chain hop is one LD.
        builder.data_word(HEAP_BASE + 8 * index, HEAP_BASE + 8 * target)

    builder.movi(1, probes)  # probe counter
    builder.movi(2, HEAP_BASE)  # table base
    builder.movi(3, seed * 2 + 1)  # LCG state
    builder.movi(4, LCG_MUL)
    builder.movi(5, LCG_ADD)
    builder.movi(6, table_words - 1)  # index mask
    builder.movi(7, 0)  # accumulator
    builder.movi(15, chased_fraction)
    builder.label("probe")
    builder.mul(3, 3, 4)
    builder.add(3, 3, 5)
    builder.srli(8, 3, 17)  # use high-ish bits for the index
    builder.and_(8, 8, 6)
    builder.slli(8, 8, 3)
    builder.add(8, 8, 2)
    builder.ld(9, 8, 0)  # the probe miss
    builder.add(7, 7, 9)
    if chased_fraction:
        builder.andi(10, 3, 7)
        builder.bge(10, 15, "no_chain")
        builder.ld(11, 9, 0)  # dependent hop through the bucket pointer
        builder.add(7, 7, 11)
        builder.label("no_chain")
    builder.addi(1, 1, -1)
    builder.bne(1, 0, "probe")
    builder.movi(12, RESULT_ADDR)
    builder.st(7, 12, 0)
    builder.halt()
    return builder.build()
