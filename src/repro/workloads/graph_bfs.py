"""Breadth-first search over a CSR graph — the graph-analytics pattern.

Per frontier vertex: two dependent loads into the CSR offsets, then a
run of neighbour loads (independent of each other — MLP within a
vertex), then a visited-bitmap load + conditional store per neighbour
(data-dependent branch + speculative store).  It mixes every mechanism
the SST core has: dependent chains, bursts of independent misses,
NA-operand branches, and speculative stores.

The program is the classic array-queue BFS::

    queue[head..tail), visited[v], csr_offsets[v], csr_edges[e]

and terminates when the queue drains (every vertex reachable from the
root is enqueued exactly once, so termination is structural).
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.workloads.base import HEAP_BASE, RESULT_ADDR, rng, memoize_workload


@memoize_workload
def graph_bfs(vertices: int = 512, avg_degree: int = 4, seed: int = 10,
              name: str = "graph-bfs") -> Program:
    """BFS from vertex 0 over a random connected digraph."""
    if vertices < 2:
        raise ValueError("vertices must be >= 2")
    if avg_degree < 1:
        raise ValueError("avg_degree must be >= 1")
    random_state = rng(seed)

    # Random graph, made connected by a random spanning chain.
    adjacency = [[] for _ in range(vertices)]
    order = list(range(1, vertices))
    random_state.shuffle(order)
    previous = 0
    for vertex in order:
        adjacency[previous].append(vertex)
        previous = vertex
    extra_edges = vertices * (avg_degree - 1)
    for _ in range(max(extra_edges, 0)):
        src = random_state.randrange(vertices)
        dst = random_state.randrange(vertices)
        adjacency[src].append(dst)

    offsets = [0]
    edges = []
    for vertex in range(vertices):
        edges.extend(adjacency[vertex])
        offsets.append(len(edges))

    offsets_base = HEAP_BASE
    edges_base = offsets_base + 8 * (vertices + 1) + (1 << 16)
    visited_base = edges_base + 8 * len(edges) + (1 << 16)
    queue_base = visited_base + 8 * vertices + (1 << 16)

    builder = ProgramBuilder(name)
    builder.data_words(offsets_base, offsets)
    builder.data_words(edges_base, edges)
    builder.data_word(queue_base, 0)  # root in the queue
    builder.data_word(visited_base, 1)  # root marked visited

    # r1=head, r2=tail (element counts), r3=visit counter.
    builder.movi(1, 0)
    builder.movi(2, 1)
    builder.movi(3, 1)
    builder.movi(20, offsets_base)
    builder.movi(21, edges_base)
    builder.movi(22, visited_base)
    builder.movi(23, queue_base)
    builder.movi(24, 1)

    builder.label("loop")
    builder.bge(1, 2, "done")  # queue empty
    builder.slli(4, 1, 3)
    builder.add(4, 4, 23)
    builder.ld(5, 4, 0)  # v = queue[head]
    builder.addi(1, 1, 1)
    builder.slli(6, 5, 3)
    builder.add(6, 6, 20)
    builder.ld(7, 6, 0)  # edge_begin = offsets[v]
    builder.ld(8, 6, 8)  # edge_end   = offsets[v + 1]
    builder.label("edges")
    builder.bge(7, 8, "loop")
    builder.slli(9, 7, 3)
    builder.add(9, 9, 21)
    builder.ld(10, 9, 0)  # w = edges[e]
    builder.addi(7, 7, 1)
    builder.slli(11, 10, 3)
    builder.add(11, 11, 22)
    builder.ld(12, 11, 0)  # visited[w]?
    builder.bne(12, 0, "edges")
    builder.st(24, 11, 0)  # visited[w] = 1
    builder.slli(13, 2, 3)
    builder.add(13, 13, 23)
    builder.st(10, 13, 0)  # queue[tail] = w
    builder.addi(2, 2, 1)
    builder.addi(3, 3, 1)
    builder.jal(0, "edges")
    builder.label("done")
    builder.movi(14, RESULT_ADDR)
    builder.st(3, 14, 0)
    builder.halt()
    return builder.build()
