"""Sparse 64-bit word-addressable backing store.

The architectural memory image of a simulated machine.  Addresses are
byte addresses but accesses are aligned 64-bit words (the ISA's only
access size); unwritten words read as zero.  Copy-on-demand snapshots
support speculative cores that need cheap rollback of *committed* state
(in practice the SST core never mutates committed memory speculatively,
but tests use snapshots for differential checks).
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.errors import ExecutionError

WORD_BYTES = 8
_MASK64 = 2**64 - 1


class SparseMemory:
    """Dictionary-backed word store with alignment checking."""

    def __init__(self) -> None:
        self._words: Dict[int, int] = {}

    @staticmethod
    def _check(addr: int) -> int:
        if addr % WORD_BYTES != 0:
            raise ExecutionError(f"misaligned 8-byte access at {addr:#x}")
        if not 0 <= addr <= _MASK64:
            raise ExecutionError(f"address out of range: {addr:#x}")
        return addr

    def read(self, addr: int) -> int:
        """Read the 64-bit word at ``addr`` (zero if never written)."""
        return self._words.get(self._check(addr), 0)

    def write(self, addr: int, value: int) -> None:
        """Write the 64-bit word at ``addr``."""
        self._words[self._check(addr)] = value & _MASK64

    def load_image(self, data) -> None:
        """Initialise from an iterable of :class:`repro.isa.program.DataWord`."""
        for word in data:
            self.write(word.addr, word.value)

    def snapshot(self) -> Dict[int, int]:
        """A copy of all non-zero words, for differential comparison."""
        return dict(self._words)

    def items(self) -> Iterator[Tuple[int, int]]:
        return iter(self._words.items())

    def __len__(self) -> int:
        return len(self._words)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseMemory):
            return NotImplemented
        # Zero-valued entries are equivalent to absent entries.
        mine = {a: v for a, v in self._words.items() if v != 0}
        theirs = {a: v for a, v in other._words.items() if v != 0}
        return mine == theirs

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("SparseMemory is mutable and unhashable")
