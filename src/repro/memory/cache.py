"""Set-associative tag store with true-LRU replacement.

The cache models *tags only* — data always lives in the architectural
:class:`~repro.memory.sparse_memory.SparseMemory`; what the timing model
needs from a cache is hit/miss decisions, replacement behaviour, and
dirty-line writeback counts.  Write policy is write-back,
write-allocate.

Per-line state is a small int bitmask (dirty / prefetched) rather than
a dict: the lookup path runs once per simulated memory access across
every core model, so it stays allocation-free.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

from repro.config import CacheConfig
from repro.errors import SimulatorInvariantError

try:  # numpy backs the lane-batched probe path; scalar Cache never needs it.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the no-numpy CI leg
    _np = None  # type: ignore[assignment]

# Line-flag bits.
DIRTY = 1
PREFETCHED = 2


@dataclasses.dataclass
class CacheStats:
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    prefetch_fills: int = 0
    # Hits on lines that were brought in by a prefetch and not yet
    # touched by demand — "useful prefetches".
    prefetch_hits: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """One level of tags.  Addresses are byte addresses."""

    def __init__(self, config: CacheConfig, name: str = "cache"):
        self.config = config
        self.name = name
        self.stats = CacheStats()
        self._line_shift = config.line_bytes.bit_length() - 1
        self._set_mask = config.num_sets - 1
        # set index -> OrderedDict(line -> flag bits); LRU at the front.
        self._sets: List[OrderedDict] = [
            OrderedDict() for _ in range(config.num_sets)
        ]

    # ------------------------------------------------------------------
    # Address helpers.
    # ------------------------------------------------------------------

    def line_addr(self, addr: int) -> int:
        """Line-aligned address (the unit all internal maps use)."""
        return addr >> self._line_shift << self._line_shift

    def _locate(self, line: int) -> Tuple[OrderedDict, int]:
        set_index = (line >> self._line_shift) & self._set_mask
        return self._sets[set_index], line

    # ------------------------------------------------------------------
    # Operations.
    # ------------------------------------------------------------------

    def lookup(self, addr: int, *, update_lru: bool = True,
               count: bool = True) -> bool:
        """Hit test; moves the line to MRU on hit when ``update_lru``."""
        shift = self._line_shift
        index = addr >> shift
        line = index << shift
        cache_set = self._sets[index & self._set_mask]
        hit = line in cache_set
        if count:
            stats = self.stats
            stats.accesses += 1
            if hit:
                stats.hits += 1
                flags = cache_set[line]
                if flags & PREFETCHED:
                    stats.prefetch_hits += 1
                    cache_set[line] = flags & ~PREFETCHED
            else:
                stats.misses += 1
        if hit and update_lru:
            cache_set.move_to_end(line)
        return hit

    def contains(self, addr: int) -> bool:
        """Hit test with no side effects (no LRU update, no stats)."""
        cache_set, line = self._locate(self.line_addr(addr))
        return line in cache_set

    def fill(self, addr: int, *, prefetched: bool = False) -> Optional[int]:
        """Install a line; returns the evicted dirty line address (for a
        writeback) or None.  Filling a present line refreshes LRU."""
        cache_set, line = self._locate(self.line_addr(addr))
        if line in cache_set:
            cache_set.move_to_end(line)
            return None
        victim_writeback = None
        if len(cache_set) >= self.config.assoc:
            victim, flags = cache_set.popitem(last=False)
            self.stats.evictions += 1
            if flags & DIRTY:
                self.stats.writebacks += 1
                victim_writeback = victim
        cache_set[line] = PREFETCHED if prefetched else 0
        if prefetched:
            self.stats.prefetch_fills += 1
        return victim_writeback

    def mark_dirty(self, addr: int) -> None:
        cache_set, line = self._locate(self.line_addr(addr))
        flags = cache_set.get(line)
        if flags is None:
            raise SimulatorInvariantError(
                f"{self.name}: mark_dirty on absent line {line:#x}"
            )
        cache_set[line] = flags | DIRTY

    def invalidate(self, addr: int) -> None:
        cache_set, line = self._locate(self.line_addr(addr))
        cache_set.pop(line, None)

    # ------------------------------------------------------------------
    # Introspection (tests, invariants).
    # ------------------------------------------------------------------

    def resident_lines(self) -> List[int]:
        return [line for cache_set in self._sets for line in cache_set]

    def set_occupancy(self) -> Dict[int, int]:
        return {index: len(s) for index, s in enumerate(self._sets) if s}

    def check_invariants(self) -> None:
        """Structural invariants; raises on violation (used by tests)."""
        seen = set()
        for index, cache_set in enumerate(self._sets):
            if len(cache_set) > self.config.assoc:
                raise SimulatorInvariantError(
                    f"{self.name}: set {index} over-full"
                )
            for line in cache_set:
                if line in seen:
                    raise SimulatorInvariantError(
                        f"{self.name}: line {line:#x} in two sets"
                    )
                seen.add(line)
                expected = (line >> self._line_shift) & self._set_mask
                if expected != index:
                    raise SimulatorInvariantError(
                        f"{self.name}: line {line:#x} in wrong set {index}"
                    )


# ---------------------------------------------------------------------------
# Lane-axis tag store for the timing ensemble.
# ---------------------------------------------------------------------------


class LaneCacheArray:
    """N independent same-geometry caches, structure-of-arrays over the
    lane axis.

    This is :class:`Cache` rehosted for lane-batched timing simulation
    (:mod:`repro.sim.timing_ensemble`): tags, valid bits, flag bits and
    an LRU stamp live in ``(lanes, sets, assoc)`` numpy matrices, so a
    cohort of lanes probing in lockstep resolves every hit/miss with a
    handful of vector ops (:meth:`probe_lanes`) instead of one
    ``OrderedDict`` walk per lane.  Per-lane *scalar* methods
    (``lookup_lane`` / ``fill_lane`` / ...) mirror :class:`Cache`
    exactly for the slow paths (misses, merges, prefetch fills) that
    stay lane-at-a-time.

    LRU equivalence: each (lane, set) keeps a strictly increasing stamp
    per resident way, refreshed on every insert and MRU touch from a
    per-lane clock.  Ascending stamp order is exactly the scalar
    ``OrderedDict`` order, so ``argmin(stamp)`` evicts the same victim
    ``popitem(last=False)`` would — the per-lane behavior (stats
    included) is bit-identical to N scalar :class:`Cache` instances by
    construction, and ``tests/memory/test_lane_cache.py`` enforces it
    against randomized op sequences.
    """

    def __init__(self, config: CacheConfig, lanes: int,
                 name: str = "cache"):
        if _np is None:  # pragma: no cover - numpy-less installs
            raise SimulatorInvariantError(
                "LaneCacheArray requires numpy (the 'ensemble' extra)"
            )
        self.config = config
        self.name = name
        self.lanes = lanes
        self._line_shift = config.line_bytes.bit_length() - 1
        self._set_mask = config.num_sets - 1
        sets, assoc = config.num_sets, config.assoc
        shape = (lanes, sets, assoc)
        self.tags = _np.zeros(shape, dtype=_np.uint64)
        self.valid = _np.zeros(shape, dtype=bool)
        self.flags = _np.zeros(shape, dtype=_np.uint8)
        self.stamp = _np.zeros(shape, dtype=_np.int64)
        self._clock = _np.zeros(lanes, dtype=_np.int64)
        # Python sidecars for the per-lane scalar paths: a line -> way
        # residency dict per lane (membership changes only in
        # fill_lane; the vectorized commit path only moves LRU stamps)
        # and a per-(lane, set) occupancy count.  Valid bits are never
        # cleared and fills take the lowest free way, so the valid ways
        # of a set are always a prefix and ``occupancy`` doubles as the
        # next free way index.
        self._where: List[Dict[int, int]] = [{} for _ in range(lanes)]
        self._occ = _np.zeros((lanes, sets), dtype=_np.int32)
        # Whether any fill has ever installed a PREFETCHED line: until
        # one has, batched hit commits can skip the flag byte entirely.
        self._prefetch_seen = False
        # One (lanes,) vector per CacheStats field.
        self.accesses = _np.zeros(lanes, dtype=_np.int64)
        self.hits = _np.zeros(lanes, dtype=_np.int64)
        self.misses = _np.zeros(lanes, dtype=_np.int64)
        self.evictions = _np.zeros(lanes, dtype=_np.int64)
        self.writebacks = _np.zeros(lanes, dtype=_np.int64)
        self.prefetch_fills = _np.zeros(lanes, dtype=_np.int64)
        self.prefetch_hits = _np.zeros(lanes, dtype=_np.int64)

    # -- address helpers ----------------------------------------------

    def line_addr(self, addr: int) -> int:
        return addr >> self._line_shift << self._line_shift

    def line_addr_lanes(self, addrs: Any) -> Any:
        """Vectorized :meth:`line_addr` over a uint64 address vector."""
        shift = _np.uint64(self._line_shift)
        return (addrs >> shift) << shift

    # -- the batched probe path ---------------------------------------

    def probe_lanes(self, lane_idx: Any, lines: Any) -> Tuple[Any, Any, Any]:
        """Side-effect-free hit test for one cohort.

        ``lane_idx`` is an intp vector of distinct lanes, ``lines`` the
        matching uint64 *line* addresses.  Returns ``(hit_mask,
        set_idx, way_idx)``; ``way_idx`` is only meaningful where
        ``hit_mask`` holds.  No stats, no LRU motion — pair with
        :meth:`commit_hit_lanes` for the lanes that take the vectorized
        hit path, and the scalar lane methods for the rest, so each
        access is counted exactly once.
        """
        sets = ((lines >> _np.uint64(self._line_shift))
                & _np.uint64(self._set_mask)).astype(_np.intp)
        rows_tag = self.tags[lane_idx, sets]       # (k, assoc)
        rows_valid = self.valid[lane_idx, sets]
        match = rows_valid & (rows_tag == lines[:, None])
        return match.any(axis=1), sets, match.argmax(axis=1)

    def commit_hit_lanes(self, lane_idx: Any, sets: Any, ways: Any, *,
                         mark_dirty: bool = False) -> None:
        """Apply the bookkeeping of a counted, LRU-updating lookup hit
        (plus optional store dirtying) to cohort lanes at once —
        exactly what ``Cache.lookup(addr)`` then ``mark_dirty`` would
        do per lane."""
        self.accesses[lane_idx] += 1
        self.hits[lane_idx] += 1
        if self._prefetch_seen:
            flags = self.flags[lane_idx, sets, ways]
            was_prefetched = (flags & PREFETCHED) != 0
            if was_prefetched.any():
                self.prefetch_hits[lane_idx[was_prefetched]] += 1
                flags = flags & _np.uint8(~PREFETCHED & 0xFF)
            if mark_dirty:
                flags = flags | _np.uint8(DIRTY)
            self.flags[lane_idx, sets, ways] = flags
        elif mark_dirty:
            # No PREFETCHED bit can be set anywhere, so the hit's only
            # flag effect is dirtying (lanes are distinct, so the
            # gather-or-scatter form of |= is exact).
            self.flags[lane_idx, sets, ways] |= _np.uint8(DIRTY)
        self._clock[lane_idx] += 1
        self.stamp[lane_idx, sets, ways] = self._clock[lane_idx]

    def count_miss_lanes(self, lane_idx: Any) -> None:
        """The counting half of a missing ``Cache.lookup`` for cohort
        lanes whose miss handling is otherwise vectorized."""
        self.accesses[lane_idx] += 1
        self.misses[lane_idx] += 1

    # -- exact scalar per-lane operations (slow paths) ----------------

    def _find_way(self, lane: int, set_index: int, line: int) -> int:
        """Resident way of ``line`` in (lane, set), or -1."""
        way = self._where[lane].get(line)
        return -1 if way is None else way

    def lookup_lane(self, lane: int, addr: int, *, update_lru: bool = True,
                    count: bool = True) -> bool:
        line = self.line_addr(addr)
        way = self._where[lane].get(line)
        hit = way is not None
        if count:
            self.accesses[lane] += 1
            if hit:
                set_index = (line >> self._line_shift) & self._set_mask
                self.hits[lane] += 1
                flags = int(self.flags[lane, set_index, way])
                if flags & PREFETCHED:
                    self.prefetch_hits[lane] += 1
                    self.flags[lane, set_index, way] = flags & ~PREFETCHED
            else:
                self.misses[lane] += 1
        if hit and update_lru:
            set_index = (line >> self._line_shift) & self._set_mask
            clock = int(self._clock[lane]) + 1
            self._clock[lane] = clock
            self.stamp[lane, set_index, way] = clock
        return hit

    def contains_lane(self, lane: int, addr: int) -> bool:
        return self.line_addr(addr) in self._where[lane]

    def fill_lane(self, lane: int, addr: int, *,
                  prefetched: bool = False) -> Optional[int]:
        line = self.line_addr(addr)
        set_index = (line >> self._line_shift) & self._set_mask
        where = self._where[lane]
        way = where.get(line)
        if way is not None:
            clock = int(self._clock[lane]) + 1
            self._clock[lane] = clock
            self.stamp[lane, set_index, way] = clock
            return None
        victim_writeback = None
        occupancy = int(self._occ[lane, set_index])
        if occupancy >= self.config.assoc:
            stamps = self.stamp[lane, set_index]
            way = int(stamps.argmin())
            self.evictions[lane] += 1
            if int(self.flags[lane, set_index, way]) & DIRTY:
                self.writebacks[lane] += 1
                victim_writeback = int(self.tags[lane, set_index, way])
            del where[int(self.tags[lane, set_index, way])]
        else:
            way = occupancy
            self._occ[lane, set_index] = occupancy + 1
        self.tags[lane, set_index, way] = line
        self.valid[lane, set_index, way] = True
        self.flags[lane, set_index, way] = PREFETCHED if prefetched else 0
        clock = int(self._clock[lane]) + 1
        self._clock[lane] = clock
        self.stamp[lane, set_index, way] = clock
        where[line] = way
        if prefetched:
            self.prefetch_fills[lane] += 1
            self._prefetch_seen = True
        return victim_writeback

    def mark_dirty_lane(self, lane: int, addr: int) -> None:
        line = self.line_addr(addr)
        way = self._where[lane].get(line)
        if way is None:
            raise SimulatorInvariantError(
                f"{self.name}: mark_dirty on absent line {line:#x}"
            )
        set_index = (line >> self._line_shift) & self._set_mask
        self.flags[lane, set_index, way] |= _np.uint8(DIRTY)

    # -- collection ----------------------------------------------------

    def stats_for(self, lane: int) -> CacheStats:
        """This lane's :class:`CacheStats` (vector + scalar paths
        combined — both update the same per-lane counters)."""
        return CacheStats(
            accesses=int(self.accesses[lane]),
            hits=int(self.hits[lane]),
            misses=int(self.misses[lane]),
            evictions=int(self.evictions[lane]),
            writebacks=int(self.writebacks[lane]),
            prefetch_fills=int(self.prefetch_fills[lane]),
            prefetch_hits=int(self.prefetch_hits[lane]),
        )


class LaneCacheView:
    """One lane of a :class:`LaneCacheArray`, duck-typed as a
    :class:`Cache`.

    Injected into a per-lane :class:`~repro.memory.hierarchy.Hierarchy`
    so the *scalar* miss/merge/prefetch machinery runs unmodified
    against the shared lane-axis tag matrices — the slow path and the
    vectorized fast path see one tag store by construction.
    """

    __slots__ = ("_array", "_lane", "config", "name")

    def __init__(self, array: LaneCacheArray, lane: int):
        self._array = array
        self._lane = lane
        self.config = array.config
        self.name = array.name

    def line_addr(self, addr: int) -> int:
        return self._array.line_addr(addr)

    def lookup(self, addr: int, *, update_lru: bool = True,
               count: bool = True) -> bool:
        return self._array.lookup_lane(
            self._lane, addr, update_lru=update_lru, count=count
        )

    def contains(self, addr: int) -> bool:
        return self._array.contains_lane(self._lane, addr)

    def fill(self, addr: int, *, prefetched: bool = False) -> Optional[int]:
        return self._array.fill_lane(self._lane, addr, prefetched=prefetched)

    def mark_dirty(self, addr: int) -> None:
        self._array.mark_dirty_lane(self._lane, addr)

    @property
    def stats(self) -> CacheStats:
        return self._array.stats_for(self._lane)
