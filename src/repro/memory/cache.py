"""Set-associative tag store with true-LRU replacement.

The cache models *tags only* — data always lives in the architectural
:class:`~repro.memory.sparse_memory.SparseMemory`; what the timing model
needs from a cache is hit/miss decisions, replacement behaviour, and
dirty-line writeback counts.  Write policy is write-back,
write-allocate.

Per-line state is a small int bitmask (dirty / prefetched) rather than
a dict: the lookup path runs once per simulated memory access across
every core model, so it stays allocation-free.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.config import CacheConfig
from repro.errors import SimulatorInvariantError

# Line-flag bits.
DIRTY = 1
PREFETCHED = 2


@dataclasses.dataclass
class CacheStats:
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    prefetch_fills: int = 0
    # Hits on lines that were brought in by a prefetch and not yet
    # touched by demand — "useful prefetches".
    prefetch_hits: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """One level of tags.  Addresses are byte addresses."""

    def __init__(self, config: CacheConfig, name: str = "cache"):
        self.config = config
        self.name = name
        self.stats = CacheStats()
        self._line_shift = config.line_bytes.bit_length() - 1
        self._set_mask = config.num_sets - 1
        # set index -> OrderedDict(line -> flag bits); LRU at the front.
        self._sets: List[OrderedDict] = [
            OrderedDict() for _ in range(config.num_sets)
        ]

    # ------------------------------------------------------------------
    # Address helpers.
    # ------------------------------------------------------------------

    def line_addr(self, addr: int) -> int:
        """Line-aligned address (the unit all internal maps use)."""
        return addr >> self._line_shift << self._line_shift

    def _locate(self, line: int) -> Tuple[OrderedDict, int]:
        set_index = (line >> self._line_shift) & self._set_mask
        return self._sets[set_index], line

    # ------------------------------------------------------------------
    # Operations.
    # ------------------------------------------------------------------

    def lookup(self, addr: int, *, update_lru: bool = True,
               count: bool = True) -> bool:
        """Hit test; moves the line to MRU on hit when ``update_lru``."""
        shift = self._line_shift
        index = addr >> shift
        line = index << shift
        cache_set = self._sets[index & self._set_mask]
        hit = line in cache_set
        if count:
            stats = self.stats
            stats.accesses += 1
            if hit:
                stats.hits += 1
                flags = cache_set[line]
                if flags & PREFETCHED:
                    stats.prefetch_hits += 1
                    cache_set[line] = flags & ~PREFETCHED
            else:
                stats.misses += 1
        if hit and update_lru:
            cache_set.move_to_end(line)
        return hit

    def contains(self, addr: int) -> bool:
        """Hit test with no side effects (no LRU update, no stats)."""
        cache_set, line = self._locate(self.line_addr(addr))
        return line in cache_set

    def fill(self, addr: int, *, prefetched: bool = False) -> Optional[int]:
        """Install a line; returns the evicted dirty line address (for a
        writeback) or None.  Filling a present line refreshes LRU."""
        cache_set, line = self._locate(self.line_addr(addr))
        if line in cache_set:
            cache_set.move_to_end(line)
            return None
        victim_writeback = None
        if len(cache_set) >= self.config.assoc:
            victim, flags = cache_set.popitem(last=False)
            self.stats.evictions += 1
            if flags & DIRTY:
                self.stats.writebacks += 1
                victim_writeback = victim
        cache_set[line] = PREFETCHED if prefetched else 0
        if prefetched:
            self.stats.prefetch_fills += 1
        return victim_writeback

    def mark_dirty(self, addr: int) -> None:
        cache_set, line = self._locate(self.line_addr(addr))
        flags = cache_set.get(line)
        if flags is None:
            raise SimulatorInvariantError(
                f"{self.name}: mark_dirty on absent line {line:#x}"
            )
        cache_set[line] = flags | DIRTY

    def invalidate(self, addr: int) -> None:
        cache_set, line = self._locate(self.line_addr(addr))
        cache_set.pop(line, None)

    # ------------------------------------------------------------------
    # Introspection (tests, invariants).
    # ------------------------------------------------------------------

    def resident_lines(self) -> List[int]:
        return [line for cache_set in self._sets for line in cache_set]

    def set_occupancy(self) -> Dict[int, int]:
        return {index: len(s) for index, s in enumerate(self._sets) if s}

    def check_invariants(self) -> None:
        """Structural invariants; raises on violation (used by tests)."""
        seen = set()
        for index, cache_set in enumerate(self._sets):
            if len(cache_set) > self.config.assoc:
                raise SimulatorInvariantError(
                    f"{self.name}: set {index} over-full"
                )
            for line in cache_set:
                if line in seen:
                    raise SimulatorInvariantError(
                        f"{self.name}: line {line:#x} in two sets"
                    )
                seen.add(line)
                expected = (line >> self._line_shift) & self._set_mask
                if expected != index:
                    raise SimulatorInvariantError(
                        f"{self.name}: line {line:#x} in wrong set {index}"
                    )
