"""Main-memory model: flat latency with a bandwidth ceiling.

A token-bucket start-interval models channel bandwidth: two DRAM
accesses cannot start closer together than ``min_interval`` cycles.
Queueing that this creates under bursts is what turns "infinite MLP"
into the sub-linear overlap real systems show.
"""

from __future__ import annotations

import dataclasses

from repro.config import DRAMConfig


@dataclasses.dataclass
class DRAMStats:
    accesses: int = 0
    queue_cycles: int = 0  # total cycles requests waited for the channel
    busy_until: int = 0


class DRAMModel:
    def __init__(self, config: DRAMConfig):
        self.config = config
        self.stats = DRAMStats()
        self._next_start = 0

    def access(self, cycle: int) -> int:
        """Issue one line fetch at ``cycle``; returns data-ready cycle."""
        start = max(cycle, self._next_start)
        self.stats.accesses += 1
        self.stats.queue_cycles += start - cycle
        if self.config.min_interval:
            self._next_start = start + self.config.min_interval
        ready = start + self.config.latency
        self.stats.busy_until = max(self.stats.busy_until, ready)
        return ready
