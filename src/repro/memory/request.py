"""Access descriptors and results exchanged between cores and the
memory hierarchy."""

from __future__ import annotations

import dataclasses
import enum


class AccessType(enum.Enum):
    LOAD = "load"
    STORE = "store"
    IFETCH = "ifetch"
    PREFETCH = "prefetch"


class HitLevel(enum.Enum):
    """Where an access was satisfied."""

    L1 = "l1"
    L2 = "l2"
    DRAM = "dram"
    # Merged into an already-outstanding miss at that level's MSHR.
    MERGE_L1 = "merge_l1"
    MERGE_L2 = "merge_l2"


@dataclasses.dataclass(frozen=True)
class Access:
    """One access as issued by a core."""

    addr: int
    cycle: int
    type: AccessType


@dataclasses.dataclass(frozen=True)
class AccessResult:
    """Timing outcome of one access.

    ``ready_cycle`` is when the data is available to dependents (for
    stores: when the line is owned and the write is globally done).
    ``tlb_miss`` marks an access whose translation walked the page
    table first — a deferral trigger of its own in the SST core.
    """

    ready_cycle: int
    level: HitLevel
    tlb_miss: bool = False

    @property
    def l1_hit(self) -> bool:
        return self.level is HitLevel.L1

    @property
    def went_to_dram(self) -> bool:
        return self.level in (HitLevel.DRAM, HitLevel.MERGE_L2)

    def latency(self, issue_cycle: int) -> int:
        return self.ready_cycle - issue_cycle
