"""The assembled memory hierarchy one core talks to.

Layers: L1D (+ L1I) → shared L2 → DRAM, with an MSHR file per cache and
an optional prefetcher observing L2 misses.  The timing contract is
*latency at issue*: ``data_access`` updates tag/MSHR/DRAM state and
returns an :class:`~repro.memory.request.AccessResult` whose
``ready_cycle`` folds in hit latencies, MSHR queueing and DRAM
bandwidth.  Tags are filled at allocation time; accesses that arrive
while the fill is still in flight merge with it and see its completion
time, which is how overlapping misses (MLP) are modelled.

Instruction addresses live in their own region (``ICODE_BASE``) so
I-streams and D-streams compete in the shared L2 without aliasing.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional, Set, Tuple

import dataclasses as _dataclasses

from repro.config import HierarchyConfig
from repro.memory.cache import Cache
from repro.memory.dram import DRAMModel
from repro.memory.mshr import MSHRFile
from repro.memory.prefetcher import make_prefetcher
from repro.memory.request import AccessResult, AccessType, HitLevel
from repro.memory.tlb import TLB

ICODE_BASE = 1 << 40
ICODE_BYTES_PER_INST = 4


@dataclasses.dataclass
class HierarchyStats:
    demand_accesses: int = 0
    demand_l1_hits: int = 0
    demand_l2_hits: int = 0
    demand_dram: int = 0
    demand_merges: int = 0
    prefetches_issued: int = 0
    ifetches: int = 0
    # Observability: accesses served entirely by the single-probe fast
    # path (L1 hit with no outstanding fill — no MSHR/prefetcher
    # bookkeeping touched).  Subsets of the hit counters above.
    fastpath_l1d: int = 0
    fastpath_l1i: int = 0

    @property
    def dram_fraction(self) -> float:
        if not self.demand_accesses:
            return 0.0
        return self.demand_dram / self.demand_accesses

    @property
    def l1d_fastpath_fraction(self) -> float:
        """Fraction of demand accesses that took the L1 fast path."""
        if not self.demand_accesses:
            return 0.0
        return self.fastpath_l1d / self.demand_accesses


class MemoryHierarchy:
    """One core's view of the memory system."""

    def __init__(self, config: HierarchyConfig, *,
                 caches: Optional[Tuple[Any, Any, Any]] = None):
        self.config = config
        if caches is None:
            self.l1d = Cache(config.l1d, name="L1D")
            self.l1i = Cache(config.l1i, name="L1I")
            self.l2 = Cache(config.l2, name="L2")
        else:
            # Injected tag stores (duck-typed Cache facades).  The
            # timing ensemble hands each per-lane hierarchy a
            # LaneCacheView triple so this class's miss/merge/prefetch
            # machinery runs unmodified against shared lane-axis tag
            # matrices.
            self.l1d, self.l1i, self.l2 = caches
        self.l1d_mshr = MSHRFile(config.l1d.mshr_entries, name="L1D-MSHR")
        self.l1i_mshr = MSHRFile(config.l1i.mshr_entries, name="L1I-MSHR")
        self.l2_mshr = MSHRFile(config.l2.mshr_entries, name="L2-MSHR")
        self.dram = DRAMModel(config.dram)
        self.dtlb = TLB(config.tlb) if config.tlb is not None else None
        self.prefetcher = make_prefetcher(
            config.l2_prefetcher, config.l2.line_bytes
        )
        self.stats = HierarchyStats()
        # Hot-path latency constants (one attribute hop instead of three
        # on every access).
        self._l1d_hit_latency = config.l1d.hit_latency
        self._l1i_hit_latency = config.l1i.hit_latency
        # Lines whose in-flight L1D fill originated in DRAM (vs. L2),
        # so merged accesses can be classified for defer triggers.
        self._l1_pending_from_dram: Set[int] = set()
        # Multicore: per-core displacement applied to every address
        # before it reaches the (possibly shared) tag structures, so
        # that different cores' private data never falsely shares lines
        # in a shared L2.  Zero for single-core use.
        self.addr_offset = 0

    # ------------------------------------------------------------------
    # Demand data path.
    # ------------------------------------------------------------------

    def data_access(self, addr: int, cycle: int,
                    access_type: AccessType = AccessType.LOAD,
                    pc: int = 0) -> AccessResult:
        """A demand load or store from the core at ``cycle``."""
        addr += self.addr_offset
        stats = self.stats
        stats.demand_accesses += 1
        tlb_missed = False
        if self.dtlb is not None and not self.dtlb.access(addr):
            tlb_missed = True
            cycle += self.config.tlb.walk_latency
        l1d = self.l1d
        line = l1d.line_addr(addr)

        if self.l1d_mshr.idle_at(cycle):
            # Fast hit path: nothing outstanding, so a tag hit cannot
            # merge with an in-flight fill — a single L1 probe settles
            # the access with no MSHR/prefetcher bookkeeping.
            if l1d.lookup(line):
                stats.demand_l1_hits += 1
                stats.fastpath_l1d += 1
                if access_type is AccessType.STORE:
                    l1d.mark_dirty(line)
                if tlb_missed:
                    return AccessResult(cycle + self._l1d_hit_latency,
                                        HitLevel.L1, tlb_miss=True)
                return AccessResult(cycle + self._l1d_hit_latency,
                                    HitLevel.L1)
            result = self._l1d_miss(line, cycle, pc)
        elif l1d.lookup(line):
            hit_ready = cycle + self._l1d_hit_latency
            pending = self.l1d_mshr.pending_ready(line, cycle)
            if pending is not None and pending > hit_ready:
                # The line's fill is still in flight: merge.
                stats.demand_merges += 1
                level = (HitLevel.MERGE_L2
                         if line in self._l1_pending_from_dram
                         else HitLevel.MERGE_L1)
                result = AccessResult(pending, level)
            else:
                stats.demand_l1_hits += 1
                result = AccessResult(hit_ready, HitLevel.L1)
        else:
            result = self._l1d_miss(line, cycle, pc)

        if access_type is AccessType.STORE:
            self.l1d.mark_dirty(line)
        if tlb_missed:
            result = _dataclasses.replace(result, tlb_miss=True)
        return result

    def _l1d_miss(self, line: int, cycle: int, pc: int) -> AccessResult:
        start, merged = self.l1d_mshr.allocate(line, cycle)
        if merged:
            self.stats.demand_merges += 1
            level = (HitLevel.MERGE_L2
                     if line in self._l1_pending_from_dram
                     else HitLevel.MERGE_L1)
            return AccessResult(start, level)

        # Miss detected after the L1 lookup; go to L2.
        l2_probe = start + self.config.l1d.hit_latency
        ready, from_dram = self._l2_access(line, l2_probe, pc)
        victim = self.l1d.fill(line)
        if victim is not None:
            # Dirty L1 victim written back into L2 (tag-only model).
            if self.l2.contains(victim):
                self.l2.mark_dirty(victim)
        self.l1d_mshr.complete(line, ready)
        self._l1_pending_from_dram.discard(line)
        if from_dram:
            self._l1_pending_from_dram.add(line)
            self.stats.demand_dram += 1
            return AccessResult(ready, HitLevel.DRAM)
        self.stats.demand_l2_hits += 1
        return AccessResult(ready, HitLevel.L2)

    def _l2_access(self, line: int, cycle: int, pc: int):
        """L2 lookup at ``cycle``; returns (ready_cycle, from_dram)."""
        l2_ready = cycle + self.config.l2.hit_latency
        if self.l2.lookup(line):
            pending = self.l2_mshr.pending_ready(line, cycle)
            if pending is not None and pending > l2_ready:
                return pending, True
            return l2_ready, False

        start, merged = self.l2_mshr.allocate(line, cycle)
        if merged:
            return start, True
        dram_ready = self.dram.access(start + self.config.l2.hit_latency)
        victim = self.l2.fill(line)
        if victim is not None:
            # Dirty L2 victim consumes a DRAM write slot.
            self.dram.access(dram_ready)
        self.l2_mshr.complete(line, dram_ready)
        for target in self.prefetcher.on_miss(pc, line):
            self._prefetch_fill(target, dram_ready)
        return dram_ready, True

    # ------------------------------------------------------------------
    # Prefetch path (scout loads and hardware prefetchers).
    # ------------------------------------------------------------------

    def prefetch(self, addr: int, cycle: int) -> AccessResult:
        """A core-initiated prefetch (PREFETCH op, scout-mode load).

        Fills the L1D and L2 like a demand access but is not counted as
        demand traffic; returns the ready time so scout mode can model
        the miss it is hiding.  Scout prefetches also warm the TLB —
        one of hardware scout's documented side benefits.
        """
        addr += self.addr_offset
        if self.dtlb is not None and not self.dtlb.access(addr):
            cycle += self.config.tlb.walk_latency
        line = self.l1d.line_addr(addr)
        if self.l1d.lookup(line, count=False):
            ready = cycle + self._l1d_hit_latency
            if not self.l1d_mshr.idle_at(cycle):
                pending = self.l1d_mshr.pending_ready(line, cycle)
                if pending is not None and pending > ready:
                    return AccessResult(pending, HitLevel.MERGE_L1)
            return AccessResult(ready, HitLevel.L1)
        self.stats.prefetches_issued += 1
        result = self._l1d_miss(line, cycle, pc=0)
        # Undo the demand-classified counting done by _l1d_miss.
        if result.level is HitLevel.DRAM:
            self.stats.demand_dram -= 1
        elif result.level is HitLevel.L2:
            self.stats.demand_l2_hits -= 1
        elif result.level in (HitLevel.MERGE_L1, HitLevel.MERGE_L2):
            self.stats.demand_merges -= 1
        return result

    def _prefetch_fill(self, line: int, cycle: int) -> None:
        """An L2 prefetcher suggestion: fill L2 only, pay DRAM bandwidth."""
        line = self.l2.line_addr(line)
        if self.l2.contains(line):
            return
        self.dram.access(cycle)
        victim = self.l2.fill(line, prefetched=True)
        if victim is not None:
            self.dram.access(cycle)

    # ------------------------------------------------------------------
    # Instruction fetch.
    # ------------------------------------------------------------------

    def ifetch(self, pc: int, cycle: int) -> AccessResult:
        """Fetch the instruction at index ``pc``."""
        stats = self.stats
        stats.ifetches += 1
        addr = ICODE_BASE + pc * ICODE_BYTES_PER_INST + self.addr_offset
        line = self.l1i.line_addr(addr)
        if self.l1i_mshr.idle_at(cycle):
            # Fast hit path (see data_access): one probe, no MSHR work.
            if self.l1i.lookup(line):
                stats.fastpath_l1i += 1
                return AccessResult(cycle + self._l1i_hit_latency,
                                    HitLevel.L1)
        elif self.l1i.lookup(line):
            hit_ready = cycle + self._l1i_hit_latency
            pending = self.l1i_mshr.pending_ready(line, cycle)
            if pending is not None and pending > hit_ready:
                return AccessResult(pending, HitLevel.MERGE_L1)
            return AccessResult(hit_ready, HitLevel.L1)
        start, merged = self.l1i_mshr.allocate(line, cycle)
        if merged:
            return AccessResult(start, HitLevel.MERGE_L1)
        probe = start + self.config.l1i.hit_latency
        ready, from_dram = self._l2_access(line, probe, pc)
        self.l1i.fill(line)
        self.l1i_mshr.complete(line, ready)
        level = HitLevel.DRAM if from_dram else HitLevel.L2
        return AccessResult(ready, level)

    # ------------------------------------------------------------------
    # Event-driven fast-forwarding support.
    # ------------------------------------------------------------------

    def next_completion_cycle(
            self, cycle: Optional[int] = None) -> Optional[int]:
        """Earliest in-flight fill completion across all MSHR files.

        Returns None when nothing is outstanding.  Cores use this to
        jump their clocks straight to the next memory event instead of
        polling the hierarchy every cycle.
        """
        earliest = None
        for mshr in (self.l1d_mshr, self.l1i_mshr, self.l2_mshr):
            ready = mshr.next_completion_cycle(cycle)
            if ready is not None and (earliest is None or ready < earliest):
                earliest = ready
        return earliest

    # ------------------------------------------------------------------
    # Invariants.
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        self.l1d.check_invariants()
        self.l1i.check_invariants()
        self.l2.check_invariants()
