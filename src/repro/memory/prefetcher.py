"""Hardware prefetchers attached to the L2.

Two classical designs are provided as ablation points:

* :class:`NextLinePrefetcher` — on a miss to line ``L``, prefetch
  ``L+1 .. L+degree``.
* :class:`StridePrefetcher` — a PC-indexed reference-prediction table;
  when a PC's accesses show a stable stride, prefetch ahead by
  ``degree`` strides.

A prefetcher only *suggests* line addresses; the hierarchy issues them
through the normal fill path so they consume DRAM bandwidth and compete
for cache space — prefetching is not free, as the paper's scout-mode
comparison depends on.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import List

from repro.config import PrefetcherConfig, PrefetcherKind
from repro.errors import ConfigError


@dataclasses.dataclass
class PrefetchStats:
    issued: int = 0


class BasePrefetcher:
    """Interface: observe misses, suggest line addresses."""

    def __init__(self, config: PrefetcherConfig, line_bytes: int):
        self.config = config
        self.line_bytes = line_bytes
        self.stats = PrefetchStats()

    def on_miss(self, pc: int, addr: int) -> List[int]:
        raise NotImplementedError


class NullPrefetcher(BasePrefetcher):
    def on_miss(self, pc: int, addr: int) -> List[int]:
        return []


class NextLinePrefetcher(BasePrefetcher):
    def on_miss(self, pc: int, addr: int) -> List[int]:
        line = addr - (addr % self.line_bytes)
        targets = [
            line + self.line_bytes * ahead
            for ahead in range(1, self.config.degree + 1)
        ]
        self.stats.issued += len(targets)
        return targets


class StridePrefetcher(BasePrefetcher):
    """Reference-prediction table keyed by instruction index (PC)."""

    def __init__(self, config: PrefetcherConfig, line_bytes: int):
        super().__init__(config, line_bytes)
        # pc -> (last_addr, stride, confidence); LRU-evicted.
        self._table: OrderedDict = OrderedDict()

    def on_miss(self, pc: int, addr: int) -> List[int]:
        entry = self._table.pop(pc, None)
        targets: List[int] = []
        if entry is None:
            self._table[pc] = (addr, 0, 0)
        else:
            last_addr, stride, confidence = entry
            new_stride = addr - last_addr
            if new_stride == stride and stride != 0:
                confidence = min(confidence + 1, 3)
            else:
                confidence = 0
            self._table[pc] = (addr, new_stride, confidence)
            if confidence >= 1 and new_stride != 0:
                targets = [
                    addr + new_stride * ahead
                    for ahead in range(1, self.config.degree + 1)
                    if addr + new_stride * ahead >= 0
                ]
        while len(self._table) > self.config.table_entries:
            self._table.popitem(last=False)
        self.stats.issued += len(targets)
        return targets


def make_prefetcher(config: PrefetcherConfig, line_bytes: int) -> BasePrefetcher:
    if config.kind is PrefetcherKind.NONE:
        return NullPrefetcher(config, line_bytes)
    if config.kind is PrefetcherKind.NEXT_LINE:
        return NextLinePrefetcher(config, line_bytes)
    if config.kind is PrefetcherKind.STRIDE:
        return StridePrefetcher(config, line_bytes)
    raise ConfigError(f"unknown prefetcher kind {config.kind}")
