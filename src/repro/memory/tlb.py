"""Data TLB model.

ROCK defers on more than cache misses: a load that misses the TLB is a
long-latency event too (hardware table walk), and SST parks its slice
just the same.  The model is a fully-associative LRU array of page
translations; a miss charges a fixed walk latency ahead of the cache
access and is flagged on the :class:`~repro.memory.request.AccessResult`
so the core's defer trigger can see it.

Translation itself is identity (no virtual memory is simulated); only
the *timing and reach* of the TLB matter here.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict

from repro.config import TLBConfig


@dataclasses.dataclass
class TLBStats:
    accesses: int = 0
    misses: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class TLB:
    """Fully-associative, true-LRU translation cache."""

    def __init__(self, config: TLBConfig):
        self.config = config
        self.stats = TLBStats()
        self._pages: OrderedDict = OrderedDict()
        self._page_shift = config.page_bytes.bit_length() - 1

    def page_of(self, addr: int) -> int:
        return addr >> self._page_shift

    def access(self, addr: int) -> bool:
        """Translate; returns True on hit.  A miss installs the page."""
        page = self.page_of(addr)
        self.stats.accesses += 1
        if page in self._pages:
            self._pages.move_to_end(page)
            return True
        self.stats.misses += 1
        self._pages[page] = True
        if len(self._pages) > self.config.entries:
            self._pages.popitem(last=False)
        return False

    def contains(self, addr: int) -> bool:
        return self.page_of(addr) in self._pages

    @property
    def mru_page(self) -> int:
        """Most-recently-used page number, or -1 when empty.

        An access to the MRU page is a hit with zero bookkeeping beyond
        the access/hit counters (``move_to_end`` is a no-op), which lets
        batched engines test it vectorized without touching the scalar
        structure.
        """
        if not self._pages:
            return -1
        return next(reversed(self._pages))

    @property
    def occupancy(self) -> int:
        return len(self._pages)
