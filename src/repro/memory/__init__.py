"""Memory-system substrates: backing store, caches, MSHRs, DRAM, the
assembled hierarchy, and a simple prefetcher.

Timing model: *latency at issue*.  An access updates cache tag state
immediately and returns the cycle at which its data is available, which
folds in MSHR queueing and DRAM bandwidth.  This is the standard fast
approximation for execution-driven simulators and preserves the shapes
SST's evaluation depends on (miss costs, limited MLP, warm-cache reuse).
"""

from repro.memory.sparse_memory import SparseMemory
from repro.memory.request import Access, AccessType
from repro.memory.cache import Cache, CacheStats
from repro.memory.mshr import MSHRFile
from repro.memory.dram import DRAMModel
from repro.memory.prefetcher import NextLinePrefetcher, StridePrefetcher
from repro.memory.hierarchy import MemoryHierarchy

__all__ = [
    "SparseMemory",
    "Access",
    "AccessType",
    "Cache",
    "CacheStats",
    "MSHRFile",
    "DRAMModel",
    "NextLinePrefetcher",
    "StridePrefetcher",
    "MemoryHierarchy",
]
