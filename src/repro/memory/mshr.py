"""Miss-status holding registers: the structure that bounds a core's
memory-level parallelism.

Each in-flight line miss occupies one entry until its fill completes.
A second access to a pending line *merges* (no new entry, shares the
completion time).  When the file is full, a new miss must wait for the
earliest completion — that serialisation is exactly why bigger windows
(or SST's deferred queue) only help up to the MSHR-limited MLP.

The file keeps the earliest outstanding completion incrementally, so
the common probes — "anything in flight?" and "when does the next fill
land?" (:meth:`next_completion_cycle`, used by the cores' event-driven
fast-forwarding) — are O(1) and expiry only scans when a fill has
actually completed.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

# Sentinel "no outstanding completion" (compares greater than any cycle).
_NEVER = 1 << 62


@dataclasses.dataclass
class MSHRStats:
    allocations: int = 0
    merges: int = 0
    full_stalls: int = 0
    # Sum of cycles new misses spent waiting for a free entry.
    stall_cycles: int = 0
    peak_occupancy: int = 0


class MSHRFile:
    """Fixed number of outstanding line misses."""

    def __init__(self, entries: int, name: str = "mshr"):
        self.entries = entries
        self.name = name
        self.stats = MSHRStats()
        # line address -> fill-complete cycle.
        self._pending: Dict[int, int] = {}
        # Earliest completion among pending fills (_NEVER when empty).
        self._min_ready = _NEVER

    def _expire(self, cycle: int) -> None:
        """Drop entries whose fill has completed by ``cycle``."""
        pending = self._pending
        if not pending or cycle < self._min_ready:
            return
        expired = [line for line, ready in pending.items() if ready <= cycle]
        for line in expired:
            del pending[line]
        self._min_ready = min(pending.values()) if pending else _NEVER

    def pending_ready(self, line: int, cycle: int) -> Optional[int]:
        """If ``line`` has an in-flight miss at ``cycle``, its ready time."""
        self._expire(cycle)
        return self._pending.get(line)

    def idle_at(self, cycle: int) -> bool:
        """True when no fill is outstanding at ``cycle`` (O(1) probe)."""
        pending = self._pending
        if not pending:
            return True
        if self._min_ready > cycle:
            return False
        self._expire(cycle)
        return not pending

    def next_completion_cycle(self, cycle: Optional[int] = None
                              ) -> Optional[int]:
        """Earliest outstanding fill completion, or None when idle.

        With ``cycle`` given, entries completed at or before it are
        retired first, so the answer is strictly in the future.  This is
        the accessor the event-driven cores fast-forward on instead of
        polling :meth:`pending_ready` every cycle.
        """
        if cycle is not None:
            self._expire(cycle)
        return self._min_ready if self._pending else None

    def max_pending_ready(self) -> int:
        """Latest outstanding completion, or -1 when nothing pends.

        Unlike the other probes this does *not* expire entries: a stale
        entry's ready time is in the past, so the returned maximum is
        still a correct "idle from here on" watermark — ``idle_at(c)``
        is exactly ``max_pending_ready() <= c``.  Batched engines mirror
        this one value per lane to keep their fast path scalar-free.
        """
        pending = self._pending
        return max(pending.values()) if pending else -1

    def occupancy(self, cycle: int) -> int:
        self._expire(cycle)
        return len(self._pending)

    def allocate(self, line: int, cycle: int) -> Tuple[int, bool]:
        """Reserve an entry for a new miss of ``line`` at ``cycle``.

        Returns ``(start_cycle, merged)``: the cycle at which the miss
        can actually start (>= ``cycle`` if the file was full) and
        whether it merged with an existing entry (then ``start_cycle``
        is the existing completion time).

        The caller must follow up with :meth:`complete` to record the
        fill time of a non-merged allocation.
        """
        self._expire(cycle)
        existing = self._pending.get(line)
        if existing is not None:
            self.stats.merges += 1
            return existing, True
        start = cycle
        if len(self._pending) >= self.entries:
            # Wait for the earliest in-flight miss to complete.
            start = self._min_ready
            self.stats.full_stalls += 1
            self.stats.stall_cycles += start - cycle
            self._expire(start)
        self.stats.allocations += 1
        return start, False

    def complete(self, line: int, ready_cycle: int) -> None:
        """Record that the miss of ``line`` fills at ``ready_cycle``."""
        self._pending[line] = ready_cycle
        if ready_cycle < self._min_ready:
            self._min_ready = ready_cycle
        if len(self._pending) > self.stats.peak_occupancy:
            self.stats.peak_occupancy = len(self._pending)
