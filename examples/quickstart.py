#!/usr/bin/env python3
"""Quickstart: watch SST hide a cache miss.

Assembles a tiny program in which a load misses all the way to DRAM,
one instruction depends on it, and a pile of independent work follows.
On the in-order core everything behind the dependent use stalls; the
SST core checkpoints at the miss, parks the dependent instruction in
the deferred queue, runs the independent work under the miss, then
replays and commits.

Run:  python examples/quickstart.py
"""

from repro import (
    assemble,
    inorder_machine,
    simulate,
    sst_machine,
)

PROGRAM = assemble(
    """
        movi r1, 0x100000     ; a cold address: this load goes to DRAM
        ld   r2, 0(r1)        ; the triggering miss
        addi r3, r2, 1        ; depends on the miss -> deferred
        movi r4, 0            ; ---- independent work below ----
        movi r5, 100
    busy:
        addi r4, r4, 7
        addi r5, r5, -1
        bne  r5, r0, busy
        add  r6, r3, r4       ; joins both strands' results
        halt
    """,
    name="quickstart",
)


def main() -> None:
    base = simulate(inorder_machine(), PROGRAM, verify=True)
    fast = simulate(sst_machine(), PROGRAM, verify=True)

    print(f"program: {PROGRAM.name} ({len(PROGRAM)} static instructions)")
    print(f"in-order core : {base.cycles:6d} cycles  (IPC {base.ipc:.3f})")
    print(f"SST core      : {fast.cycles:6d} cycles  (IPC {fast.ipc:.3f})")
    print(f"speedup       : {fast.speedup_over(base):.2f}x")

    stats = fast.extra["sst"]
    print()
    print("what the SST core did:")
    print(f"  speculative episodes : {stats.episodes}")
    print(f"  instructions deferred: {stats.deferred}")
    print(f"  ahead-strand issues  : {stats.ahead_insts}")
    print(f"  replayed from the DQ : {stats.replay_insts}")
    print(f"  full commits         : {stats.full_commits}")
    print(f"  failed speculations  : {stats.total_fails}")
    assert fast.state.regs[6] == base.state.regs[6]
    print(f"  r6 (joined result)   : {fast.state.regs[6]}")


if __name__ == "__main__":
    main()
