#!/usr/bin/env python3
"""The memory wall, and how much of it SST climbs.

Sweeps DRAM latency and plots (ASCII) the IPC of the in-order core and
the SST core on the DB probe workload.  The gap widens with latency:
the further away memory gets, the more useful it is to keep executing
under a miss.

Run:  python examples/latency_wall.py
"""

from repro import hash_join, inorder_machine, simulate, sst_machine
from repro.config import CacheConfig, DRAMConfig, HierarchyConfig

LATENCIES = (50, 100, 200, 400, 800)


def hierarchy(latency: int) -> HierarchyConfig:
    return HierarchyConfig(
        l1d=CacheConfig(size_bytes=16 * 1024, assoc=4, hit_latency=2,
                        mshr_entries=16),
        l1i=CacheConfig(size_bytes=16 * 1024, assoc=4, hit_latency=1,
                        mshr_entries=4),
        l2=CacheConfig(size_bytes=128 * 1024, assoc=8, hit_latency=20,
                       mshr_entries=32),
        dram=DRAMConfig(latency=latency, min_interval=2),
    )


def bar(value: float, scale: float, width: int = 48) -> str:
    filled = int(round(width * value / scale)) if scale else 0
    return "#" * max(filled, 1)


def main() -> None:
    program = hash_join(table_words=1 << 15, probes=1500)
    points = []
    for latency in LATENCIES:
        base = simulate(inorder_machine(hierarchy(latency)), program)
        fast = simulate(sst_machine(hierarchy(latency)), program)
        points.append((latency, base.ipc, fast.ipc,
                       fast.speedup_over(base)))

    top = max(ipc for _, base_ipc, sst_ipc, _ in points
              for ipc in (base_ipc, sst_ipc))
    print(f"workload: {program.name} — IPC vs DRAM latency")
    print()
    for latency, base_ipc, sst_ipc, speedup in points:
        print(f"  {latency:4d} cyc  inorder {base_ipc:5.3f} "
              f"{bar(base_ipc, top)}")
        print(f"           sst     {sst_ipc:5.3f} "
              f"{bar(sst_ipc, top)}   ({speedup:.2f}x)")
        print()
    print("The in-order bars collapse as latency grows; the SST bars")
    print("shrink far more slowly — the speedup column is the wall it")
    print("climbs.")


if __name__ == "__main__":
    main()
