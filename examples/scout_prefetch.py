#!/usr/bin/env python3
"""Hardware scout vs. retiring speculation.

Runs the same streaming workload on three machines built from the same
pipeline: a scout-only core (run ahead purely to prefetch, always roll
back), an execute-ahead core, and an in-order core with a hardware
stride prefetcher — the classic question of whether a thread-based
prefetcher earns its keep against a table-based one.

Run:  python examples/scout_prefetch.py
"""

from repro import (
    array_stream,
    ea_machine,
    inorder_machine,
    pointer_chase,
    scout_machine,
    simulate,
)
from repro.config import (
    CacheConfig,
    DRAMConfig,
    HierarchyConfig,
    PrefetcherConfig,
    PrefetcherKind,
)


def hierarchy(stride_prefetcher: bool = False) -> HierarchyConfig:
    prefetcher = PrefetcherConfig(
        kind=PrefetcherKind.STRIDE if stride_prefetcher
        else PrefetcherKind.NONE,
        degree=2,
    )
    return HierarchyConfig(
        l1d=CacheConfig(size_bytes=16 * 1024, assoc=4, hit_latency=2,
                        mshr_entries=16),
        l1i=CacheConfig(size_bytes=16 * 1024, assoc=4, hit_latency=1,
                        mshr_entries=4),
        l2=CacheConfig(size_bytes=128 * 1024, assoc=8, hit_latency=20,
                       mshr_entries=32),
        dram=DRAMConfig(latency=300, min_interval=2),
        l2_prefetcher=prefetcher,
    )


def report(name, result, baseline):
    line = (f"  {name:28s} {result.cycles:9d} cycles "
            f"({result.speedup_over(baseline):.2f}x)")
    stats = result.extra.get("sst")
    if stats is not None and stats.scout_prefetches:
        line += f"   scout prefetches: {stats.scout_prefetches}"
    print(line)


def main() -> None:
    workloads = [
        array_stream(words=1 << 15, name="fp-stream"),
        pointer_chase(chains=4, nodes_per_chain=2048, hops=2000,
                      name="oltp-chase"),
    ]
    for program in workloads:
        print(f"workload: {program.name}")
        base = simulate(inorder_machine(hierarchy()), program)
        report("inorder", base, base)
        stride = simulate(inorder_machine(hierarchy(True)), program)
        report("inorder + stride prefetcher", stride, base)
        scout = simulate(scout_machine(hierarchy()), program)
        report("hardware scout", scout, base)
        ea = simulate(ea_machine(hierarchy()), program)
        report("execute-ahead (retires!)", ea, base)
        print()
    print("On the regular stream the cheap stride prefetcher captures")
    print("part of what run-ahead gets; on irregular pointer chains it")
    print("captures nothing — only thread-based run-ahead finds the")
    print("addresses, and retiring that work (EA) beats discarding it.")


if __name__ == "__main__":
    main()
