#!/usr/bin/env python3
"""The paper's headline comparison on the commercial workload mix.

Runs the commercial suite (OLTP-style pointer chasing, a DB hash-join
probe, index lookups, and a store-heavy session log) across the four
design points of the paper's narrative — in-order, hardware scout,
execute-ahead, SST — plus an out-of-order comparator, and prints the
speedup table.

Run:  python examples/oltp_commercial.py          (about a minute)
      python examples/oltp_commercial.py --quick  (seconds, smaller runs)
"""

import sys

from repro import (
    commercial_suite,
    ea_machine,
    inorder_machine,
    ooo_machine,
    scout_machine,
    speedup_table,
    sst_machine,
)
from repro.config import CacheConfig, DRAMConfig, HierarchyConfig


def hierarchy() -> HierarchyConfig:
    """A reduced memory system sized against the suite's working sets."""
    return HierarchyConfig(
        l1d=CacheConfig(size_bytes=16 * 1024, assoc=4, hit_latency=2,
                        mshr_entries=16),
        l1i=CacheConfig(size_bytes=16 * 1024, assoc=4, hit_latency=1,
                        mshr_entries=4),
        l2=CacheConfig(size_bytes=128 * 1024, assoc=8, hit_latency=20,
                       mshr_entries=32),
        dram=DRAMConfig(latency=300, min_interval=2),
    )


def main() -> None:
    scale = "small" if "--quick" in sys.argv else "bench"
    machines = [
        inorder_machine(hierarchy()),
        scout_machine(hierarchy()),
        ea_machine(hierarchy()),
        sst_machine(hierarchy()),
        ooo_machine(hierarchy(), rob_size=128),
    ]
    table = speedup_table(
        f"Commercial suite ({scale} scale): speedup over in-order",
        commercial_suite(scale),
        machines,
        baseline_name="inorder-2w",
    )
    print(table)
    print()
    print("Reading the table: SST should lead the geomean, with scout")
    print("and execute-ahead between it and the in-order baseline; the")
    print("big OoO core wins only where windows beat slices.")


if __name__ == "__main__":
    main()
