#!/usr/bin/env python3
"""Design-space walk: what core should fill a throughput chip?

For a fixed die budget and off-chip bandwidth, compares chips built of
in-order, execute-ahead, SST, and out-of-order cores on a commercial
workload: per-core IPC (measured by simulation), area (structure
model), energy per instruction (event model), and the resulting chip
throughput with bandwidth capping — the analysis behind ROCK's "many
small SST cores" design decision.

Run:  python examples/chip_design.py
"""

from repro import (
    chip_throughput,
    core_area,
    cores_per_die,
    ea_machine,
    estimate_energy,
    hash_join,
    inorder_machine,
    ooo_machine,
    simulate,
    sst_machine,
)
from repro.config import (
    CacheConfig,
    DRAMConfig,
    HierarchyConfig,
    InOrderConfig,
    OoOConfig,
    SSTConfig,
)

DIE_BUDGET = 24.0  # in units of one scalar in-order core
CHIP_BW = 24.0  # bytes/cycle off-chip


def hierarchy() -> HierarchyConfig:
    return HierarchyConfig(
        l1d=CacheConfig(size_bytes=16 * 1024, assoc=4, hit_latency=2,
                        mshr_entries=16),
        l1i=CacheConfig(size_bytes=16 * 1024, assoc=4, hit_latency=1,
                        mshr_entries=4),
        l2=CacheConfig(size_bytes=128 * 1024, assoc=8, hit_latency=20,
                       mshr_entries=32),
        dram=DRAMConfig(latency=300, min_interval=2),
    )


def main() -> None:
    program = hash_join(table_words=1 << 15, probes=1500)
    candidates = [
        ("in-order", inorder_machine(hierarchy()), InOrderConfig(width=2)),
        ("execute-ahead", ea_machine(hierarchy()),
         SSTConfig(width=2, checkpoints=1)),
        ("SST", sst_machine(hierarchy()), SSTConfig(width=2)),
        ("OoO rob-128", ooo_machine(hierarchy(), rob_size=128),
         OoOConfig(rob_size=128, iq_size=42, lsq_size=42)),
    ]
    print(f"workload: {program.name}   die budget {DIE_BUDGET:.0f} units, "
          f"off-chip {CHIP_BW:.0f} B/cyc")
    print()
    header = (f"{'core':14s} {'area':>6s} {'cores':>6s} {'IPC':>7s} "
              f"{'EPI':>7s} {'bw?':>4s} {'chip IPC':>9s}")
    print(header)
    print("-" * len(header))
    best = None
    for name, machine, core_config in candidates:
        result = simulate(machine, program)
        area = core_area(core_config)
        cores = cores_per_die(core_config, DIE_BUDGET)
        energy = estimate_energy(result)
        point = chip_throughput(result, cores=cores, chip_bw_limit=CHIP_BW)
        print(f"{name:14s} {area:6.2f} {cores:6d} {result.ipc:7.3f} "
              f"{energy.energy_per_instruction:7.1f} "
              f"{'yes' if point.bandwidth_bound else 'no':>4s} "
              f"{point.throughput:9.2f}")
        if best is None or point.throughput > best[1]:
            best = (name, point.throughput)
    print()
    print(f"best chip on this workload: {best[0]} "
          f"({best[1]:.2f} aggregate IPC)")
    print("Per-thread IPC alone does not decide the chip: core area")
    print("sets how many fit, and energy per instruction sets the power")
    print("bill.  The small, fast-enough SST core wins the aggregate —")
    print("the paper's thesis in one table.")


if __name__ == "__main__":
    main()
