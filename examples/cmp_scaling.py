#!/usr/bin/env python3
"""A real multicore run: eight programs, one chip.

Simulates (true interleaved execution, not a model) a chip of SST
cores with private L1s sharing an L2 and one DRAM channel, each core
running its own copy of the DB probe workload — ROCK's throughput-
computing use case.  Then swaps the same chip's cores for in-order
ones to show what speculation buys at the chip level.

Run:  python examples/cmp_scaling.py        (about a minute)
"""

from repro import Multicore, hash_join
from repro.config import (
    CacheConfig,
    DRAMConfig,
    HierarchyConfig,
    SSTConfig,
)

CORES = 4


def hierarchy() -> HierarchyConfig:
    return HierarchyConfig(
        l1d=CacheConfig(size_bytes=16 * 1024, assoc=4, hit_latency=2,
                        mshr_entries=16),
        l1i=CacheConfig(size_bytes=16 * 1024, assoc=4, hit_latency=1,
                        mshr_entries=4),
        l2=CacheConfig(size_bytes=128 * 1024 * CORES, assoc=8,
                       hit_latency=20, mshr_entries=16 * CORES),
        dram=DRAMConfig(latency=300, min_interval=2),
    )


def programs():
    return [
        hash_join(table_words=1 << 14, probes=500, seed=seed,
                  name=f"db-hashjoin-{seed}")
        for seed in range(CORES)
    ]


def run_chip(label: str, core_config: SSTConfig):
    chip = Multicore(hierarchy(), [core_config] * CORES, programs())
    result = chip.run()
    print(f"{label}: aggregate IPC {result.aggregate_ipc:.3f} "
          f"(makespan {result.makespan} cycles)")
    for core_result in result.per_core:
        print(f"   {core_result.core_name:16s} "
              f"{core_result.cycles:8d} cycles  "
              f"IPC {core_result.ipc:.3f}")
    return result


def main() -> None:
    print(f"{CORES}-core chip, shared L2 + one DRAM channel, one DB "
          f"probe program per core\n")
    sst = run_chip("SST cores     ", SSTConfig(checkpoints=2))
    print()
    inorder = run_chip("in-order cores", SSTConfig(checkpoints=0))
    print()
    ratio = sst.aggregate_ipc / inorder.aggregate_ipc
    print(f"chip-level speedup from SST: {ratio:.1f}x — every core is")
    print("hiding its own misses, and the shared channel is what")
    print("finally limits them (watch per-core IPC dip below the")
    print("single-core number in examples/quickstart.py).")


if __name__ == "__main__":
    main()
