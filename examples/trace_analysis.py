#!/usr/bin/env python3
"""Characterise a workload before simulating it.

Records dynamic traces of two very different workloads and answers the
standard pre-simulation questions straight from the traces: how big is
the footprint, how much reuse is there, what L1 geometry would help,
and how predictable are the branches — the quick-look analyses that
tell you *why* the cores will behave the way E1/E2 show.

Run:  python examples/trace_analysis.py
"""

from repro import branchy_reduce, hash_join, record_trace
from repro.config import BranchPredictorConfig, CacheConfig, PredictorKind
from repro.trace import (
    cache_sweep,
    predictability,
    reuse_distances,
    working_set,
)


def characterise(program) -> None:
    trace = record_trace(program)
    print(f"workload: {trace.program_name}  "
          f"({trace.instructions} dynamic instructions)")

    footprint = working_set(trace)
    print(f"  footprint: {footprint['references']} refs over "
          f"{footprint['lines']} lines "
          f"({footprint['bytes'] / 1024:.0f} KiB, "
          f"{footprint['pages']} pages)")

    distances = reuse_distances(trace)
    counts = distances.as_dict()
    cold = counts.get(-1, 0)
    warm = sorted(
        depth for depth, count in counts.items() if depth >= 0
        for _ in range(count)
    )
    median_warm = warm[len(warm) // 2] if warm else "n/a"
    print(f"  reuse: {cold} cold-line refs, median warm stack depth "
          f"{median_warm}")

    geometries = [
        CacheConfig(size_bytes=size, assoc=4)
        for size in (4 * 1024, 16 * 1024, 64 * 1024)
    ]
    sweep = cache_sweep(trace, geometries)
    rates = "  ".join(
        f"{config.size_bytes // 1024}KiB:{rate:.0%}"
        for config, rate in sweep
    )
    print(f"  L1 miss-rate sweep: {rates}")

    for kind in (PredictorKind.ALWAYS_NOT_TAKEN, PredictorKind.GSHARE,
                 PredictorKind.TOURNAMENT):
        accuracy = predictability(
            trace, BranchPredictorConfig(kind=kind)
        )
        print(f"  branch accuracy ({kind.value:10s}): {accuracy:.1%}")
    print()


def main() -> None:
    characterise(hash_join(table_words=1 << 13, probes=1000))
    characterise(branchy_reduce(iterations=1000, data_words=1 << 10))
    print("The probe workload is footprint-bound (no cache geometry")
    print("fixes random misses over a big table) with easy branches;")
    print("the reduction is cache-resident with hostile branches —")
    print("exactly the split that makes one love SST and the other")
    print("fight it (EXPERIMENTS.md E1/E7/E12).")


if __name__ == "__main__":
    main()
