#!/usr/bin/env python3
"""Batch serving with the vectorized ensemble backend.

The north-star scenario: one service, one workload shape, many
concurrent requests that differ only in their parameters.  Instead of
interpreting each request's program separately, `repro.sim.ensemble`
executes all of them *simultaneously* — one (lanes, 32) register
matrix, one paged data-image matrix, whole basic blocks stepped as
numpy kernels, divergent branches split into cohorts that reconverge
at block boundaries.  Every lane's final state is bit-identical to a
scalar run of that lane alone.

The demo serves a batch of B-tree index lookups (each "request" probes
a different key set), compares wall time against serving the batch one
request at a time, then re-serves the warm batch through the result
cache to show that a served request is never simulated twice.

Run:  python examples/batch_serving.py       (a few seconds;
      works without numpy too — the pure-Python fallback is just
      slower, and the script says which backend it used)
"""

import tempfile
import time

from repro.isa.interpreter import Interpreter
from repro.sim import ResultCache, resolve_backend, run_ensemble
from repro.workloads import btree_lookup

LANES = 64


def batch():
    """One seed-varied request per lane: same code shape, different
    keys and tree contents (the ensemble lane contract)."""
    return [
        btree_lookup(array_words=1 << 9, lookups=48, seed=1000 + lane,
                     name=f"btree-request-{lane}")
        for lane in range(LANES)
    ]


def main() -> None:
    programs = batch()
    backend = resolve_backend()
    print(f"serving {LANES} requests ({programs[0].name.rsplit('-', 1)[0]}"
          f" shape) via the {backend} backend\n")

    # -- one at a time: the scalar reference ---------------------------
    started = time.perf_counter()
    scalar_insts = 0
    scalar_states = []
    for program in programs:
        interp = Interpreter(program)
        interp.run()
        scalar_insts += interp.stats.instructions
        scalar_states.append(interp.state)
    scalar_wall = time.perf_counter() - started
    print(f"one-at-a-time : {scalar_insts:8d} insts in "
          f"{scalar_wall:6.3f}s  "
          f"({scalar_insts / scalar_wall:10.0f} insts/host-sec)")

    # -- the whole batch in lockstep -----------------------------------
    started = time.perf_counter()
    results = run_ensemble(programs)
    batch_wall = time.perf_counter() - started
    batch_insts = sum(result.instructions for result in results)
    print(f"lockstep batch: {batch_insts:8d} insts in "
          f"{batch_wall:6.3f}s  "
          f"({batch_insts / batch_wall:10.0f} insts/host-sec)  "
          f"-> {scalar_wall / batch_wall:.2f}x")

    # Every request's answer is bit-identical to its solo run.
    for result, state in zip(results, scalar_states):
        assert result.state.regs == state.regs
        assert result.state.memory == state.memory
    print("every lane bit-identical to its scalar run: OK")

    # -- serving twice: the per-request result cache -------------------
    # Each lane is cached under its own content-addressed key, so a
    # served request is never simulated twice and a mixed batch only
    # executes its cold lanes.
    with tempfile.TemporaryDirectory() as cache_dir:
        cache = ResultCache(cache_dir)
        run_ensemble(programs, cache=cache)  # cold serve fills the cache
        started = time.perf_counter()
        warm = run_ensemble(programs, cache=cache)
        warm_wall = time.perf_counter() - started
        assert cache.stats.hits >= LANES
        assert all(
            a.state.regs == b.state.regs for a, b in zip(results, warm)
        )
        print(f"warm re-serve : {LANES} cache hits in {warm_wall:6.3f}s "
              f"(no simulation)")


if __name__ == "__main__":
    main()
