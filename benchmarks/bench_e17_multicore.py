"""Pytest-benchmark adapter for E17 — the experiment itself lives in
:mod:`repro.experiments.e17_multicore`.

Run it standalone (``python benchmarks/bench_e17_multicore.py``), through
pytest-benchmark (``pytest benchmarks/bench_e17_multicore.py``), or — for
the whole suite — ``repro experiments run``.  All three paths go
through the same :class:`~repro.experiments.engine.ExperimentEngine`
and write the same text table + JSON result document.
"""

from repro.experiments import make_bench_test

test_e17_multicore = make_bench_test("e17")


if __name__ == "__main__":
    import sys

    from repro.cli import main

    sys.exit(main(["experiments", "run", "e17", "--echo", *sys.argv[1:]]))
