"""E17 — simulated CMP scaling (true interleaved shared-L2/DRAM).

Chips of 1/2/4/8 cores, each core on its own seed of the DB probe
workload, with L2 capacity and MSHRs scaled with the core count (as a
real chip would be — ROCK shipped a shared L2 sized for 16 cores) so
the contention left is the off-chip channel.  Run at a generous and a
starved DRAM bandwidth.

Expected: the in-order chip scales almost linearly (its cores barely
use the channel) but from a tiny base; the SST chip's aggregate is far
above it at every point, scaling sublinearly as its speculative traffic
meets the channel — and visibly flatter when the channel is starved.
This is the simulated ground truth for E14's analytic model.
"""

from common import save_table, scaled
from repro.cmp import Multicore
from repro.config import (
    CacheConfig,
    DRAMConfig,
    HierarchyConfig,
    SSTConfig,
)
from repro.stats.report import Table
from repro.workloads import hash_join

CORE_COUNTS = (1, 2, 4, 8)
# DRAM minimum start interval: 1 -> 64 B/cyc channel, 8 -> 8 B/cyc.
BANDWIDTH_POINTS = {"wide": 1, "starved": 8}


def _hierarchy(cores: int, interval: int) -> HierarchyConfig:
    return HierarchyConfig(
        l1d=CacheConfig(size_bytes=16 * 1024, assoc=4, hit_latency=2,
                        mshr_entries=16),
        l1i=CacheConfig(size_bytes=16 * 1024, assoc=4, hit_latency=1,
                        mshr_entries=4),
        l2=CacheConfig(size_bytes=128 * 1024 * cores, assoc=8,
                       hit_latency=20, mshr_entries=16 * cores),
        dram=DRAMConfig(latency=300, min_interval=interval),
    )


def _programs(count: int):
    return [
        hash_join(table_words=scaled(1 << 14), probes=scaled(600), seed=seed,
                  name=f"db-hashjoin-{seed}")
        for seed in range(count)
    ]


def experiment():
    table = Table(
        "E17: simulated multicore scaling (shared L2 + DRAM channel)",
        ["channel", "cores", "machine", "aggregate IPC",
         "scaling efficiency"],
    )
    curves = {}
    for channel, interval in BANDWIDTH_POINTS.items():
        for kind, config in (("sst", SSTConfig(checkpoints=2)),
                             ("inorder", SSTConfig(checkpoints=0))):
            base = None
            points = []
            for count in CORE_COUNTS:
                result = Multicore(
                    _hierarchy(count, interval), [config] * count,
                    _programs(count),
                ).run()
                aggregate = result.aggregate_ipc
                if base is None:
                    base = aggregate
                points.append(aggregate)
                table.add_row(
                    channel, count, kind, round(aggregate, 3),
                    f"{aggregate / (count * base):.0%}",
                )
            curves[(channel, kind)] = points
    return table, curves


def test_e17_multicore(benchmark):
    table, curves = benchmark.pedantic(experiment, rounds=1, iterations=1)
    save_table("e17_multicore", table)
    benchmark.extra_info["aggregate_ipc"] = {
        f"{channel}/{kind}": [round(v, 3) for v in values]
        for (channel, kind), values in curves.items()
    }
    for channel in BANDWIDTH_POINTS:
        sst = curves[(channel, "sst")]
        inorder = curves[(channel, "inorder")]
        # Throughput grows with cores, sublinearly for the SST chip.
        assert sst[-1] > sst[0]
        assert sst[-1] < 8 * sst[0]
        # The SST chip out-throughputs the in-order chip everywhere.
        for sst_ipc, inorder_ipc in zip(sst, inorder):
            assert sst_ipc > inorder_ipc
    # Starving the channel flattens the SST curve specifically.
    assert curves[("starved", "sst")][-1] < curves[("wide", "sst")][-1]
    assert (curves[("starved", "inorder")][-1]
            > 0.9 * curves[("wide", "inorder")][-1])