#!/usr/bin/env python
"""Thin adapter over :mod:`repro.experiments.perf`.

The snapshot/regression-gate logic lives in the package (so the
``repro perf report`` CLI subcommand and ``run_all.py --perf-smoke``
share one implementation); this script keeps the historical entry
point and import surface (``import perf_report``) working.

Usage::

    python benchmarks/perf_report.py                # full tiny snapshot
    python benchmarks/perf_report.py --tag nightly  # custom tag
    python benchmarks/perf_report.py --smoke        # tiny workloads

Requires the ``repro`` package to be importable (``pip install -e .``
or ``PYTHONPATH=src``).
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys
from typing import List, Optional

try:
    from repro.experiments.perf import (
        DEFAULT_ENSEMBLE_MIN_SPEEDUP,
        DEFAULT_PERF_TOLERANCE,
        DEFAULT_TIMING_ENSEMBLE_MIN_SPEEDUP,
        REPORT_SCHEMA,
        aggregate,
        load_baseline,
        measure,
        measure_ensemble,
        measure_timing_ensemble,
        perf_entry,
        render,
        run_perf_smoke,
        speedup_vs_baseline,
        write_report,
    )
except ImportError as exc:  # pragma: no cover — setup error, not logic
    raise SystemExit(
        "error: the `repro` package is not importable "
        f"({exc}).\nInstall it (`pip install -e .`) or run with "
        "`PYTHONPATH=src`."
    ) from None

__all__ = [
    "DEFAULT_ENSEMBLE_MIN_SPEEDUP",
    "DEFAULT_PERF_TOLERANCE",
    "DEFAULT_TIMING_ENSEMBLE_MIN_SPEEDUP",
    "REPORT_SCHEMA",
    "aggregate",
    "load_baseline",
    "measure",
    "measure_ensemble",
    "measure_timing_ensemble",
    "perf_entry",
    "render",
    "run_perf_smoke",
    "speedup_vs_baseline",
    "write_report",
    "main",
]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Emit a BENCH_<tag>.json simulator-throughput "
                    "snapshot.")
    parser.add_argument("--tag", default="report",
                        help="snapshot tag (file name suffix)")
    parser.add_argument("--out", default=None,
                        help="output path override")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workloads (sets REPRO_BENCH_SMOKE=1)")
    args = parser.parse_args(argv)
    if args.smoke:
        os.environ["REPRO_BENCH_SMOKE"] = "1"
    payload = measure(tag=args.tag)
    path = write_report(
        payload, pathlib.Path(args.out) if args.out else None
    )
    print(render(payload))
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
