"""Pytest-benchmark adapter for E1 — the experiment itself lives in
:mod:`repro.experiments.e01_speedup_over_inorder`.

Run it standalone (``python benchmarks/bench_e1_speedup_over_inorder.py``), through
pytest-benchmark (``pytest benchmarks/bench_e1_speedup_over_inorder.py``), or — for
the whole suite — ``repro experiments run``.  All three paths go
through the same :class:`~repro.experiments.engine.ExperimentEngine`
and write the same text table + JSON result document.
"""

from repro.experiments import make_bench_test

test_e1_speedup_over_inorder = make_bench_test("e1")


if __name__ == "__main__":
    import sys

    from repro.cli import main

    sys.exit(main(["experiments", "run", "e1", "--echo", *sys.argv[1:]]))
