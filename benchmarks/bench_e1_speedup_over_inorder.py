"""E1 — per-workload speedup of scout / execute-ahead / SST over the
in-order baseline (the paper's core progression figure).

Expected shape: every speculative mode >= 1.0x on the miss-bound
commercial workloads, ordered scout <= EA <= SST on the geomean, with
the compute-bound contrast workloads showing little gain.
"""

from common import (
    bench_full_suite,
    bench_hierarchy,
    paper_machines,
    run_matrix,
    save_table,
)
from repro.stats.report import Table, geomean


def experiment():
    programs = bench_full_suite()
    configs = paper_machines(bench_hierarchy())
    matrix = run_matrix(programs, configs)
    baseline_name = configs[0].name
    table = Table(
        "E1: speedup over the in-order core",
        ["workload", "inorder IPC", "scout", "execute-ahead", "sst"],
    )
    speedups = {config.name: [] for config in configs[1:]}
    for program in programs:
        results = matrix[program.name]
        base = results[baseline_name]
        row = [program.name, round(base.ipc, 3)]
        for config in configs[1:]:
            speedup = results[config.name].speedup_over(base)
            speedups[config.name].append(speedup)
            row.append(f"{speedup:.2f}x")
        table.add_row(*row)
    table.add_row(
        "geomean", "",
        *(f"{geomean(values):.2f}x" for values in speedups.values()),
    )
    return table, speedups


def test_e1_speedup_over_inorder(benchmark):
    table, speedups = benchmark.pedantic(experiment, rounds=1, iterations=1)
    save_table("e1_speedup_over_inorder", table)
    sst = geomean(speedups["sst-2w-2ckpt"])
    ea = geomean(speedups["ea-2w"])
    scout = geomean(speedups["scout-2w"])
    benchmark.extra_info["geomean_sst"] = round(sst, 3)
    benchmark.extra_info["geomean_ea"] = round(ea, 3)
    benchmark.extra_info["geomean_scout"] = round(scout, 3)
    assert sst > 1.5
    assert sst >= ea * 0.98 >= scout * 0.9
