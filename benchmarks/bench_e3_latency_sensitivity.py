"""Pytest-benchmark adapter for E3 — the experiment itself lives in
:mod:`repro.experiments.e03_latency_sensitivity`.

Run it standalone (``python benchmarks/bench_e3_latency_sensitivity.py``), through
pytest-benchmark (``pytest benchmarks/bench_e3_latency_sensitivity.py``), or — for
the whole suite — ``repro experiments run``.  All three paths go
through the same :class:`~repro.experiments.engine.ExperimentEngine`
and write the same text table + JSON result document.
"""

from repro.experiments import make_bench_test

test_e3_latency_sensitivity = make_bench_test("e3")


if __name__ == "__main__":
    import sys

    from repro.cli import main

    sys.exit(main(["experiments", "run", "e3", "--echo", *sys.argv[1:]]))
