"""E3 — memory-latency sensitivity.

Sweep DRAM latency 100..800 cycles: the in-order core degrades almost
linearly with latency while SST hides a growing fraction of it, so
SST's speedup must *grow* with latency.
"""

from common import bench_hierarchy, run, save_table, scaled
from repro.config import inorder_machine, sst_machine
from repro.stats.report import Table
from repro.workloads import hash_join, pointer_chase

LATENCIES = (100, 200, 400, 800)


def experiment():
    programs = [
        hash_join(table_words=scaled(1 << 16), probes=scaled(3000)),
        pointer_chase(chains=4, nodes_per_chain=scaled(2048),
                      hops=scaled(2500)),
    ]
    table = Table(
        "E3: SST speedup over in-order vs DRAM latency",
        ["workload"] + [f"{latency} cyc" for latency in LATENCIES],
    )
    curves = {}
    for program in programs:
        row = [program.name]
        curve = []
        for latency in LATENCIES:
            hierarchy = bench_hierarchy(latency=latency)
            base = run(inorder_machine(hierarchy), program)
            fast = run(sst_machine(hierarchy), program)
            speedup = fast.speedup_over(base)
            curve.append(speedup)
            row.append(f"{speedup:.2f}x")
        curves[program.name] = curve
        table.add_row(*row)
    return table, curves


def test_e3_latency_sensitivity(benchmark):
    table, curves = benchmark.pedantic(experiment, rounds=1, iterations=1)
    save_table("e3_latency_sensitivity", table)
    for name, curve in curves.items():
        benchmark.extra_info[name] = [round(s, 2) for s in curve]
    # Independent-miss workloads: the benefit grows with the wall.
    hashjoin = curves["db-hashjoin"]
    assert hashjoin[-1] > hashjoin[0]
    # Dependent chains bound MLP at the chain count, so the chase
    # speedup stays roughly flat (the chain itself scales with latency
    # on every machine) rather than growing.
    chase = curves["oltp-chase"]
    assert 0.6 * chase[0] < chase[-1] < 1.6 * chase[0]
