"""E5 — checkpoint count: the EA -> SST step.

1 checkpoint = execute-ahead (replay pauses the ahead strand);
2 checkpoints = SST (the paper's design point); more checkpoints let
more epochs pipeline.  Expected: the 1 -> 2 step is the big one.
"""

import dataclasses

from common import bench_hierarchy, run, save_table, scaled
from repro.config import inorder_machine, sst_machine
from repro.stats.report import Table, geomean
from repro.workloads import hash_join, pointer_chase, store_stream

CHECKPOINTS = (1, 2, 4, 8)


def experiment():
    hierarchy = bench_hierarchy()
    programs = [
        hash_join(table_words=scaled(1 << 16), probes=scaled(3000)),
        pointer_chase(chains=4, nodes_per_chain=scaled(2048),
                      hops=scaled(2500)),
        store_stream(records=scaled(2000), payload_words=8,
                     table_words=scaled(1 << 16)),
    ]
    table = Table(
        "E5: speedup over in-order vs number of checkpoints",
        ["workload"] + [f"{k} ckpt" for k in CHECKPOINTS],
    )
    per_k = {k: [] for k in CHECKPOINTS}
    for program in programs:
        base = run(inorder_machine(hierarchy), program)
        row = [program.name]
        for k in CHECKPOINTS:
            machine = dataclasses.replace(
                sst_machine(hierarchy, checkpoints=k), name=f"sst-{k}ckpt"
            )
            speedup = run(machine, program).speedup_over(base)
            per_k[k].append(speedup)
            row.append(f"{speedup:.2f}x")
        table.add_row(*row)
    table.add_row(
        "geomean", *(f"{geomean(per_k[k]):.2f}x" for k in CHECKPOINTS)
    )
    return table, {k: geomean(values) for k, values in per_k.items()}


def test_e5_checkpoints(benchmark):
    table, geomeans = benchmark.pedantic(experiment, rounds=1, iterations=1)
    save_table("e5_checkpoints", table)
    benchmark.extra_info["geomeans"] = {
        str(k): round(value, 3) for k, value in geomeans.items()
    }
    step_1_2 = geomeans[2] / geomeans[1]
    step_2_8 = geomeans[8] / geomeans[2]
    assert step_1_2 > 1.02  # EA -> SST is a real step
    assert step_2_8 < step_1_2 + 0.25  # and the dominant one
