"""Pytest-benchmark adapter for E5 — the experiment itself lives in
:mod:`repro.experiments.e05_checkpoints`.

Run it standalone (``python benchmarks/bench_e5_checkpoints.py``), through
pytest-benchmark (``pytest benchmarks/bench_e5_checkpoints.py``), or — for
the whole suite — ``repro experiments run``.  All three paths go
through the same :class:`~repro.experiments.engine.ExperimentEngine`
and write the same text table + JSON result document.
"""

from repro.experiments import make_bench_test

test_e5_checkpoints = make_bench_test("e5")


if __name__ == "__main__":
    import sys

    from repro.cli import main

    sys.exit(main(["experiments", "run", "e5", "--echo", *sys.argv[1:]]))
