"""Pytest-benchmark adapter for E15 — the experiment itself lives in
:mod:`repro.experiments.e15_tlb`.

Run it standalone (``python benchmarks/bench_e15_tlb.py``), through
pytest-benchmark (``pytest benchmarks/bench_e15_tlb.py``), or — for
the whole suite — ``repro experiments run``.  All three paths go
through the same :class:`~repro.experiments.engine.ExperimentEngine`
and write the same text table + JSON result document.
"""

from repro.experiments import make_bench_test

test_e15_tlb = make_bench_test("e15")


if __name__ == "__main__":
    import sys

    from repro.cli import main

    sys.exit(main(["experiments", "run", "e15", "--echo", *sys.argv[1:]]))
