"""E15 — TLB reach and defer-on-TLB-miss.

Random probes over a table far beyond TLB reach make the table walk a
first-class latency event.  Sweep TLB entries and toggle whether a
walk opens a speculative episode: with the trigger on, walks are
overlapped like cache misses; with it off they serialise.
"""

import dataclasses

from common import bench_hierarchy, run, save_table, scaled
from repro.config import (
    CoreKind,
    MachineConfig,
    SSTConfig,
    TLBConfig,
    inorder_machine,
)
from repro.stats.report import Table
from repro.workloads import hash_join

TLB_ENTRIES = (16, 64, 256)


def _hierarchy(entries: int):
    return dataclasses.replace(
        bench_hierarchy(),
        tlb=TLBConfig(entries=entries, page_bytes=8192, walk_latency=120),
    )


def _sst(entries: int, defer_on_tlb: bool) -> MachineConfig:
    suffix = "tlbdefer" if defer_on_tlb else "notlbdefer"
    return MachineConfig(
        core_kind=CoreKind.SST,
        hierarchy=_hierarchy(entries),
        sst=SSTConfig(defer_on_tlb_miss=defer_on_tlb),
        name=f"sst-{entries}e-{suffix}",
    )


def experiment():
    program = hash_join(table_words=scaled(1 << 16), probes=scaled(3000))
    table = Table(
        "E15: TLB reach and defer-on-TLB-miss (db-hashjoin)",
        ["tlb entries", "tlb miss rate", "inorder IPC",
         "sst IPC (defer on walk)", "sst IPC (no walk defer)"],
    )
    gains = []
    for entries in TLB_ENTRIES:
        base = run(inorder_machine(_hierarchy(entries)), program)
        with_defer = run(_sst(entries, True), program)
        without = run(_sst(entries, False), program)
        gains.append(with_defer.ipc / max(without.ipc, 1e-9))
        table.add_row(
            entries,
            f"{_tlb_miss_rate(entries, program):.0%}",
            round(base.ipc, 3),
            round(with_defer.ipc, 3),
            round(without.ipc, 3),
        )
    return table, gains


def _tlb_miss_rate(entries: int, program) -> float:
    """Measure the TLB miss rate with a dedicated instrumented run."""
    from repro.sim.machine import build_core, build_hierarchy

    config = inorder_machine(_hierarchy(entries))
    hierarchy = build_hierarchy(config.hierarchy)
    core = build_core(config, program, hierarchy)
    core.run(max_instructions=50_000_000)
    return hierarchy.dtlb.stats.miss_rate


def test_e15_tlb(benchmark):
    table, gains = benchmark.pedantic(experiment, rounds=1, iterations=1)
    save_table("e15_tlb", table)
    benchmark.extra_info["defer_gains"] = [round(g, 3) for g in gains]
    # Deferring on walks pays when walks are frequent (small TLB)...
    assert gains[0] > 1.0
    # ...and matters less once the TLB covers the working set.
    assert gains[-1] <= gains[0] + 0.1