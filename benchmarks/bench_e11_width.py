"""Pytest-benchmark adapter for E11 — the experiment itself lives in
:mod:`repro.experiments.e11_width`.

Run it standalone (``python benchmarks/bench_e11_width.py``), through
pytest-benchmark (``pytest benchmarks/bench_e11_width.py``), or — for
the whole suite — ``repro experiments run``.  All three paths go
through the same :class:`~repro.experiments.engine.ExperimentEngine`
and write the same text table + JSON result document.
"""

from repro.experiments import make_bench_test

test_e11_width = make_bench_test("e11")


if __name__ == "__main__":
    import sys

    from repro.cli import main

    sys.exit(main(["experiments", "run", "e11", "--echo", *sys.argv[1:]]))
