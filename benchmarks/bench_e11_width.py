"""E11 — pipeline width and strand sharing.

The two strands share one pipeline's issue slots.  On a workload with
per-element compute (fp-stream) extra width feeds both strands and IPC
grows; on the purely miss-bound probe loop (db-hashjoin) one slot per
cycle already sustains the miss stream, so width barely matters —
which is exactly the paper's argument for building *narrow* SST cores
and spending the area on more of them.
"""

import dataclasses

from common import bench_hierarchy, run, save_table, scaled
from repro.config import inorder_machine, sst_machine
from repro.stats.report import Table
from repro.workloads import array_stream, hash_join

WIDTHS = (1, 2, 4)


def experiment():
    hierarchy = bench_hierarchy()
    programs = [
        array_stream(words=scaled(1 << 15)),
        hash_join(table_words=scaled(1 << 16), probes=scaled(3000)),
    ]
    table = Table(
        "E11: SST IPC vs pipeline width (same-width in-order shown)",
        ["workload", "width", "inorder IPC", "sst IPC", "sst speedup"],
    )
    ipcs = {}
    for program in programs:
        per_width = []
        for width in WIDTHS:
            base = run(inorder_machine(hierarchy, width=width), program)
            machine = dataclasses.replace(
                sst_machine(hierarchy, width=width), name=f"sst-{width}w"
            )
            result = run(machine, program)
            per_width.append(result.ipc)
            table.add_row(program.name, width, round(base.ipc, 3),
                          round(result.ipc, 3),
                          f"{result.speedup_over(base):.2f}x")
        ipcs[program.name] = per_width
    return table, ipcs


def test_e11_width(benchmark):
    table, ipcs = benchmark.pedantic(experiment, rounds=1, iterations=1)
    save_table("e11_width", table)
    benchmark.extra_info["ipcs"] = {
        name: [round(v, 3) for v in values] for name, values in ipcs.items()
    }
    stream = ipcs["fp-stream"]
    assert stream[1] > stream[0] * 1.1  # compute mix wants >= 2-wide
    hashjoin = ipcs["db-hashjoin"]
    # The miss stream saturates early: going 2-wide -> 4-wide buys
    # almost nothing (narrow cores are the right design point).
    assert abs(hashjoin[2] - hashjoin[1]) / hashjoin[1] < 0.15