"""Pytest-benchmark adapter for E10 — the experiment itself lives in
:mod:`repro.experiments.e10_membypass`.

Run it standalone (``python benchmarks/bench_e10_membypass.py``), through
pytest-benchmark (``pytest benchmarks/bench_e10_membypass.py``), or — for
the whole suite — ``repro experiments run``.  All three paths go
through the same :class:`~repro.experiments.engine.ExperimentEngine`
and write the same text table + JSON result document.
"""

from repro.experiments import make_bench_test

test_e10_membypass = make_bench_test("e10")


if __name__ == "__main__":
    import sys

    from repro.cli import main

    sys.exit(main(["experiments", "run", "e10", "--echo", *sys.argv[1:]]))
