"""E10 — ablation: loads bypassing unresolved stores.

The scatter-update workload stores through a *missing* pointer, so the
store's address is unknown during speculation.  Conservative policy
defers every younger load behind it; bypass-and-check speculates and
pays a memory-order rollback on the rare true alias.  Expected: bypass
clearly wins when aliases are rare, and its advantage shrinks (but the
machine stays correct) as the alias rate rises.
"""

from common import bench_hierarchy, run, save_table, scaled
from repro.config import SSTConfig, CoreKind, MachineConfig
from repro.core import FailCause
from repro.stats.report import Table
from repro.workloads import scatter_update


def _machine(bypass: bool) -> MachineConfig:
    return MachineConfig(
        core_kind=CoreKind.SST,
        hierarchy=bench_hierarchy(),
        sst=SSTConfig(bypass_unresolved_stores=bypass),
        name="sst-bypass" if bypass else "sst-conservative",
    )


def experiment():
    programs = [
        scatter_update(table_words=scaled(1 << 14), updates=scaled(2000),
                       alias_per_1024=0, name="db-scatter-clean"),
        scatter_update(table_words=scaled(1 << 14), updates=scaled(2000),
                       alias_per_1024=64, name="db-scatter-aliased"),
    ]
    table = Table(
        "E10: load bypass of unresolved stores (ablation)",
        ["workload", "conservative IPC", "bypass IPC", "bypass gain",
         "order fails", "order defers (conservative)"],
    )
    gains = {}
    fails = {}
    for program in programs:
        conservative = run(_machine(False), program)
        bypass = run(_machine(True), program)
        gain = bypass.speedup_over(conservative)
        gains[program.name] = gain
        fails[program.name] = bypass.extra["sst"].fails[
            FailCause.MEMORY_ORDER_VIOLATION
        ]
        table.add_row(
            program.name,
            round(conservative.ipc, 3),
            round(bypass.ipc, 3),
            f"{gain:.2f}x",
            fails[program.name],
            conservative.extra["sst"].order_deferred,
        )
    return table, gains, fails


def test_e10_membypass(benchmark):
    table, gains, fails = benchmark.pedantic(experiment, rounds=1,
                                             iterations=1)
    save_table("e10_membypass", table)
    benchmark.extra_info["gains"] = {k: round(v, 3)
                                     for k, v in gains.items()}
    # Alias-free: bypass wins outright and never fails.
    assert gains["db-scatter-clean"] > 1.05
    assert fails["db-scatter-clean"] == 0
    # With real aliases the checker fires, yet bypass stays viable.
    assert fails["db-scatter-aliased"] > 0
    assert gains["db-scatter-aliased"] > 0.8