"""E13 — the power-efficiency claim.

Event-based energy for in-order / SST / OoO on the commercial suite:
energy per committed instruction (including the cost of discarded
speculative work) and ED².  Expected: SST's structures add modest
energy over in-order — far less than rename/ROB/IQ/LSQ add to the OoO
core — while its speed gives it the best ED² on miss-bound codes.
"""

from common import bench_commercial_suite, bench_hierarchy, run, save_table
from repro.config import inorder_machine, ooo_machine, sst_machine
from repro.power import estimate_energy
from repro.stats.report import Table, geomean


def experiment():
    hierarchy = bench_hierarchy()
    configs = [
        inorder_machine(hierarchy),
        sst_machine(hierarchy),
        ooo_machine(hierarchy, rob_size=128),
    ]
    table = Table(
        "E13: energy per instruction and ED2 (relative units)",
        ["workload", "machine", "EPI", "window/ckpt EPI share",
         "rel. ED2 vs inorder"],
    )
    epi = {config.name: [] for config in configs}
    ed2_ratio = {config.name: [] for config in configs}
    for program in bench_commercial_suite():
        breakdowns = {}
        for config in configs:
            result = run(config, program)
            breakdowns[config.name] = estimate_energy(result)
        base_ed2 = breakdowns[configs[0].name].energy_delay_squared
        for config in configs:
            breakdown = breakdowns[config.name]
            overhead_keys = {"rename", "rob", "issue_queue", "lsq",
                             "checkpoints", "deferred_queue",
                             "store_buffer", "na_bits"}
            overhead = sum(value for key, value
                           in breakdown.components.items()
                           if key in overhead_keys)
            share = overhead / breakdown.total
            relative_ed2 = breakdown.energy_delay_squared / base_ed2
            epi[config.name].append(breakdown.energy_per_instruction)
            ed2_ratio[config.name].append(relative_ed2)
            table.add_row(
                program.name, config.name,
                round(breakdown.energy_per_instruction, 1),
                f"{share:.0%}",
                round(relative_ed2, 3),
            )
    table.add_row(
        "geomean EPI", "",
        "/".join(f"{geomean(epi[c.name]):.0f}" for c in configs), "", "",
    )
    return table, epi, ed2_ratio


def test_e13_energy(benchmark):
    table, epi, ed2_ratio = benchmark.pedantic(experiment, rounds=1,
                                               iterations=1)
    save_table("e13_energy", table)
    inorder_epi = geomean(epi["inorder-2w"])
    sst_epi = geomean(epi["sst-2w-2ckpt"])
    ooo_epi = geomean(epi["ooo-4w-rob128"])
    benchmark.extra_info["epi"] = {
        "inorder": round(inorder_epi, 1),
        "sst": round(sst_epi, 1),
        "ooo": round(ooo_epi, 1),
    }
    # SST costs more energy per instruction than in-order (speculation
    # is not free) but less than the OoO machinery.
    assert inorder_epi < sst_epi < ooo_epi
    # And on miss-bound commercial codes SST has the best ED².
    assert geomean(ed2_ratio["sst-2w-2ckpt"]) \
        < geomean(ed2_ratio["ooo-4w-rob128"])
    assert geomean(ed2_ratio["sst-2w-2ckpt"]) < 1.0