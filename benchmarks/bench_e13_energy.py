"""Pytest-benchmark adapter for E13 — the experiment itself lives in
:mod:`repro.experiments.e13_energy`.

Run it standalone (``python benchmarks/bench_e13_energy.py``), through
pytest-benchmark (``pytest benchmarks/bench_e13_energy.py``), or — for
the whole suite — ``repro experiments run``.  All three paths go
through the same :class:`~repro.experiments.engine.ExperimentEngine`
and write the same text table + JSON result document.
"""

from repro.experiments import make_bench_test

test_e13_energy = make_bench_test("e13")


if __name__ == "__main__":
    import sys

    from repro.cli import main

    sys.exit(main(["experiments", "run", "e13", "--echo", *sys.argv[1:]]))
