"""Pytest-benchmark adapter for E9 — the experiment itself lives in
:mod:`repro.experiments.e09_mode_breakdown`.

Run it standalone (``python benchmarks/bench_e9_mode_breakdown.py``), through
pytest-benchmark (``pytest benchmarks/bench_e9_mode_breakdown.py``), or — for
the whole suite — ``repro experiments run``.  All three paths go
through the same :class:`~repro.experiments.engine.ExperimentEngine`
and write the same text table + JSON result document.
"""

from repro.experiments import make_bench_test

test_e9_mode_breakdown = make_bench_test("e9")


if __name__ == "__main__":
    import sys

    from repro.cli import main

    sys.exit(main(["experiments", "run", "e9", "--echo", *sys.argv[1:]]))
