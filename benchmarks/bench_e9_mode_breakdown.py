"""E9 — where the cycles go: execution-mode breakdown per workload.

Miss-bound workloads should live in EXECUTE_AHEAD/SST; compute-bound
ones in NORMAL; resource-starved or chain-bound ones show SCOUT and
REPLAY_ONLY time.
"""

from common import bench_full_suite, bench_hierarchy, run, save_table
from repro.config import sst_machine
from repro.core import ExecMode
from repro.stats.report import Table

MODES = [ExecMode.NORMAL, ExecMode.EXECUTE_AHEAD, ExecMode.SST,
         ExecMode.REPLAY_ONLY, ExecMode.SCOUT]


def experiment():
    table = Table(
        "E9: fraction of cycles per execution mode (SST core)",
        ["workload"] + [mode.value for mode in MODES],
    )
    fractions = {}
    for program in bench_full_suite():
        result = run(sst_machine(bench_hierarchy()), program)
        mode_cycles = result.extra["sst"].mode_cycles
        total = max(sum(mode_cycles.values()), 1)
        shares = {
            mode: mode_cycles[mode.value] / total for mode in MODES
        }
        fractions[program.name] = shares
        table.add_row(
            program.name,
            *(f"{shares[mode]:.2f}" for mode in MODES),
        )
    return table, fractions


def test_e9_mode_breakdown(benchmark):
    table, fractions = benchmark.pedantic(experiment, rounds=1, iterations=1)
    save_table("e9_mode_breakdown", table)
    # Miss-bound DB probe spends most cycles speculating...
    db = fractions["db-hashjoin"]
    assert db[ExecMode.EXECUTE_AHEAD] + db[ExecMode.SST] > 0.5
    # ...while the cache-resident kernel stays mostly normal.
    matmul = fractions["compute-matmul"]
    assert matmul[ExecMode.NORMAL] > 0.5
