"""Pytest-benchmark adapter for E14 — the experiment itself lives in
:mod:`repro.experiments.e14_cmp_throughput`.

Run it standalone (``python benchmarks/bench_e14_cmp_throughput.py``), through
pytest-benchmark (``pytest benchmarks/bench_e14_cmp_throughput.py``), or — for
the whole suite — ``repro experiments run``.  All three paths go
through the same :class:`~repro.experiments.engine.ExperimentEngine`
and write the same text table + JSON result document.
"""

from repro.experiments import make_bench_test

test_e14_cmp_throughput = make_bench_test("e14")


if __name__ == "__main__":
    import sys

    from repro.cli import main

    sys.exit(main(["experiments", "run", "e14", "--echo", *sys.argv[1:]]))
