"""Shared infrastructure for the benchmark harness.

Every ``bench_e*.py`` module regenerates one table/figure of the
reconstructed evaluation (see DESIGN.md).  Each prints its table and
also writes it to ``benchmarks/results/<experiment>.txt`` so
EXPERIMENTS.md can quote the exact output.

The *bench hierarchy* is deliberately smaller than a real ROCK-era
memory system so the "bench"-scale workloads (hundreds of KB of working
set) exercise the same regime the paper's commercial workloads did on
multi-MB caches: frequent L2 misses with room for memory-level
parallelism.  Absolute IPCs are therefore not comparable to silicon;
relative orderings are the reproduction target.

Environment knobs (all optional):

* ``REPRO_JOBS`` — worker processes for matrix/suite runs (default 1).
* ``REPRO_CACHE`` — set to ``0`` to disable the content-addressed
  result cache under ``benchmarks/.simcache/`` (default on).
* ``REPRO_CACHE_DIR`` — cache location override.
* ``REPRO_BENCH_MAX_INSTRUCTIONS`` — per-run instruction budget
  (runaway guard) override; default 50M.
* ``REPRO_BENCH_SMOKE`` — set to ``1`` to shrink every workload by
  :data:`SMOKE_DIVISOR` and use the tiny suite scale, so the full
  18-experiment suite finishes in seconds (CI smoke mode; relative
  orderings at this scale are indicative only).
"""

from __future__ import annotations

import os
import pathlib
from typing import Dict, List, Optional

from repro.baselines.core_base import CoreResult
from repro.config import (
    CacheConfig,
    DRAMConfig,
    HierarchyConfig,
    MachineConfig,
    ea_machine,
    inorder_machine,
    ooo_machine,
    scout_machine,
    sst_machine,
)
from repro.isa.program import Program
from repro.sim.cache import ResultCache, cache_from_env
from repro.sim.parallel import ParallelRunner, SimTask
from repro.stats.report import Table
from repro.workloads import commercial_suite, compute_suite, full_suite

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

BENCH_MAX_INSTRUCTIONS = int(
    os.environ.get("REPRO_BENCH_MAX_INSTRUCTIONS", 50_000_000)
)

# CI smoke mode: shrink every workload so the whole suite runs in
# seconds.  Orderings at this scale are indicative, not evaluative.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "").lower() in ("1", "on", "true")
SMOKE_DIVISOR = 16
BENCH_SCALE = "tiny" if SMOKE else "bench"

_CACHE: Optional[ResultCache] = cache_from_env()


def bench_cache() -> Optional[ResultCache]:
    """The process-wide result cache (None when ``REPRO_CACHE=0``)."""
    return _CACHE


def scaled(value: int, floor: int = 1) -> int:
    """Shrink a hardcoded workload parameter in smoke mode.

    Dividing by a power of two preserves power-of-two-ness, which some
    generators (hash tables) require of their sizes.
    """
    if not SMOKE:
        return value
    return max(floor, value // SMOKE_DIVISOR)


def bench_full_suite() -> List[Program]:
    return full_suite(BENCH_SCALE)


def bench_commercial_suite() -> List[Program]:
    return commercial_suite(BENCH_SCALE)


def bench_compute_suite() -> List[Program]:
    return compute_suite(BENCH_SCALE)


def bench_hierarchy(latency: int = 300, mshr: int = 16,
                    l2_mshr: int = 32) -> HierarchyConfig:
    return HierarchyConfig(
        l1d=CacheConfig(size_bytes=16 * 1024, assoc=4, hit_latency=2,
                        mshr_entries=mshr),
        l1i=CacheConfig(size_bytes=16 * 1024, assoc=4, hit_latency=1,
                        mshr_entries=4),
        l2=CacheConfig(size_bytes=128 * 1024, assoc=8, hit_latency=20,
                       mshr_entries=l2_mshr),
        dram=DRAMConfig(latency=latency, min_interval=2),
    )


def paper_machines(
        hierarchy: Optional[HierarchyConfig] = None) -> List[MachineConfig]:
    """The four design points of the paper's narrative."""
    hierarchy = hierarchy or bench_hierarchy()
    return [
        inorder_machine(hierarchy),
        scout_machine(hierarchy),
        ea_machine(hierarchy),
        sst_machine(hierarchy),
    ]


def ooo_comparators(
        hierarchy: Optional[HierarchyConfig] = None) -> List[MachineConfig]:
    """The "larger and higher-powered" out-of-order design points."""
    hierarchy = hierarchy or bench_hierarchy()
    return [
        ooo_machine(hierarchy, rob_size=32),
        ooo_machine(hierarchy, rob_size=64),
        ooo_machine(hierarchy, rob_size=128),
    ]


def run(config: MachineConfig, program: Program) -> CoreResult:
    """One benchmark point, through the result cache."""
    runner = ParallelRunner(jobs=1, cache=_CACHE)
    return runner.run([
        SimTask(config=config, program=program,
                max_instructions=BENCH_MAX_INSTRUCTIONS)
    ])[0]


def run_many(points: List[SimTask]) -> List[CoreResult]:
    """A batch of points through the pool (``REPRO_JOBS``) + cache,
    results in submission order."""
    runner = ParallelRunner(cache=_CACHE)
    return runner.run(points)


def run_matrix(programs: List[Program],
               configs: List[MachineConfig]) -> Dict[str, Dict[str, CoreResult]]:
    """program name -> machine name -> result.

    The full matrix is one :class:`ParallelRunner` batch: with
    ``REPRO_JOBS`` set, points run across worker processes; cached
    points are restored without simulating at all.
    """
    tasks = [
        SimTask(config=config, program=program,
                max_instructions=BENCH_MAX_INSTRUCTIONS)
        for program in programs
        for config in configs
    ]
    results = run_many(tasks)
    matrix: Dict[str, Dict[str, CoreResult]] = {
        program.name: {} for program in programs
    }
    for task, result in zip(tasks, results):
        matrix[task.program.name][task.config.name] = result
    return matrix


def save_table(experiment: str, table: Table) -> str:
    """Print the table and persist it under benchmarks/results/."""
    text = table.render()
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment}.txt").write_text(text + "\n")
    print()
    print(text)
    return text
