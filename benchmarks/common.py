"""Shared infrastructure for the benchmark harness.

Every ``bench_e*.py`` module regenerates one table/figure of the
reconstructed evaluation (see DESIGN.md).  Each prints its table and
also writes it to ``benchmarks/results/<experiment>.txt`` so
EXPERIMENTS.md can quote the exact output.

The *bench hierarchy* is deliberately smaller than a real ROCK-era
memory system so the "bench"-scale workloads (hundreds of KB of working
set) exercise the same regime the paper's commercial workloads did on
multi-MB caches: frequent L2 misses with room for memory-level
parallelism.  Absolute IPCs are therefore not comparable to silicon;
relative orderings are the reproduction target.
"""

from __future__ import annotations

import pathlib
from typing import Dict, List

from repro.baselines.core_base import CoreResult
from repro.config import (
    CacheConfig,
    DRAMConfig,
    HierarchyConfig,
    MachineConfig,
    ea_machine,
    inorder_machine,
    ooo_machine,
    scout_machine,
    sst_machine,
)
from repro.isa.program import Program
from repro.sim.runner import simulate
from repro.stats.report import Table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

BENCH_MAX_INSTRUCTIONS = 50_000_000


def bench_hierarchy(latency: int = 300, mshr: int = 16,
                    l2_mshr: int = 32) -> HierarchyConfig:
    return HierarchyConfig(
        l1d=CacheConfig(size_bytes=16 * 1024, assoc=4, hit_latency=2,
                        mshr_entries=mshr),
        l1i=CacheConfig(size_bytes=16 * 1024, assoc=4, hit_latency=1,
                        mshr_entries=4),
        l2=CacheConfig(size_bytes=128 * 1024, assoc=8, hit_latency=20,
                       mshr_entries=l2_mshr),
        dram=DRAMConfig(latency=latency, min_interval=2),
    )


def paper_machines(hierarchy: HierarchyConfig = None) -> List[MachineConfig]:
    """The four design points of the paper's narrative."""
    hierarchy = hierarchy or bench_hierarchy()
    return [
        inorder_machine(hierarchy),
        scout_machine(hierarchy),
        ea_machine(hierarchy),
        sst_machine(hierarchy),
    ]


def ooo_comparators(hierarchy: HierarchyConfig = None) -> List[MachineConfig]:
    """The "larger and higher-powered" out-of-order design points."""
    hierarchy = hierarchy or bench_hierarchy()
    return [
        ooo_machine(hierarchy, rob_size=32),
        ooo_machine(hierarchy, rob_size=64),
        ooo_machine(hierarchy, rob_size=128),
    ]


def run(config: MachineConfig, program: Program) -> CoreResult:
    return simulate(config, program,
                    max_instructions=BENCH_MAX_INSTRUCTIONS)


def run_matrix(programs: List[Program],
               configs: List[MachineConfig]) -> Dict[str, Dict[str, CoreResult]]:
    """program name -> machine name -> result."""
    return {
        program.name: {
            config.name: run(config, program) for config in configs
        }
        for program in programs
    }


def save_table(experiment: str, table: Table) -> str:
    """Print the table and persist it under benchmarks/results/."""
    text = table.render()
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment}.txt").write_text(text + "\n")
    print()
    print(text)
    return text
