"""Pytest-benchmark adapter for E6 — the experiment itself lives in
:mod:`repro.experiments.e06_mlp_scout`.

Run it standalone (``python benchmarks/bench_e6_mlp_scout.py``), through
pytest-benchmark (``pytest benchmarks/bench_e6_mlp_scout.py``), or — for
the whole suite — ``repro experiments run``.  All three paths go
through the same :class:`~repro.experiments.engine.ExperimentEngine`
and write the same text table + JSON result document.
"""

from repro.experiments import make_bench_test

test_e6_mlp_scout = make_bench_test("e6")


if __name__ == "__main__":
    import sys

    from repro.cli import main

    sys.exit(main(["experiments", "run", "e6", "--echo", *sys.argv[1:]]))
