"""E6 — memory-level parallelism and prefetch coverage.

How each mode turns serial misses into overlapped ones: demand DRAM
accesses, misses merged into in-flight fills (the MLP signature), the
SST core's peak outstanding deferred misses, and scout prefetches.
"""

from common import bench_hierarchy, paper_machines, run, save_table, scaled
from repro.stats.report import Table
from repro.workloads import hash_join


def experiment():
    program = hash_join(table_words=scaled(1 << 16), probes=scaled(3000))
    table = Table(
        "E6: MLP and prefetch coverage on db-hashjoin",
        ["machine", "cycles", "dram accesses", "merges",
         "peak outstanding", "scout prefetches"],
    )
    rows = {}
    for config in paper_machines(bench_hierarchy()):
        result = run(config, program)
        hierarchy_stats = result.extra["hierarchy"]
        sst_stats = result.extra.get("sst")
        peak = sst_stats.peak_outstanding_misses if sst_stats else 0
        scout_prefetches = sst_stats.scout_prefetches if sst_stats else 0
        table.add_row(
            config.name,
            result.cycles,
            hierarchy_stats.demand_dram,
            hierarchy_stats.demand_merges,
            peak,
            scout_prefetches,
        )
        rows[config.name] = result.cycles
    return table, rows


def test_e6_mlp_scout(benchmark):
    table, cycles = benchmark.pedantic(experiment, rounds=1, iterations=1)
    save_table("e6_mlp_scout", table)
    benchmark.extra_info["cycles"] = cycles
    # Every speculative mode beats in-order on this workload.
    base = cycles["inorder-2w"]
    for name, value in cycles.items():
        if name != "inorder-2w":
            assert value < base
