"""E16 — ablation: which miss level opens an episode.

Defer on any L1 miss (aggressive: even an L2 hit parks the slice) vs
defer only on DRAM-bound misses (conservative: L2 hits stall-on-use).
Expected: L1-triggered deferral wins when L2 hit latency is large
enough to be worth hiding, and the two converge on DRAM-dominated
codes.
"""

from common import bench_hierarchy, run, save_table, scaled
from repro.config import CoreKind, DeferTrigger, MachineConfig, SSTConfig
from repro.stats.report import Table
from repro.workloads import array_stream, hash_join, matrix_multiply


def _machine(trigger: DeferTrigger) -> MachineConfig:
    return MachineConfig(
        core_kind=CoreKind.SST,
        hierarchy=bench_hierarchy(),
        sst=SSTConfig(defer_trigger=trigger),
        name=f"sst-{trigger.value}",
    )


def experiment():
    programs = [
        hash_join(table_words=scaled(1 << 16), probes=scaled(3000)),  # DRAM-dominated
        hash_join(table_words=scaled(1 << 13), probes=scaled(3000),
                  name="db-hashjoin-l2"),  # 64KB: misses L1, lives in L2
        array_stream(words=scaled(1 << 15)),
        matrix_multiply(n=scaled(20, floor=8)),
    ]
    table = Table(
        "E16: defer trigger level (L1 miss vs DRAM-bound miss)",
        ["workload", "IPC defer@L1", "IPC defer@L2miss", "ratio",
         "episodes@L1", "episodes@L2miss"],
    )
    ratios = {}
    for program in programs:
        aggressive = run(_machine(DeferTrigger.L1_MISS), program)
        lazy = run(_machine(DeferTrigger.L2_MISS), program)
        ratio = aggressive.ipc / max(lazy.ipc, 1e-9)
        ratios[program.name] = ratio
        table.add_row(
            program.name,
            round(aggressive.ipc, 3),
            round(lazy.ipc, 3),
            f"{ratio:.2f}x",
            aggressive.extra["sst"].episodes,
            lazy.extra["sst"].episodes,
        )
    return table, ratios


def test_e16_defer_trigger(benchmark):
    table, ratios = benchmark.pedantic(experiment, rounds=1, iterations=1)
    save_table("e16_defer_trigger", table)
    benchmark.extra_info["ratios"] = {k: round(v, 3)
                                      for k, v in ratios.items()}
    # An L2-resident working set is where L1-triggered deferral earns
    # its keep (it hides the 20-cycle L2 hits).
    assert ratios["db-hashjoin-l2"] > 1.02
    # On the DRAM-dominated version the triggers converge.
    assert 0.85 < ratios["db-hashjoin"] < 1.25