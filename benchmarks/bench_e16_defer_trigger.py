"""Pytest-benchmark adapter for E16 — the experiment itself lives in
:mod:`repro.experiments.e16_defer_trigger`.

Run it standalone (``python benchmarks/bench_e16_defer_trigger.py``), through
pytest-benchmark (``pytest benchmarks/bench_e16_defer_trigger.py``), or — for
the whole suite — ``repro experiments run``.  All three paths go
through the same :class:`~repro.experiments.engine.ExperimentEngine`
and write the same text table + JSON result document.
"""

from repro.experiments import make_bench_test

test_e16_defer_trigger = make_bench_test("e16")


if __name__ == "__main__":
    import sys

    from repro.cli import main

    sys.exit(main(["experiments", "run", "e16", "--echo", *sys.argv[1:]]))
