"""E7 — speculation outcome table.

Per workload: episodes, commits (full + region), failures by cause,
scout sessions, and discarded work.  Expected: the commercial mixes
mostly commit; branch-heavy codes fail more and pointer codes lean on
scout when resources starve.
"""

from common import bench_full_suite, bench_hierarchy, run, save_table
from repro.config import sst_machine
from repro.core import FailCause
from repro.stats.report import Table


def experiment():
    table = Table(
        "E7: speculation outcomes (SST core)",
        ["workload", "episodes", "full commits", "region commits",
         "branch fails", "jump fails", "order fails", "scouts",
         "discarded insts"],
    )
    outcomes = {}
    for program in bench_full_suite():
        result = run(sst_machine(bench_hierarchy()), program)
        stats = result.extra["sst"]
        table.add_row(
            program.name,
            stats.episodes,
            stats.full_commits,
            stats.region_commits,
            stats.fails[FailCause.DEFERRED_BRANCH_MISPREDICT],
            stats.fails[FailCause.DEFERRED_JUMP_MISPREDICT],
            stats.fails[FailCause.MEMORY_ORDER_VIOLATION],
            stats.total_scout_sessions,
            stats.discarded_insts,
        )
        outcomes[program.name] = stats
    return table, outcomes


def test_e7_outcomes(benchmark):
    table, outcomes = benchmark.pedantic(experiment, rounds=1, iterations=1)
    save_table("e7_outcomes", table)
    # Branch-fed-by-miss workloads fail most.
    branchy = outcomes["int-branchy"]
    stream = outcomes["fp-stream"]
    assert (branchy.fails[FailCause.DEFERRED_BRANCH_MISPREDICT]
            > stream.fails[FailCause.DEFERRED_BRANCH_MISPREDICT])
    # The DB probe loop overwhelmingly commits.
    hashjoin = outcomes["db-hashjoin"]
    assert hashjoin.full_commits + hashjoin.region_commits \
        > 10 * hashjoin.total_fails
