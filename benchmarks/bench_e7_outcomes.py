"""Pytest-benchmark adapter for E7 — the experiment itself lives in
:mod:`repro.experiments.e07_outcomes`.

Run it standalone (``python benchmarks/bench_e7_outcomes.py``), through
pytest-benchmark (``pytest benchmarks/bench_e7_outcomes.py``), or — for
the whole suite — ``repro experiments run``.  All three paths go
through the same :class:`~repro.experiments.engine.ExperimentEngine`
and write the same text table + JSON result document.
"""

from repro.experiments import make_bench_test

test_e7_outcomes = make_bench_test("e7")


if __name__ == "__main__":
    import sys

    from repro.cli import main

    sys.exit(main(["experiments", "run", "e7", "--echo", *sys.argv[1:]]))
