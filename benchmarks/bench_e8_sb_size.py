"""E8 — speculative store-buffer sizing.

The store-burst workload fills the SB during each episode; a shallow SB
forces scout fallbacks and forfeits retirement.  Expected: speedup
climbs with SB depth until the burst fits, then flattens.
"""

import dataclasses

from common import bench_hierarchy, run, save_table, scaled
from repro.config import inorder_machine, sst_machine
from repro.stats.report import Table
from repro.workloads import store_stream

SB_SIZES = (4, 8, 16, 32, 64)


def experiment():
    program = store_stream(records=scaled(2000), payload_words=8,
                           table_words=scaled(1 << 16))
    hierarchy = bench_hierarchy()
    base = run(inorder_machine(hierarchy), program)
    table = Table(
        "E8: SST speedup and SB pressure vs store-buffer size",
        ["sb_size", "speedup", "sb-full scouts", "mean SB occupancy"],
    )
    curve = []
    for sb_size in SB_SIZES:
        machine = dataclasses.replace(
            sst_machine(hierarchy, sb_size=sb_size), name=f"sst-sb{sb_size}"
        )
        result = run(machine, program)
        stats = result.extra["sst"]
        from repro.core import ScoutCause

        speedup = result.speedup_over(base)
        curve.append(speedup)
        table.add_row(
            sb_size,
            f"{speedup:.2f}x",
            stats.scout_sessions[ScoutCause.SB_FULL],
            round(result.extra["sb_occupancy"].mean, 1),
        )
    return table, curve


def test_e8_sb_size(benchmark):
    table, curve = benchmark.pedantic(experiment, rounds=1, iterations=1)
    save_table("e8_sb_size", table)
    benchmark.extra_info["speedups"] = [round(s, 2) for s in curve]
    assert curve[-1] > curve[0]  # depth helps the store burst
    assert curve[-1] <= curve[-2] * 1.2  # then flattens
